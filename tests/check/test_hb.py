"""Happens-before pass (H001-H008): each rule catches its known-bad log."""

import json

import pytest

from repro.check.hb import (
    CANONICAL_SCENARIOS,
    HbScenario,
    certify_scenario,
    check_causality,
    get_scenario,
    happens_before,
    vector_clocks,
)
from repro.errors import ConfigurationError
from repro.sim import CausalityLog, SimCore
from repro.sim.causality import CausalityEvent


def _rule_ids(findings):
    return {f.rule_id for f in findings}


# ----------------------------------------------------------------------
# Vector clocks
# ----------------------------------------------------------------------
def test_program_order_is_happens_before():
    log = CausalityLog()
    log.emit("spawn", 0.0, pid=0)
    log.emit("resume", 0.0, pid=0, tie=0)
    log.emit("suspend", 10.0, pid=0, key="at")
    events = log.events
    clocks = vector_clocks(events)
    assert happens_before(events, clocks, 0, 1)
    assert happens_before(events, clocks, 1, 2)
    assert not happens_before(events, clocks, 2, 1)


def test_rendezvous_orders_joiners_through_release():
    log = CausalityLog()
    for pid in (0, 1):
        log.emit("spawn", 0.0, pid=pid)
    log.emit("join", 10.0, pid=0, key="b", parties=2)
    log.emit("join", 20.0, pid=1, key="b", parties=2)
    log.emit("release", 20.0, pid=1, key="b", parties=2)
    log.emit("wake", 20.0, pid=0, src=1, key="b")
    events = log.events
    clocks = vector_clocks(events)
    # pid 0's join precedes the release (and thus pid 1's wake-side view),
    # even though the two pids never interact directly.
    assert happens_before(events, clocks, 2, 4)
    assert happens_before(events, clocks, 2, 5)
    # The two spawns stay unordered.
    assert not happens_before(events, clocks, 0, 1)
    assert not happens_before(events, clocks, 1, 0)


def test_actor_edge_orders_one_handlers_emissions():
    log = CausalityLog()
    for pid in (0, 1, 2):
        log.emit("spawn", 0.0, pid=pid)
    # pid 0 releases and, in one handler activation, grants both waiters at
    # the same instant: sequential within the actor, so no race.
    log.emit("grant", 10.0, pid=1, src=0, key="kv", owner="a", blocks=1)
    log.emit("grant", 10.0, pid=2, src=0, key="kv", owner="b", blocks=1)
    log.emit("free", 20.0, pid=1, key="kv", owner="a", blocks=1)
    log.emit("free", 21.0, pid=2, key="kv", owner="b", blocks=1)
    events = log.events
    clocks = vector_clocks(events)
    assert happens_before(events, clocks, 3, 4)
    assert check_causality(log) == []


# ----------------------------------------------------------------------
# H001: unordered same-resource accesses
# ----------------------------------------------------------------------
def _two_independent_pids():
    log = CausalityLog()
    for pid in (0, 1):
        log.emit("spawn", 0.0, pid=pid)
        log.emit("resume", 0.0, pid=pid, tie=pid)
    return log


def test_h001_unordered_same_time_grants_flagged():
    log = _two_independent_pids()
    log.emit("grant", 10.0, pid=0, key="kv", owner="a", blocks=2)
    log.emit("grant", 10.0, pid=1, key="kv", owner="b", blocks=2)
    log.emit("free", 20.0, pid=0, key="kv", owner="a", blocks=2)
    log.emit("free", 25.0, pid=1, key="kv", owner="b", blocks=2)
    findings = check_causality(log)
    assert _rule_ids(findings) == {"H001"}
    assert "unordered by happens-before" in findings[0].message


def test_h001_silent_when_accesses_are_ordered():
    log = CausalityLog()
    log.emit("spawn", 0.0, pid=0)
    log.emit("resume", 0.0, pid=0, tie=0)
    log.emit("spawn", 5.0, pid=1, src=0)  # pid 0 spawned pid 1
    log.emit("resume", 5.0, pid=1, tie=1)
    log.emit("grant", 10.0, pid=0, key="kv", owner="a", blocks=1)
    # Ordered through the spawn edge? No - the grant came later on pid 0.
    # Same-time accesses at *different* instants never race:
    log.emit("grant", 11.0, pid=1, key="kv", owner="b", blocks=1)
    log.emit("free", 20.0, pid=0, key="kv", owner="a", blocks=1)
    log.emit("free", 21.0, pid=1, key="kv", owner="b", blocks=1)
    assert check_causality(log) == []


# ----------------------------------------------------------------------
# H002: undetermined event-queue ties
# ----------------------------------------------------------------------
def test_h002_missing_tie_key_flagged():
    log = CausalityLog()
    for pid in (0, 1):
        log.emit("spawn", 0.0, pid=pid)
    log.emit("resume", 5.0, pid=0, tie=0)
    log.emit("resume", 5.0, pid=1, tie=None)
    findings = check_causality(log)
    assert _rule_ids(findings) == {"H002"}
    assert "no tie-break key" in findings[0].message


def test_h002_duplicate_tie_keys_flagged():
    log = CausalityLog()
    for pid in (0, 1):
        log.emit("spawn", 0.0, pid=pid)
    log.emit("resume", 5.0, pid=0, tie=3)
    log.emit("resume", 5.0, pid=1, tie=3)
    findings = check_causality(log)
    assert _rule_ids(findings) == {"H002"}
    assert "duplicate tie-break key" in findings[0].message


def test_h002_silent_for_distinct_ties_and_lone_pops():
    log = CausalityLog()
    for pid in (0, 1):
        log.emit("spawn", 0.0, pid=pid)
    log.emit("resume", 5.0, pid=0, tie=0)
    log.emit("resume", 5.0, pid=1, tie=1)
    log.emit("resume", 9.0, pid=0, tie=None)  # alone at its instant: fine
    # The lone-resume's missing tie is not an H002, but pid 0 resuming
    # twice without an intervening suspend is an H007 - schedule one.
    log.events[-1:] = []
    log.emit("suspend", 5.0, pid=0, key="at")
    log.emit("resume", 9.0, pid=0, tie=None)
    assert check_causality(log) == []


# ----------------------------------------------------------------------
# H003: lost wakeups
# ----------------------------------------------------------------------
def test_h003_eligible_waiter_never_granted_flagged():
    log = _two_independent_pids()
    log.emit("resource", 0.0, key="kv", blocks=4)
    log.emit("grant", 1.0, pid=0, key="kv", owner="a", blocks=4)
    log.emit("acquire", 2.0, pid=1, key="kv", owner="b", blocks=2)
    log.emit("free", 9.0, pid=0, key="kv", owner="a", blocks=4)
    findings = check_causality(log)
    assert "H003" in _rule_ids(findings)
    message = next(f for f in findings if f.rule_id == "H003").message
    assert "lost wakeup" in message and "owner b" in message


def test_h003_silent_when_waiter_is_granted():
    log = _two_independent_pids()
    log.emit("resource", 0.0, key="kv", blocks=4)
    log.emit("grant", 1.0, pid=0, key="kv", owner="a", blocks=4)
    log.emit("acquire", 2.0, pid=1, key="kv", owner="b", blocks=2)
    log.emit("free", 9.0, pid=0, key="kv", owner="a", blocks=4)
    log.emit("grant", 9.0, pid=1, src=0, key="kv", owner="b", blocks=2)
    log.emit("free", 12.0, pid=1, key="kv", owner="b", blocks=2)
    assert "H003" not in _rule_ids(check_causality(log))


def test_h003_silent_when_waiter_never_fits():
    log = _two_independent_pids()
    log.emit("resource", 0.0, key="kv", blocks=4)
    log.emit("grant", 1.0, pid=0, key="kv", owner="a", blocks=2)
    log.emit("acquire", 2.0, pid=1, key="kv", owner="b", blocks=4)
    log.emit("free", 9.0, pid=0, key="kv", owner="a", blocks=1)
    # 3 free < 4 wanted: starvation by capacity, not a lost wakeup.
    findings = check_causality(log)
    assert "H003" not in _rule_ids(findings)


# ----------------------------------------------------------------------
# H004: join after completion
# ----------------------------------------------------------------------
def test_h004_overjoined_rendezvous_flagged():
    log = CausalityLog()
    for pid in (0, 1, 2):
        log.emit("spawn", 0.0, pid=pid)
    log.emit("join", 10.0, pid=0, key="b", parties=2)
    log.emit("join", 20.0, pid=1, key="b", parties=2)
    log.emit("release", 20.0, pid=1, key="b", parties=2)
    log.emit("join", 30.0, pid=2, key="b", parties=2)
    findings = [f for f in check_causality(log) if f.rule_id == "H004"]
    assert len(findings) == 1
    assert "joined after all 2 parties" in findings[0].message


# ----------------------------------------------------------------------
# H005: stream occupancy overlap
# ----------------------------------------------------------------------
def test_h005_overlapping_stream_occupancy_flagged():
    log = _two_independent_pids()
    log.emit("occupy", 10.0, pid=0, key="device0.stream7", end_ns=30.0)
    log.emit("occupy", 20.0, pid=1, key="device0.stream7", end_ns=40.0)
    findings = check_causality(log)
    assert _rule_ids(findings) == {"H005"}
    assert "overlaps" in findings[0].message


def test_h005_silent_for_link_and_for_abutting_intervals():
    log = _two_independent_pids()
    # Concurrent link transfers are a modeling choice, not a hazard.
    log.emit("occupy", 10.0, pid=0, key="link", end_ns=30.0)
    log.emit("occupy", 20.0, pid=1, key="link", end_ns=40.0)
    # Back-to-back stream kernels share an endpoint without overlapping.
    log.emit("occupy", 50.0, pid=0, key="device0.stream7", end_ns=60.0)
    log.emit("occupy", 60.0, pid=1, key="device0.stream7", end_ns=70.0)
    assert "H005" not in _rule_ids(check_causality(log))


# ----------------------------------------------------------------------
# H006: blocks held past the end of the run
# ----------------------------------------------------------------------
def test_h006_unreleased_blocks_flagged():
    log = CausalityLog()
    log.emit("spawn", 0.0, pid=0)
    log.emit("resource", 0.0, key="kv", blocks=8)
    log.emit("grant", 5.0, pid=0, key="kv", owner="a", blocks=3)
    log.emit("exit", 9.0, pid=0)
    findings = [f for f in check_causality(log) if f.rule_id == "H006"]
    assert len(findings) == 1
    assert "3 blocks" in findings[0].message
    assert "exit" in findings[0].message


# ----------------------------------------------------------------------
# H007: log well-formedness
# ----------------------------------------------------------------------
def test_h007_resume_without_scheduling_flagged():
    log = CausalityLog()
    log.emit("resume", 0.0, pid=0, tie=0)
    findings = [f for f in check_causality(log) if f.rule_id == "H007"]
    assert findings
    assert any("never scheduled" in f.message for f in findings)


def test_h007_resume_after_exit_flagged():
    log = CausalityLog()
    log.emit("spawn", 0.0, pid=0)
    log.emit("resume", 0.0, pid=0, tie=0)
    log.emit("exit", 5.0, pid=0)
    log.emit("resume", 9.0, pid=0, tie=1)
    findings = [f for f in check_causality(log) if f.rule_id == "H007"]
    assert any("after its exit" in f.message for f in findings)


def test_h007_release_violating_max_law_flagged():
    log = CausalityLog()
    for pid in (0, 1):
        log.emit("spawn", 0.0, pid=pid)
    log.emit("join", 10.0, pid=0, key="b", parties=2)
    log.emit("join", 20.0, pid=1, key="b", parties=2)
    log.emit("release", 15.0, pid=1, key="b", parties=2)  # before max join
    findings = [f for f in check_causality(log) if f.rule_id == "H007"]
    assert any("max-law" in f.message for f in findings)


def test_h007_non_monotone_seq_flagged():
    log = CausalityLog()
    log.events.append(CausalityEvent(seq=5, kind="spawn", time_ns=0.0, pid=0))
    log.events.append(CausalityEvent(seq=3, kind="resume", time_ns=0.0,
                                     pid=0, tie=0))
    findings = [f for f in check_causality(log) if f.rule_id == "H007"]
    assert any("strictly increasing" in f.message for f in findings)


# ----------------------------------------------------------------------
# H008: determinism certification
# ----------------------------------------------------------------------
def _order_dependent_scenario():
    def run(queue, causality):
        order = []
        core = SimCore(queue=queue, causality=causality)

        def proc(name):
            # The outcome depends on which same-time pop runs first: the
            # exact bug class certification exists to catch.
            order.append(name)
            yield ("at", 10.0)

        core.spawn(proc("a"))
        core.spawn(proc("b"))
        core.run()
        return [tuple(order)]

    return HbScenario(name="racy", description="pop-order dependent", run=run)


def test_h008_tie_dependent_outcome_flagged():
    findings, base_log = certify_scenario(_order_dependent_scenario())
    assert _rule_ids(findings) == {"H008"}
    finding = findings[0]
    assert "causally-equivalent tie-break perturbation" in finding.message
    assert "('a', 'b')" in finding.message and "('b', 'a')" in finding.message
    # The divergence is pinpointed to a concrete baseline event.
    assert "event" in finding.location
    assert base_log.events


def test_h008_silent_for_deterministic_scenario():
    def run(queue, causality):
        times = []
        core = SimCore(queue=queue, causality=causality)

        def proc(at):
            resumed = yield ("at", at)
            times.append(resumed)

        core.spawn(proc(10.0))
        core.spawn(proc(20.0))
        core.run()
        return [tuple(sorted(times))]

    findings, _ = certify_scenario(
        HbScenario(name="calm", description="order independent", run=run))
    assert findings == []


# ----------------------------------------------------------------------
# Real runs are clean; scenario registry
# ----------------------------------------------------------------------
def test_canonical_scenario_registry():
    assert [s.name for s in CANONICAL_SCENARIOS] == [
        "mixed-stream", "pp-kv-offload", "cluster", "host-contention"]
    assert get_scenario("mixed-stream") is CANONICAL_SCENARIOS[0]
    with pytest.raises(ConfigurationError, match="unknown hb scenario"):
        get_scenario("nope")


def test_real_serving_log_is_clean():
    from repro.sim import EventQueue

    log = CausalityLog()
    get_scenario("mixed-stream").run(EventQueue(), log)
    assert log.events
    assert check_causality(log) == []


def test_real_pp_engine_log_is_clean():
    from repro.engine.executor import run
    from repro.engine.pp import PPConfig
    from repro.hardware import get_platform
    from repro.workloads import GPT2

    log = CausalityLog()
    run(GPT2, get_platform("GH200"), batch_size=2, seq_len=64,
        pp=PPConfig(stages=2, microbatches=2), causality=log)
    kinds = {e.kind for e in log.events}
    assert {"join", "release", "wake", "occupy"} <= kinds
    assert check_causality(log) == []


# ----------------------------------------------------------------------
# CLI: exit codes and JSON over causality sidecars
# ----------------------------------------------------------------------
def _cli(capsys, *argv):
    from repro.cli import main

    code = main(list(argv))
    return code, capsys.readouterr().out


def test_cli_check_hb_log_clean_and_bad(capsys, tmp_path):
    clean = CausalityLog()
    clean.emit("spawn", 0.0, pid=0)
    clean.emit("resume", 0.0, pid=0, tie=0)
    clean.emit("exit", 1.0, pid=0)
    clean_path = tmp_path / "clean.json"
    clean.dump(clean_path)
    code, out = _cli(capsys, "check", "hb", "--log", str(clean_path))
    assert code == 0
    assert "clean" in out

    bad = CausalityLog()
    bad.emit("resume", 0.0, pid=0, tie=0)
    bad_path = tmp_path / "bad.json"
    bad.dump(bad_path)
    code, out = _cli(capsys, "check", "hb",
                     "--log", str(bad_path), "--json")
    assert code == 1
    payload = json.loads(out)
    assert payload["ok"] is False
    assert {f["rule"] for f in payload["findings"]} == {"H007"}


def test_cli_check_hb_rejects_certify_with_log(capsys, tmp_path):
    path = tmp_path / "log.json"
    CausalityLog().dump(path)
    code = _cli(capsys, "check", "hb", "--log", str(path), "--certify")[0]
    assert code == 2


def test_cli_check_hb_unknown_scenario_is_config_error(capsys):
    code = _cli(capsys, "check", "hb", "--scenario", "nope")[0]
    assert code == 2
