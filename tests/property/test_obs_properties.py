"""Property-based tests for the paper's metric invariants (Eq. 1-6).

The schedules here are arbitrary valid launch timelines, not engine output:
the invariants must hold for *any* trace SKIP could be handed, including
traces exported from recorded serving runs by :mod:`repro.obs`.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.stats import Histogram
from repro.skip import compute_metrics, mine_chains
from repro.trace import TraceBuilder
from repro.trace.trace import Trace


@st.composite
def launch_schedules(draw):
    """A monotone schedule of (call_ts, kernel_start, duration) launches."""
    count = draw(st.integers(1, 20))
    schedule = []
    cpu = 0.0
    gpu_free = 0.0
    for _ in range(count):
        cpu += draw(st.floats(1.0, 1000.0))
        latency = draw(st.floats(0.5, 500.0))
        duration = draw(st.floats(0.5, 2000.0))
        start = max(cpu + latency, gpu_free)
        gpu_free = start + duration
        schedule.append((cpu, start, duration))
        cpu += 1.0
    return schedule


def build_trace(schedule, extra_queue_ns: float = 0.0) -> Trace:
    """One-iteration trace; ``extra_queue_ns`` delays every kernel start."""
    builder = TraceBuilder()
    builder.begin_iteration(0.0)
    op = builder.begin_operator("aten::op", 0.0)
    for call_ts, start, duration in schedule:
        builder.launch_kernel(call_ts, 0.5, "k", start + extra_queue_ns,
                              duration)
    last_cpu = schedule[-1][0] + 2.0
    builder.end_operator(op, last_cpu)
    end = (max(last_cpu, max(s + d for _, s, d in schedule))
           + extra_queue_ns + 1.0)
    builder.end_iteration(end)
    return builder.finish()


@given(schedule=launch_schedules(), delay=st.floats(0.0, 1e6))
@settings(max_examples=100, deadline=None)
def test_tklqt_nonnegative_and_monotone_in_queuing_delay(schedule, delay):
    """Eq. 2: TKLQT >= 0, and extra queuing can only grow it."""
    baseline = compute_metrics(build_trace(schedule))
    delayed = compute_metrics(build_trace(schedule, extra_queue_ns=delay))
    assert baseline.tklqt_ns >= 0
    assert delayed.tklqt_ns >= baseline.tklqt_ns - 1e-6
    # The delay adds exactly len(schedule) * delay of queuing.
    assert delayed.tklqt_ns == pytest.approx(
        baseline.tklqt_ns + len(schedule) * delay, rel=1e-9, abs=1e-6)


@given(schedule=launch_schedules())
@settings(max_examples=100, deadline=None)
def test_latency_decomposition_identities(schedule):
    """Eq. 4/5: busy + idle sums reproduce the inference latency, per PU."""
    metrics = compute_metrics(build_trace(schedule))
    il = metrics.inference_latency_ns
    assert metrics.gpu_busy_ns + metrics.gpu_idle_ns == pytest.approx(il)
    if il >= metrics.cpu_busy_ns:
        assert metrics.cpu_busy_ns + metrics.cpu_idle_ns == pytest.approx(il)
    else:
        # The CPU tail ran past the last kernel: IL (kernel-anchored, Eq. 4)
        # is shorter than CPU busy and idle clamps to zero.
        assert metrics.cpu_idle_ns == 0.0


@given(schedule=launch_schedules())
@settings(max_examples=100, deadline=None)
def test_gpu_idle_nonnegative(schedule):
    """Eq. 5: an in-order stream can never be idle a negative time."""
    metrics = compute_metrics(build_trace(schedule))
    assert metrics.gpu_idle_ns >= -1e-9


@given(schedule=launch_schedules(), data=st.data())
@settings(max_examples=50, deadline=None)
def test_metrics_invariant_under_event_reordering(schedule, data):
    """AKD (Eq. 3) and friends depend on event *times*, not storage order."""
    original = build_trace(schedule)
    events = original.all_events()
    shuffled = Trace(metadata=dict(original.metadata))
    for event in data.draw(st.permutations(events)):
        shuffled.add(event)
    for mark in original.iterations:
        shuffled.mark_iteration(mark.ts, mark.ts_end)
    shuffled.sort()

    before = compute_metrics(original)
    after = compute_metrics(shuffled)
    assert after.akd_ns == pytest.approx(before.akd_ns)
    assert after.tklqt_ns == pytest.approx(before.tklqt_ns)
    assert after.inference_latency_ns == pytest.approx(
        before.inference_latency_ns)
    assert after.kernel_launches == before.kernel_launches


@given(segments=st.lists(
    st.lists(st.sampled_from(string.ascii_lowercase[:6]), min_size=1,
             max_size=30),
    min_size=1, max_size=5),
    length=st.integers(2, 4))
@settings(max_examples=200, deadline=None)
def test_proximity_score_bounded(segments, length):
    """Eq. 6: PS(C) = f(C) / f(k_i) always lands in (0, 1]."""
    result = mine_chains(segments, length)
    for chain in result.chains:
        assert chain.frequency >= 1
        assert chain.frequency <= chain.anchor_frequency
        assert 0.0 < chain.proximity_score <= 1.0


@given(observations=st.lists(
    st.tuples(st.floats(-1e9, 1e9), st.floats(0.1, 100.0)),
    min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_histogram_percentiles_ordered_and_bounded(observations):
    """Weighted nearest-rank percentiles are monotone and within range."""
    histogram = Histogram("h")
    for value, weight in observations:
        histogram.observe(value, weight)
    summary = histogram.summary()
    assert summary.minimum <= summary.p50 <= summary.p90 <= summary.p99
    assert summary.p99 <= summary.maximum
    # The weighted mean carries one rounding step the extrema do not.
    slack = 1e-9 * max(1.0, abs(summary.minimum), abs(summary.maximum))
    assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
