"""Property-based tests for the GPU stream and fusion application."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import FusionPlan, GpuStream, apply_fusion_plan
from repro.engine.lowering import KernelTask


@given(jobs=st.lists(st.tuples(st.floats(0, 1e6), st.floats(0, 1e5)),
                     min_size=1, max_size=60),
       gap=st.floats(0, 1000))
@settings(max_examples=150, deadline=None)
def test_stream_invariants(jobs, gap):
    stream = GpuStream()
    previous_end = 0.0
    total = 0.0
    for arrival, duration in jobs:
        start, end = stream.submit(arrival, duration, gap_ns=gap)
        assert start >= arrival          # never starts before arrival
        assert start >= previous_end     # in-order execution
        assert end == start + duration
        previous_end = end
        total += duration
    assert stream.busy_ns == total
    assert stream.kernel_count == len(jobs)
    assert stream.start_times == sorted(stream.start_times)


@given(names=st.lists(st.sampled_from("abcd"), min_size=0, max_size=40),
       chain=st.lists(st.sampled_from("abcd"), min_size=2, max_size=4))
@settings(max_examples=150, deadline=None)
def test_fusion_application_conserves_work(names, chain):
    stream = [KernelTask(n, flops=1.0, bytes_read=2.0, bytes_written=3.0)
              for n in names]
    plan = FusionPlan(chains=(tuple(chain),))
    fused = apply_fusion_plan(stream, plan)
    assert sum(k.flops for k in fused) == sum(k.flops for k in stream)
    assert sum(k.bytes_moved for k in fused) == sum(
        k.bytes_moved for k in stream)
    assert len(fused) <= len(stream)
    # Unfused kernels preserve relative order.
    original_unfused = [k.name for k in stream]
    reconstructed = []
    for kernel in fused:
        if kernel.members:
            reconstructed.extend(m.name for m in kernel.members)
        else:
            reconstructed.append(kernel.name)
    assert reconstructed == original_unfused
