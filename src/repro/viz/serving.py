"""ASCII timeline rendering for recorded serving runs.

The trace-level :func:`repro.viz.render_timeline` shows individual kernels;
serving runs span seconds, so this renderer works at step granularity
instead: one lane per step kind (prefill, decode, ...) plus occupancy
profiles for active requests and the admission queue, sampled per column.
Multi-replica runs get one lane per (replica, kind) pair so each engine's
schedule is visible side by side.
"""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.obs.events import StepKind
from repro.obs.recorder import RunRecorder
from repro.units import format_ns
from repro.viz.timeline import TimelineOptions, _paint

#: Lane characters per step kind (legend order).
_KIND_CHARS = {
    StepKind.PREFILL: "P",
    StepKind.PREFILL_CHUNK: "c",
    StepKind.DECODE: "d",
    StepKind.GENERATION: "g",
    StepKind.DRAFT: "r",
    StepKind.VERIFY: "v",
    StepKind.RETRIEVAL: "R",
    StepKind.ENGINE: "e",
    StepKind.SWAP_OUT: "o",
    StepKind.SWAP_IN: "i",
}


def _profile_chars(samples: list[int]) -> str:
    """Render per-column integer occupancy as digits ('+' above 9)."""
    return "".join("." if s <= 0 else str(s) if s <= 9 else "+"
                   for s in samples)


def render_serving_timeline(
    recorder: RunRecorder,
    options: TimelineOptions = TimelineOptions(),
) -> str:
    """Render a recorded serving run as step lanes plus occupancy profiles.

    Lanes (top to bottom): one per step kind present in the run, painted
    with the kind's legend character; ``active`` — requests admitted but not
    completed per column; ``queue`` — the max recorded admission-queue depth
    of the steps overlapping each column. Runs recorded across several
    replicas render one lane per (replica, kind), labeled ``r<N> <kind>``.
    """
    if not recorder.steps:
        raise AnalysisError("recorded run has no steps to render")
    span_begin = min(s.ts_ns for s in recorder.steps)
    span_end = max(s.ts_end_ns for s in recorder.steps)
    begin = options.begin_ns if options.begin_ns is not None else span_begin
    end = options.end_ns if options.end_ns is not None else span_end
    if end <= begin:
        raise AnalysisError("window end must exceed begin")
    width = options.width
    scale = width / (end - begin)
    column_ns = (end - begin) / width

    replicas = sorted({s.replica for s in recorder.steps})
    multi = len(replicas) > 1
    kinds = [kind for kind in _KIND_CHARS
             if any(s.kind is kind for s in recorder.steps)]

    def lane_key(step) -> tuple[int, StepKind]:
        return (step.replica if multi else 0, step.kind)

    def lane_label(replica: int, kind: StepKind) -> str:
        return f"r{replica} {kind.value}" if multi else kind.value

    lane_order = [(replica, kind)
                  for replica in (replicas if multi else [0])
                  for kind in kinds
                  if any(s.kind is kind and lane_key(s) == (replica, kind)
                         for s in recorder.steps)]
    lanes = {key: ["."] * width for key in lane_order}
    queue = [0] * width
    for step in recorder.steps:
        if step.ts_end_ns < begin or step.ts_ns > end:
            continue
        _paint(lanes[lane_key(step)], step.ts_ns, step.ts_end_ns, begin,
               scale, _KIND_CHARS[step.kind], width)
        first = max(0, min(width - 1, int((step.ts_ns - begin) * scale)))
        last = max(first, min(width - 1, int((step.ts_end_ns - begin) * scale)))
        for col in range(first, last + 1):
            queue[col] = max(queue[col], step.queue_depth)

    active = [0] * width
    for span in recorder.spans.values():
        if span.admitted_ns is None:
            continue
        left = span.admitted_ns
        right = span.completed_ns if span.completed_ns is not None else end
        for col in range(width):
            col_begin = begin + col * column_ns
            if left < col_begin + column_ns and right > col_begin:
                active[col] += 1

    label_width = max(len("host cpu") if recorder.host_grants
                      else len("active"),
                      *(len(lane_label(replica, kind))
                        for replica, kind in lane_order))
    lines = [f"serving timeline {format_ns(begin)} .. {format_ns(end)} "
             f"({format_ns(end - begin)} window)"]
    for replica, kind in lane_order:
        lines.append(f"{lane_label(replica, kind):<{label_width}} "
                     + "".join(lanes[(replica, kind)]))
    lines.append(f"{'active':<{label_width}} " + _profile_chars(active))
    lines.append(f"{'queue':<{label_width}} " + _profile_chars(queue))
    if recorder.host_grants:
        # Host-contention runs: busy host cores per column, so dispatch-CPU
        # saturation is visible alongside the step lanes it throttles.
        busy_cores: list[set[int]] = [set() for _ in range(width)]
        for grant in recorder.host_grants:
            if grant["end_ns"] < begin or grant["start_ns"] > end:
                continue
            first = max(0, min(width - 1,
                               int((grant["start_ns"] - begin) * scale)))
            last = max(first, min(width - 1,
                                  int((grant["end_ns"] - begin) * scale)))
            for col in range(first, last + 1):
                busy_cores[col].add(int(grant["core"]))
        lines.append(f"{'host cpu':<{label_width}} "
                     + _profile_chars([len(cores) for cores in busy_cores]))
    legend = "   ".join(f"{char} {kind.value}"
                        for kind, char in _KIND_CHARS.items()
                        if kind in kinds)
    lines.append(f"legend: {legend}   digits: occupancy   . idle")
    return "\n".join(lines)
