"""Recording the agentic-pipeline and speculative-decoding layers.

Both run on a compounding clock rather than an arrival stream; the recorded
step timeline must account for exactly the latency the layer reports, and a
multi-model recording must export through the name -> config mapping path.
"""

import pytest

from repro.hardware import INTEL_H100
from repro.obs import RunRecorder, StepKind, recording_to_trace
from repro.serving import (
    AgenticPipeline,
    LatencyModel,
    PipelineStage,
    SpeculativeConfig,
    speculative_generation_ns,
)
from repro.skip import compute_metrics
from repro.workloads import GPT2, LLAMA_3_2_1B


@pytest.fixture(scope="module")
def latency():
    return LatencyModel(INTEL_H100)


def test_pipeline_steps_account_for_total_latency(latency):
    pipeline = AgenticPipeline([
        PipelineStage("planner", LLAMA_3_2_1B, prompt_len=128,
                      output_tokens=16),
        PipelineStage("worker", GPT2, prompt_len=64, output_tokens=16),
    ], latency)
    recorder = RunRecorder()
    result = pipeline.run(batch_size=2, recorder=recorder)
    assert sum(s.dur_ns for s in recorder.steps) == pytest.approx(
        result.total_ns)
    prefills = [s for s in recorder.steps if s.kind is StepKind.PREFILL]
    assert [p.shape.model for p in prefills] == ["llama-3.2-1b", "gpt2"]
    assert all(s.batch_size == 2 for s in recorder.steps)


def test_speculative_steps_account_for_reported_latency(latency):
    recorder = RunRecorder()
    result = speculative_generation_ns(
        LLAMA_3_2_1B, GPT2, latency,
        SpeculativeConfig(draft_tokens=4, acceptance_rate=0.7),
        prompt_len=128, output_tokens=24, recorder=recorder)
    assert sum(s.dur_ns for s in recorder.steps) == pytest.approx(
        result.speculative_ns)
    kinds = {s.kind for s in recorder.steps}
    assert StepKind.DRAFT in kinds and StepKind.VERIFY in kinds
    drafts = [s for s in recorder.steps
              if s.kind is StepKind.DRAFT and s.shape is not None]
    assert all(s.shape.model == "gpt2" for s in drafts)


def test_multi_model_recording_exports_via_mapping(latency):
    recorder = RunRecorder()
    speculative_generation_ns(
        LLAMA_3_2_1B, GPT2, latency,
        SpeculativeConfig(draft_tokens=4, acceptance_rate=0.7),
        prompt_len=64, output_tokens=8, recorder=recorder)
    trace = recording_to_trace(
        recorder, latency,
        {"llama-3.2-1b": LLAMA_3_2_1B, "gpt2": GPT2})
    assert len(trace.iterations) == len(recorder.steps)
    assert trace.metadata["models"] == ["gpt2", "llama-3.2-1b"]
    assert compute_metrics(trace).kernel_launches > 0
