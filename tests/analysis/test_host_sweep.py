"""Replicas-per-host sweep: the paper platforms knee at different counts."""

import pytest

from repro.analysis import (
    DEFAULT_REPLICA_COUNTS,
    ReplicasPerHostResult,
    replicas_per_host_report,
    run_replicas_per_host,
    scaled_host_spec,
)
from repro.errors import AnalysisError
from repro.hardware import HOST_SPECS, PAPER_PLATFORMS, get_platform
from repro.workloads import GPT2


@pytest.fixture(scope="module")
def sweep():
    return run_replicas_per_host(GPT2, PAPER_PLATFORMS)


def test_scaled_spec_shrinks_cores_but_keeps_topology():
    spec = HOST_SPECS["AMD+A100"]
    small = scaled_host_spec(spec, 16)
    assert small.cores_per_socket == 1
    assert (small.sockets, small.remote_penalty) == (2, 1.3)
    assert scaled_host_spec(spec, 10_000).cores_per_socket == 1
    with pytest.raises(AnalysisError):
        scaled_host_spec(spec, 0)


def test_sweep_validates_inputs():
    amd = [get_platform("AMD+A100")]
    with pytest.raises(AnalysisError):
        run_replicas_per_host(GPT2, [])
    with pytest.raises(AnalysisError):
        run_replicas_per_host(GPT2, amd, counts=())
    with pytest.raises(AnalysisError):
        run_replicas_per_host(GPT2, amd, counts=(2, 2, 4))
    with pytest.raises(AnalysisError):
        run_replicas_per_host(GPT2, amd, counts=(0, 1))


def test_sweep_covers_every_cell(sweep):
    assert sweep.counts == DEFAULT_REPLICA_COUNTS
    assert sweep.platforms() == [p.name for p in PAPER_PLATFORMS]
    for platform in sweep.platforms():
        series = sweep.series(platform)
        assert [p.replicas for p in series] == list(DEFAULT_REPLICA_COUNTS)
        assert all(p.tokens_per_s > 0 for p in series)
        assert all(p.grants > 0 for p in series)
        assert all(0.0 <= p.stall_share < 1.0 for p in series)
    with pytest.raises(AnalysisError):
        sweep.point("AMD+A100", 99)


def test_knees_are_locked_per_platform(sweep):
    # The acceptance anchor: the three platforms knee at *different*
    # replica counts because their hosts differ in kind — fixed-socket
    # x86 pools saturate, the GH200 superchip brings a Grace per GPU.
    assert sweep.knees == {"AMD+A100": 2, "Intel+H100": 6, "GH200": 8}


def test_gh200_sustains_the_most_replicas(sweep):
    gh200 = sweep.knees["GH200"]
    assert gh200 == max(sweep.knees.values())
    assert all(gh200 > knee for name, knee in sweep.knees.items()
               if name != "GH200")
    # And it never saturates inside the sweep: the knee is the last count.
    assert gh200 == DEFAULT_REPLICA_COUNTS[-1]


def test_x86_hosts_pay_stalls_past_their_knee(sweep):
    for platform in ("AMD+A100", "Intel+H100"):
        knee = sweep.knees[platform]
        past = [p for p in sweep.series(platform) if p.replicas > knee]
        assert past, f"{platform} knee leaves no post-knee cells"
        assert all(p.stall_ns > 0 for p in past)


def test_report_names_knees_and_winner(sweep):
    report = replicas_per_host_report(sweep)
    assert "knee: 2 replicas" in report
    assert "knee: 6 replicas" in report
    assert "GH200 sustains the most replicas per host" in report
    for platform in sweep.platforms():
        assert platform in report
