"""Structured events recorded by the observability layer.

Two event families cover everything the serving and engine layers do:

* :class:`RequestSpan` — one request's lifecycle: arrival, admission into a
  batch, first token, completion (all absolute nanoseconds on the serving
  clock).
* :class:`StepEvent` — one engine invocation (prefill batch, decode step,
  speculative draft/verify round, static-batch generation tail). Steps that
  were priced through the engine carry an :class:`EngineShape`, which lets
  the trace exporter replay the exact engine run that produced the step's
  latency — the substrate of self-hosted SKIP analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AnalysisError


class StepKind(enum.Enum):
    """What one recorded engine invocation did."""

    PREFILL = "prefill"
    PREFILL_CHUNK = "prefill_chunk"  # token-budget slice of a larger prefill
    DECODE = "decode"
    GENERATION = "generation"   # static batching's closed-form decode tail
    DRAFT = "draft"             # speculative: draft-model decode steps
    VERIFY = "verify"           # speculative: target-model verification pass
    RETRIEVAL = "retrieval"     # RAG: vector-index lookup before generation
    ENGINE = "engine"           # one raw engine iteration (executor hook)
    SWAP_OUT = "swap_out"       # kv offload: blocks to host over the link
    SWAP_IN = "swap_in"         # kv offload: blocks back to the device


@dataclass(frozen=True)
class EngineShape:
    """The (model, shape) key of the memoized engine run behind a step.

    Mirrors the arguments of :func:`repro.engine.executor.run`; the exporter
    replays this shape through the same :class:`LatencyModel` to recover the
    step's full kernel-level trace.
    """

    model: str
    batch_size: int
    seq_len: int
    phase: str = "prefill"
    context_len: int | None = None

    def __post_init__(self) -> None:
        if self.batch_size <= 0 or self.seq_len <= 0:
            raise AnalysisError("engine shape dimensions must be positive")


@dataclass(frozen=True)
class StepEvent:
    """One engine invocation on the serving timeline.

    Attributes:
        index: Monotonic step number within the run.
        kind: What the step did.
        ts_ns: Step begin on the serving clock.
        dur_ns: Step duration.
        batch_size: Sequences processed by the step.
        queue_depth: Requests arrived but not yet admitted at step begin.
        shape: Engine shape that priced the step (None for closed-form steps).
        replica: Engine replica that executed the step (multi-replica runs).
    """

    index: int
    kind: StepKind
    ts_ns: float
    dur_ns: float
    batch_size: int
    queue_depth: int = 0
    shape: EngineShape | None = None
    replica: int = 0

    def __post_init__(self) -> None:
        if self.dur_ns < 0:
            raise AnalysisError(f"step {self.index} has negative duration")
        if self.batch_size <= 0:
            raise AnalysisError(f"step {self.index} has no sequences")
        if self.queue_depth < 0:
            raise AnalysisError(f"step {self.index} has negative queue depth")
        if self.replica < 0:
            raise AnalysisError(f"step {self.index} has negative replica")

    @property
    def ts_end_ns(self) -> float:
        return self.ts_ns + self.dur_ns


@dataclass
class RequestSpan:
    """One request's recorded lifecycle (absolute serving-clock times)."""

    request_id: int
    arrival_ns: float
    admitted_ns: float | None = None
    first_token_ns: float | None = None
    completed_ns: float | None = None

    @property
    def queue_ns(self) -> float:
        """Time spent waiting before admission."""
        if self.admitted_ns is None:
            raise AnalysisError(f"request {self.request_id} was never admitted")
        return self.admitted_ns - self.arrival_ns

    @property
    def complete(self) -> bool:
        return self.completed_ns is not None
