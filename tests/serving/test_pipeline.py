"""Agentic pipeline latency composition."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import GH200, INTEL_H100
from repro.serving import AgenticPipeline, LatencyModel, PipelineStage
from repro.workloads import GPT2, LLAMA_3_2_1B


@pytest.fixture(scope="module")
def two_stage_intel():
    latency = LatencyModel(INTEL_H100)
    return AgenticPipeline([
        PipelineStage("planner", LLAMA_3_2_1B, prompt_len=256, output_tokens=32),
        PipelineStage("worker", GPT2, prompt_len=128, output_tokens=32),
    ], latency)


def test_total_is_sum_of_stages(two_stage_intel):
    result = two_stage_intel.run()
    assert result.total_ns == pytest.approx(
        sum(s.total_ns for s in result.stages))
    assert len(result.stages) == 2


def test_output_chaining_extends_downstream_prompt(two_stage_intel):
    result = two_stage_intel.run()
    worker = result.stages[1]
    assert worker.prompt_len == 128 + 32  # upstream output appended


def test_chaining_can_be_disabled():
    latency = LatencyModel(INTEL_H100)
    pipeline = AgenticPipeline([
        PipelineStage("a", GPT2, 128, 16),
        PipelineStage("b", GPT2, 128, 16, consumes_upstream=False),
    ], latency)
    result = pipeline.run()
    assert result.stages[1].prompt_len == 128


def test_latency_compounds_with_batching(two_stage_intel):
    """The paper's agentic argument: batching delay accumulates per stage."""
    bs1 = two_stage_intel.run(batch_size=1)
    bs16 = two_stage_intel.run(batch_size=16)
    assert bs16.total_ns > bs1.total_ns
    assert all(b16.total_ns >= b1.total_ns for b1, b16
               in zip(bs1.stages, bs16.stages))


def test_slowest_stage(two_stage_intel):
    result = two_stage_intel.run()
    assert result.slowest_stage().total_ns == max(
        s.total_ns for s in result.stages)


def test_low_batch_chain_is_faster_on_lc_than_cc():
    """Per-paper: latency-sensitive, low-batch chains favor the LC system's
    stronger CPU."""
    stages = [PipelineStage("a", GPT2, 128, 8),
              PipelineStage("b", GPT2, 128, 8)]
    intel = AgenticPipeline(stages, LatencyModel(INTEL_H100)).run(1)
    gh200 = AgenticPipeline(stages, LatencyModel(GH200)).run(1)
    assert intel.total_ns < gh200.total_ns


def test_validation():
    latency = LatencyModel(INTEL_H100)
    with pytest.raises(ConfigurationError):
        AgenticPipeline([], latency)
    with pytest.raises(ConfigurationError):
        PipelineStage("x", GPT2, 0, 8)
    pipeline = AgenticPipeline([PipelineStage("a", GPT2, 64, 8)], latency)
    with pytest.raises(ConfigurationError):
        pipeline.run(batch_size=0)


def test_ttft_sum(two_stage_intel):
    result = two_stage_intel.run()
    assert result.total_ttft_ns == pytest.approx(
        sum(s.ttft_ns for s in result.stages))
    assert result.total_ttft_ns < result.total_ns
