"""Replicas-per-host sweeps: where the dispatch-CPU launch tax knees.

Section III's launch-bound regime, measured at the host: every engine step
burns dispatch CPU (``launch_call_cpu_ns`` per kernel), and on a finite
host that CPU is shared by every replica plus the cluster router. Packing
more replicas onto one host scales tokens/s linearly only until the core
pool saturates; past that knee each added replica mostly waits for a core.

The sweep serves the *same* throughput-bound stream at increasing replica
counts per platform, with each platform's cataloged host topology scaled
down (cores divided, NUMA layout preserved) so the knee lands inside a
small sweep. The platforms knee differently because their hosts differ in
kind, not just size: the x86 hosts (AMD+A100, Intel+H100) share a fixed
two-socket core budget across all replicas, while GH200 is a superchip —
each added GPU brings its own 72-core Grace along, so the per-host CPU
budget scales *with* the replica count and the knee never arrives.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import AnalysisError
from repro.hardware.host import HostSpec, host_for
from repro.hardware.platform import Platform
from repro.host.model import HostConfig, HostModel
from repro.serving.cluster import RouterPolicy, simulate_cluster
from repro.serving.continuous import ContinuousBatchPolicy
from repro.serving.latency import LatencyModel
from repro.serving.requests import poisson_requests
from repro.workloads.config import ModelConfig

#: Replica counts a sweep tries by default.
DEFAULT_REPLICA_COUNTS: tuple[int, ...] = (1, 2, 3, 4, 6, 8)

#: Default host shrink factor: cores divided by this, topology preserved.
DEFAULT_HOST_SCALE: int = 16

#: A replica "still pays off" while it adds at least this fraction of the
#: single-replica throughput; the knee is the last count that does.
DEFAULT_KNEE_FRACTION: float = 0.5


def scaled_host_spec(spec: HostSpec, scale: int) -> HostSpec:
    """``spec`` with per-socket cores divided by ``scale`` (floor, min 1).

    Shrinking the pool instead of inflating the workload keeps sweep cells
    cheap while preserving what distinguishes the hosts: socket count,
    remote penalty, and whether CPU scales with the GPUs.
    """
    if scale < 1:
        raise AnalysisError("host scale must be at least 1")
    return dataclasses.replace(
        spec, cores_per_socket=max(1, spec.cores_per_socket // scale))


@dataclass(frozen=True)
class HostSweepPoint:
    """One (platform, replica count) serving cell."""

    platform: str
    replicas: int
    tokens_per_s: float
    marginal_tokens_per_s: float
    cores: int
    grants: int
    remote_grants: int
    stall_ns: float
    busy_ns: float

    @property
    def stall_share(self) -> float:
        """Core-wait time as a fraction of booked core time."""
        total = self.stall_ns + self.busy_ns
        return self.stall_ns / total if total > 0 else 0.0


@dataclass
class ReplicasPerHostResult:
    """All cells of one replicas-per-host sweep, plus per-platform knees."""

    model: str
    counts: tuple[int, ...]
    scale: int
    knee_fraction: float
    points: list[HostSweepPoint] = field(default_factory=list)
    knees: dict[str, int] = field(default_factory=dict)

    def series(self, platform: str) -> list[HostSweepPoint]:
        return [p for p in self.points if p.platform == platform]

    def point(self, platform: str, replicas: int) -> HostSweepPoint:
        for candidate in self.points:
            if (candidate.platform == platform
                    and candidate.replicas == replicas):
                return candidate
        raise AnalysisError(
            f"no sweep cell for {platform} at {replicas} replicas")

    def platforms(self) -> list[str]:
        seen: list[str] = []
        for point in self.points:
            if point.platform not in seen:
                seen.append(point.platform)
        return seen


def _find_knee(counts: Sequence[int], tokens: Sequence[float],
               knee_fraction: float) -> int:
    """Last replica count whose marginal gain still clears the bar.

    The bar is ``knee_fraction`` times the single-replica throughput,
    per added replica. A series that never collapses knees at the last
    swept count (the host sustained everything it was offered).
    """
    knee = counts[0]
    per_replica = tokens[0] / counts[0] if counts[0] else 0.0
    for prev_i, count in enumerate(counts[1:]):
        added = count - counts[prev_i]
        marginal = (tokens[prev_i + 1] - tokens[prev_i]) / added
        if marginal < knee_fraction * per_replica:
            break
        knee = count
    return knee


def run_replicas_per_host(
    model: ModelConfig,
    platforms: Sequence[Platform],
    counts: Sequence[int] = DEFAULT_REPLICA_COUNTS,
    scale: int = DEFAULT_HOST_SCALE,
    knee_fraction: float = DEFAULT_KNEE_FRACTION,
    prompt_len: int = 64,
    output_tokens: int = 16,
    requests_count: int = 40,
    seed: int = 11,
    max_active: int = 4,
) -> ReplicasPerHostResult:
    """Serve one throughput-bound stream per (platform, replica count) cell.

    Every cell replays the same burst of ``requests_count`` requests, so
    tokens/s is a makespan measure: with ample CPU it scales near-linearly
    in the replica count, and the knee is where the platform's (scaled)
    host runs out of cores for the dispatch work.

    Raises:
        AnalysisError: on an empty platform or count list, or counts not
            strictly increasing from a positive start.
    """
    if not platforms:
        raise AnalysisError("at least one platform is required")
    if not counts:
        raise AnalysisError("at least one replica count is required")
    if counts[0] <= 0 or any(b <= a for a, b in zip(counts, counts[1:])):
        raise AnalysisError("replica counts must be strictly increasing "
                            "and positive")
    # A burst far faster than service, so every cell is throughput-bound
    # (rate-limited cells would hide the knee: adding replicas would not
    # raise tokens/s even with infinite CPU).
    requests = poisson_requests(
        rate_per_s=requests_count * 1e3, duration_s=requests_count * 1e-3,
        prompt_len=prompt_len, output_tokens=output_tokens, seed=seed)
    if not requests:
        raise AnalysisError("arrival stream is empty; raise requests_count")
    policy = ContinuousBatchPolicy(max_active=max_active)
    result = ReplicasPerHostResult(
        model=model.name, counts=tuple(counts), scale=scale,
        knee_fraction=knee_fraction)

    for platform in platforms:
        latency = LatencyModel(platform=platform)
        spec = scaled_host_spec(host_for(platform), scale)
        tokens: list[float] = []
        for replicas in counts:
            host = HostModel(spec, replicas, config=HostConfig())
            run = simulate_cluster(
                requests, model, latency, policy=policy,
                router=RouterPolicy.ROUND_ROBIN, replicas=replicas,
                host=host)
            assert run.host is not None
            throughput = run.report.throughput_tokens_per_s()
            previous = tokens[-1] if tokens else 0.0
            tokens.append(throughput)
            result.points.append(HostSweepPoint(
                platform=platform.name,
                replicas=replicas,
                tokens_per_s=throughput,
                marginal_tokens_per_s=throughput - previous,
                cores=run.host.cores,
                grants=run.host.grants,
                remote_grants=run.host.remote_grants,
                stall_ns=run.host.stall_ns,
                busy_ns=run.host.busy_ns,
            ))
        result.knees[platform.name] = _find_knee(list(counts), tokens,
                                                 knee_fraction)
    return result


def replicas_per_host_report(result: ReplicasPerHostResult) -> str:
    """Render a replicas-per-host sweep as a per-platform text table."""
    header = (f"{result.model}: tokens/s vs replicas per host "
              f"(host cores / {result.scale}, knee at marginal < "
              f"{result.knee_fraction:g}x single-replica)")
    lines = [header, "-" * len(header)]
    for platform in result.platforms():
        knee = result.knees[platform]
        lines.append(f"{platform}  (knee: {knee} replicas)")
        for point in result.series(platform):
            marker = " <- knee" if point.replicas == knee else ""
            lines.append(
                f"  {point.replicas:>2} replicas x {point.cores:>2} cores  "
                f"{point.tokens_per_s:>8.1f} tok/s  "
                f"({point.marginal_tokens_per_s:+.1f})  "
                f"stall {point.stall_share:>5.1%}  "
                f"remote {point.remote_grants}{marker}")
    ranked = sorted(result.knees.items(), key=lambda kv: (-kv[1], kv[0]))
    if len(ranked) > 1:
        best, runner = ranked[0], ranked[1]
        if best[1] > runner[1]:
            lines.append(
                f"{best[0]} sustains the most replicas per host "
                f"({best[1]} vs {runner[1]} on {runner[0]}): each GPU "
                f"brings its own CPU domain, so the dispatch pool scales "
                f"with the replica count instead of saturating")
    return "\n".join(lines)
