"""Token-budget step planner: chunked prefill and hybrid batch composition.

Sarathi-serve's observation (ROADMAP open item 1): a serving loop that runs
*whole* prefills stalls every in-flight decode whenever a long prompt
arrives — the scheduling tax that dominates tail time-between-tokens under
mixed long-prompt traffic. The fix is a token budget: each engine step may
process at most ``max_num_batched_tokens`` tokens, decodes take priority
(one token per running sequence), and the remaining budget is filled with
prompt *chunks*; a prompt larger than the leftover budget carries its
remainder as sequence state into the next step.

This module is the planning layer every serving policy consumes:

* :class:`PlannerConfig` — the budget knob. ``chunk_tokens == 0`` disables
  chunking entirely: plans degenerate to one whole-prompt chunk, policies
  perform exactly the float operations they performed before the planner
  existed, and the parity suites hold them to bit-identical outcomes.
* :class:`PromptChunk` / :class:`StepPlan` — what the planner emits. Chunks
  carry their ``(start, length, total)`` coordinates so the schedule
  checker (rule S007, :mod:`repro.check.schedule`) can statically verify
  that a chunked prefill never interleaves out of order with its own
  decodes.
* :class:`StepPlanner` — the planner itself: prompt-progress state for
  chunked admissions, decode-priority hybrid step composition, the shared
  FIFO batch-claim decision (previously hand-rolled in the speculative,
  pipeline, and RAG policies), and the marginal-prefill chunk cost model.

Chunk cost model: chunk ``i`` covering ``[start, start+length)`` costs
``ttft_ns(bs, start+length) - ttft_ns(bs, start)`` — the *marginal* prefill
cost of extending the processed prefix. The chunk costs of one prompt
telescope to (within float rounding) the unchunked ``ttft_ns(bs, total)``,
and a single whole-prompt chunk is the *identical* ``ttft_ns`` call the
unplanned policies made, which is what makes the ``chunk_tokens=0`` parity
lock possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.obs.events import StepKind
from repro.serving.requests import Request

if TYPE_CHECKING:
    from repro.serving.latency import LatencyModel
    from repro.serving.runtime import AdmissionQueue
    from repro.workloads.config import ModelConfig


@dataclass(frozen=True)
class PlannerConfig:
    """Step-planner knobs.

    Attributes:
        chunk_tokens: The per-step token budget (sarathi-serve's
            ``max_num_batched_tokens``). ``0`` disables chunking: prompts
            prefill whole, reproducing the pre-planner serving traces
            bit-identically.
    """

    chunk_tokens: int = 0

    def __post_init__(self) -> None:
        if self.chunk_tokens < 0:
            raise ConfigurationError(
                "chunk_tokens must be non-negative (0 disables chunking)")

    @property
    def enabled(self) -> bool:
        return self.chunk_tokens > 0

    @property
    def max_num_batched_tokens(self) -> int:
        """Alias for the budget under its sarathi-serve name."""
        return self.chunk_tokens


@dataclass(frozen=True)
class PromptChunk:
    """One planned slice of a prompt's prefill.

    ``request_id`` identifies the owning request (for batched prefills, the
    batch's seed request); ``start``/``length``/``total`` locate the slice
    in the prompt. A whole-prompt chunk (``start == 0 and length == total``)
    is indistinguishable from an unchunked prefill.
    """

    request_id: int
    start: int
    length: int
    total: int

    def __post_init__(self) -> None:
        if self.length <= 0 or self.total <= 0:
            raise ConfigurationError("chunk lengths must be positive")
        if self.start < 0 or self.start + self.length > self.total:
            raise ConfigurationError(
                f"chunk [{self.start}, {self.start + self.length}) falls "
                f"outside a {self.total}-token prompt")

    @property
    def is_first(self) -> bool:
        return self.start == 0

    @property
    def is_last(self) -> bool:
        return self.start + self.length == self.total

    @property
    def is_whole(self) -> bool:
        return self.is_first and self.is_last

    @property
    def kind(self) -> StepKind:
        """Whole chunks record as plain prefills (the legacy step kind)."""
        return (StepKind.PREFILL if self.is_whole
                else StepKind.PREFILL_CHUNK)

    @property
    def schedule_label(self) -> str | None:
        """Checkable kernel name for partial chunks (None = default name).

        The coordinates ride the per-device schedule so rule S007 can
        verify chunk contiguity and chunk/decode ordering statically.
        """
        if self.is_whole:
            return None
        return (f"serving::prefill_chunk[r{self.request_id}:"
                f"{self.start}+{self.length}/{self.total}]")


@dataclass
class PromptProgress:
    """A claimed request whose prompt is still being prefilled in chunks."""

    request: Request
    admitted_ns: float
    done: int = 0

    @property
    def remaining(self) -> int:
        return self.request.prompt_len - self.done


@dataclass(frozen=True)
class StepPlan:
    """One hybrid engine step: decode tokens plus prompt chunks."""

    decode_tokens: int
    chunks: tuple[PromptChunk, ...]

    @property
    def total_tokens(self) -> int:
        return self.decode_tokens + sum(c.length for c in self.chunks)


@dataclass(frozen=True)
class BatchDecision:
    """The FIFO batch-claim decision shared by the batched policies.

    Exactly one of three shapes: ``done`` (no unclaimed work remains),
    an empty ``batch`` with ``wake_at`` set (the oldest unclaimed request
    has not arrived yet — sleep until it does), or a non-empty ``batch``
    with ``seed_arrival`` set (serve it now).
    """

    batch: tuple[Request, ...] = ()
    seed_arrival: float = 0.0
    wake_at: float | None = None
    done: bool = False


def chunk_plan(request_id: int, prompt_len: int,
               budget: int) -> tuple[PromptChunk, ...]:
    """Split one prompt into budget-sized chunks (pure).

    ``budget <= 0`` means unbounded: one whole-prompt chunk. Chunk lengths
    always sum to exactly ``prompt_len`` and no chunk exceeds the budget.
    """
    if prompt_len <= 0:
        raise ConfigurationError("prompt_len must be positive")
    if budget <= 0:
        return (PromptChunk(request_id, 0, prompt_len, prompt_len),)
    chunks = []
    start = 0
    while start < prompt_len:
        length = min(budget, prompt_len - start)
        chunks.append(PromptChunk(request_id, start, length, prompt_len))
        start += length
    return tuple(chunks)


def decode_schedule_label(joined_ids: Sequence[int]) -> str | None:
    """Checkable decode-kernel name marking newly joined sequences.

    A sequence's *first* decode step after its final prompt chunk carries a
    ``+r<id>`` marker, which is what lets rule S007 place each request's
    decode phase relative to its chunk stream without tagging every decode
    with the whole batch. ``None`` keeps the default ``serving::decode``.
    """
    if not joined_ids:
        return None
    inner = ",".join(f"+r{rid}" for rid in joined_ids)
    return f"serving::decode[{inner}]"


class StepPlanner:
    """Decode-priority hybrid step planning over a token budget.

    The planner owns the chunked-admission state (claimed requests whose
    prompts are mid-prefill) and composes each engine step: every running
    sequence gets its decode token first, then the leftover budget fills
    with prompt chunks in FIFO admission order. Policies execute the plans;
    the planner never touches the clock, the session, or the recorder.
    """

    def __init__(self, config: PlannerConfig,
                 max_active: int | None = None) -> None:
        if (config.enabled and max_active is not None
                and config.chunk_tokens < max_active):
            raise ConfigurationError(
                f"chunk_tokens ({config.chunk_tokens}) must cover one decode "
                f"token per active sequence (max_active={max_active}); "
                f"raise the budget or lower max_active")
        self.config = config
        self.pending: list[PromptProgress] = []

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def pending_count(self) -> int:
        return len(self.pending)

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    # -- chunked admission ---------------------------------------------
    def admit(self, batch: Sequence[Request], now: float) -> None:
        """Queue claimed requests for chunked prefill (enabled mode only)."""
        if not self.enabled:
            raise SimulationError(
                "chunked admission requires chunk_tokens > 0; whole-prompt "
                "policies use prefill_plan instead")
        for request in batch:
            self.pending.append(PromptProgress(request=request,
                                               admitted_ns=now))

    def plan_step(self, decode_count: int) -> StepPlan:
        """Compose the next hybrid step and commit its chunk progress.

        ``decode_count`` running sequences consume one budget token each;
        the remainder fills with prompt chunks FIFO. The emitted step never
        exceeds ``max_num_batched_tokens`` — the budget-conservation
        property the hypothesis suite locks.
        """
        if decode_count < 0:
            raise SimulationError("decode_count must be non-negative")
        if not self.enabled:
            return StepPlan(decode_tokens=decode_count, chunks=())
        budget = self.config.chunk_tokens - decode_count
        if budget < 0:
            raise SimulationError(
                f"{decode_count} decode tokens exceed the "
                f"{self.config.chunk_tokens}-token step budget")
        chunks: list[PromptChunk] = []
        while self.pending and budget > 0:
            prompt = self.pending[0]
            length = min(prompt.remaining, budget)
            chunks.append(PromptChunk(prompt.request.request_id,
                                      prompt.done, length,
                                      prompt.request.prompt_len))
            prompt.done += length
            budget -= length
            if prompt.remaining == 0:
                self.pending.pop(0)
        return StepPlan(decode_tokens=decode_count, chunks=tuple(chunks))

    def progress_for(self, request_id: int) -> PromptProgress | None:
        """The in-flight prompt state for a request, if still chunking."""
        for prompt in self.pending:
            if prompt.request.request_id == request_id:
                return prompt
        return None

    # -- whole-batch prefill plans (batched policies) ------------------
    def prefill_plan(self, request_id: int,
                     prompt_len: int) -> tuple[PromptChunk, ...]:
        """The chunk sequence for one batch prefill of ``prompt_len``.

        Disabled mode returns a single whole-prompt chunk, so consuming
        policies execute exactly one step with exactly the legacy cost.
        """
        return chunk_plan(request_id, prompt_len, self.config.chunk_tokens)

    # -- costs ---------------------------------------------------------
    @staticmethod
    def chunk_cost_ns(latency: LatencyModel, model: ModelConfig,
                      batch_size: int, chunk: PromptChunk) -> float:
        """Marginal prefill cost of one chunk (see module docstring).

        A whole-prompt chunk is priced by the identical single
        ``ttft_ns`` call the pre-planner policies made — the bit-parity
        anchor for ``chunk_tokens=0``. Partial-chunk marginals floor at
        the platform's kernel-launch path cost: launch-bound
        configurations (notably pipeline-parallel engines, whose stage
        split re-balances per shape) can price a longer prefix *cheaper*
        than a shorter one, and a chunk step at minimum still dispatches
        one kernel.
        """
        end = latency.ttft_ns(model, batch_size, chunk.start + chunk.length)
        if chunk.is_first:
            return end
        floor = (latency.platform.launch_call_cpu_ns
                 + latency.platform.launch_latency_ns)
        return max(floor,
                   end - latency.ttft_ns(model, batch_size, chunk.start))

    @staticmethod
    def chunk_cpu_ns(latency: LatencyModel, model: ModelConfig,
                     batch_size: int, chunk: PromptChunk) -> float:
        """Marginal dispatch-CPU share of one chunk (host-contention runs).

        The CPU analog of :meth:`chunk_cost_ns`: a whole-prompt chunk
        books the prefill's full CPU busy time, a partial chunk the
        difference of the two prefix CPU times, floored at one launch
        call — a chunk step at minimum still dispatches one kernel.
        """
        end = latency.ttft_cpu_ns(model, batch_size,
                                  chunk.start + chunk.length)
        if chunk.is_first:
            return end
        return max(latency.platform.launch_call_cpu_ns,
                   end - latency.ttft_cpu_ns(model, batch_size, chunk.start))

    # -- shared FIFO claim decision ------------------------------------
    @staticmethod
    def next_fifo_batch(queue: AdmissionQueue, now: float, limit: int,
                        tag: Hashable = None) -> BatchDecision:
        """The oldest-first batch claim the batched policies all share.

        Replicates the seed-scan the speculative/pipeline/RAG processes
        each hand-rolled: peek the oldest unclaimed entry, sleep until it
        arrives if it is in the future, otherwise claim it plus everything
        else waiting (up to ``limit``). Performs the same queue calls in
        the same order, so refactored policies stay bit-identical.
        """
        seed = queue.first_unclaimed(tag)
        if seed is None:
            return BatchDecision(done=True)
        if seed.arrival_ns > now:
            return BatchDecision(wake_at=seed.arrival_ns)
        batch = queue.claim(now, limit, tag)
        return BatchDecision(batch=tuple(batch), seed_arrival=seed.arrival_ns)


@dataclass
class ChunkedSequenceState:
    """Bookkeeping a policy keeps per sequence it is decoding.

    Shared by the continuous and KV-aware policies (it is exactly their
    former private ``_Sequence`` dataclasses, hoisted next to the planner
    that now feeds them).
    """

    request: Request
    first_token_ns: float
    remaining: int
    context: int
    admitted_ns: float
    last_token_ns: float = 0.0


__all__ = [
    "BatchDecision",
    "ChunkedSequenceState",
    "PlannerConfig",
    "PromptChunk",
    "PromptProgress",
    "StepPlan",
    "StepPlanner",
    "chunk_plan",
    "decode_schedule_label",
]
