"""Execution modes (Fig. 2 of the paper).

From left to right in the paper's figure:

* ``EAGER`` — kernel-by-kernel offload, no fusion, no compile cost.
* ``FLASH_ATTENTION`` — domain-specific operator fusion: the attention core
  collapses into one FlashAttention-2 kernel; everything else stays eager.
* ``COMPILE_DEFAULT`` — torch.compile default: Inductor fuses elementwise
  chains into Triton kernels and removes Python dispatch, but kernels are
  still launched individually.
* ``COMPILE_REDUCE_OVERHEAD`` — adds CUDA-graph capture: the whole iteration
  becomes one ``cudaGraphLaunch``.
* ``COMPILE_MAX_AUTOTUNE`` — adds Triton GEMM autotuning on top, buying
  faster matmul kernels for a much larger compile time (Table I).
* ``PROXIMITY_FUSED`` — the paper's proposed proximity-score fusion applied
  as an actual execution mode (the paper leaves this to future work): the
  recommended deterministic kernel chains each launch once.
"""

from __future__ import annotations

import enum


class ExecutionMode(enum.Enum):
    EAGER = "eager"
    FLASH_ATTENTION = "flash_attention"
    COMPILE_DEFAULT = "compile_default"
    COMPILE_REDUCE_OVERHEAD = "compile_reduce_overhead"
    COMPILE_MAX_AUTOTUNE = "compile_max_autotune"
    PROXIMITY_FUSED = "proximity_fused"

    @property
    def uses_flash_attention(self) -> bool:
        """FlashAttention lowering of the attention core."""
        return self in (
            ExecutionMode.FLASH_ATTENTION,
            ExecutionMode.COMPILE_MAX_AUTOTUNE,
        )

    @property
    def is_compiled(self) -> bool:
        """Pays a compile cost before the first iteration."""
        return self in (
            ExecutionMode.COMPILE_DEFAULT,
            ExecutionMode.COMPILE_REDUCE_OVERHEAD,
            ExecutionMode.COMPILE_MAX_AUTOTUNE,
        )

    @property
    def fuses_elementwise(self) -> bool:
        """Inductor-style pointwise fusion is applied."""
        return self.is_compiled

    @property
    def uses_cuda_graph(self) -> bool:
        """The iteration executes as a single cudaGraphLaunch."""
        return self in (
            ExecutionMode.COMPILE_REDUCE_OVERHEAD,
            ExecutionMode.COMPILE_MAX_AUTOTUNE,
        )

    @property
    def gemm_duration_scale(self) -> float:
        """Relative GEMM kernel duration (autotuned kernels are faster)."""
        return 0.92 if self is ExecutionMode.COMPILE_MAX_AUTOTUNE else 1.0
