"""ASCII tables and series renderers used by the benchmark harness."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a simple aligned ASCII table."""
    if not headers:
        raise ConfigurationError("headers must be non-empty")
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError("row width does not match headers")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(label: str, xs: Sequence[object], ys: Sequence[float],
                  y_format: str = "{:.3f}") -> str:
    """Render an (x, y) series as one labeled row pair."""
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must align")
    x_cells = [_fmt(x) for x in xs]
    y_cells = [y_format.format(y) for y in ys]
    widths = [max(len(a), len(b)) for a, b in zip(x_cells, y_cells)]
    x_line = "  ".join(c.rjust(w) for c, w in zip(x_cells, widths))
    y_line = "  ".join(c.rjust(w) for c, w in zip(y_cells, widths))
    pad = max(len(label), len("value"))
    return f"{label.ljust(pad)}  {x_line}\n{'value'.ljust(pad)}  {y_line}"


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline for a quick shape check in terminal output."""
    if not values:
        raise ConfigurationError("values must be non-empty")
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    scale = (len(blocks) - 1) / (hi - lo)
    return "".join(blocks[int((v - lo) * scale)] for v in values)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
