"""Priority-aware ("intelligent") scheduling."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import GH200
from repro.serving import LatencyModel, StaticBatchPolicy, poisson_requests
from repro.serving.batcher import simulate_static_batching
from repro.serving.scheduler import (
    ClassifiedRequest,
    PriorityPolicy,
    RequestClass,
    simulate_priority_scheduling,
)
from repro.workloads import GPT2


@pytest.fixture(scope="module")
def latency():
    return LatencyModel(GH200)


@pytest.fixture(scope="module")
def classified_stream():
    # Moderate load: priority scheduling needs spare capacity to pay off —
    # under heavy overload every policy degenerates to max-throughput
    # batching.
    stream = poisson_requests(rate_per_s=20, duration_s=2.0, prompt_len=256,
                              output_tokens=4, seed=13)
    # Every 4th request is interactive; the rest are bulk.
    return [ClassifiedRequest(
        request=request,
        request_class=(RequestClass.INTERACTIVE if request.request_id % 4 == 0
                       else RequestClass.BULK))
        for request in stream]


def test_every_request_served(latency, classified_stream):
    report = simulate_priority_scheduling(classified_stream, GPT2, latency)
    served = {o.request.request_id for o in report.all_outcomes}
    assert served == {c.request.request_id for c in classified_stream}


def test_interactive_runs_small_bulk_runs_big(latency, classified_stream):
    policy = PriorityPolicy(interactive_batch=2, bulk_batch=16)
    report = simulate_priority_scheduling(classified_stream, GPT2, latency,
                                          policy)
    assert all(o.batch_size <= 2 for o in report.interactive.outcomes)
    assert report.bulk.mean_batch_size() > 4


def test_interactive_ttft_beats_bulk(latency, classified_stream):
    report = simulate_priority_scheduling(classified_stream, GPT2, latency)
    assert (report.interactive.mean_ttft_ns()
            < report.bulk.mean_ttft_ns())


def test_priority_beats_fifo_for_interactive(latency, classified_stream):
    """The paper's scheduling lever: on GH200 the two-class scheduler keeps
    interactive TTFT far below a single FIFO batch queue."""
    report = simulate_priority_scheduling(classified_stream, GPT2, latency)
    fifo = simulate_static_batching(
        [c.request for c in classified_stream], GPT2, latency,
        StaticBatchPolicy(max_batch_size=16, max_wait_ns=100e6))
    interactive_ids = {c.request.request_id for c in classified_stream
                       if c.request_class is RequestClass.INTERACTIVE}
    fifo_interactive = [o.ttft_ns for o in fifo.outcomes
                        if o.request.request_id in interactive_ids]
    fifo_mean = sum(fifo_interactive) / len(fifo_interactive)
    assert report.interactive.mean_ttft_ns() < fifo_mean


def test_bulk_starvation_guard(latency):
    # Constant interactive pressure; a handful of bulk requests must still
    # finish thanks to the max-wait guard.
    stream = poisson_requests(rate_per_s=100, duration_s=0.5, prompt_len=128,
                              output_tokens=4, seed=21)
    classified = [ClassifiedRequest(
        request=request,
        request_class=(RequestClass.BULK if request.request_id < 5
                       else RequestClass.INTERACTIVE))
        for request in stream]
    report = simulate_priority_scheduling(
        classified, GPT2, latency,
        PriorityPolicy(bulk_batch=64, bulk_max_wait_ns=50e6))
    assert len(report.bulk.outcomes) == 5


def test_validation(latency, classified_stream):
    with pytest.raises(ConfigurationError):
        simulate_priority_scheduling([], GPT2, latency)
    with pytest.raises(ConfigurationError):
        PriorityPolicy(interactive_batch=0)
    only_bulk = [ClassifiedRequest(c.request, RequestClass.BULK)
                 for c in classified_stream]
    with pytest.raises(ConfigurationError):
        simulate_priority_scheduling(only_bulk, GPT2, latency)


def test_bulk_completion_charges_own_output_length(latency):
    """Regression: bulk batches used to charge every member the batch's
    *max* output length, so a 2-token request in a batch with a 64-token
    straggler reported a 64-token completion. Per-request completions must
    use each request's own generation time."""
    from repro.serving import Request

    short, long = 2, 64
    classified = [
        ClassifiedRequest(
            request=Request(request_id=i, arrival_ns=0.0, prompt_len=128,
                            output_tokens=(long if i == 0 else short)),
            request_class=(RequestClass.INTERACTIVE if i == 3
                           else RequestClass.BULK))
        for i in range(4)
    ]
    report = simulate_priority_scheduling(classified, GPT2, latency)
    by_id = {o.request.request_id: o for o in report.bulk.outcomes}
    batch = by_id[0].batch_size
    assert batch == 3
    for outcome in by_id.values():
        expected = outcome.queue_ns + latency.generation_ns(
            GPT2, batch, 128, outcome.request.output_tokens)
        assert outcome.completion_ns == expected
    assert by_id[1].completion_ns < by_id[0].completion_ns


def test_bulk_completion_legacy_oracle_overcharges(latency):
    """The legacy loop deliberately preserves the overcharge (it is the
    parity oracle for the old behaviour): every bulk member completes at
    the batch max."""
    from repro.serving import Request
    from repro.serving.legacy import legacy_priority_scheduling

    classified = [
        ClassifiedRequest(
            request=Request(request_id=i, arrival_ns=0.0, prompt_len=128,
                            output_tokens=(64 if i == 0 else 2)),
            request_class=(RequestClass.INTERACTIVE if i == 3
                           else RequestClass.BULK))
        for i in range(4)
    ]
    legacy = legacy_priority_scheduling(classified, GPT2, latency)
    completions = {o.completion_ns for o in legacy.bulk.outcomes}
    assert len(completions) == 1  # all charged the straggler's length
