"""Shared benchmark utilities (imported by every bench module)."""

from __future__ import annotations

from repro.engine import EngineConfig

#: One engine iteration per point keeps figure-scale sweeps fast; the engine
#: is deterministic, so more iterations would not change the series.
BENCH_ENGINE = EngineConfig(iterations=1)

#: The paper's batch ladder for figure sweeps.
BATCH_LADDER = (1, 2, 4, 8, 16, 32, 64, 128)

#: Experiment tables queued for the end-of-session summary. pytest's
#: fd-level capture swallows prints made during tests; the conftest's
#: pytest_terminal_summary hook flushes this buffer through the terminal
#: reporter, so the regenerated tables land in the bench log.
REPORTS: list[str] = []


def report(text: str) -> None:
    """Queue experiment output for the end-of-session summary."""
    REPORTS.append(text)


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single timed round (sweeps are seconds-scale)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
