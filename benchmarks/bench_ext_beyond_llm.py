"""Extension — the paper's future-work workloads: DLRM and GCN.

Section VI plans to broaden the study "to include recommendation models
(RMs) and graph neural networks (GNNs)". This bench runs both through SKIP
on all three platforms: DLRM's tiny embedding gathers make it the most
launch-bound workload in the suite (staying CPU-bound to very large batch),
while GCN's bandwidth-heavy aggregation saturates the GPU almost
immediately — bracketing the Transformer results from both sides.
"""

from _harness import BENCH_ENGINE, report, run_once
from repro.engine import run
from repro.hardware import AMD_A100, GH200, INTEL_H100
from repro.skip import Boundedness, classify_metrics, compute_metrics
from repro.units import ns_to_ms
from repro.viz import render_table
from repro.workloads.gnn import GCN_MEDIUM, build_gcn_graph
from repro.workloads.recsys import DLRM_SMALL, build_dlrm_graph

PLATFORMS = (INTEL_H100, AMD_A100, GH200)
DLRM_BATCHES = (64, 512, 4096)


def _characterize():
    out = {}
    for platform in PLATFORMS:
        for batch in DLRM_BATCHES:
            graph = build_dlrm_graph(DLRM_SMALL, batch)
            result = run(graph, platform, config=BENCH_ENGINE)
            out[("dlrm", platform.name, batch)] = compute_metrics(result.trace)
        gcn = build_gcn_graph(GCN_MEDIUM)
        result = run(gcn, platform, config=BENCH_ENGINE)
        out[("gcn", platform.name, 1)] = compute_metrics(result.trace)
    return out


def test_ext_dlrm_and_gcn(benchmark):
    grid = run_once(benchmark, _characterize)
    rows = []
    for (workload, platform, batch), metrics in grid.items():
        rows.append([
            workload, platform, batch,
            f"{ns_to_ms(metrics.inference_latency_ns):.3f}",
            f"{100 * metrics.gpu_busy_ns / metrics.inference_latency_ns:.0f}%",
            classify_metrics(metrics).value,
        ])
    report(render_table(
        ["workload", "platform", "batch", "latency (ms)", "GPU busy",
         "bound"],
        rows, title="Extension: future-work workloads through SKIP"))

    # DLRM: launch-bound to thousands of samples per batch on every
    # platform — the extreme version of the paper's CPU-bound story.
    for platform in PLATFORMS:
        assert classify_metrics(
            grid[("dlrm", platform.name, 64)]) is Boundedness.CPU_BOUND
        assert classify_metrics(
            grid[("dlrm", platform.name, 512)]) is Boundedness.CPU_BOUND
    # GCN: a single large graph already saturates the GPU.
    for platform in PLATFORMS:
        metrics = grid[("gcn", platform.name, 1)]
        assert metrics.gpu_busy_ns > 0.5 * metrics.inference_latency_ns
    # The coupling inversion carries over: CPU-bound DLRM favors the LC
    # CPUs; bandwidth-bound GCN favors GH200.
    assert (grid[("dlrm", "Intel+H100", 64)].inference_latency_ns
            < grid[("dlrm", "GH200", 64)].inference_latency_ns)
    assert (grid[("gcn", "GH200", 1)].inference_latency_ns
            < grid[("gcn", "Intel+H100", 1)].inference_latency_ns)
