"""Transformer operator-stream construction.

Builds the eager-mode operator sequence a HuggingFace model executes for one
forward pass, at ATen granularity, for both prefill and decode phases. The
streams mirror the structural quirks that shape real traces:

* BERT/XLM-R (post-LN encoders): three separate QKV projections, additive
  attention mask, pooler head.
* GPT-2: fused Conv1D QKV + view-splits, causal ``where`` masking, and the
  tanh-approximated ``gelu_new`` that expands to ~8 elementwise kernels —
  the reason GPT-2's eager kernel count is much higher than BERT's.
* Llama-3.2: RMSNorm, rotary embeddings, grouped-query attention with
  ``repeat_kv`` materialization, SwiGLU MLP, no biases.

The attention core can be built unfused (eager) or as a single fused
FlashAttention op.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError
from repro.workloads import ops
from repro.workloads.config import Activation, Arch, ModelConfig, Norm, Positional
from repro.workloads.graph import OperatorGraph, Phase
from repro.workloads.ops import Op, OpKind


class AttentionImpl(enum.Enum):
    """How the attention core is lowered."""

    EAGER = "eager"
    FLASH = "flash"  # FlashAttention-2 fused kernel


def build_graph(
    config: ModelConfig,
    batch_size: int,
    seq_len: int,
    phase: Phase = Phase.PREFILL,
    attention: AttentionImpl = AttentionImpl.EAGER,
    context_len: int | None = None,
) -> OperatorGraph:
    """Build one forward pass of ``config`` as an operator stream.

    Args:
        config: Model description.
        batch_size: Number of sequences in the batch.
        seq_len: Input length (prefill) — ignored for decode, where each
            sequence contributes one new token.
        phase: PREFILL or DECODE.
        attention: Eager (unfused) or FlashAttention lowering.
        context_len: KV-cache length for decode (required for DECODE).

    Returns:
        The operator stream in program order.
    """
    if batch_size <= 0 or seq_len <= 0:
        raise ConfigurationError("batch_size and seq_len must be positive")
    if phase is Phase.DECODE:
        if context_len is None or context_len <= 0:
            raise ConfigurationError("decode phase requires a positive context_len")
        if config.arch is Arch.ENCODER_ONLY:
            raise ConfigurationError("encoder-only models have no decode phase")

    graph = OperatorGraph(
        model_name=config.name,
        phase=phase,
        batch_size=batch_size,
        seq_len=seq_len if phase is Phase.PREFILL else (context_len or seq_len),
    )
    if config.arch is Arch.ENCODER_ONLY:
        _build_encoder(graph, config, batch_size, seq_len, attention)
    else:
        _build_decoder(graph, config, batch_size, seq_len, phase, attention,
                       context_len or seq_len)
    return graph


# ---------------------------------------------------------------------------
# Encoder-only (BERT / XLM-RoBERTa)
# ---------------------------------------------------------------------------

def _build_encoder(graph: OperatorGraph, config: ModelConfig, batch: int,
                   seq: int, attention: AttentionImpl) -> None:
    tokens = batch * seq
    hidden = config.hidden
    elements = tokens * hidden

    graph.extend([
        ops.embedding("embeddings.word", tokens, hidden, config.vocab),
        ops.embedding("embeddings.position", tokens, hidden, config.max_positions),
        ops.embedding("embeddings.token_type", tokens, hidden, 2),
        ops.elementwise(OpKind.ADD, "embeddings.add_position", elements, inputs=2),
        ops.elementwise(OpKind.ADD, "embeddings.add_token_type", elements, inputs=2),
        ops.layernorm("embeddings.layernorm", tokens, hidden),
        # get_extended_attention_mask: (1 - mask) * min_value
        ops.elementwise(OpKind.ADD, "extended_mask.rsub", batch * seq, inputs=1),
        ops.elementwise(OpKind.MUL, "extended_mask.scale", batch * seq, inputs=1),
    ])

    for layer in range(config.layers):
        _encoder_layer(graph, config, batch, seq, layer, attention)

    # Pooler: take [CLS], dense, tanh.
    graph.extend([
        ops.reshape_copy("pooler.take_cls", batch * hidden),
        ops.linear("pooler.dense", batch, hidden, hidden, bias=True),
        ops.elementwise(OpKind.TANH, "pooler.tanh", batch * hidden),
    ])


def _encoder_layer(graph: OperatorGraph, config: ModelConfig, batch: int,
                   seq: int, layer: int, attention: AttentionImpl) -> None:
    prefix = f"encoder.layer.{layer}"
    tokens = batch * seq
    hidden = config.hidden
    heads = config.heads
    head_dim = config.effective_head_dim
    elements = tokens * hidden

    graph.extend([
        ops.linear(f"{prefix}.attn.query", tokens, hidden, hidden, bias=True),
        ops.linear(f"{prefix}.attn.key", tokens, hidden, hidden, bias=True),
        ops.linear(f"{prefix}.attn.value", tokens, hidden, hidden, bias=True),
        ops.transpose_view(f"{prefix}.attn.query.transpose", elements),
        ops.transpose_view(f"{prefix}.attn.key.transpose", elements),
        ops.transpose_view(f"{prefix}.attn.value.transpose", elements),
    ])

    if attention is AttentionImpl.FLASH:
        graph.append(ops.sdpa_flash(f"{prefix}.attn.sdpa", batch * heads, seq,
                                    seq, head_dim))
    else:
        score_elements = batch * heads * seq * seq
        graph.extend([
            ops.matmul(f"{prefix}.attn.scores", batch * heads, seq, seq, head_dim),
            ops.elementwise(OpKind.SCALE, f"{prefix}.attn.scale", score_elements),
            ops.elementwise(OpKind.ADD, f"{prefix}.attn.mask_add", score_elements,
                            inputs=2),
            ops.softmax(f"{prefix}.attn.softmax", batch * heads * seq, seq),
            ops.reshape_copy(f"{prefix}.attn.value.contiguous", elements),
            ops.matmul(f"{prefix}.attn.context", batch * heads, seq, head_dim, seq),
        ])

    graph.extend([
        ops.transpose_view(f"{prefix}.attn.context.transpose", elements),
        ops.reshape_copy(f"{prefix}.attn.context.contiguous", elements),
        ops.linear(f"{prefix}.attn.output.dense", tokens, hidden, hidden, bias=True),
        ops.elementwise(OpKind.ADD, f"{prefix}.attn.output.residual", elements,
                        inputs=2),
        ops.layernorm(f"{prefix}.attn.output.layernorm", tokens, hidden),
        ops.linear(f"{prefix}.mlp.fc1", tokens, hidden, config.intermediate,
                   bias=True),
        ops.elementwise(OpKind.GELU, f"{prefix}.mlp.gelu",
                        tokens * config.intermediate, flops_per_element=8.0),
        ops.linear(f"{prefix}.mlp.fc2", tokens, config.intermediate, hidden,
                   bias=True),
        ops.elementwise(OpKind.ADD, f"{prefix}.mlp.residual", elements, inputs=2),
        ops.layernorm(f"{prefix}.mlp.layernorm", tokens, hidden),
    ])


# ---------------------------------------------------------------------------
# Decoder-only (GPT-2 / Llama family / Gemma)
# ---------------------------------------------------------------------------

def _build_decoder(graph: OperatorGraph, config: ModelConfig, batch: int,
                   seq: int, phase: Phase, attention: AttentionImpl,
                   context_len: int) -> None:
    q_len = seq if phase is Phase.PREFILL else 1
    kv_len = seq if phase is Phase.PREFILL else context_len
    tokens = batch * q_len
    hidden = config.hidden

    graph.append(ops.embedding("embeddings.word", tokens, hidden, config.vocab))
    if config.positional is Positional.LEARNED:
        graph.extend([
            ops.embedding("embeddings.position", tokens, hidden,
                          config.max_positions),
            ops.elementwise(OpKind.ADD, "embeddings.add_position",
                            tokens * hidden, inputs=2),
        ])
    else:
        # Rotary cos/sin tables built once per forward.
        rope_elements = max(1, batch * kv_len * config.effective_head_dim)
        graph.extend([
            ops.elementwise(OpKind.MUL, "rotary.cos", rope_elements),
            ops.elementwise(OpKind.MUL, "rotary.sin", rope_elements),
        ])

    for layer in range(config.layers):
        _decoder_layer(graph, config, batch, q_len, kv_len, layer, phase,
                       attention)

    graph.append(_final_norm(config, "final_norm", tokens))
    # LM head over all positions in prefill (HF eager behavior), last token in
    # decode.
    graph.append(ops.linear("lm_head", tokens, hidden, config.vocab, bias=False))


def _final_norm(config: ModelConfig, label: str, tokens: int) -> Op:
    if config.norm is Norm.RMSNORM:
        return ops.rmsnorm(label, tokens, config.hidden)
    return ops.layernorm(label, tokens, config.hidden)


def _decoder_layer(graph: OperatorGraph, config: ModelConfig, batch: int,
                   q_len: int, kv_len: int, layer: int, phase: Phase,
                   attention: AttentionImpl) -> None:
    prefix = f"decoder.layer.{layer}"
    tokens = batch * q_len
    hidden = config.hidden
    heads = config.heads
    kv_heads = config.effective_kv_heads
    head_dim = config.effective_head_dim
    elements = tokens * hidden

    graph.append(_pre_norm(config, f"{prefix}.input_norm", tokens))

    # --- QKV projections -------------------------------------------------
    if config.fused_qkv:
        graph.extend([
            ops.linear(f"{prefix}.attn.c_attn", tokens, hidden, 3 * hidden,
                       bias=config.attention_bias),
            ops.split(f"{prefix}.attn.split_qkv", tokens * 3 * hidden, 3),
            # split yields views; the bmm below materializes per-head copies.
            ops.reshape_copy(f"{prefix}.attn.query.contiguous", elements),
            ops.reshape_copy(f"{prefix}.attn.key.contiguous", elements),
            ops.reshape_copy(f"{prefix}.attn.value.contiguous", elements),
        ])
    else:
        q_dim = config.q_dim
        kv_dim = config.kv_dim
        graph.extend([
            ops.linear(f"{prefix}.attn.q_proj", tokens, hidden, q_dim,
                       bias=config.attention_bias),
            ops.linear(f"{prefix}.attn.k_proj", tokens, hidden, kv_dim,
                       bias=config.attention_bias),
            ops.linear(f"{prefix}.attn.v_proj", tokens, hidden, kv_dim,
                       bias=config.attention_bias),
            ops.transpose_view(f"{prefix}.attn.query.transpose", tokens * q_dim),
            ops.transpose_view(f"{prefix}.attn.key.transpose", tokens * kv_dim),
            ops.transpose_view(f"{prefix}.attn.value.transpose", tokens * kv_dim),
        ])

    if config.positional is Positional.ROPE:
        graph.extend([
            ops.rope(f"{prefix}.attn.rope_q", tokens, config.q_dim),
            ops.rope(f"{prefix}.attn.rope_k", tokens, config.kv_dim),
        ])

    if phase is Phase.DECODE:
        graph.extend([
            ops.kv_append(f"{prefix}.attn.kv_cache.key", tokens, config.kv_dim),
            ops.kv_append(f"{prefix}.attn.kv_cache.value", tokens, config.kv_dim),
        ])

    if kv_heads < heads:
        # repeat_kv materializes expanded K/V for grouped-query attention.
        expanded = batch * heads * kv_len * head_dim
        graph.extend([
            ops.reshape_copy(f"{prefix}.attn.repeat_kv.key", expanded),
            ops.reshape_copy(f"{prefix}.attn.repeat_kv.value", expanded),
        ])

    # --- Attention core ---------------------------------------------------
    if attention is AttentionImpl.FLASH:
        graph.append(ops.sdpa_flash(f"{prefix}.attn.sdpa", batch * heads,
                                    q_len, kv_len, head_dim))
    elif config.fused_qkv:
        _gpt2_attention_core(graph, prefix, batch, heads, q_len, kv_len, head_dim)
    else:
        _llama_attention_core(graph, prefix, batch, heads, q_len, kv_len, head_dim)

    graph.extend([
        ops.transpose_view(f"{prefix}.attn.context.transpose",
                           tokens * heads * head_dim),
        ops.reshape_copy(f"{prefix}.attn.context.contiguous",
                         tokens * heads * head_dim),
        ops.linear(f"{prefix}.attn.o_proj", tokens, heads * head_dim, hidden,
                   bias=config.attention_bias),
        ops.elementwise(OpKind.ADD, f"{prefix}.attn.residual", elements, inputs=2),
    ])

    # --- MLP ----------------------------------------------------------------
    graph.append(_pre_norm(config, f"{prefix}.post_attn_norm", tokens))
    inter = config.intermediate
    if config.is_moe:
        _moe_mlp(graph, config, prefix, tokens)
    elif config.is_gated_mlp:
        act_kind = OpKind.SILU if config.activation is Activation.SILU else OpKind.GELU
        graph.extend([
            ops.linear(f"{prefix}.mlp.gate_proj", tokens, hidden, inter,
                       bias=config.mlp_bias),
            ops.linear(f"{prefix}.mlp.up_proj", tokens, hidden, inter,
                       bias=config.mlp_bias),
            ops.elementwise(act_kind, f"{prefix}.mlp.act", tokens * inter,
                            flops_per_element=6.0),
            ops.elementwise(OpKind.MUL, f"{prefix}.mlp.gate_mul", tokens * inter,
                            inputs=2),
            ops.linear(f"{prefix}.mlp.down_proj", tokens, inter, hidden,
                       bias=config.mlp_bias),
        ])
    else:
        # GPT-2's gelu_new expands to ~8 elementwise kernels in eager mode.
        gelu_fanout = 8 if config.fused_qkv else 1
        graph.extend([
            ops.linear(f"{prefix}.mlp.c_fc", tokens, hidden, inter,
                       bias=config.mlp_bias),
            ops.elementwise(OpKind.GELU, f"{prefix}.mlp.gelu", tokens * inter,
                            flops_per_element=8.0, fanout=gelu_fanout),
            ops.linear(f"{prefix}.mlp.c_proj", tokens, inter, hidden,
                       bias=config.mlp_bias),
        ])
    graph.append(ops.elementwise(OpKind.ADD, f"{prefix}.mlp.residual", elements,
                                 inputs=2))


def _moe_mlp(graph: OperatorGraph, config: ModelConfig, prefix: str,
             tokens: int) -> None:
    """Eager mixture-of-experts MLP (Mixtral-style).

    HF's eager MoE routes with a small GEMM + softmax + top-k, then *loops
    over experts*: gather the routed tokens, run the expert's gated MLP on
    the subset, scale by the routing weight, and scatter-add back. The
    per-expert loop multiplies the operator count by ~7x per expert — the
    most launch-tax-intensive Transformer variant in the catalog.
    """
    hidden = config.hidden
    inter = config.intermediate
    experts = config.moe_experts
    graph.extend([
        ops.linear(f"{prefix}.moe.router", tokens, hidden, experts,
                   bias=False),
        ops.softmax(f"{prefix}.moe.router_softmax", tokens, experts),
        ops.topk(f"{prefix}.moe.topk", tokens, experts, config.moe_top_k),
    ])
    # Expected tokens per expert under balanced routing (>=1 so small
    # batches still exercise every expert path, as eager HF does).
    routed = max(1, tokens * config.moe_top_k // experts)
    act_kind = (OpKind.SILU if config.activation is Activation.SILU
                else OpKind.GELU)
    for expert in range(experts):
        expert_prefix = f"{prefix}.moe.expert{expert}"
        graph.extend([
            ops.index_select(f"{expert_prefix}.gather", routed, hidden),
            ops.linear(f"{expert_prefix}.gate_proj", routed, hidden, inter,
                       bias=False),
            ops.linear(f"{expert_prefix}.up_proj", routed, hidden, inter,
                       bias=False),
            ops.elementwise(act_kind, f"{expert_prefix}.act", routed * inter,
                            flops_per_element=6.0),
            ops.elementwise(OpKind.MUL, f"{expert_prefix}.gate_mul",
                            routed * inter, inputs=2),
            ops.linear(f"{expert_prefix}.down_proj", routed, inter, hidden,
                       bias=False),
            ops.elementwise(OpKind.MUL, f"{expert_prefix}.route_scale",
                            routed * hidden),
            ops.scatter_add(f"{expert_prefix}.scatter", routed, hidden),
        ])


def _pre_norm(config: ModelConfig, label: str, tokens: int) -> Op:
    if config.norm is Norm.RMSNORM:
        return ops.rmsnorm(label, tokens, config.hidden)
    return ops.layernorm(label, tokens, config.hidden)


def _gpt2_attention_core(graph: OperatorGraph, prefix: str, batch: int,
                         heads: int, q_len: int, kv_len: int,
                         head_dim: int) -> None:
    """GPT-2's eager attention: full/div scaling and where-based causal mask."""
    score_elements = batch * heads * q_len * kv_len
    graph.extend([
        ops.matmul(f"{prefix}.attn.scores", batch * heads, q_len, kv_len, head_dim),
        ops.fill(f"{prefix}.attn.scale_const", 1),
        ops.elementwise(OpKind.SCALE, f"{prefix}.attn.scale", score_elements),
        ops.fill(f"{prefix}.attn.mask_value", 1),
        ops.elementwise(OpKind.MASKED_FILL, f"{prefix}.attn.causal_where",
                        score_elements, inputs=2),
        ops.elementwise(OpKind.ADD, f"{prefix}.attn.mask_add", score_elements,
                        inputs=2),
        ops.softmax(f"{prefix}.attn.softmax", batch * heads * q_len, kv_len),
        ops.elementwise(OpKind.CAST, f"{prefix}.attn.softmax_cast",
                        score_elements),
        ops.matmul(f"{prefix}.attn.context", batch * heads, q_len, head_dim,
                   kv_len),
    ])


def _llama_attention_core(graph: OperatorGraph, prefix: str, batch: int,
                          heads: int, q_len: int, kv_len: int,
                          head_dim: int) -> None:
    """Llama-family eager attention: additive causal mask."""
    score_elements = batch * heads * q_len * kv_len
    graph.extend([
        ops.matmul(f"{prefix}.attn.scores", batch * heads, q_len, kv_len, head_dim),
        ops.elementwise(OpKind.ADD, f"{prefix}.attn.causal_mask", score_elements,
                        inputs=2),
        ops.softmax(f"{prefix}.attn.softmax", batch * heads * q_len, kv_len),
        ops.matmul(f"{prefix}.attn.context", batch * heads, q_len, head_dim,
                   kv_len),
    ])
