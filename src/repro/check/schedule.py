"""Schedule hazard detector: static deadlock/ordering analysis.

Models the multi-device execution statically: each device's dispatch
process is an ordered list of kernel issues and collective joins
(:class:`DeviceSchedule`), exactly the order
:mod:`repro.engine.processes` walks at run time. Because the simulator's
collectives are rendezvous barriers released only when *every* party has
joined, hazards are decidable without running anything:

* a **wait-for cycle** between collectives (device A joins X before Y,
  device B joins Y before X) hangs both devices;
* a collective whose **declared party count** disagrees across devices, or
  does not match the devices that actually join it, either hangs or
  over-fills the rendezvous;
* any event scheduled **after** a hanging collective is unreachable;
* a collective placed on a **different stream** than the device's compute
  stream breaks the in-order guarantee the engine relies on (the collective
  could start before the kernels queued ahead of it).

:func:`schedules_from_lowering` derives the schedules the engine would run
for a sharded lowering, so the CLI can verify every catalog model's TP
schedule; :func:`schedules_from_serving` lifts a finished serving run's
per-replica issue lists, :func:`schedules_from_trace` reconstructs schedules
from an exported Chrome trace, and tests hand-build adversarial schedules
directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.check.findings import Finding, Severity, register_rule
from repro.engine.lowering import LoweredOp
from repro.engine.tp import TPConfig

if TYPE_CHECKING:
    from repro.engine.pp import PPConfig
    from repro.serving.runtime import EngineSession
    from repro.trace.trace import Trace

#: Kernel-name prefix that marks a cross-device collective in traces
#: (mirrors ``repro.engine.lowering``'s all-reduce kernel naming).
COLLECTIVE_KERNEL_PREFIX = "ncclDevKernel"

S001 = register_rule(
    "S001", "schedule", "collective wait-for cycle (rendezvous deadlock)")
S002 = register_rule(
    "S002", "schedule", "collective party count disagrees across devices")
S003 = register_rule(
    "S003", "schedule", "collective participants do not match its party count")
S004 = register_rule(
    "S004", "schedule", "device joins the same collective twice")
S005 = register_rule(
    "S005", "schedule", "events unreachable behind a hanging collective")
S006 = register_rule(
    "S006", "schedule", "collective scheduled off the device's compute stream")
S007 = register_rule(
    "S007", "schedule",
    "chunked prefill interleaves out of order with its own decodes")
S008 = register_rule(
    "S008", "schedule", "pipeline-stage occupancy hazard (handoff disorder)")

#: Chunk kernels as the serving planner labels them
#: (``PromptChunk.schedule_label``).
_CHUNK_KERNEL = re.compile(
    r"^serving::prefill_chunk\[r(\d+):(\d+)\+(\d+)/(\d+)\]$")
#: Decode steps that carry first-decode markers for newly joined requests
#: (``decode_schedule_label``).
_DECODE_MARKER = re.compile(r"^serving::decode\[([^\]]*)\]$")
#: Inter-stage activation handoffs as :func:`schedules_from_pp` keys them.
_PP_HANDOFF = re.compile(r"^pp\.act@(\d+)->(\d+)\.mb(\d+)$")

#: Stream id of every device's compute stream (mirrors ``SimCore.add_device``).
COMPUTE_STREAM = 7


@dataclass(frozen=True)
class KernelIssue:
    """One kernel submission in a device's static schedule."""

    name: str
    stream: int = COMPUTE_STREAM


@dataclass(frozen=True)
class CollectiveJoin:
    """One rendezvous join in a device's static schedule."""

    key: str
    parties: int
    stream: int = COMPUTE_STREAM


ScheduleItem = KernelIssue | CollectiveJoin


@dataclass
class DeviceSchedule:
    """The ordered work one device's dispatch process performs."""

    device: int
    items: list[ScheduleItem] = field(default_factory=list)

    def collectives(self) -> list[CollectiveJoin]:
        return [item for item in self.items
                if isinstance(item, CollectiveJoin)]


def schedules_from_lowering(lowered: list[LoweredOp],
                            tp: TPConfig) -> list[DeviceSchedule]:
    """The per-device schedules the engine runs for a sharded lowering.

    All devices execute the same op stream (TP devices are symmetric), so
    each device's schedule is the kernel stream with collectives keyed by
    their program position — the same rendezvous keys
    :func:`repro.engine.processes._device_dispatch_process` derives — plus
    the end-of-iteration barrier.
    """
    world = max(1, tp.degree)
    schedules = []
    for device in range(world):
        items: list[ScheduleItem] = []
        for op_index, lowered_op in enumerate(lowered):
            for kernel_index, kernel in enumerate(lowered_op.kernels):
                if kernel.is_collective and world > 1:
                    items.append(CollectiveJoin(
                        key=f"allreduce@{op_index}.{kernel_index}",
                        parties=world))
                else:
                    items.append(KernelIssue(kernel.name))
        if world > 1:
            items.append(CollectiveJoin(key="iteration-end", parties=world))
        schedules.append(DeviceSchedule(device=device, items=items))
    return schedules


def schedules_from_serving(
        sessions: Iterable[EngineSession]) -> list[DeviceSchedule]:
    """The per-device schedules a finished serving run actually issued.

    :class:`~repro.serving.runtime.EngineSession` appends plain
    ``("kernel", name)`` / ``("join", key, parties)`` tuples as its policy
    process executes (the serving layer stays import-free of the checker);
    this lifts them into typed schedules so ``check_schedules`` can verify
    the run the same way it verifies engine lowerings.
    """
    schedules: list[DeviceSchedule] = []
    for session in sessions:
        for device in session.devices:
            items: list[ScheduleItem] = []
            for entry in session.schedule_items[device.index]:
                if entry[0] == "kernel":
                    items.append(KernelIssue(name=entry[1]))
                elif entry[0] == "join":
                    items.append(CollectiveJoin(key=entry[1],
                                                parties=entry[2]))
                else:
                    raise ValueError(
                        f"unknown serving schedule item: {entry!r}")
            schedules.append(DeviceSchedule(device=device.index, items=items))
    return schedules


def schedules_from_pp(stage_lowerings: list[list[LoweredOp]],
                      pp: PPConfig,
                      tp_degree: int = 1) -> list[DeviceSchedule]:
    """The per-device schedules a pipeline-parallel engine run performs.

    Mirrors :func:`repro.engine.pp._pp_stage_process`: stage ``s`` owns
    devices ``[s*tp_degree, (s+1)*tp_degree)``; each microbatch joins the
    upstream handoff (except stage 0), issues the stage's kernel stream,
    and joins the downstream handoff (except the last stage); every device
    joins the iteration-end barrier. Within-stage TP collectives appear as
    plain kernel issues — a single dispatch thread drives all of a stage's
    shards, so no rendezvous happens for them at run time.
    """
    stages = len(stage_lowerings)
    schedules: list[DeviceSchedule] = []
    for stage in range(stages):
        for local in range(max(1, tp_degree)):
            device = stage * max(1, tp_degree) + local
            items: list[ScheduleItem] = []
            for microbatch in range(pp.microbatches):
                if stage > 0:
                    items.append(CollectiveJoin(
                        key=f"pp.act@{stage - 1}->{stage}.mb{microbatch}",
                        parties=2 * max(1, tp_degree)))
                for lowered_op in stage_lowerings[stage]:
                    for kernel in lowered_op.kernels:
                        items.append(KernelIssue(kernel.name))
                if stage < stages - 1:
                    items.append(CollectiveJoin(
                        key=f"pp.act@{stage}->{stage + 1}.mb{microbatch}",
                        parties=2 * max(1, tp_degree)))
            items.append(CollectiveJoin(key="pp.iteration-end",
                                        parties=stages * max(1, tp_degree)))
            schedules.append(DeviceSchedule(device=device, items=items))
    return schedules


def schedules_from_trace(trace: Trace) -> list[DeviceSchedule]:
    """Reconstruct per-device schedules from an exported Chrome trace.

    Kernels on each device become :class:`KernelIssue` entries in execution
    order. Collective kernels (``ncclDevKernel...``) are grouped into
    rendezvous by simultaneity — collective kernels sharing a name and a
    start instant are one collective — with the party count inferred from
    the group size. Because parties are inferred from the joiners, rule
    S003 cannot fire on trace-derived schedules; the value of this view is
    the ordering, cycle, duplicate-join, and stream checks.
    """
    collective_group: dict[tuple[str, float], str] = {}
    group_parties: dict[str, int] = {}
    collectives = sorted(
        (k for k in trace.kernels
         if k.name.startswith(COLLECTIVE_KERNEL_PREFIX)),
        key=lambda k: (k.ts, k.device, k.event_id))
    for kernel in collectives:
        group = collective_group.get((kernel.name, kernel.ts))
        if group is None:
            group = f"{kernel.name}@{len(group_parties)}"
            collective_group[(kernel.name, kernel.ts)] = group
            group_parties[group] = 0
        group_parties[group] += 1

    devices = sorted({k.device for k in trace.kernels})
    schedules = []
    for device in devices:
        items: list[ScheduleItem] = []
        ordered = sorted((k for k in trace.kernels if k.device == device),
                         key=lambda k: (k.ts, k.event_id))
        for kernel in ordered:
            group = collective_group.get((kernel.name, kernel.ts))
            if group is not None:
                items.append(CollectiveJoin(key=group,
                                            parties=group_parties[group],
                                            stream=kernel.stream))
            else:
                items.append(KernelIssue(kernel.name, stream=kernel.stream))
        schedules.append(DeviceSchedule(device=device, items=items))
    return schedules


def _find_cycle(edges: dict[str, set[str]]) -> list[str] | None:
    """One cycle in a directed graph, as a node path, or None.

    Iterative DFS: serving traces chain one collective per decode step, so
    the graph can be tens of thousands of nodes deep — far past Python's
    recursion limit.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    path: list[str] = []

    for root in sorted(edges):
        if color[root] != WHITE:
            continue
        # Stack of (node, iterator over its successors).
        stack = [(root, iter(sorted(edges.get(root, ()))))]
        color[root] = GRAY
        path.append(root)
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                state = color.get(succ, WHITE)
                if state == GRAY:
                    return path[path.index(succ):] + [succ]
                if state == WHITE:
                    color[succ] = GRAY
                    path.append(succ)
                    stack.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None


def _check_chunk_order(schedule: DeviceSchedule) -> list[Finding]:
    """S007: per-request chunk progress must be monotone, decodes after it.

    The planner's invariant: a request's prompt chunks run in offset order
    ``0, b, 2b, ...`` until they cover the prompt, its first decode (the
    ``+r<id>`` marker on a decode step) comes only after the final chunk,
    and no chunk of that request runs after it started decoding. Schedules
    without chunk kernels pass vacuously.
    """
    findings: list[Finding] = []
    where = f"device {schedule.device}"
    expected: dict[int, int] = {}     # rid -> next chunk start offset
    totals: dict[int, int] = {}
    decoding: set[int] = set()
    for item in schedule.items:
        if not isinstance(item, KernelIssue):
            continue
        chunk = _CHUNK_KERNEL.match(item.name)
        if chunk is not None:
            rid, start, length, total = map(int, chunk.groups())
            if rid in decoding:
                findings.append(Finding(
                    S007, Severity.ERROR, where,
                    f"request {rid}: prompt chunk [{start}+{length}/{total}] "
                    f"scheduled after the request started decoding"))
                continue
            want = expected.get(rid, 0)
            if start != want or totals.setdefault(rid, total) != total:
                findings.append(Finding(
                    S007, Severity.ERROR, where,
                    f"request {rid}: chunk starts at offset {start}, "
                    f"expected {want} (chunks must cover the prompt in "
                    f"order)"))
            expected[rid] = start + length
            continue
        marker = _DECODE_MARKER.match(item.name)
        if marker is None:
            continue
        for joined in marker.group(1).split(","):
            if not joined.startswith("+r"):
                continue
            rid = int(joined[2:])
            done = expected.get(rid)
            total = totals.get(rid)
            if done is not None and total is not None and done < total:
                findings.append(Finding(
                    S007, Severity.ERROR, where,
                    f"request {rid}: first decode scheduled with only "
                    f"{done}/{total} prompt tokens prefilled"))
            decoding.add(rid)
    return findings


def _check_pp_order(schedule: DeviceSchedule) -> list[Finding]:
    """S008: stage handoffs must drain microbatches in order.

    Per boundary, a device must join handoffs for microbatches
    ``0, 1, 2, ...`` exactly once each and in order (a stage cannot take
    microbatch 1 before 0 — the upstream stage produces them in order); and
    within one microbatch the upstream handoff (recv, boundary ``s-1->s``)
    must precede the downstream one (send, ``s->s+1``) — sending
    activations before receiving inputs is a hazard the rendezvous would
    deadlock on. Schedules without ``pp.act`` joins pass vacuously.
    """
    findings: list[Finding] = []
    where = f"device {schedule.device}"
    next_mb: dict[tuple[int, int], int] = {}     # boundary -> expected mb
    last_source: dict[int, int] = {}             # mb -> last boundary source
    for item in schedule.collectives():
        handoff = _PP_HANDOFF.match(item.key)
        if handoff is None:
            continue
        source, dest, microbatch = map(int, handoff.groups())
        boundary = (source, dest)
        want = next_mb.setdefault(boundary, 0)
        if microbatch != want:
            findings.append(Finding(
                S008, Severity.ERROR, where,
                f"boundary {source}->{dest}: rendezvous {item.key!r} joins "
                f"microbatch {microbatch} but microbatch {want} is next "
                f"(stages drain microbatches in order)"))
        next_mb[boundary] = microbatch + 1
        prev = last_source.get(microbatch)
        if prev is not None and source <= prev:
            findings.append(Finding(
                S008, Severity.ERROR, where,
                f"microbatch {microbatch}: rendezvous {item.key!r} "
                f"({source}->{dest}) joined after boundary {prev} (a stage "
                f"must receive its inputs before sending activations "
                f"downstream)"))
        last_source[microbatch] = source
    return findings


def check_schedules(schedules: list[DeviceSchedule]) -> list[Finding]:
    """Statically detect rendezvous/ordering hazards in device schedules."""
    findings: list[Finding] = []
    world = len(schedules)
    for schedule in schedules:
        findings.extend(_check_chunk_order(schedule))
        findings.extend(_check_pp_order(schedule))

    # Per-collective bookkeeping: declared party counts and joining devices.
    declared: dict[str, set[int]] = {}
    joiners: dict[str, list[int]] = {}
    for schedule in schedules:
        seen: set[str] = set()
        for item in schedule.collectives():
            declared.setdefault(item.key, set()).add(item.parties)
            joiners.setdefault(item.key, []).append(schedule.device)
            if item.key in seen:
                findings.append(Finding(
                    S004, Severity.ERROR, f"device {schedule.device}",
                    f"collective {item.key!r} joined twice by the same "
                    f"dispatch process"))
            seen.add(item.key)
            if item.stream != COMPUTE_STREAM:
                findings.append(Finding(
                    S006, Severity.ERROR, f"device {schedule.device}",
                    f"collective {item.key!r} scheduled on stream "
                    f"{item.stream}, not the compute stream "
                    f"{COMPUTE_STREAM}: in-order semantics with queued "
                    f"kernels are lost"))

    hanging: set[str] = set()
    for key in sorted(declared):
        parties = declared[key]
        if len(parties) > 1:
            findings.append(Finding(
                S002, Severity.ERROR, f"collective {key}",
                f"party count declared inconsistently across devices: "
                f"{sorted(parties)}"))
            hanging.add(key)
            continue
        (count,) = parties
        participants = len(joiners[key])
        if participants != count:
            findings.append(Finding(
                S003, Severity.ERROR, f"collective {key}",
                f"{participants} of {world} devices join but the "
                f"rendezvous waits for {count} parties"))
            if participants < count:
                hanging.add(key)

    # Wait-for graph: on each device, a later collective cannot be joined
    # until every earlier one released. A cycle means two devices block on
    # each other's collectives forever.
    edges: dict[str, set[str]] = {key: set() for key in declared}
    for schedule in schedules:
        order = [item.key for item in schedule.collectives()]
        for earlier, later in zip(order, order[1:]):
            if earlier != later:
                edges[earlier].add(later)
    cycle = _find_cycle(edges)
    if cycle is not None:
        findings.append(Finding(
            S001, Severity.ERROR, f"collective {cycle[0]}",
            "wait-for cycle between collectives: " + " -> ".join(cycle)))
        hanging.update(cycle[:-1])

    # Everything scheduled behind a hanging collective never executes.
    for schedule in schedules:
        for index, item in enumerate(schedule.items):
            if isinstance(item, CollectiveJoin) and item.key in hanging:
                behind = len(schedule.items) - index - 1
                if behind:
                    findings.append(Finding(
                        S005, Severity.ERROR, f"device {schedule.device}",
                        f"{behind} event(s) unreachable behind hanging "
                        f"collective {item.key!r}"))
                break
    return findings
