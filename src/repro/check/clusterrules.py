"""Cluster routing verification (rules ``R...``).

The cluster tier logs every routing decision into exported trace metadata
(``cluster``: the router policy, the generated request ids, and one event
per routed request). This pass replays that log against the conservation
and affinity invariants of the router:

* **R001** — conservation: every generated request is admitted to exactly
  one replica. A request routed twice was double-admitted; a request never
  routed was dropped on the floor.
* **R002** — session affinity: under the ``session`` router policy, all
  requests carrying the same session tag land on the same replica
  (a violation splits a session's KV reuse across machines).
* **R003** — refcounted shared KV blocks obey their lifecycle: a shared
  group is referenced only while resident, dereferenced once per holder
  (never past zero — a double free), and evicted only at refcount 0
  (never while somebody still reads it). The findings are emitted by the
  KV replay in :mod:`repro.check.kvrules`, which processes the
  ``prefix_*`` events alongside the K rules.

Like the K rules, the pass is pure log replay and runs automatically in
``repro check trace`` whenever a trace carries cluster metadata.
"""

from __future__ import annotations

from typing import Mapping

from repro.check.findings import Finding, Severity, register_rule

R001 = register_rule(
    "R001", "cluster", "request not admitted to exactly one replica")
R002 = register_rule(
    "R002", "cluster", "session-affinity violation: one session on two "
                       "replicas")
R003 = register_rule(
    "R003", "cluster", "shared KV block double-free or free-while-shared")


def check_cluster_metadata(meta: Mapping,
                           where: str = "cluster") -> list[Finding]:
    """Verify the ``cluster`` metadata block of an exported trace."""
    findings: list[Finding] = []
    events = meta.get("events", [])
    request_ids = meta.get("request_ids")
    policy = meta.get("policy", "")

    routed: dict[int, list[int]] = {}
    for event in events:
        routed.setdefault(int(event["request_id"]),
                          []).append(int(event["replica"]))

    for rid, replicas in sorted(routed.items()):
        if len(replicas) > 1:
            findings.append(Finding(
                R001, Severity.ERROR, f"{where} request {rid}",
                f"request {rid} admitted to {len(replicas)} replicas: "
                f"{replicas}"))
    if request_ids is not None:
        missing = sorted(set(int(r) for r in request_ids) - set(routed))
        if missing:
            findings.append(Finding(
                R001, Severity.ERROR, f"{where} conservation",
                f"{len(missing)} generated request(s) never admitted to any "
                f"replica: {missing[:5]}"))

    if policy == "session":
        by_session: dict[str, set[int]] = {}
        for event in events:
            session = event.get("session")
            if session is None:
                continue
            by_session.setdefault(str(session), set()).add(
                int(event["replica"]))
        for session, replicas in sorted(by_session.items()):
            if len(replicas) > 1:
                findings.append(Finding(
                    R002, Severity.ERROR, f"{where} session {session}",
                    f"session {session!r} routed to {len(replicas)} "
                    f"replicas: {sorted(replicas)}"))
    return findings
