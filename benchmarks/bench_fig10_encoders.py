"""Fig. 10 — prefill TTFT, GPU idle, and CPU idle vs batch size for the
encoder models on all three platforms.

Paper anchors: crossover at BS=16; at BS=64 GH200 is 1.6x/2.4x faster than
Intel+H100/AMD+A100; at BS=1 GH200 is 2.8x/1.9x *slower*; GH200 holds
near-constant TTFT until BS~32.
"""

import pytest

from _harness import BATCH_LADDER, BENCH_ENGINE, report, run_once
from repro.analysis import find_balanced_region, find_crossover, run_batch_sweep
from repro.hardware import AMD_A100, GH200, INTEL_H100
from repro.units import ns_to_ms
from repro.viz import render_table
from repro.workloads import BERT_BASE, XLM_ROBERTA_BASE

PLATFORMS = ("Intel+H100", "AMD+A100", "GH200")


def _sweep(model):
    return run_batch_sweep(model, (INTEL_H100, AMD_A100, GH200), BATCH_LADDER,
                           seq_len=512, engine_config=BENCH_ENGINE)


def _render(model_name, sweep):
    blocks = []
    for panel, series_fn in (
        ("(a) TTFT (ms)", sweep.ttft_series),
        ("(b) GPU idle (ms)", sweep.gpu_idle_series),
        ("(c) CPU idle (ms)", sweep.cpu_idle_series),
    ):
        rows = [[platform, *[f"{ns_to_ms(v):.2f}" for v in series_fn(platform)]]
                for platform in PLATFORMS]
        blocks.append(render_table(
            ["platform \\ BS", *[str(b) for b in BATCH_LADDER]], rows,
            title=f"Fig. 10{panel[1]} {panel[4:]}: {model_name}"))
    report("\n\n".join(blocks))


def _check(sweep):
    # Crossover point at BS=16 (paper).
    assert find_crossover(sweep, "GH200", "Intel+H100").batch_size == 16
    # BS=1 inversion: GH200 slowest.
    bs1 = {p: sweep.point(p, 1).ttft_ns for p in PLATFORMS}
    assert bs1["GH200"] > bs1["AMD+A100"] > bs1["Intel+H100"]
    assert bs1["GH200"] / bs1["Intel+H100"] == pytest.approx(2.8, rel=0.25)
    assert bs1["GH200"] / bs1["AMD+A100"] == pytest.approx(1.9, rel=0.15)
    # BS=64: GH200 wins by roughly the paper's factors.
    cp_amd = find_crossover(sweep, "GH200", "AMD+A100")
    assert cp_amd.speedup_at(sweep.batch_sizes, 64) == pytest.approx(2.4,
                                                                     rel=0.2)
    # Idle-time story: GPU idle falls with batch, CPU idle rises.
    for platform in PLATFORMS:
        gpu_idle = sweep.gpu_idle_series(platform)
        cpu_idle = sweep.cpu_idle_series(platform)
        assert gpu_idle[0] > gpu_idle[-1]
        assert cpu_idle[-1] > cpu_idle[0]
    # Balanced region sits at larger batches on the CC system (paper:
    # encoders LC BS=4-8 vs CC BS=16-32).
    lc_region = find_balanced_region(sweep, "Intel+H100")
    cc_region = find_balanced_region(sweep, "GH200")
    assert cc_region.low > lc_region.low


def test_fig10_bert(benchmark):
    sweep = run_once(benchmark, _sweep, BERT_BASE)
    _render("bert-base-uncased", sweep)
    _check(sweep)


def test_fig10_xlmr(benchmark):
    sweep = run_once(benchmark, _sweep, XLM_ROBERTA_BASE)
    _render("xlm-roberta-base", sweep)
    _check(sweep)
