"""Operator-kernel dependency graph construction (paper Section IV-A)."""

import pytest

from repro.engine import EngineConfig, ExecutionMode, run
from repro.errors import TraceError
from repro.hardware import INTEL_H100
from repro.skip import DependencyGraph
from repro.trace import (
    KernelEvent,
    LAUNCH_KERNEL,
    OperatorEvent,
    RuntimeEvent,
    Trace,
)
from repro.workloads import BERT_BASE, GPT2

FAST = EngineConfig(iterations=1)


@pytest.fixture(scope="module")
def bert_graph():
    result = run(BERT_BASE, INTEL_H100, batch_size=1, seq_len=128, config=FAST)
    return DependencyGraph.from_trace(result.trace)


def test_every_launch_resolved(bert_graph):
    assert all(r.kernel is not None for r in bert_graph.launches)
    assert all(r.operator is not None for r in bert_graph.launches)


def test_launches_in_time_order(bert_graph):
    timestamps = [r.call.ts for r in bert_graph.launches]
    assert timestamps == sorted(timestamps)


def test_nesting_depth_reflects_child_ops(bert_graph):
    # aten::linear wraps aten::addmm in the engine's traces.
    assert bert_graph.max_depth() >= 1
    child_names = {n.name for root in bert_graph.roots
                   for n in root.iter_subtree() if n.parent is not None}
    assert "aten::addmm" in child_names


def test_launch_attribution_to_child_op(bert_graph):
    addmm_launches = [r for r in bert_graph.launches
                      if r.operator and r.operator.name == "aten::addmm"]
    assert addmm_launches, "GEMM launches should attach to the child addmm"
    for record in addmm_launches:
        assert record.root_operator.name == "aten::linear"


def test_launch_and_queue_time_nonnegative(bert_graph):
    assert all(r.launch_and_queue_ns >= 0 for r in bert_graph.launches)


def test_operator_count_matches_trace(bert_graph):
    assert bert_graph.operator_count() == len(bert_graph.trace.operators)


def test_windowed_queries(bert_graph):
    begin, end = bert_graph.trace.span
    mid = (begin + end) / 2
    first_half = bert_graph.launches_in(begin, mid)
    second_half = bert_graph.launches_in(mid, end + 1)
    assert len(first_half) + len(second_half) == len(bert_graph.launches)
    assert bert_graph.roots_in(begin, end + 1)


def test_graph_kernels_tracked_separately():
    result = run(GPT2, INTEL_H100, batch_size=1, seq_len=128,
                 mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD, config=FAST)
    graph = DependencyGraph.from_trace(result.trace)
    assert not graph.launches
    assert graph.graph_kernels
    assert [k.ts for k in graph.graph_kernels] == sorted(
        k.ts for k in graph.graph_kernels)


def test_missing_kernel_raises():
    trace = Trace()
    op = OperatorEvent(name="aten::add", ts=0.0, dur=10.0, tid=1, seq=0)
    call = RuntimeEvent(name=LAUNCH_KERNEL, ts=1.0, dur=1.0, tid=1,
                        correlation_id=5)
    trace.add(op)
    trace.add(call)
    trace.sort()
    with pytest.raises(TraceError):
        DependencyGraph.from_trace(trace)


def test_time_containment_parenting():
    """Hand-built trace: the paper's parent/child rule."""
    trace = Trace()
    outer = OperatorEvent(name="outer", ts=0.0, dur=100.0, tid=1, seq=0)
    inner = OperatorEvent(name="inner", ts=10.0, dur=20.0, tid=1, seq=1)
    sibling = OperatorEvent(name="sibling", ts=50.0, dur=10.0, tid=1, seq=2)
    call = RuntimeEvent(name=LAUNCH_KERNEL, ts=12.0, dur=1.0, tid=1,
                        correlation_id=1)
    kernel = KernelEvent(name="k", ts=20.0, dur=5.0, correlation_id=1)
    for event in (outer, inner, sibling, call, kernel):
        trace.add(event)
    trace.sort()
    graph = DependencyGraph.from_trace(trace)
    assert len(graph.roots) == 1
    root = graph.roots[0]
    assert {c.name for c in root.children} == {"inner", "sibling"}
    assert graph.launches[0].operator.name == "inner"


def test_separate_threads_do_not_nest():
    trace = Trace()
    trace.add(OperatorEvent(name="t1", ts=0.0, dur=100.0, tid=1, seq=0))
    trace.add(OperatorEvent(name="t2", ts=10.0, dur=10.0, tid=2, seq=1))
    trace.sort()
    graph = DependencyGraph.from_trace(trace)
    assert len(graph.roots) == 2
