"""Property-based tests for the serving loops (conservation & ordering)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import INTEL_H100
from repro.serving import (
    ContinuousBatchPolicy,
    LatencyModel,
    Request,
    StaticBatchPolicy,
    simulate_continuous_batching,
    simulate_static_batching,
)
from repro.workloads import GPT2

# One latency model across all examples: caching makes the property runs
# cheap after the first few engine calls.
_LATENCY = LatencyModel(INTEL_H100)


@st.composite
def request_streams(draw):
    count = draw(st.integers(1, 12))
    requests = []
    clock = 0.0
    for i in range(count):
        clock += draw(st.floats(0, 2e8))  # up to 200 ms gaps
        requests.append(Request(
            request_id=i,
            arrival_ns=clock,
            prompt_len=draw(st.sampled_from([64, 128, 256])),
            output_tokens=draw(st.integers(1, 6)),
        ))
    return requests


@given(stream=request_streams(),
       batch=st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_static_batching_conservation(stream, batch):
    report = simulate_static_batching(
        stream, GPT2, _LATENCY, StaticBatchPolicy(max_batch_size=batch))
    assert {o.request.request_id for o in report.outcomes} == {
        r.request_id for r in stream}
    for outcome in report.outcomes:
        assert outcome.queue_ns >= -1e-6
        assert outcome.ttft_ns >= outcome.queue_ns
        assert outcome.completion_ns >= outcome.ttft_ns
        assert 1 <= outcome.batch_size <= batch


@given(stream=request_streams(),
       max_active=st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_continuous_batching_conservation(stream, max_active):
    report = simulate_continuous_batching(
        stream, GPT2, _LATENCY,
        ContinuousBatchPolicy(max_active=max_active, context_bucket=64))
    assert {o.request.request_id for o in report.outcomes} == {
        r.request_id for r in stream}
    for outcome in report.outcomes:
        assert outcome.ttft_ns > 0
        assert outcome.completion_ns >= outcome.ttft_ns


@given(stream=request_streams())
@settings(max_examples=15, deadline=None)
def test_server_never_time_travels(stream):
    """Batch launches are ordered and no request finishes before arriving."""
    report = simulate_static_batching(stream, GPT2, _LATENCY)
    absolute_completions = sorted(
        o.request.arrival_ns + o.completion_ns for o in report.outcomes)
    assert all(c >= 0 for c in absolute_completions)
    for outcome in report.outcomes:
        # completion measured from arrival must cover the pure service time
        # of at least a BS=1 run of its own shape... service >= ttft part.
        assert outcome.completion_ns >= outcome.ttft_ns >= 0
