"""Architectural what-if analysis (design-space exploration).

The paper's conclusion calls for "enhancing CPU performance or employing
intelligent scheduling in CC/TC designs". This module makes the first
quantitative: derive modified platforms (faster CPU dispatch, scaled GPU
rates or bandwidth) and re-simulate, e.g. *how much faster would the Grace
CPU need to be for GH200 to match Intel+H100 at batch size 1?*
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.engine.executor import DEFAULT_CONFIG, EngineConfig, run
from repro.engine.modes import ExecutionMode
from repro.errors import AnalysisError
from repro.hardware.platform import Platform
from repro.skip.metrics import compute_metrics
from repro.workloads.config import ModelConfig


def scaled_platform(
    platform: Platform,
    name: str | None = None,
    cpu_dispatch_scale: float = 1.0,
    cpu_runtime_call_scale: float = 1.0,
    gpu_compute_scale: float = 1.0,
    gpu_bandwidth_scale: float = 1.0,
) -> Platform:
    """Derive a hypothetical platform with scaled component performance.

    Scales are multiplicative speedups (2.0 = twice as fast).
    """
    for label, value in (("cpu_dispatch_scale", cpu_dispatch_scale),
                         ("cpu_runtime_call_scale", cpu_runtime_call_scale),
                         ("gpu_compute_scale", gpu_compute_scale),
                         ("gpu_bandwidth_scale", gpu_bandwidth_scale)):
        if value <= 0:
            raise AnalysisError(f"{label} must be positive")
    cpu = replace(
        platform.cpu,
        dispatch_score=platform.cpu.dispatch_score * cpu_dispatch_scale,
        runtime_call_score=(platform.cpu.runtime_call_score
                            * cpu_runtime_call_scale),
    )
    gpu = replace(
        platform.gpu,
        fp16_tflops=platform.gpu.fp16_tflops * gpu_compute_scale,
        hbm_bandwidth_gbs=platform.gpu.hbm_bandwidth_gbs * gpu_bandwidth_scale,
    )
    return replace(platform, name=name or f"{platform.name}*", cpu=cpu, gpu=gpu)


def latency_at(model: ModelConfig, platform: Platform, batch_size: int,
               seq_len: int = 512,
               mode: ExecutionMode = ExecutionMode.EAGER,
               engine_config: EngineConfig = DEFAULT_CONFIG) -> float:
    """Inference latency (ns) of one configuration."""
    result = run(model, platform, batch_size=batch_size, seq_len=seq_len,
                 mode=mode, config=engine_config)
    return compute_metrics(result.trace).inference_latency_ns


@dataclass(frozen=True)
class CpuSpeedupRequirement:
    """Result of :func:`required_cpu_speedup`."""

    platform: str
    reference: str
    batch_size: int
    required_speedup: float       # dispatch+launch speedup to match reference
    baseline_latency_ns: float
    reference_latency_ns: float
    achieved_latency_ns: float


def required_cpu_speedup(
    model: ModelConfig,
    platform: Platform,
    reference: Platform,
    batch_size: int = 1,
    seq_len: int = 512,
    tolerance: float = 0.02,
    max_speedup: float = 16.0,
    engine_config: EngineConfig = DEFAULT_CONFIG,
) -> CpuSpeedupRequirement:
    """CPU speedup needed for ``platform`` to match ``reference`` latency.

    Binary-searches a joint dispatch + runtime-call speedup factor. Raises
    :class:`AnalysisError` when even ``max_speedup`` cannot close the gap
    (the workload is GPU-bound on the slower platform).
    """
    if tolerance <= 0:
        raise AnalysisError("tolerance must be positive")
    target = latency_at(model, reference, batch_size, seq_len,
                        engine_config=engine_config)
    baseline = latency_at(model, platform, batch_size, seq_len,
                          engine_config=engine_config)
    if baseline <= target:
        return CpuSpeedupRequirement(platform.name, reference.name, batch_size,
                                     1.0, baseline, target, baseline)

    def evaluate(speedup: float) -> float:
        candidate = scaled_platform(platform, cpu_dispatch_scale=speedup,
                                    cpu_runtime_call_scale=speedup)
        return latency_at(model, candidate, batch_size, seq_len,
                          engine_config=engine_config)

    if evaluate(max_speedup) > target * (1 + tolerance):
        raise AnalysisError(
            f"{platform.name} cannot match {reference.name} at BS={batch_size} "
            f"even with a {max_speedup:.0f}x CPU (GPU-bound residual)")

    low, high = 1.0, max_speedup
    achieved = baseline
    for _ in range(40):
        mid = (low + high) / 2
        achieved = evaluate(mid)
        if achieved > target:
            low = mid
        else:
            high = mid
        if abs(achieved - target) <= tolerance * target:
            break
    return CpuSpeedupRequirement(
        platform=platform.name,
        reference=reference.name,
        batch_size=batch_size,
        required_speedup=(low + high) / 2,
        baseline_latency_ns=baseline,
        reference_latency_ns=target,
        achieved_latency_ns=achieved,
    )


def latency_vs_cpu_scale(
    model: ModelConfig,
    platform: Platform,
    scales: tuple[float, ...] = (1.0, 1.5, 2.0, 3.0, 4.0),
    batch_size: int = 1,
    seq_len: int = 512,
    engine_config: EngineConfig = DEFAULT_CONFIG,
) -> list[tuple[float, float]]:
    """(cpu speedup, latency ns) curve for a platform — the paper's
    'enhance CPU performance' lever."""
    if not scales:
        raise AnalysisError("scales must be non-empty")
    curve = []
    for scale in scales:
        candidate = scaled_platform(platform, cpu_dispatch_scale=scale,
                                    cpu_runtime_call_scale=scale)
        curve.append((scale, latency_at(model, candidate, batch_size, seq_len,
                                        engine_config=engine_config)))
    return curve
