"""Operator-stream construction for every architecture family."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    AttentionImpl,
    BERT_BASE,
    GPT2,
    LLAMA_3_2_1B,
    OpKind,
    Phase,
    XLM_ROBERTA_BASE,
    build_graph,
)


def test_encoder_has_pooler_and_no_lm_head():
    graph = build_graph(BERT_BASE, 1, 128)
    labels = [op.label for op in graph.ops]
    assert any(label.startswith("pooler") for label in labels)
    assert "lm_head" not in labels


def test_decoder_has_lm_head():
    graph = build_graph(GPT2, 1, 128)
    assert graph.ops[-1].label == "lm_head"


def test_bert_layer_structure_repeats():
    graph = build_graph(BERT_BASE, 1, 128)
    layer0 = [op.kind for op in graph.labels_matching("encoder.layer.0.")]
    layer7 = [op.kind for op in graph.labels_matching("encoder.layer.7.")]
    assert layer0 == layer7
    assert len(layer0) > 15


def test_gpt2_uses_fused_qkv_and_composite_gelu():
    graph = build_graph(GPT2, 1, 128)
    kinds = graph.count_by_kind()
    assert kinds["split"] == GPT2.layers
    gelus = [op for op in graph.ops if op.kind is OpKind.GELU]
    assert all(op.kernel_fanout == 8 for op in gelus)


def test_llama_uses_rmsnorm_rope_and_swiglu():
    graph = build_graph(LLAMA_3_2_1B, 1, 128)
    kinds = graph.count_by_kind()
    assert kinds["rmsnorm"] == 2 * LLAMA_3_2_1B.layers + 1
    assert kinds["rope"] == 2 * LLAMA_3_2_1B.layers
    assert kinds["silu"] == LLAMA_3_2_1B.layers
    assert "layernorm" not in kinds


def test_llama_gqa_materializes_repeat_kv():
    graph = build_graph(LLAMA_3_2_1B, 1, 128)
    repeats = [op for op in graph.ops if "repeat_kv" in op.label]
    assert len(repeats) == 2 * LLAMA_3_2_1B.layers


def test_flash_attention_removes_softmax():
    eager = build_graph(BERT_BASE, 1, 128, attention=AttentionImpl.EAGER)
    flash = build_graph(BERT_BASE, 1, 128, attention=AttentionImpl.FLASH)
    assert "softmax" in eager.count_by_kind()
    assert "softmax" not in flash.count_by_kind()
    assert flash.count_by_kind()["sdpa_flash"] == BERT_BASE.layers
    assert len(flash) < len(eager)


def test_flash_attention_preserves_flops_approximately():
    eager = build_graph(GPT2, 2, 256)
    flash = build_graph(GPT2, 2, 256, attention=AttentionImpl.FLASH)
    # FLOPs differ only by the small scale/mask/softmax elementwise terms.
    assert flash.total_flops == pytest.approx(eager.total_flops, rel=0.05)


def test_flops_scale_linearly_with_batch():
    one = build_graph(BERT_BASE, 1, 256).total_flops
    four = build_graph(BERT_BASE, 4, 256).total_flops
    assert four == pytest.approx(4 * one, rel=1e-6)


def test_attention_flops_scale_quadratically_with_seq():
    short = build_graph(GPT2, 1, 128)
    long = build_graph(GPT2, 1, 512)
    short_attn = sum(op.flops for op in short.ops if ".attn.scores" in op.label)
    long_attn = sum(op.flops for op in long.ops if ".attn.scores" in op.label)
    assert long_attn == pytest.approx(16 * short_attn, rel=1e-6)


def test_decode_phase_shapes():
    graph = build_graph(LLAMA_3_2_1B, 2, 1, phase=Phase.DECODE, context_len=512)
    kinds = graph.count_by_kind()
    assert kinds["kv_append"] == 2 * LLAMA_3_2_1B.layers
    # Decode lm_head runs over one token per sequence; prefill over all.
    prefill = build_graph(LLAMA_3_2_1B, 2, 512)
    decode_head = graph.ops[-1]
    prefill_head = prefill.ops[-1]
    assert decode_head.flops < prefill_head.flops / 100


def test_decode_requires_context_len():
    with pytest.raises(ConfigurationError):
        build_graph(GPT2, 1, 1, phase=Phase.DECODE)


def test_encoder_has_no_decode_phase():
    with pytest.raises(ConfigurationError):
        build_graph(BERT_BASE, 1, 1, phase=Phase.DECODE, context_len=64)


def test_nonpositive_shapes_rejected():
    with pytest.raises(ConfigurationError):
        build_graph(BERT_BASE, 0, 128)
    with pytest.raises(ConfigurationError):
        build_graph(BERT_BASE, 1, 0)


def test_bert_and_xlmr_streams_are_isomorphic():
    bert = build_graph(BERT_BASE, 1, 128)
    xlmr = build_graph(XLM_ROBERTA_BASE, 1, 128)
    assert [op.kind for op in bert.ops] == [op.kind for op in xlmr.ops]


def test_graph_metadata():
    graph = build_graph(GPT2, 4, 256)
    assert graph.model_name == "gpt2"
    assert graph.batch_size == 4
    assert graph.seq_len == 256
    assert graph.phase is Phase.PREFILL
