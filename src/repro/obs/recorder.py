"""RunRecorder — the serving/engine layers' write interface for observability.

A recorder is passed (optionally) into any serving simulation or engine run.
It appends structured events — request lifecycle spans and per-step engine
invocations — and maintains the standard serving histograms (TTFT, TBT,
batch size, queue depth, per-kind step latency) plus counters. Everything is
O(1) per call; simulations that do not pass a recorder pay nothing.

The recorded run can then be:

* summarized (:meth:`RunRecorder.summary`) into percentile tables;
* rendered as an ASCII timeline (:func:`repro.viz.render_serving_timeline`);
* exported as a Chrome trace (:func:`repro.obs.recording_to_trace` followed
  by :func:`repro.trace.chrome.dump`) that SKIP analyzes unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import AnalysisError
from repro.obs.events import EngineShape, RequestSpan, StepEvent, StepKind
from repro.obs.stats import CounterSet, Histogram, HistogramSummary
from repro.units import format_ns

if TYPE_CHECKING:  # repro.kvcache imports the recorder type for its hooks.
    from repro.kvcache.events import KvCacheEvent

#: Histogram names maintained by the recorder.
H_TTFT = "ttft_ns"
H_TBT = "tbt_ns"
H_QUEUE_WAIT = "queue_wait_ns"
H_BATCH_SIZE = "batch_size"
H_QUEUE_DEPTH = "queue_depth"
H_LAUNCH_QUEUE = "launch_queue_depth"
H_LAUNCH_DELAY = "kernel_launch_delay_ns"


@dataclass(frozen=True)
class RunSummary:
    """Percentile summaries and counters for one recorded run."""

    requests_completed: int
    steps: int
    span_ns: float
    histograms: dict[str, HistogramSummary]
    counters: dict[str, float]

    def render(self, title: str = "serving run") -> str:
        """Human-readable summary block."""
        lines = [title, "-" * len(title),
                 f"requests completed : {self.requests_completed}",
                 f"engine steps       : {self.steps}",
                 f"timeline span      : {format_ns(self.span_ns)}"]
        labels = {H_TTFT: "TTFT", H_TBT: "TBT", H_QUEUE_WAIT: "queue wait",
                  H_LAUNCH_DELAY: "launch delay"}
        for name, summary in sorted(self.histograms.items()):
            label = labels.get(name, name.removesuffix("_ns"))
            if name.endswith("_ns"):
                lines.append(
                    f"{label:<18} : mean {format_ns(summary.mean)}"
                    f"  p50 {format_ns(summary.p50)}"
                    f"  p99 {format_ns(summary.p99)}")
            else:
                lines.append(
                    f"{label:<18} : mean {summary.mean:.1f}"
                    f"  p50 {summary.p50:.0f}  max {summary.maximum:.0f}")
        for name, value in sorted(self.counters.items()):
            lines.append(f"{name:<18} : {value:.0f}")
        return "\n".join(lines)


@dataclass
class AggregateTotals:
    """Exact whole-population sums and counts.

    Maintained for **every** request even when per-request recording is
    sampled (``RunRecorder.sample_every > 1``), so sampled runs report the
    same aggregate load/latency totals as fully recorded ones — only the
    per-request spans and histogram populations thin out.
    """

    requests_admitted: int = 0
    requests_completed: int = 0
    tokens_generated: int = 0
    queue_wait_sum_ns: float = 0.0
    ttft_sum_ns: float = 0.0
    ttft_count: int = 0
    tbt_sum_ns: float = 0.0
    tbt_count: int = 0


@dataclass
class RunRecorder:
    """Low-overhead structured-event recorder for serving/engine runs.

    ``sample_every=k`` records full per-request detail (spans plus the
    queue-wait/TTFT/TBT histogram observations) for one request in ``k``
    (``request_id % k == 0``) while :attr:`aggregates` and the counters stay
    exact over all requests — ~1/k the trace volume, identical aggregate
    numbers. ``k=1`` (the default) records everything and is bit-identical
    to the pre-sampling recorder. Engine steps and KV events are never
    sampled: they are per-step, not per-request, and the timeline depends
    on them.
    """

    steps: list[StepEvent] = field(default_factory=list)
    spans: dict[int, RequestSpan] = field(default_factory=dict)
    counters: CounterSet = field(default_factory=CounterSet)
    kv_events: list[KvCacheEvent] = field(default_factory=list)
    kv_pools: dict[int, dict] = field(default_factory=dict)
    routing: list[dict] = field(default_factory=list)
    cluster_meta: dict = field(default_factory=dict)
    host_meta: dict = field(default_factory=dict)
    host_grants: list[dict] = field(default_factory=list)
    sample_every: int = 1
    aggregates: AggregateTotals = field(default_factory=AggregateTotals)
    _histograms: dict[str, Histogram] = field(default_factory=dict, repr=False)
    _last_token_ns: dict[int, float] = field(default_factory=dict, repr=False)
    _arrivals: dict[int, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise AnalysisError("sample_every must be at least 1")

    def _sampled(self, request_id: int) -> bool:
        return self.sample_every == 1 or request_id % self.sample_every == 0

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def on_admitted(self, request_id: int, arrival_ns: float,
                    admitted_ns: float) -> None:
        """A request left the queue and entered a prefill batch."""
        if admitted_ns < arrival_ns:
            raise AnalysisError(
                f"request {request_id} admitted before it arrived")
        self._arrivals[request_id] = arrival_ns
        self.aggregates.requests_admitted += 1
        self.aggregates.queue_wait_sum_ns += admitted_ns - arrival_ns
        self.counters.add("requests_admitted")
        if self._sampled(request_id):
            self.spans[request_id] = RequestSpan(
                request_id=request_id, arrival_ns=arrival_ns,
                admitted_ns=admitted_ns)
            self.histogram(H_QUEUE_WAIT).observe(admitted_ns - arrival_ns)

    def on_first_token(self, request_id: int, ts_ns: float) -> None:
        """A request produced its first token (end of its prefill)."""
        arrival = self._arrivals.get(request_id)
        if arrival is None:
            raise AnalysisError(
                f"request {request_id} has no recorded admission")
        self._last_token_ns[request_id] = ts_ns
        self.aggregates.ttft_sum_ns += ts_ns - arrival
        self.aggregates.ttft_count += 1
        if self._sampled(request_id):
            span = self._span(request_id)
            span.first_token_ns = ts_ns
            self.histogram(H_TTFT).observe(ts_ns - span.arrival_ns)

    def on_token(self, request_id: int, ts_ns: float) -> None:
        """A request produced one decode token; feeds the TBT histogram."""
        last = self._last_token_ns.get(request_id)
        if last is not None:
            self.aggregates.tbt_sum_ns += ts_ns - last
            self.aggregates.tbt_count += 1
            if self._sampled(request_id):
                self.histogram(H_TBT).observe(ts_ns - last)
        self._last_token_ns[request_id] = ts_ns
        self.aggregates.tokens_generated += 1
        self.counters.add("tokens_generated")

    def on_completed(self, request_id: int, ts_ns: float) -> None:
        """A request finished generating."""
        if self._sampled(request_id):
            span = self._span(request_id)
            span.completed_ns = ts_ns
        self._last_token_ns.pop(request_id, None)
        self._arrivals.pop(request_id, None)
        self.aggregates.requests_completed += 1
        self.counters.add("requests_completed")

    # ------------------------------------------------------------------
    # Engine steps
    # ------------------------------------------------------------------
    def record_step(
        self,
        kind: StepKind,
        ts_ns: float,
        dur_ns: float,
        batch_size: int,
        queue_depth: int = 0,
        shape: EngineShape | None = None,
        replica: int = 0,
    ) -> StepEvent:
        """Record one engine invocation on the serving timeline."""
        step = StepEvent(index=len(self.steps), kind=kind, ts_ns=ts_ns,
                         dur_ns=dur_ns, batch_size=batch_size,
                         queue_depth=queue_depth, shape=shape,
                         replica=replica)
        self.steps.append(step)
        self.histogram(H_BATCH_SIZE).observe(float(batch_size))
        self.histogram(H_QUEUE_DEPTH).observe(float(queue_depth))
        self.histogram(f"step_{kind.value}_ns").observe(dur_ns)
        self.counters.add(f"steps_{kind.value}")
        return step

    # ------------------------------------------------------------------
    # KV-cache pressure (repro.kvcache hooks)
    # ------------------------------------------------------------------
    def on_kv_pool(self, replica: int, capacity_blocks: int, policy: str,
                   block_tokens: int) -> None:
        """Register one replica's KV pool geometry (exported as metadata)."""
        self.kv_pools[replica] = {
            "capacity_blocks": capacity_blocks,
            "policy": policy,
            "block_tokens": block_tokens,
        }

    def on_kv_event(self, event: KvCacheEvent) -> None:
        """Mirror one KV-pool event; counts pressure actions."""
        self.kv_events.append(event)
        if event.kind in ("preempt", "swap_out", "swap_in",
                          "prefix_alloc", "prefix_ref", "prefix_free"):
            self.counters.add(f"kv_{event.kind}")

    # ------------------------------------------------------------------
    # Cluster routing (repro.serving.cluster hooks)
    # ------------------------------------------------------------------
    def on_cluster(self, policy: str, replicas: int,
                   request_ids: list[int]) -> None:
        """Register a cluster run's shape (exported as ``cluster`` metadata,
        the conservation baseline rule R001 checks routing against)."""
        self.cluster_meta = {
            "policy": policy,
            "replicas": replicas,
            "request_ids": list(request_ids),
        }

    def on_routed(self, request_id: int, replica: int, ts_ns: float,
                  session: str | None = None,
                  tenant: str | None = None) -> None:
        """Mirror one routing decision (replayed by rules R001/R002)."""
        self.routing.append({
            "request_id": request_id,
            "replica": replica,
            "ts_ns": ts_ns,
            "session": session,
            "tenant": tenant,
        })
        self.counters.add("requests_routed")

    # ------------------------------------------------------------------
    # Host CPU contention (repro.host hooks)
    # ------------------------------------------------------------------
    def on_host(self, meta: dict) -> None:
        """Register the host topology (exported as ``host`` metadata, the
        baseline the N-rules replay grants against). Called once when the
        host attaches and again at end of run so per-core busy totals are
        final; re-registration overwrites."""
        self.host_meta = dict(meta)

    def on_host_grant(self, owner: str, core: int, domain: int,
                      start_ns: float, end_ns: float, cpu_ns: float,
                      remote: bool, requested_ns: float) -> None:
        """Mirror one core-time grant (replayed by rules N001–N004)."""
        self.host_grants.append({
            "owner": owner,
            "core": core,
            "domain": domain,
            "start_ns": start_ns,
            "end_ns": end_ns,
            "cpu_ns": cpu_ns,
            "remote": remote,
            "requested_ns": requested_ns,
        })
        self.counters.add("host_grants")
        if remote:
            self.counters.add("host_remote_grants")

    def observe_launch_queue(self, depth: int) -> None:
        """Sample the CUDA launch-queue occupancy (executor hook)."""
        self.histogram(H_LAUNCH_QUEUE).observe(float(depth))

    def observe_launch_delay(self, delay_ns: float) -> None:
        """Sample one kernel's launch-to-start delay (the paper's t_l)."""
        self.histogram(H_LAUNCH_DELAY).observe(delay_ns)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    @property
    def span_ns(self) -> float:
        """Serving-clock span covered by the recorded steps."""
        if not self.steps:
            return 0.0
        return (max(s.ts_end_ns for s in self.steps)
                - min(s.ts_ns for s in self.steps))

    def completed_spans(self) -> list[RequestSpan]:
        """Spans of completed requests, by completion time."""
        done = [s for s in self.spans.values() if s.complete]
        done.sort(key=lambda s: s.completed_ns)
        return done

    def summary(self) -> RunSummary:
        """Summarize every non-empty histogram plus the counters.

        Sampled runs (``sample_every > 1``) report the exact completion
        count from the whole-population aggregates; fully recorded runs
        keep counting completed spans, preserving the historical output
        bit for bit.
        """
        completed = (self.aggregates.requests_completed
                     if self.sample_every > 1 else len(self.completed_spans()))
        return RunSummary(
            requests_completed=completed,
            steps=len(self.steps),
            span_ns=self.span_ns,
            histograms={name: h.summary()
                        for name, h in self._histograms.items()
                        if not h.empty},
            counters=self.counters.as_dict(),
        )

    def _span(self, request_id: int) -> RequestSpan:
        try:
            return self.spans[request_id]
        except KeyError:
            raise AnalysisError(
                f"request {request_id} has no recorded admission") from None
