"""Golden-file harness for the paper-figure regression tests.

A golden test computes a small JSON-able summary of one paper figure and
compares it against the committed file in ``tests/golden/data/`` within a
relative tolerance. Running pytest with ``--update-golden`` rewrites the
files from the current simulator output instead (the test then skips, so a
regeneration run never silently "passes" a comparison it did not make).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import pytest

DATA_DIR = Path(__file__).parent / "data"

#: Relative tolerance for float comparisons. The simulator is deterministic,
#: so goldens reproduce near-exactly on any platform; the slack only covers
#: float summation differences across Python/libm builds.
DEFAULT_RTOL = 1e-6


def _compare(path: str, expected, actual, rtol: float,
             errors: list[str]) -> None:
    if isinstance(expected, dict) and isinstance(actual, dict):
        if set(expected) != set(actual):
            errors.append(f"{path}: keys {sorted(expected)} != "
                          f"{sorted(actual)}")
            return
        for key in expected:
            _compare(f"{path}.{key}", expected[key], actual[key], rtol,
                     errors)
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            errors.append(f"{path}: length {len(expected)} != {len(actual)}")
            return
        for i, (e, a) in enumerate(zip(expected, actual)):
            _compare(f"{path}[{i}]", e, a, rtol, errors)
    elif isinstance(expected, float) or isinstance(actual, float):
        if actual != pytest.approx(expected, rel=rtol, abs=1e-12):
            errors.append(f"{path}: {actual!r} != golden {expected!r} "
                          f"(rtol={rtol})")
    elif expected != actual:
        errors.append(f"{path}: {actual!r} != golden {expected!r}")


@dataclass(frozen=True)
class GoldenChecker:
    """Compares a computed summary against one committed golden JSON."""

    update: bool

    def check(self, name: str, actual, rtol: float = DEFAULT_RTOL) -> None:
        """Assert ``actual`` matches ``data/<name>.json`` within ``rtol``.

        With ``--update-golden`` the file is rewritten and the test skips.
        """
        path = DATA_DIR / f"{name}.json"
        # Round-trip through JSON so tuples/ints normalize exactly the way
        # the committed file stores them.
        actual = json.loads(json.dumps(actual))
        if self.update:
            DATA_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(actual, indent=2, sort_keys=True)
                            + "\n")
            pytest.skip(f"updated golden {path.name}")
        if not path.exists():
            pytest.fail(f"golden file {path} missing; run pytest "
                        f"tests/golden --update-golden to create it")
        expected = json.loads(path.read_text())
        errors: list[str] = []
        _compare(name, expected, actual, rtol, errors)
        if errors:
            shown = "\n  ".join(errors[:20])
            pytest.fail(f"golden mismatch for {path.name} "
                        f"({len(errors)} differences):\n  {shown}\n"
                        f"If the change is intentional, regenerate with "
                        f"pytest tests/golden --update-golden")


@pytest.fixture
def golden(request: pytest.FixtureRequest) -> GoldenChecker:
    return GoldenChecker(update=request.config.getoption("--update-golden"))
