"""Table V — nullKernel launch overhead and duration per platform."""

import pytest

from _harness import report, run_once
from repro.hardware import PAPER_PLATFORMS, nullkernel_table
from repro.viz import render_table

PAPER_ROWS = {
    "AMD+A100": (2260.5, 1440.0),
    "Intel+H100": (2374.6, 1235.2),
    "GH200": (2771.6, 1171.2),
}


def test_table5_nullkernel(benchmark):
    results = run_once(benchmark, nullkernel_table, PAPER_PLATFORMS,
                       samples=1000)
    rows = []
    for result in results:
        paper_overhead, paper_duration = PAPER_ROWS[result.platform]
        rows.append([
            result.platform,
            f"{result.launch_overhead_ns:.1f}",
            f"{paper_overhead:.1f}",
            f"{result.duration_ns:.1f}",
            f"{paper_duration:.1f}",
        ])
    report(render_table(
        ["platform", "launch ovh (ns)", "paper", "duration (ns)", "paper"],
        rows, title="Table V: cudaLaunch nullKernel overhead / duration"))

    for result in results:
        paper_overhead, paper_duration = PAPER_ROWS[result.platform]
        assert result.launch_overhead_ns == pytest.approx(paper_overhead)
        assert result.duration_ns == pytest.approx(paper_duration)
