"""RAG pipeline composition."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware import INTEL_H100
from repro.retrieval import BruteForceIndex
from repro.serving import LatencyModel, RagPipeline
from repro.workloads import LLAMA_3_2_1B


@pytest.fixture(scope="module")
def rag():
    rng = np.random.default_rng(0)
    index = BruteForceIndex(dim=32)
    index.add(rng.normal(size=(256, 32)))
    return RagPipeline(index, LLAMA_3_2_1B, LatencyModel(INTEL_H100),
                       tokens_per_chunk=128, top_k=4)


def test_query_latency_components(rag):
    rng = np.random.default_rng(1)
    result = rag.query(rng.normal(size=32))
    assert result.retrieval_ns > 0
    assert result.ttft_ns > 0
    assert result.generation_ns > result.ttft_ns
    assert result.user_ttft_ns == pytest.approx(
        result.retrieval_ns + result.ttft_ns)
    assert result.total_ns == pytest.approx(
        result.retrieval_ns + result.generation_ns)


def test_context_token_accounting(rag):
    rng = np.random.default_rng(2)
    result = rag.query(rng.normal(size=32))
    assert result.context_tokens == 4 * 128


def test_batching_raises_user_ttft(rag):
    rng = np.random.default_rng(3)
    single = rag.query(rng.normal(size=32), batch_size=1)
    batched = rag.query(rng.normal(size=(16, 32)), batch_size=16)
    assert batched.ttft_ns > single.ttft_ns


def test_default_batch_is_query_count(rag):
    rng = np.random.default_rng(4)
    result = rag.query(rng.normal(size=(8, 32)))
    assert result.batch_size == 8


def test_validation(rag):
    rng = np.random.default_rng(5)
    with pytest.raises(ConfigurationError):
        rag.query(rng.normal(size=32), batch_size=0)
    with pytest.raises(ConfigurationError):
        RagPipeline(rag.index, LLAMA_3_2_1B, rag.latency, tokens_per_chunk=0)
