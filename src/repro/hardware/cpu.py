"""CPU model.

The paper attributes low-batch inference latency to two CPU-side costs:

* **framework dispatch** — the CPU time to run each framework operator
  (Python/ATen dispatch, shape checks, allocator work). This dominates
  CPU-bound latency and is where the Grace CPU's "relatively lower CPU
  performance and/or less advanced software stack" (Section V-D) shows up.
* **runtime-call cost** — the CPU portion of ``cudaLaunchKernel``, part of the
  nullKernel launch overhead of Table V.

Both are modeled as reference costs divided by per-CPU performance scores.
The two scores are deliberately separate: the launch path exercises the
driver/uncore, while dispatch exercises the core plus the software stack, and
the paper's own data shows they rank platforms differently (AMD has the
*lowest* launch overhead but not the lowest dispatch latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: CPU-side cost of one cudaLaunchKernel call on the reference CPU
#: (Intel Xeon Platinum 8468V), in nanoseconds.
REFERENCE_RUNTIME_CALL_NS = 1254.6

# Per-operator reference dispatch costs live in
# repro.workloads.ops.DISPATCH_COST_NS (10-25 us per ATen op on the reference
# CPU: Python bindings, dispatcher, shape checks, allocator). They are
# calibrated so BS=1 BERT prefill latency and the Fig. 6 transition batch
# sizes land in the paper's range.


@dataclass(frozen=True)
class CpuSpec:
    """A CPU package participating in a coupled platform.

    Attributes:
        name: Marketing name.
        isa: Instruction set ("x86_64" or "aarch64").
        cores: Physical core count (informational; the inference driver thread
            is single-threaded, as in eager PyTorch).
        base_clock_ghz / boost_clock_ghz: Clocks (informational).
        runtime_call_score: Relative speed of CUDA runtime calls
            (reference = 1.0; higher is faster).
        dispatch_score: Relative speed of framework operator dispatch,
            folding in single-thread performance *and* software-stack maturity
            (reference = 1.0; higher is faster).
        memory: Capacity in GiB (informational).
    """

    name: str
    isa: str
    cores: int
    base_clock_ghz: float
    boost_clock_ghz: float
    runtime_call_score: float
    dispatch_score: float
    memory_gib: int = 512

    def __post_init__(self) -> None:
        if self.runtime_call_score <= 0 or self.dispatch_score <= 0:
            raise ConfigurationError(f"{self.name}: performance scores must be positive")
        if self.cores <= 0:
            raise ConfigurationError(f"{self.name}: cores must be positive")

    @property
    def runtime_call_ns(self) -> float:
        """CPU-side duration of one ``cudaLaunchKernel`` call."""
        return REFERENCE_RUNTIME_CALL_NS / self.runtime_call_score

    def dispatch_ns(self, reference_cost_ns: float) -> float:
        """CPU time to dispatch an operator with the given reference cost."""
        if reference_cost_ns < 0:
            raise ConfigurationError("reference dispatch cost must be non-negative")
        return reference_cost_ns / self.dispatch_score
