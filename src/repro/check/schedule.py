"""Schedule hazard detector: static deadlock/ordering analysis.

Models the multi-device execution statically: each device's dispatch
process is an ordered list of kernel issues and collective joins
(:class:`DeviceSchedule`), exactly the order
:mod:`repro.engine.processes` walks at run time. Because the simulator's
collectives are rendezvous barriers released only when *every* party has
joined, hazards are decidable without running anything:

* a **wait-for cycle** between collectives (device A joins X before Y,
  device B joins Y before X) hangs both devices;
* a collective whose **declared party count** disagrees across devices, or
  does not match the devices that actually join it, either hangs or
  over-fills the rendezvous;
* any event scheduled **after** a hanging collective is unreachable;
* a collective placed on a **different stream** than the device's compute
  stream breaks the in-order guarantee the engine relies on (the collective
  could start before the kernels queued ahead of it).

:func:`schedules_from_lowering` derives the schedules the engine would run
for a sharded lowering, so the CLI can verify every catalog model's TP
schedule; :func:`schedules_from_serving` lifts a finished serving run's
per-replica issue lists, :func:`schedules_from_trace` reconstructs schedules
from an exported Chrome trace, and tests hand-build adversarial schedules
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.check.findings import Finding, Severity, register_rule
from repro.engine.lowering import LoweredOp
from repro.engine.tp import TPConfig

if TYPE_CHECKING:
    from repro.serving.runtime import EngineSession
    from repro.trace.trace import Trace

#: Kernel-name prefix that marks a cross-device collective in traces
#: (mirrors ``repro.engine.lowering``'s all-reduce kernel naming).
COLLECTIVE_KERNEL_PREFIX = "ncclDevKernel"

S001 = register_rule(
    "S001", "schedule", "collective wait-for cycle (rendezvous deadlock)")
S002 = register_rule(
    "S002", "schedule", "collective party count disagrees across devices")
S003 = register_rule(
    "S003", "schedule", "collective participants do not match its party count")
S004 = register_rule(
    "S004", "schedule", "device joins the same collective twice")
S005 = register_rule(
    "S005", "schedule", "events unreachable behind a hanging collective")
S006 = register_rule(
    "S006", "schedule", "collective scheduled off the device's compute stream")

#: Stream id of every device's compute stream (mirrors ``SimCore.add_device``).
COMPUTE_STREAM = 7


@dataclass(frozen=True)
class KernelIssue:
    """One kernel submission in a device's static schedule."""

    name: str
    stream: int = COMPUTE_STREAM


@dataclass(frozen=True)
class CollectiveJoin:
    """One rendezvous join in a device's static schedule."""

    key: str
    parties: int
    stream: int = COMPUTE_STREAM


ScheduleItem = KernelIssue | CollectiveJoin


@dataclass
class DeviceSchedule:
    """The ordered work one device's dispatch process performs."""

    device: int
    items: list[ScheduleItem] = field(default_factory=list)

    def collectives(self) -> list[CollectiveJoin]:
        return [item for item in self.items
                if isinstance(item, CollectiveJoin)]


def schedules_from_lowering(lowered: list[LoweredOp],
                            tp: TPConfig) -> list[DeviceSchedule]:
    """The per-device schedules the engine runs for a sharded lowering.

    All devices execute the same op stream (TP devices are symmetric), so
    each device's schedule is the kernel stream with collectives keyed by
    their program position — the same rendezvous keys
    :func:`repro.engine.processes._device_dispatch_process` derives — plus
    the end-of-iteration barrier.
    """
    world = max(1, tp.degree)
    schedules = []
    for device in range(world):
        items: list[ScheduleItem] = []
        for op_index, lowered_op in enumerate(lowered):
            for kernel_index, kernel in enumerate(lowered_op.kernels):
                if kernel.is_collective and world > 1:
                    items.append(CollectiveJoin(
                        key=f"allreduce@{op_index}.{kernel_index}",
                        parties=world))
                else:
                    items.append(KernelIssue(kernel.name))
        if world > 1:
            items.append(CollectiveJoin(key="iteration-end", parties=world))
        schedules.append(DeviceSchedule(device=device, items=items))
    return schedules


def schedules_from_serving(
        sessions: Iterable[EngineSession]) -> list[DeviceSchedule]:
    """The per-device schedules a finished serving run actually issued.

    :class:`~repro.serving.runtime.EngineSession` appends plain
    ``("kernel", name)`` / ``("join", key, parties)`` tuples as its policy
    process executes (the serving layer stays import-free of the checker);
    this lifts them into typed schedules so ``check_schedules`` can verify
    the run the same way it verifies engine lowerings.
    """
    schedules: list[DeviceSchedule] = []
    for session in sessions:
        for device in session.devices:
            items: list[ScheduleItem] = []
            for entry in session.schedule_items[device.index]:
                if entry[0] == "kernel":
                    items.append(KernelIssue(name=entry[1]))
                elif entry[0] == "join":
                    items.append(CollectiveJoin(key=entry[1],
                                                parties=entry[2]))
                else:
                    raise ValueError(
                        f"unknown serving schedule item: {entry!r}")
            schedules.append(DeviceSchedule(device=device.index, items=items))
    return schedules


def schedules_from_trace(trace: Trace) -> list[DeviceSchedule]:
    """Reconstruct per-device schedules from an exported Chrome trace.

    Kernels on each device become :class:`KernelIssue` entries in execution
    order. Collective kernels (``ncclDevKernel...``) are grouped into
    rendezvous by simultaneity — collective kernels sharing a name and a
    start instant are one collective — with the party count inferred from
    the group size. Because parties are inferred from the joiners, rule
    S003 cannot fire on trace-derived schedules; the value of this view is
    the ordering, cycle, duplicate-join, and stream checks.
    """
    collective_group: dict[tuple[str, float], str] = {}
    group_parties: dict[str, int] = {}
    collectives = sorted(
        (k for k in trace.kernels
         if k.name.startswith(COLLECTIVE_KERNEL_PREFIX)),
        key=lambda k: (k.ts, k.device, k.event_id))
    for kernel in collectives:
        group = collective_group.get((kernel.name, kernel.ts))
        if group is None:
            group = f"{kernel.name}@{len(group_parties)}"
            collective_group[(kernel.name, kernel.ts)] = group
            group_parties[group] = 0
        group_parties[group] += 1

    devices = sorted({k.device for k in trace.kernels})
    schedules = []
    for device in devices:
        items: list[ScheduleItem] = []
        ordered = sorted((k for k in trace.kernels if k.device == device),
                         key=lambda k: (k.ts, k.event_id))
        for kernel in ordered:
            group = collective_group.get((kernel.name, kernel.ts))
            if group is not None:
                items.append(CollectiveJoin(key=group,
                                            parties=group_parties[group],
                                            stream=kernel.stream))
            else:
                items.append(KernelIssue(kernel.name, stream=kernel.stream))
        schedules.append(DeviceSchedule(device=device, items=items))
    return schedules


def _find_cycle(edges: dict[str, set[str]]) -> list[str] | None:
    """One cycle in a directed graph, as a node path, or None.

    Iterative DFS: serving traces chain one collective per decode step, so
    the graph can be tens of thousands of nodes deep — far past Python's
    recursion limit.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    path: list[str] = []

    for root in sorted(edges):
        if color[root] != WHITE:
            continue
        # Stack of (node, iterator over its successors).
        stack = [(root, iter(sorted(edges.get(root, ()))))]
        color[root] = GRAY
        path.append(root)
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                state = color.get(succ, WHITE)
                if state == GRAY:
                    return path[path.index(succ):] + [succ]
                if state == WHITE:
                    color[succ] = GRAY
                    path.append(succ)
                    stack.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None


def check_schedules(schedules: list[DeviceSchedule]) -> list[Finding]:
    """Statically detect rendezvous/ordering hazards in device schedules."""
    findings: list[Finding] = []
    world = len(schedules)

    # Per-collective bookkeeping: declared party counts and joining devices.
    declared: dict[str, set[int]] = {}
    joiners: dict[str, list[int]] = {}
    for schedule in schedules:
        seen: set[str] = set()
        for item in schedule.collectives():
            declared.setdefault(item.key, set()).add(item.parties)
            joiners.setdefault(item.key, []).append(schedule.device)
            if item.key in seen:
                findings.append(Finding(
                    S004, Severity.ERROR, f"device {schedule.device}",
                    f"collective {item.key!r} joined twice by the same "
                    f"dispatch process"))
            seen.add(item.key)
            if item.stream != COMPUTE_STREAM:
                findings.append(Finding(
                    S006, Severity.ERROR, f"device {schedule.device}",
                    f"collective {item.key!r} scheduled on stream "
                    f"{item.stream}, not the compute stream "
                    f"{COMPUTE_STREAM}: in-order semantics with queued "
                    f"kernels are lost"))

    hanging: set[str] = set()
    for key in sorted(declared):
        parties = declared[key]
        if len(parties) > 1:
            findings.append(Finding(
                S002, Severity.ERROR, f"collective {key}",
                f"party count declared inconsistently across devices: "
                f"{sorted(parties)}"))
            hanging.add(key)
            continue
        (count,) = parties
        participants = len(joiners[key])
        if participants != count:
            findings.append(Finding(
                S003, Severity.ERROR, f"collective {key}",
                f"{participants} of {world} devices join but the "
                f"rendezvous waits for {count} parties"))
            if participants < count:
                hanging.add(key)

    # Wait-for graph: on each device, a later collective cannot be joined
    # until every earlier one released. A cycle means two devices block on
    # each other's collectives forever.
    edges: dict[str, set[str]] = {key: set() for key in declared}
    for schedule in schedules:
        order = [item.key for item in schedule.collectives()]
        for earlier, later in zip(order, order[1:]):
            if earlier != later:
                edges[earlier].add(later)
    cycle = _find_cycle(edges)
    if cycle is not None:
        findings.append(Finding(
            S001, Severity.ERROR, f"collective {cycle[0]}",
            "wait-for cycle between collectives: " + " -> ".join(cycle)))
        hanging.update(cycle[:-1])

    # Everything scheduled behind a hanging collective never executes.
    for schedule in schedules:
        for index, item in enumerate(schedule.items):
            if isinstance(item, CollectiveJoin) and item.key in hanging:
                behind = len(schedule.items) - index - 1
                if behind:
                    findings.append(Finding(
                        S005, Severity.ERROR, f"device {schedule.device}",
                        f"{behind} event(s) unreachable behind hanging "
                        f"collective {item.key!r}"))
                break
    return findings
