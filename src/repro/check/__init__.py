"""``repro.check`` — static verifiers for the artifacts analyses trust.

Four pure passes (no simulation run required):

* **graph** (:mod:`repro.check.graph`) — dataflow and conservation laws
  over lowered kernel graphs and the TP sharding pass (rules ``G...``);
* **schedule** (:mod:`repro.check.schedule`) — rendezvous deadlocks,
  party-count mismatches, and unreachable work in multi-device schedules
  (rules ``S...``);
* **trace** (:mod:`repro.check.tracelint`) — Chrome-trace/sidecar linting
  and recomputed SKIP metric identities (rules ``T...``);
* **code** (:mod:`repro.check.code`) — repo-specific AST lint over
  ``src/repro`` (rules ``C...``);
* **kv** (:mod:`repro.check.kvrules`) — replay of the paged KV-pool
  event log against leak/over-commit/residency invariants (rules ``K...``).

All passes report :class:`Finding` records with stable rule ids; the
``repro check`` CLI aggregates them into a :class:`CheckReport`.
"""

from repro.check.code import lint_path, lint_source
from repro.check.findings import (
    CheckReport,
    Finding,
    RULES,
    Rule,
    Severity,
    register_rule,
)
from repro.check.graph import check_lowering, check_sharding
from repro.check.kvrules import check_kv_events, check_kv_metadata
from repro.check.runner import (
    DEFAULT_CHECK_DEGREES,
    check_serving_schedules,
    check_source,
    check_trace_files,
    check_trace_schedules,
    check_workload_graphs,
    check_workload_schedules,
)
from repro.check.schedule import (
    CollectiveJoin,
    DeviceSchedule,
    KernelIssue,
    check_schedules,
    schedules_from_lowering,
    schedules_from_pp,
    schedules_from_serving,
    schedules_from_trace,
)
from repro.check.tracelint import lint_chrome_file, lint_chrome_text, lint_trace

__all__ = [
    "CheckReport",
    "CollectiveJoin",
    "DEFAULT_CHECK_DEGREES",
    "DeviceSchedule",
    "Finding",
    "KernelIssue",
    "RULES",
    "Rule",
    "Severity",
    "check_kv_events",
    "check_kv_metadata",
    "check_lowering",
    "check_schedules",
    "check_serving_schedules",
    "check_sharding",
    "check_source",
    "check_trace_files",
    "check_trace_schedules",
    "check_workload_graphs",
    "check_workload_schedules",
    "lint_chrome_file",
    "lint_chrome_text",
    "lint_path",
    "lint_source",
    "lint_trace",
    "register_rule",
    "schedules_from_lowering",
    "schedules_from_pp",
    "schedules_from_serving",
    "schedules_from_trace",
]
