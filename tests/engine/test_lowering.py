"""Operator -> kernel lowering rules."""

import pytest

from repro.engine.lowering import (
    gemm_kernel_name,
    kernel_count,
    lower_graph,
    lower_op,
)
from repro.workloads import BERT_BASE, GPT2, LLAMA_3_2_1B, OpKind, build_graph
from repro.workloads import ops


def test_bias_linear_lowers_to_gemm_plus_epilogue():
    lowered = lower_op(ops.linear("fc", 16, 32, 64, bias=True))
    names = [k.name for k in lowered.kernels]
    assert len(names) == 2
    assert "gemm" in names[0]
    assert "splitKreduce" in names[1]


def test_unbiased_linear_is_single_gemm():
    lowered = lower_op(ops.linear("fc", 16, 32, 64, bias=False))
    assert len(lowered.kernels) == 1


def test_linear_work_is_conserved():
    op = ops.linear("fc", 16, 32, 64, bias=True)
    lowered = lower_op(op)
    assert sum(k.flops for k in lowered.kernels) == pytest.approx(op.flops)


def test_view_op_lowers_to_nothing():
    lowered = lower_op(ops.transpose_view("t", 100))
    assert lowered.kernels == ()


def test_gelu_fanout_produces_distinct_stage_kernels():
    op = ops.elementwise(OpKind.GELU, "g", elements=1000, fanout=8)
    lowered = lower_op(op)
    assert len(lowered.kernels) == 8
    assert len({k.name for k in lowered.kernels}) >= 4
    assert sum(k.flops for k in lowered.kernels) == pytest.approx(op.flops)


def test_rope_lowers_to_three_stages():
    lowered = lower_op(ops.rope("r", 16, 64))
    assert len(lowered.kernels) == 3


def test_embedding_variant_by_table_size():
    large = lower_op(ops.embedding("w", 16, 64, num_embeddings=50_000))
    small = lower_op(ops.embedding("p", 16, 64, num_embeddings=512))
    assert "Large" in large.kernels[0].name
    assert "Small" in small.kernels[0].name


def test_gemm_name_buckets_by_shape():
    assert gemm_kernel_name(32, 768, 768) != gemm_kernel_name(512, 768, 768)
    assert gemm_kernel_name(512, 768, 768) == gemm_kernel_name(600, 768, 768)


def test_gemm_name_batched_variant():
    assert "bmm" in gemm_kernel_name(64, 64, 64, batched=True)
    assert "bmm" not in gemm_kernel_name(64, 64, 64)


def test_flash_kernel_name_includes_head_dim():
    lowered = lower_op(ops.sdpa_flash("f", 12, 128, 128, 64))
    assert "hdim64" in lowered.kernels[0].name


def test_kernel_counts_for_paper_models():
    """Fusion results depend on these counts; pin them.

    XLM-R's K_eager ~= 300 yields the paper's ~6.8x ideal speedup at L=256
    (300/45); GPT-2's ~413 yields ~2.7x (413/158).
    """
    assert kernel_count(build_graph(BERT_BASE, 1, 512)) == 300
    assert kernel_count(build_graph(GPT2, 1, 512)) == 413
    assert kernel_count(build_graph(LLAMA_3_2_1B, 1, 512)) == 421


def test_kernel_count_is_batch_invariant():
    """Prefill kernel count does not change with batch size — the reason
    TKLQT is flat in the CPU-bound region (Section V-B)."""
    for batch in (1, 4, 32):
        assert kernel_count(build_graph(BERT_BASE, batch, 512)) == 300


def test_lower_graph_covers_every_op():
    graph = build_graph(GPT2, 1, 128)
    lowered = lower_graph(graph)
    assert len(lowered) == len(graph.ops)
    for entry in lowered:
        if entry.op.launches_kernel:
            assert len(entry.kernels) >= 1
        else:
            assert entry.kernels == ()


def test_gemm_variant_names_change_with_batch():
    """cuBLAS picks different tiles for different problem sizes — the reason
    Fig. 7a's unique-chain counts vary with batch size."""
    small = {k.name for lo in lower_graph(build_graph(BERT_BASE, 1, 32))
             for k in lo.kernels}
    large = {k.name for lo in lower_graph(build_graph(BERT_BASE, 16, 512))
             for k in lo.kernels}
    assert small != large
