"""Cluster analyses: the prefix-caching crossover shift and router race."""

import pytest

from repro.analysis import (
    prefix_crossover_report,
    router_comparison_report,
    run_prefix_crossover,
    run_router_comparison,
)
from repro.errors import AnalysisError
from repro.hardware import PAPER_PLATFORMS, get_platform
from repro.serving.cluster import RouterPolicy
from repro.workloads import GPT2, LLAMA_3_2_1B

GH200 = get_platform("GH200")


# ----------------------------------------------------------------------
# Prefix-caching crossover (the headline result)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def crossover():
    return run_prefix_crossover(LLAMA_3_2_1B, PAPER_PLATFORMS)


def test_prefix_caching_shifts_the_crossover(crossover):
    """Locked: a COW hit defers the CPU-bound->GPU-bound transition to a
    strictly larger batch on every paper platform."""
    assert len(crossover.shifted_platforms()) >= 2
    for platform in PAPER_PLATFORMS:
        assert crossover.point(platform.name).shifted, platform.name


def test_crossover_curves_are_priced_not_asserted(crossover):
    for point in crossover.points:
        # Cached TTFT is strictly cheaper at every batch: the hit prefills
        # only the suffix.
        for uncached, cached in zip(point.uncached_ns, point.cached_ns):
            assert cached < uncached
        if point.uncached_transition and point.cached_transition:
            assert point.cached_transition > point.uncached_transition


def test_crossover_caches_whole_blocks_only(crossover):
    assert crossover.cached_tokens % 16 == 0
    assert crossover.cached_tokens <= crossover.prefix_len
    assert crossover.suffix_len == (crossover.prompt_len
                                    - crossover.cached_tokens)


def test_crossover_report_names_the_mechanism(crossover):
    text = prefix_crossover_report(crossover)
    for platform in PAPER_PLATFORMS:
        assert platform.name in text
    assert "launch tax" in text
    assert "SHIFTED" in text


def test_crossover_unknown_platform_raises(crossover):
    with pytest.raises(AnalysisError, match="no crossover sweep"):
        crossover.point("TPUv9")


@pytest.mark.parametrize("kwargs", [
    dict(platforms=[]),
    dict(prefix_len=512),            # not shorter than the prompt
    dict(prefix_len=0),
    dict(block_tokens=0),
    dict(prefix_len=8, block_tokens=16),   # covers no whole block
])
def test_crossover_validation(kwargs):
    base = dict(platforms=PAPER_PLATFORMS)
    base.update(kwargs)
    with pytest.raises(AnalysisError):
        run_prefix_crossover(LLAMA_3_2_1B, **base)


# ----------------------------------------------------------------------
# Router comparison
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def comparison():
    return run_router_comparison(GPT2, GH200)


def test_least_loaded_beats_round_robin(comparison):
    """Locked: load-aware placement outruns blind rotation on the
    canonical bursty, length-jittered stream."""
    rr = comparison.point(RouterPolicy.ROUND_ROBIN)
    ll = comparison.point(RouterPolicy.LEAST_LOADED)
    assert ll.tokens_per_s > rr.tokens_per_s
    assert ll.requests_completed == rr.requests_completed == \
        comparison.requests


def test_comparison_serves_the_same_stream_per_policy(comparison):
    for point in comparison.points:
        assert sum(point.routed_per_replica) == comparison.requests
        assert len(point.routed_per_replica) == comparison.replicas


def test_router_report_quantifies_the_win(comparison):
    text = router_comparison_report(comparison)
    assert "round-robin" in text
    assert "least-loaded" in text
    assert "x round-robin's tokens/s" in text


def test_comparison_requires_policies():
    with pytest.raises(AnalysisError, match="at least one router policy"):
        run_router_comparison(GPT2, GH200, policies=[])


def test_comparison_missing_policy_raises(comparison):
    with pytest.raises(AnalysisError, match="was not compared"):
        comparison.point(RouterPolicy.SESSION)
