"""Benchmark-session configuration."""

import os
import sys

# Make the sibling _harness module — and the repo root, for the shared
# seeded scenarios in tests/scenarios.py — importable regardless of
# invocation dir.
sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))


def pytest_terminal_summary(terminalreporter):
    """Print every regenerated table/figure after the test summary.

    Written through the terminal reporter so pytest's capture does not
    swallow the experiment output.
    """
    import _harness

    if not _harness.REPORTS:
        return
    terminalreporter.section("regenerated paper tables & figures")
    for block in _harness.REPORTS:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
