"""TraceBuilder invariants."""

import pytest

from repro.errors import TraceError
from repro.trace import TraceBuilder


def test_basic_build_produces_valid_trace():
    builder = TraceBuilder(metadata={"model": "toy"})
    builder.begin_iteration(0.0)
    op = builder.begin_operator("aten::linear", 0.0)
    builder.launch_kernel(1.0, 1.0, "gemm", 5.0, 3.0)
    builder.end_operator(op, 10.0)
    builder.end_iteration(12.0)
    trace = builder.finish()
    assert trace.metadata["model"] == "toy"
    assert len(trace.kernels) == 1
    assert trace.kernels[0].correlation_id == trace.launches[0].correlation_id


def test_correlation_ids_are_unique():
    builder = TraceBuilder()
    builder.begin_iteration(0.0)
    op = builder.begin_operator("op", 0.0)
    _, k1 = builder.launch_kernel(1.0, 1.0, "a", 2.0, 1.0)
    _, k2 = builder.launch_kernel(3.0, 1.0, "b", 4.0, 1.0)
    builder.end_operator(op, 5.0)
    builder.end_iteration(6.0)
    assert k1.correlation_id != k2.correlation_id


def test_nested_operator_scopes():
    builder = TraceBuilder()
    builder.begin_iteration(0.0)
    parent = builder.begin_operator("aten::linear", 0.0)
    child = builder.begin_operator("aten::addmm", 1.0)
    builder.launch_kernel(2.0, 1.0, "gemm", 4.0, 1.0)
    builder.end_operator(child, 5.0)
    builder.end_operator(parent, 6.0)
    builder.end_iteration(7.0)
    trace = builder.finish()
    assert len(trace.operators) == 2


def test_end_wrong_operator_raises():
    builder = TraceBuilder()
    parent = builder.begin_operator("p", 0.0)
    builder.begin_operator("c", 1.0)
    with pytest.raises(TraceError):
        builder.end_operator(parent, 5.0)


def test_operator_cannot_end_before_start():
    builder = TraceBuilder()
    op = builder.begin_operator("p", 10.0)
    with pytest.raises(TraceError):
        builder.end_operator(op, 5.0)


def test_kernel_cannot_start_before_launch():
    builder = TraceBuilder()
    with pytest.raises(TraceError):
        builder.launch_kernel(10.0, 1.0, "k", 5.0, 1.0)


def test_unclosed_scope_fails_finish():
    builder = TraceBuilder()
    builder.begin_operator("p", 0.0)
    with pytest.raises(TraceError):
        builder.finish()


def test_unclosed_iteration_fails_finish():
    builder = TraceBuilder()
    builder.begin_iteration(0.0)
    with pytest.raises(TraceError):
        builder.finish()


def test_double_iteration_open_raises():
    builder = TraceBuilder()
    builder.begin_iteration(0.0)
    with pytest.raises(TraceError):
        builder.begin_iteration(1.0)


def test_end_iteration_without_open_raises():
    builder = TraceBuilder()
    with pytest.raises(TraceError):
        builder.end_iteration(1.0)


def test_graph_kernels_get_negative_unique_correlations():
    builder = TraceBuilder()
    builder.begin_iteration(0.0)
    op = builder.begin_operator("cuda_graph::replay", 0.0)
    k1 = builder.enqueue_graph_kernel("a", 1.0, 1.0)
    k2 = builder.enqueue_graph_kernel("b", 2.0, 1.0)
    builder.end_operator(op, 3.0)
    builder.end_iteration(4.0)
    trace = builder.finish()
    assert k1.correlation_id < 0 and k2.correlation_id < 0
    assert k1.correlation_id != k2.correlation_id
    assert len(trace.kernels) == 2


def test_child_beginning_before_parent_rejected():
    builder = TraceBuilder()
    builder.begin_operator("p", 10.0)
    with pytest.raises(TraceError):
        builder.begin_operator("c", 5.0)
