"""Execution-mode properties."""

from repro.engine import ExecutionMode


def test_eager_has_no_transformations():
    mode = ExecutionMode.EAGER
    assert not mode.uses_flash_attention
    assert not mode.is_compiled
    assert not mode.fuses_elementwise
    assert not mode.uses_cuda_graph
    assert mode.gemm_duration_scale == 1.0


def test_flash_attention_only_changes_attention():
    mode = ExecutionMode.FLASH_ATTENTION
    assert mode.uses_flash_attention
    assert not mode.is_compiled


def test_compile_ladder_is_monotone():
    default = ExecutionMode.COMPILE_DEFAULT
    reduce_overhead = ExecutionMode.COMPILE_REDUCE_OVERHEAD
    autotune = ExecutionMode.COMPILE_MAX_AUTOTUNE
    assert default.is_compiled and not default.uses_cuda_graph
    assert reduce_overhead.uses_cuda_graph
    assert autotune.uses_cuda_graph and autotune.uses_flash_attention
    assert autotune.gemm_duration_scale < 1.0
    assert reduce_overhead.gemm_duration_scale == 1.0


def test_proximity_fused_is_not_compiled():
    mode = ExecutionMode.PROXIMITY_FUSED
    assert not mode.is_compiled
    assert not mode.uses_cuda_graph
