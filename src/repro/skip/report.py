"""Human-readable reports for SKIP analyses."""

from __future__ import annotations

from typing import Sequence

from repro.skip.classify import TransitionPoint
from repro.skip.fusion import FusionAnalysis
from repro.skip.metrics import SkipMetrics
from repro.skip.profiler import ProfileResult
from repro.units import format_ns


def metrics_report(metrics: SkipMetrics, title: str = "SKIP metrics") -> str:
    """Render the core metric set as a text block."""
    lines = [
        title,
        "-" * len(title),
        f"inference latency (IL)     : {format_ns(metrics.inference_latency_ns)}",
        f"TKLQT                      : {format_ns(metrics.tklqt_ns)}",
        f"  launch floor share       : "
        f"{100 * (1 - _safe_ratio(metrics.queuing_ns, metrics.tklqt_ns)):.1f}%",
        f"  queuing share            : "
        f"{100 * _safe_ratio(metrics.queuing_ns, metrics.tklqt_ns):.1f}%",
        f"average kernel dur (AKD)   : {format_ns(metrics.akd_ns)}",
        f"kernel launches / iter     : {metrics.kernel_launches:.0f}",
        f"GPU busy / idle            : {format_ns(metrics.gpu_busy_ns)}"
        f" / {format_ns(metrics.gpu_idle_ns)}",
        f"CPU busy / idle            : {format_ns(metrics.cpu_busy_ns)}"
        f" / {format_ns(metrics.cpu_idle_ns)}",
    ]
    if len(metrics.devices) > 1:
        lines.append("per-device breakdown")
        for dev in metrics.devices:
            lines.append(
                f"  gpu{dev.device}: TKLQT={format_ns(dev.tklqt_ns)}  "
                f"AKD={format_ns(dev.akd_ns)}  "
                f"busy={format_ns(dev.gpu_busy_ns)}  "
                f"idle={format_ns(dev.gpu_idle_ns)}  "
                f"launches={dev.kernel_launches:.0f}"
            )
    return "\n".join(lines)


def top_kernels_report(metrics: SkipMetrics, k: int = 10) -> str:
    """Render the top-k kernel table (launch counts and offload tax)."""
    lines = [f"top-{k} kernels by launch count",
             f"{'count':>6}  {'mean dur':>10}  {'mean t_l':>10}  name"]
    for agg in metrics.top_k(k):
        lines.append(
            f"{agg.count:>6}  {format_ns(agg.mean_duration_ns):>10}  "
            f"{format_ns(agg.mean_launch_queue_ns):>10}  {agg.name}"
        )
    return "\n".join(lines)


def profile_report(result: ProfileResult, title: str | None = None) -> str:
    """Full report for one profiled run."""
    meta = result.trace.metadata
    heading = title or (
        f"{meta.get('model', '?')} on {meta.get('platform', '?')} "
        f"(BS={meta.get('batch_size', '?')}, {meta.get('mode', '?')})"
    )
    bound = result.boundedness
    parts = [
        metrics_report(result.metrics, heading),
        f"classification             : {bound.value}",
        "",
        top_kernels_report(result.metrics, 5),
    ]
    return "\n".join(parts)


def fusion_report(analyses: Sequence[FusionAnalysis]) -> str:
    """Render the Fig. 7/8 quantities for a set of chain lengths."""
    header = (f"{'L':>4}  {'unique':>7}  {'instances':>9}  {'PS=1':>5}  "
              f"{'C_fused':>7}  {'K_eager':>7}  {'K_fused':>7}  {'speedup':>7}")
    lines = [header, "-" * len(header)]
    for a in analyses:
        lines.append(
            f"{a.length:>4}  {a.unique_candidates:>7}  {a.total_instances:>9}  "
            f"{len(a.deterministic_chains):>5}  {a.fused_chain_count:>7.1f}  "
            f"{a.k_eager:>7.0f}  {a.k_fused:>7.0f}  {a.ideal_speedup:>6.2f}x"
        )
    return "\n".join(lines)


def transition_report(label: str, transition: TransitionPoint) -> str:
    """Render a Fig. 6-style transition summary."""
    lines = [f"{label}: TKLQT vs batch size"]
    for batch, tklqt in zip(transition.batch_sizes, transition.tklqt_ns):
        marker = ""
        if transition.batch_size is not None and batch == transition.batch_size:
            marker = "  <-- transition (star)"
        bound = transition.boundedness_at(batch)
        lines.append(f"  BS={batch:<4} TKLQT={format_ns(tklqt):>12}  "
                     f"[{bound.value}]{marker}")
    if transition.batch_size is None:
        lines.append("  (no transition within the swept range: CPU-bound throughout)")
    return "\n".join(lines)


def _safe_ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0
