"""CPU model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cpu import REFERENCE_RUNTIME_CALL_NS, CpuSpec


def make_cpu(**overrides) -> CpuSpec:
    params = dict(name="test", isa="x86_64", cores=8, base_clock_ghz=2.0,
                  boost_clock_ghz=3.0, runtime_call_score=1.0,
                  dispatch_score=1.0)
    params.update(overrides)
    return CpuSpec(**params)


def test_reference_cpu_runtime_call():
    assert make_cpu().runtime_call_ns == pytest.approx(REFERENCE_RUNTIME_CALL_NS)


def test_faster_cpu_has_lower_call_cost():
    fast = make_cpu(runtime_call_score=2.0)
    assert fast.runtime_call_ns == pytest.approx(REFERENCE_RUNTIME_CALL_NS / 2)


def test_dispatch_scales_inversely_with_score():
    slow = make_cpu(dispatch_score=0.5)
    assert slow.dispatch_ns(10_000) == pytest.approx(20_000)


def test_dispatch_rejects_negative_cost():
    with pytest.raises(ConfigurationError):
        make_cpu().dispatch_ns(-1.0)


@pytest.mark.parametrize("field,value", [
    ("runtime_call_score", 0.0),
    ("runtime_call_score", -1.0),
    ("dispatch_score", 0.0),
    ("cores", 0),
])
def test_invalid_specs_rejected(field, value):
    with pytest.raises(ConfigurationError):
        make_cpu(**{field: value})
