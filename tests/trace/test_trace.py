"""Trace container behavior."""

import pytest

from repro.errors import TraceError
from repro.trace import (
    KernelEvent,
    LAUNCH_KERNEL,
    OperatorEvent,
    RuntimeEvent,
    Trace,
)


def make_launch_pair(correlation: int, call_ts: float, kernel_ts: float,
                     name: str = "k") -> tuple[RuntimeEvent, KernelEvent]:
    call = RuntimeEvent(name=LAUNCH_KERNEL, ts=call_ts, dur=1.0,
                        correlation_id=correlation)
    kernel = KernelEvent(name=name, ts=kernel_ts, dur=5.0,
                         correlation_id=correlation)
    return call, kernel


def build_simple_trace() -> Trace:
    trace = Trace()
    op = OperatorEvent(name="aten::add", ts=0.0, dur=20.0, seq=0)
    call, kernel = make_launch_pair(1, 5.0, 10.0)
    trace.add(op)
    trace.add(call)
    trace.add(kernel)
    trace.mark_iteration(0.0, 30.0)
    trace.sort()
    return trace


def test_add_dispatches_by_type():
    trace = build_simple_trace()
    assert len(trace.operators) == 1
    assert len(trace.runtime_calls) == 1
    assert len(trace.kernels) == 1


def test_add_rejects_unknown_type():
    with pytest.raises(TraceError):
        Trace().add(object())  # type: ignore[arg-type]


def test_span_covers_all_events():
    trace = build_simple_trace()
    begin, end = trace.span
    assert begin == 0.0
    assert end == 20.0  # operator at 0 + dur 20 outlives the kernel end (15)


def test_span_of_empty_trace_raises():
    with pytest.raises(TraceError):
        Trace().span


def test_launches_filters_runtime_calls():
    trace = build_simple_trace()
    trace.add(RuntimeEvent(name="cudaDeviceSynchronize", ts=21.0, dur=2.0))
    assert len(trace.launches) == 1


def test_kernels_by_correlation_rejects_duplicates():
    trace = Trace()
    trace.add(KernelEvent(name="a", ts=0, dur=1, correlation_id=5))
    trace.add(KernelEvent(name="b", ts=2, dur=1, correlation_id=5))
    with pytest.raises(TraceError):
        trace.kernels_by_correlation()


def test_kernels_by_correlation_skips_graph_kernels():
    trace = Trace()
    trace.add(KernelEvent(name="a", ts=0, dur=1, correlation_id=-1))
    trace.add(KernelEvent(name="b", ts=2, dur=1, correlation_id=-2))
    assert trace.kernels_by_correlation() == {}


def test_kernels_in_iteration_by_launch_time():
    trace = Trace()
    # launch inside iteration 0, kernel executes later (queued)
    call, kernel = make_launch_pair(1, 5.0, 100.0)
    trace.add(call)
    trace.add(kernel)
    trace.mark_iteration(0.0, 50.0)
    trace.sort()
    assert [k.correlation_id for k in trace.kernels_in_iteration(0)] == [1]


def test_kernels_in_iteration_includes_graph_kernels_by_start():
    trace = Trace()
    trace.add(KernelEvent(name="g", ts=10.0, dur=1.0, correlation_id=-1))
    trace.mark_iteration(0.0, 50.0)
    trace.sort()
    assert [k.name for k in trace.kernels_in_iteration(0)] == ["g"]


def test_missing_iteration_raises():
    trace = build_simple_trace()
    with pytest.raises(TraceError):
        trace.kernels_in_iteration(7)


def test_validate_detects_orphan_kernel():
    trace = Trace()
    trace.add(KernelEvent(name="k", ts=0, dur=1, correlation_id=9))
    with pytest.raises(TraceError):
        trace.validate()


def test_validate_detects_kernelless_launch():
    trace = Trace()
    trace.add(RuntimeEvent(name=LAUNCH_KERNEL, ts=0, dur=1, correlation_id=9))
    with pytest.raises(TraceError):
        trace.validate()


def test_validate_accepts_graph_launch_without_correlation():
    trace = Trace()
    trace.add(RuntimeEvent(name="cudaGraphLaunch", ts=0, dur=1,
                           correlation_id=-1))
    trace.add(KernelEvent(name="g", ts=5, dur=1, correlation_id=-2))
    trace.validate()  # must not raise


def test_merged_combines_and_renumbers_iterations():
    a = build_simple_trace()
    b = Trace(metadata={"x": 1})
    call, kernel = make_launch_pair(99, 100.0, 105.0)
    b.add(call)
    b.add(kernel)
    b.mark_iteration(100.0, 120.0)
    merged = a.merged(b)
    assert len(merged.kernels) == 2
    assert [m.index for m in merged.iterations] == [0, 1]
    assert merged.metadata["x"] == 1


def test_cpu_events_sorted_by_time():
    trace = build_simple_trace()
    events = trace.cpu_events()
    assert [e.ts for e in events] == sorted(e.ts for e in events)
