"""Table I — torch.compile mode compile times and TTFT speedups.

Gemma-2B, batch size 1, 1024-token input, Intel+H100.
"""

import pytest

from _harness import BENCH_ENGINE, report, run_once
from repro.engine import ExecutionMode, run
from repro.hardware import INTEL_H100
from repro.skip import compute_metrics
from repro.viz import render_table
from repro.workloads import GEMMA_2B

PAPER = {
    ExecutionMode.EAGER: (0.40644, 1.0),
    ExecutionMode.COMPILE_DEFAULT: (6.2844, 1.203),
    ExecutionMode.COMPILE_REDUCE_OVERHEAD: (12.7469, 1.2394),
    ExecutionMode.COMPILE_MAX_AUTOTUNE: (387.3, 1.317),
}

MODES = tuple(PAPER)


def _run_all_modes():
    out = {}
    for mode in MODES:
        result = run(GEMMA_2B, INTEL_H100, batch_size=1, seq_len=1024,
                     mode=mode, config=BENCH_ENGINE)
        metrics = compute_metrics(result.trace)
        out[mode] = (result.compile_report.total_s,
                     metrics.inference_latency_ns)
    return out


def test_table1_compile_modes(benchmark):
    results = run_once(benchmark, _run_all_modes)
    eager_il = results[ExecutionMode.EAGER][1]
    rows = []
    for mode in MODES:
        compile_s, il = results[mode]
        speedup = eager_il / il
        paper_compile, paper_speedup = PAPER[mode]
        rows.append([mode.value, f"{compile_s:.3f}", f"{paper_compile:.3f}",
                     f"{speedup:.3f}", f"{paper_speedup:.3f}"])
    report(render_table(
        ["mode", "compile (s)", "paper", "TTFT speedup", "paper"], rows,
        title="Table I: torch.compile modes — Gemma-2B BS=1 seq=1024 on Intel+H100"))

    # Shape checks: compile cost ladder is monotone; speedups ordered
    # eager < default <= reduce-overhead < max-autotune; magnitudes close.
    compiles = [results[m][0] for m in MODES]
    assert compiles == sorted(compiles)
    speedups = [eager_il / results[m][1] for m in MODES]
    assert speedups[0] == 1.0
    assert speedups[1] > 1.1
    assert speedups[2] >= speedups[1]
    assert speedups[3] > speedups[2]
    for mode in MODES[1:]:
        paper_compile, paper_speedup = PAPER[mode]
        assert results[mode][0] == pytest.approx(paper_compile, rel=0.15)
        assert eager_il / results[mode][1] == pytest.approx(paper_speedup,
                                                            rel=0.1)
