"""Pareto frontier analysis."""

import pytest

from repro.analysis.pareto import (
    OperatingPoint,
    cross_platform_frontier,
    operating_points,
    pareto_frontier,
)
from repro.errors import AnalysisError


def test_dominance_logic():
    fast_cheap = OperatingPoint("a", 1, 10.0, 100.0)
    slow_cheap = OperatingPoint("a", 2, 20.0, 100.0)
    slow_rich = OperatingPoint("a", 4, 20.0, 300.0)
    assert fast_cheap.dominates(slow_cheap)
    assert not fast_cheap.dominates(slow_rich)
    assert not fast_cheap.dominates(fast_cheap)


def test_every_swept_batch_becomes_a_point(bert_sweep):
    points = operating_points(bert_sweep, "GH200", 512)
    assert len(points) == len(bert_sweep.batch_sizes)
    assert all(p.tokens_per_second > 0 for p in points)


def test_single_platform_frontier_is_monotone(bert_sweep):
    points = operating_points(bert_sweep, "Intel+H100", 512)
    frontier = pareto_frontier(points)
    latencies = [p.ttft_ns for p in frontier]
    throughputs = [p.tokens_per_second for p in frontier]
    assert latencies == sorted(latencies)
    assert throughputs == sorted(throughputs)  # the frontier trades, never loses


def test_frontier_contains_no_dominated_points(bert_sweep):
    points = operating_points(bert_sweep, "AMD+A100", 512)
    frontier = pareto_frontier(points)
    for point in frontier:
        assert not any(q.dominates(point) for q in points)


def test_cross_platform_frontier_splits_by_regime(bert_sweep):
    """The paper's buy-guide: low-latency end of the joint frontier belongs
    to the LC system, the high-throughput end to GH200."""
    frontier = cross_platform_frontier(bert_sweep, 512)
    assert frontier[0].platform == "Intel+H100"   # lowest-latency point
    assert frontier[-1].platform == "GH200"       # highest-throughput point
    assert {p.platform for p in frontier} >= {"Intel+H100", "GH200"}


def test_validation(bert_sweep):
    with pytest.raises(AnalysisError):
        operating_points(bert_sweep, "GH200", 0)
    with pytest.raises(AnalysisError):
        pareto_frontier([])


# ----------------------------------------------------------------------
# Serving TTFT/TBT frontier under chunked prefill
# ----------------------------------------------------------------------
def _point(platform, chunk, p99_ttft, p99_tbt):
    from repro.analysis.pareto import ServingOperatingPoint

    return ServingOperatingPoint(
        platform=platform, chunk_tokens=chunk,
        p50_ttft_ns=p99_ttft / 2, p99_ttft_ns=p99_ttft,
        p50_tbt_ns=p99_tbt / 2, p99_tbt_ns=p99_tbt,
        throughput_tokens_per_s=100.0)


def test_serving_dominance_is_on_the_tail_plane():
    fast_tails = _point("a", 256, 10.0, 5.0)
    slow_ttft = _point("a", 128, 20.0, 5.0)
    trades = _point("a", 0, 5.0, 50.0)
    assert fast_tails.dominates(slow_ttft)
    assert not fast_tails.dominates(trades)   # better TTFT, worse TBT
    assert not fast_tails.dominates(fast_tails)


def test_serving_frontier_drops_dominated_budgets():
    from repro.analysis.pareto import serving_pareto_frontier

    points = [_point("a", 0, 5.0, 50.0), _point("a", 256, 10.0, 5.0),
              _point("a", 512, 12.0, 6.0)]  # dominated by 256
    frontier = serving_pareto_frontier(points)
    assert [p.chunk_tokens for p in frontier] == [0, 256]


def test_serving_frontier_validation():
    from repro.analysis.pareto import (
        chunk_budget_sweep,
        serving_pareto_frontier,
    )
    from repro.errors import AnalysisError
    from repro.hardware import GH200
    from repro.serving import LatencyModel
    from repro.workloads import GPT2

    with pytest.raises(AnalysisError):
        serving_pareto_frontier([])
    with pytest.raises(AnalysisError):
        chunk_budget_sweep(GPT2, LatencyModel(GH200), budgets=())


def test_chunk_sweep_report_marks_the_frontier():
    from repro.analysis.pareto import chunk_sweep_report

    points = [_point("GH200", 0, 5.0, 50.0), _point("GH200", 256, 10.0, 5.0),
              _point("GH200", 512, 12.0, 6.0)]
    report = chunk_sweep_report(points)
    assert "off" in report and "256" in report
    lines = report.splitlines()
    starred = [line for line in lines if line.rstrip().endswith("*")]
    assert len(starred) == 2


def test_mixed_stream_is_deterministic_and_renumbered():
    from repro.analysis.pareto import mixed_prompt_requests

    stream = mixed_prompt_requests(seed=3)
    again = mixed_prompt_requests(seed=3)
    assert stream == again
    assert [r.request_id for r in stream] == list(range(len(stream)))
    arrivals = [r.arrival_ns for r in stream]
    assert arrivals == sorted(arrivals)
    assert {r.prompt_len for r in stream} == {128, 3072}


def test_chunked_prefill_collapses_the_tbt_tail():
    """The headline lock: at a fixed 256-token budget, p99 time-between-
    tokens improves on both coupling paradigms under mixed long-prompt
    traffic — the stall a 3072-token prefill inflicts on in-flight decodes
    is bounded by the chunk budget, not the prompt length."""
    from repro.analysis.pareto import chunk_budget_sweep
    from repro.hardware import AMD_A100, GH200
    from repro.serving import LatencyModel
    from repro.workloads import GPT2

    for platform in (GH200, AMD_A100):
        whole, chunked = chunk_budget_sweep(
            GPT2, LatencyModel(platform), budgets=(0, 256), seed=3)
        assert chunked.p99_tbt_ns < whole.p99_tbt_ns, platform.name
        # The trade is real: chunking delays first tokens, bounded.
        assert chunked.p99_ttft_ns < 2 * whole.p99_ttft_ns
        # The median decode gap is untouched — only the tail moves.
        assert chunked.p50_tbt_ns == pytest.approx(whole.p50_tbt_ns, rel=1e-6)
