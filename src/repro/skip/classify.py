"""PU-boundedness classification (Section III-B / V-B of the paper).

Two classifiers are provided:

* :func:`classify_metrics` — trace-only: compares the queuing share of TKLQT
  against the unqueued launch floor. Little queuing = the GPU drains launches
  as they arrive = CPU-bound; heavy queuing = GPU-bound.
* :func:`find_transition` — sweep-based, the paper's Fig. 6 method: TKLQT is
  flat in the CPU-bound region (pure launch overhead, kernel count does not
  change with batch size) and inflects upward when queuing starts. The first
  batch size whose TKLQT exceeds the low-batch plateau by a threshold factor
  is the star marker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError
from repro.skip.metrics import SkipMetrics


class Boundedness(enum.Enum):
    CPU_BOUND = "cpu-bound"
    GPU_BOUND = "gpu-bound"


#: Queuing contribution above which a single run counts as GPU-bound. Set so
#: that a single-trace classification agrees with the sweep-based inflection
#: rule: queuing share >= 0.9 is equivalent to TKLQT exceeding the launch
#: floor by the same order of magnitude as TKLQT_INFLECTION_FACTOR.
QUEUING_SHARE_THRESHOLD = 0.9

#: TKLQT growth over the low-batch plateau that marks the inflection point.
#: In the CPU-bound region TKLQT is the per-kernel launch overhead times the
#: (batch-independent) kernel count, with at most mild local queuing behind
#: the odd long kernel; once the stream backs up, TKLQT jumps by orders of
#: magnitude per batch-size step. An order of magnitude above the plateau is
#: therefore a robust queue-dominance marker.
TKLQT_INFLECTION_FACTOR = 10.0


def classify_metrics(metrics: SkipMetrics,
                     queuing_share_threshold: float = QUEUING_SHARE_THRESHOLD
                     ) -> Boundedness:
    """Classify one profiled run as CPU- or GPU-bound from its own trace."""
    tklqt = metrics.tklqt_ns
    if tklqt <= 0:
        return Boundedness.CPU_BOUND
    queuing_share = metrics.queuing_ns / tklqt
    if queuing_share >= queuing_share_threshold:
        return Boundedness.GPU_BOUND
    return Boundedness.CPU_BOUND


@dataclass(frozen=True)
class TransitionPoint:
    """The CPU-bound -> GPU-bound inflection of a batch sweep (Fig. 6 star)."""

    batch_size: int | None
    plateau_tklqt_ns: float
    batch_sizes: tuple[int, ...]
    tklqt_ns: tuple[float, ...]

    @property
    def found(self) -> bool:
        return self.batch_size is not None

    def boundedness_at(self, batch_size: int) -> Boundedness:
        """Classification for one of the swept batch sizes."""
        if batch_size not in self.batch_sizes:
            raise AnalysisError(f"batch size {batch_size} was not swept")
        if self.batch_size is None or batch_size < self.batch_size:
            return Boundedness.CPU_BOUND
        return Boundedness.GPU_BOUND


def find_transition(batch_sizes: Sequence[int], tklqt_values: Sequence[float],
                    factor: float = TKLQT_INFLECTION_FACTOR) -> TransitionPoint:
    """Locate the batch size where TKLQT leaves its low-batch plateau.

    Args:
        batch_sizes: Swept batch sizes, ascending.
        tklqt_values: TKLQT per batch size (same order).
        factor: Growth over the plateau that counts as the inflection.

    Returns:
        The transition point; ``batch_size`` is None when the sweep never
        leaves the CPU-bound region.
    """
    if len(batch_sizes) != len(tklqt_values):
        raise AnalysisError("batch_sizes and tklqt_values must align")
    if len(batch_sizes) < 2:
        raise AnalysisError("need at least two batch sizes to find a transition")
    if list(batch_sizes) != sorted(batch_sizes):
        raise AnalysisError("batch_sizes must be ascending")
    if len(set(batch_sizes)) != len(batch_sizes):
        raise AnalysisError("batch_sizes must be unique")
    if factor <= 1.0:
        raise AnalysisError("inflection factor must exceed 1.0")

    plateau = tklqt_values[0]
    transition = None
    for batch, tklqt in zip(batch_sizes, tklqt_values):
        if tklqt > plateau * factor:
            transition = batch
            break
        # While still flat, refine the plateau estimate with a running min so
        # a slightly elevated first point does not hide the inflection.
        plateau = min(plateau, tklqt)
    return TransitionPoint(
        batch_size=transition,
        plateau_tklqt_ns=plateau,
        batch_sizes=tuple(batch_sizes),
        tklqt_ns=tuple(tklqt_values),
    )
