"""``repro.kvcache`` — paged KV-cache memory as a simulated resource.

The serving runtime models compute and launch overhead; this package makes
GPU memory the third first-class resource. A per-replica
:class:`BlockPool` holds fixed-size KV blocks sized from the model's KV
geometry; :class:`KvCacheResource` exposes the pool to
:class:`repro.sim.SimCore` (blocking ``acquire``/``release`` yield verbs);
:class:`KvManager` applies a pressure policy — preempt-and-recompute or
CPU offload over the platform interconnect — and logs every pool event for
the ``repro check`` K-rules. See ``docs/kvcache.md``.
"""

from repro.kvcache.events import KV_EVENT_KINDS, KvCacheEvent
from repro.kvcache.manager import KvCacheConfig, KvManager, KvPolicy
from repro.kvcache.pool import (
    KV_BLOCK_TOKENS,
    BlockPool,
    block_bytes,
    blocks_for_tokens,
    pool_bytes,
    pool_capacity_blocks,
)
from repro.kvcache.resource import KvCacheResource
from repro.kvcache.serving import (
    kv_continuous_batching_process,
    lifetime_blocks,
)

__all__ = [
    "KV_BLOCK_TOKENS",
    "KV_EVENT_KINDS",
    "BlockPool",
    "KvCacheConfig",
    "KvCacheEvent",
    "KvCacheResource",
    "KvManager",
    "KvPolicy",
    "block_bytes",
    "blocks_for_tokens",
    "kv_continuous_batching_process",
    "lifetime_blocks",
    "pool_bytes",
    "pool_capacity_blocks",
]
