"""Retrieval substrate: vector indexes for the RAG pipeline."""

from repro.retrieval.index import BruteForceIndex, IVFIndex, SearchResult

__all__ = ["BruteForceIndex", "IVFIndex", "SearchResult"]
