"""Recorded-run -> Trace export (the self-hosting substrate)."""

import pytest

from repro.errors import AnalysisError
from repro.hardware import INTEL_H100
from repro.obs import EngineShape, RunRecorder, StepKind, recording_to_trace
from repro.serving import LatencyModel
from repro.skip import compute_metrics
from repro.workloads import GPT2


def test_export_one_iteration_per_step(recorded_run):
    recorder, latency, _, _ = recorded_run
    trace = recording_to_trace(recorder, latency, GPT2)
    assert len(trace.iterations) == len(recorder.steps)
    assert trace.metadata["source"] == "repro.obs"
    assert trace.metadata["models"] == ["gpt2"]
    # Iteration marks line up with the recorded serving clock.
    for mark, step in zip(trace.iterations,
                          sorted(recorder.steps, key=lambda s: s.ts_ns)):
        assert mark.ts == pytest.approx(step.ts_ns)
        assert mark.ts_end == pytest.approx(step.ts_end_ns)


def test_exported_trace_is_skip_analyzable(recorded_run):
    recorder, latency, _, _ = recorded_run
    trace = recording_to_trace(recorder, latency, GPT2)
    metrics = compute_metrics(trace)
    assert metrics.tklqt_ns >= 0
    assert metrics.akd_ns > 0
    assert metrics.kernel_launches > 0


def test_empty_recording_rejected():
    latency = LatencyModel(INTEL_H100)
    with pytest.raises(AnalysisError, match="no steps"):
        recording_to_trace(RunRecorder(), latency, GPT2)


def test_unknown_model_rejected():
    latency = LatencyModel(INTEL_H100)
    recorder = RunRecorder()
    recorder.record_step(StepKind.PREFILL, 0.0, 100.0, 1,
                         shape=EngineShape("not-served", 1, 64))
    with pytest.raises(AnalysisError, match="not-served"):
        recording_to_trace(recorder, latency, GPT2)


def test_closed_form_steps_synthesized():
    """Steps without an engine shape still become analyzable iterations."""
    latency = LatencyModel(INTEL_H100)
    recorder = RunRecorder()
    recorder.record_step(StepKind.GENERATION, 0.0, 5e6, 2)
    trace = recording_to_trace(recorder, latency, GPT2)
    assert len(trace.iterations) == 1
    assert any(op.name == "serving::generation" for op in trace.operators)
    metrics = compute_metrics(trace)
    assert metrics.kernel_launches == 1
