"""PU-boundedness classification and transition detection."""

import pytest

from repro.errors import AnalysisError
from repro.skip import (
    Boundedness,
    classify_metrics,
    find_transition,
)
from repro.workloads import BERT_BASE


def test_small_batch_is_cpu_bound(intel_profiler):
    result = intel_profiler.profile(BERT_BASE, batch_size=1)
    assert classify_metrics(result.metrics) is Boundedness.CPU_BOUND


def test_large_batch_is_gpu_bound(intel_profiler):
    result = intel_profiler.profile(BERT_BASE, batch_size=64)
    assert classify_metrics(result.metrics) is Boundedness.GPU_BOUND


def test_gh200_stays_cpu_bound_longer(gh200_profiler, intel_profiler):
    """Paper contribution 4: encoders are ~4x more CPU-bound on GH200."""
    bs = 16
    intel = intel_profiler.profile(BERT_BASE, batch_size=bs)
    gh200 = gh200_profiler.profile(BERT_BASE, batch_size=bs)
    assert classify_metrics(intel.metrics) is Boundedness.GPU_BOUND
    assert classify_metrics(gh200.metrics) is Boundedness.CPU_BOUND


def test_find_transition_simple_curve():
    batches = [1, 2, 4, 8, 16]
    tklqt = [100.0, 102.0, 110.0, 1500.0, 9000.0]
    result = find_transition(batches, tklqt)
    assert result.batch_size == 8
    assert result.boundedness_at(4) is Boundedness.CPU_BOUND
    assert result.boundedness_at(8) is Boundedness.GPU_BOUND
    assert result.boundedness_at(16) is Boundedness.GPU_BOUND


def test_find_transition_flat_curve_returns_none():
    result = find_transition([1, 2, 4, 8], [100.0, 101.0, 99.0, 103.0])
    assert result.batch_size is None
    assert not result.found
    assert result.boundedness_at(8) is Boundedness.CPU_BOUND


def test_plateau_refined_by_running_min():
    # First point slightly elevated (local queuing noise); the running-min
    # plateau should still catch the real inflection.
    result = find_transition([1, 2, 4, 8], [150.0, 100.0, 102.0, 1200.0])
    assert result.batch_size == 8
    assert result.plateau_tklqt_ns == pytest.approx(100.0)


def test_unswept_batch_size_rejected():
    result = find_transition([1, 2], [1.0, 2.0])
    with pytest.raises(AnalysisError):
        result.boundedness_at(7)


@pytest.mark.parametrize("batches,tklqt", [
    ([1], [1.0]),
    ([1, 2, 2], [1.0, 2.0, 3.0]),
    ([2, 1], [1.0, 2.0]),
    ([1, 2], [1.0]),
])
def test_invalid_sweeps_rejected(batches, tklqt):
    with pytest.raises(AnalysisError):
        find_transition(batches, tklqt)


def test_factor_must_exceed_one():
    with pytest.raises(AnalysisError):
        find_transition([1, 2], [1.0, 2.0], factor=1.0)


def test_transition_serialization_fields():
    result = find_transition([1, 2, 4], [10.0, 11.0, 500.0])
    assert result.batch_sizes == (1, 2, 4)
    assert result.tklqt_ns == (10.0, 11.0, 500.0)
