"""Per-kernel roofline analysis.

The paper's AKD metric conveys aggregate "kernel efficiency"; this extension
breaks it down: with the work terms the engine records on each kernel event,
every kernel lands on the platform roofline — compute-bound, memory-bound,
or under the launch floor (too small for either limit to matter). The floor
bucket is the population fusion should target.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.hardware.gpu import GpuSpec
from repro.trace.trace import Trace
from repro.units import GIGA, TERA


class KernelRegime(enum.Enum):
    COMPUTE_BOUND = "compute-bound"
    MEMORY_BOUND = "memory-bound"
    LAUNCH_FLOOR = "launch-floor"


@dataclass(frozen=True)
class KernelRooflinePoint:
    """One kernel's position on the roofline."""

    name: str
    flops: float
    bytes_moved: float
    duration_ns: float
    regime: KernelRegime

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of DRAM traffic."""
        return self.flops / self.bytes_moved if self.bytes_moved else float("inf")

    @property
    def achieved_tflops(self) -> float:
        return self.flops / self.duration_ns / 1e3 if self.duration_ns else 0.0


@dataclass
class RooflineReport:
    """Roofline classification of every kernel in a trace."""

    gpu: str
    ridge_intensity: float   # FLOPs/byte where compute and memory limits meet
    points: list[KernelRooflinePoint]

    def regime_counts(self) -> dict[str, int]:
        counts = Counter(p.regime.value for p in self.points)
        return dict(counts)

    def regime_time_share(self) -> dict[str, float]:
        """Fraction of total kernel time spent in each regime."""
        total = sum(p.duration_ns for p in self.points)
        if total <= 0:
            raise AnalysisError("kernels have no duration")
        shares: dict[str, float] = {}
        for point in self.points:
            shares[point.regime.value] = (
                shares.get(point.regime.value, 0.0) + point.duration_ns / total)
        return shares

    def floor_fraction(self) -> float:
        """Share of launches that sit under the launch floor — the fusion
        target population."""
        if not self.points:
            raise AnalysisError("no kernels to classify")
        floor = sum(1 for p in self.points
                    if p.regime is KernelRegime.LAUNCH_FLOOR)
        return floor / len(self.points)


def classify_kernels(trace: Trace, gpu: GpuSpec) -> RooflineReport:
    """Place every kernel of a (simulated) trace on the GPU's roofline.

    Requires kernels with recorded work terms (the engine provides them);
    imported real traces carry none and are rejected.
    """
    if not trace.kernels:
        raise AnalysisError("trace has no kernels")
    if all(k.flops == 0 and k.bytes_moved == 0 for k in trace.kernels):
        raise AnalysisError(
            "kernels carry no work terms (imported trace?); roofline "
            "classification needs simulated kernels")

    compute_rate = gpu.fp16_tflops * TERA * gpu.sustain          # FLOP/s
    memory_rate = gpu.hbm_bandwidth_gbs * GIGA * gpu.bandwidth_sustain  # B/s
    ridge = compute_rate / memory_rate

    points = []
    for kernel in trace.kernels:
        compute_ns = (kernel.flops + gpu.ramp_flops) / compute_rate * 1e9
        memory_ns = (kernel.bytes_moved + gpu.ramp_bytes) / memory_rate * 1e9
        if kernel.dur <= gpu.min_kernel_ns * 1.01:
            regime = KernelRegime.LAUNCH_FLOOR
        elif compute_ns >= memory_ns:
            regime = KernelRegime.COMPUTE_BOUND
        else:
            regime = KernelRegime.MEMORY_BOUND
        points.append(KernelRooflinePoint(
            name=kernel.name,
            flops=kernel.flops,
            bytes_moved=kernel.bytes_moved,
            duration_ns=kernel.dur,
            regime=regime,
        ))
    return RooflineReport(gpu=gpu.name, ridge_intensity=ridge, points=points)
