"""DLRM-style recommendation workload."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.recsys import (
    DLRM_LARGE,
    DLRM_SMALL,
    DlrmConfig,
    build_dlrm_graph,
)


def test_graph_structure():
    graph = build_dlrm_graph(DLRM_SMALL, batch_size=4)
    labels = [op.label for op in graph.ops]
    assert sum(1 for l in labels if l.startswith("emb_table.")) == 26
    assert any(l == "interaction.pairwise" for l in labels)
    assert labels[-1] == "predict.sigmoid"


def test_embedding_gathers_dominate_op_count():
    graph = build_dlrm_graph(DLRM_SMALL, batch_size=1)
    counts = graph.count_by_kind()
    assert counts["embedding"] == DLRM_SMALL.num_tables
    assert counts["embedding"] > counts["linear"]


def test_flops_scale_with_batch():
    one = build_dlrm_graph(DLRM_SMALL, 1).total_flops
    eight = build_dlrm_graph(DLRM_SMALL, 8).total_flops
    assert eight == pytest.approx(8 * one, rel=1e-6)


def test_param_count_dominated_by_tables():
    table_params = (DLRM_SMALL.num_tables * DLRM_SMALL.rows_per_table
                    * DLRM_SMALL.embedding_dim)
    assert DLRM_SMALL.param_count() > table_params
    assert DLRM_SMALL.param_count() < 1.05 * table_params


def test_interaction_feature_accounting():
    # 27 vectors -> 27*26/2 pairs + the dense embedding passthrough.
    assert DLRM_SMALL.interaction_inputs == 27
    assert DLRM_SMALL.interaction_features == 27 * 26 // 2 + 64


def test_large_config_is_bigger():
    assert DLRM_LARGE.param_count() > 10 * DLRM_SMALL.param_count()
    assert len(build_dlrm_graph(DLRM_LARGE, 1)) > len(
        build_dlrm_graph(DLRM_SMALL, 1))


def test_validation():
    with pytest.raises(ConfigurationError):
        DlrmConfig(num_tables=0)
    with pytest.raises(ConfigurationError):
        DlrmConfig(bottom_mlp=(512, 32))  # last width != embedding_dim
    with pytest.raises(ConfigurationError):
        build_dlrm_graph(DLRM_SMALL, 0)


def test_profiles_through_skip(intel_profiler):
    result = intel_profiler.profile_graph(build_dlrm_graph(DLRM_SMALL, 4))
    assert result.metrics.kernel_launches > 30
    # The launch tax story: tiny gathers leave the GPU starved.
    assert result.boundedness.value == "cpu-bound"
