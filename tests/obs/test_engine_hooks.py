"""Engine-level recorder hooks: per-launch sampling and engine steps."""

from repro.engine import EngineConfig, run
from repro.hardware import INTEL_H100
from repro.obs import RunRecorder, StepKind
from repro.obs.recorder import H_LAUNCH_DELAY, H_LAUNCH_QUEUE
from repro.workloads import GPT2


def test_executor_records_engine_steps_and_launch_samples():
    recorder = RunRecorder()
    result = run(GPT2, INTEL_H100, batch_size=1, seq_len=64,
                 config=EngineConfig(iterations=2), recorder=recorder)
    engine_steps = [s for s in recorder.steps if s.kind is StepKind.ENGINE]
    assert len(engine_steps) == len(result.trace.iterations) == 2
    for step, mark in zip(engine_steps, result.trace.iterations):
        assert step.ts_ns == mark.ts
        assert step.dur_ns == mark.ts_end - mark.ts
    # Every launch contributed one delay and one queue-occupancy sample.
    delays = recorder.histogram(H_LAUNCH_DELAY)
    queue = recorder.histogram(H_LAUNCH_QUEUE)
    assert delays.count == queue.count == len(result.trace.kernels)
    assert delays.percentile(0) >= 0
    assert queue.percentile(0) >= 0


def test_executor_without_recorder_is_unchanged():
    plain = run(GPT2, INTEL_H100, batch_size=1, seq_len=64,
                config=EngineConfig(iterations=1))
    recorded = run(GPT2, INTEL_H100, batch_size=1, seq_len=64,
                   config=EngineConfig(iterations=1),
                   recorder=RunRecorder())
    assert plain.trace.span == recorded.trace.span
    assert len(plain.trace.kernels) == len(recorded.trace.kernels)
