"""Textual report rendering."""

from repro.skip import (
    analyze_trace,
    find_transition,
    fusion_report,
    metrics_report,
    profile_report,
    top_kernels_report,
    transition_report,
)


def test_metrics_report_contains_all_metrics(gpt2_profile):
    text = metrics_report(gpt2_profile.metrics)
    for token in ("TKLQT", "AKD", "inference latency", "GPU busy", "CPU busy"):
        assert token in text


def test_top_kernels_report_row_count(gpt2_profile):
    text = top_kernels_report(gpt2_profile.metrics, k=3)
    assert len(text.splitlines()) == 2 + 3


def test_profile_report_headline(gpt2_profile):
    text = profile_report(gpt2_profile)
    assert "gpt2" in text
    assert "Intel+H100" in text
    assert "classification" in text


def test_fusion_report_has_row_per_length(gpt2_profile):
    analyses = analyze_trace(gpt2_profile.trace, lengths=[2, 4, 8])
    text = fusion_report(analyses)
    assert len(text.splitlines()) == 2 + 3
    assert "speedup" in text


def test_transition_report_marks_star():
    transition = find_transition([1, 2, 4], [10.0, 11.0, 900.0])
    text = transition_report("bert/Intel", transition)
    assert "star" in text
    assert "BS=4" in text


def test_transition_report_flat_curve():
    transition = find_transition([1, 2], [10.0, 10.5])
    text = transition_report("x", transition)
    assert "CPU-bound throughout" in text
