"""The optimization playbook: climb the latency ladder for one workload.

Walks every optimization the paper discusses (plus the extensions) for one
model on one platform, in the order a practitioner would apply them:

1. eager baseline;
2. proximity-score kernel fusion (the paper's contribution, applied);
3. FlashAttention (domain-specific fusion);
4. torch.compile reduce-overhead (CUDA graphs);
5. max-autotune (graphs + Triton GEMMs) — with its compile-time price;
6. speculative decoding on top of graphs, for generation workloads.

Usage:
    python examples/optimization_playbook.py [model] [platform] [batch]
"""

import sys

from repro import ExecutionMode, get_model, get_platform, SkipProfiler
from repro.engine import EngineConfig
from repro.serving import LatencyModel, SpeculativeConfig, speculative_generation_ns
from repro.skip import analyze_trace, combined_plan
from repro.units import ns_to_ms
from repro.viz import render_table
from repro.workloads import GPT2

FAST = EngineConfig(iterations=1)


def main() -> None:
    model = get_model(sys.argv[1] if len(sys.argv) > 1 else "llama-3.2-1b")
    platform = get_platform(sys.argv[2] if len(sys.argv) > 2 else "GH200")
    batch = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    profiler = SkipProfiler(platform, FAST)
    baseline = profiler.profile(model, batch_size=batch, seq_len=512)
    eager_ns = baseline.metrics.inference_latency_ns

    rows = [["eager (baseline)", f"{ns_to_ms(eager_ns):.2f}", "1.00x", "-"]]

    plan = combined_plan(analyze_trace(baseline.trace, threshold=0.99))
    if plan is not None:
        fused = profiler.profile(model, batch_size=batch, seq_len=512,
                                 mode=ExecutionMode.PROXIMITY_FUSED,
                                 fusion_plan=plan)
        rows.append(["proximity fusion (paper)",
                     f"{ns_to_ms(fused.metrics.inference_latency_ns):.2f}",
                     f"{eager_ns / fused.metrics.inference_latency_ns:.2f}x",
                     "-"])

    for label, mode in (("FlashAttention-2", ExecutionMode.FLASH_ATTENTION),
                        ("torch.compile reduce-overhead",
                         ExecutionMode.COMPILE_REDUCE_OVERHEAD),
                        ("torch.compile max-autotune",
                         ExecutionMode.COMPILE_MAX_AUTOTUNE)):
        result = profiler.profile(model, batch_size=batch, seq_len=512,
                                  mode=mode)
        compile_s = result.run_result.compile_report.total_s
        rows.append([label,
                     f"{ns_to_ms(result.metrics.inference_latency_ns):.2f}",
                     f"{eager_ns / result.metrics.inference_latency_ns:.2f}x",
                     f"{compile_s:.1f}s" if compile_s > 1 else "-"])

    print(render_table(
        ["optimization", "TTFT (ms)", "speedup", "compile cost"],
        rows,
        title=f"Optimization ladder: {model.name} BS={batch} on {platform.name}"))

    print("\nGeneration (128 tokens) with speculative decoding on top of "
          "CUDA graphs:")
    graph_latency = LatencyModel(platform,
                                 mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD)
    speculative = speculative_generation_ns(
        model, GPT2, graph_latency,
        SpeculativeConfig(draft_tokens=5, acceptance_rate=0.8),
        prompt_len=512, output_tokens=128, batch_size=batch)
    print(f"  graph decode        : {ns_to_ms(speculative.baseline_ns):.1f} ms")
    print(f"  + speculation (gpt2): {ns_to_ms(speculative.speculative_ns):.1f} ms"
          f"  ({speculative.speedup:.2f}x)")


if __name__ == "__main__":
    main()
