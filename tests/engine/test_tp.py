"""Tensor-parallel configuration and the sharding pass."""

import pytest

from repro.engine import DispatchMode, TPConfig, TP_DISABLED, run, shard_lowered
from repro.engine.lowering import allreduce_kernel_name, lower_graph
from repro.engine.tp import count_allreduces, is_sharded_label, needs_allreduce
from repro.errors import ConfigurationError
from repro.hardware import INTEL_H100
from repro.workloads import BERT_BASE, LLAMA_3_2_1B, build_graph


def _lowered(model, batch_size=2, seq_len=64):
    return lower_graph(build_graph(model, batch_size=batch_size,
                                   seq_len=seq_len))


# ----------------------------------------------------------------------
# TPConfig
# ----------------------------------------------------------------------
def test_config_validation_and_enabled():
    with pytest.raises(ConfigurationError):
        TPConfig(degree=0)
    assert not TP_DISABLED.enabled
    assert TPConfig(degree=2).enabled


# ----------------------------------------------------------------------
# Label classification
# ----------------------------------------------------------------------
def test_attention_and_mlp_shard():
    assert is_sharded_label("layer0.attn.q_proj")
    assert is_sharded_label("layer3.mlp.up_proj")


def test_norms_residuals_and_moe_replicate():
    assert not is_sharded_label("layer0.attn_norm")
    assert not is_sharded_label("layer0.residual_add")
    assert not is_sharded_label("layer0.moe.expert0.fc1")
    assert not is_sharded_label("embed_tokens")


def test_row_parallel_boundaries_need_allreduce():
    assert needs_allreduce("layer0.attn.o_proj")
    assert needs_allreduce("layer2.mlp.down_proj")
    assert needs_allreduce("layer1.attn.output.dense")
    assert not needs_allreduce("layer0.attn.q_proj")
    assert not needs_allreduce("layer0.moe.mlp.down_proj")


# ----------------------------------------------------------------------
# shard_lowered
# ----------------------------------------------------------------------
def test_degree_one_is_identity():
    lowered = _lowered(BERT_BASE)
    assert shard_lowered(lowered, TP_DISABLED) is lowered
    assert count_allreduces(lowered) == 0


def test_sharding_divides_work_and_inserts_collectives():
    lowered = _lowered(LLAMA_3_2_1B)
    tp = TPConfig(degree=4)
    sharded = shard_lowered(lowered, tp)
    # Two row-parallel boundaries per decoder layer.
    assert count_allreduces(sharded) == 2 * LLAMA_3_2_1B.layers
    by_label = {lo.op.label: lo for lo in sharded}
    for label, lo in by_label.items():
        if lo.kernels and is_sharded_label(label) and ".allreduce" not in label:
            original = next(o for o in lowered if o.op.label == label)
            for orig_k, shard_k in zip(original.kernels, lo.kernels):
                assert shard_k.flops == pytest.approx(orig_k.flops / 4)
                assert shard_k.bytes_read == pytest.approx(orig_k.bytes_read / 4)


def test_allreduce_message_is_full_boundary_output():
    lowered = _lowered(LLAMA_3_2_1B)
    sharded = shard_lowered(lowered, TPConfig(degree=2))
    boundary = next(lo for lo in sharded if needs_allreduce(lo.op.label))
    collective = sharded[sharded.index(boundary) + 1]
    assert collective.op.label == boundary.op.label + ".allreduce"
    kernel = collective.kernels[0]
    assert kernel.is_collective
    assert kernel.comm_bytes == pytest.approx(boundary.op.bytes_written)
    assert kernel.name == allreduce_kernel_name(2)


def test_replicated_ops_keep_their_kernels():
    lowered = _lowered(BERT_BASE)
    sharded = shard_lowered(lowered, TPConfig(degree=8))
    for original, new in zip(lowered,
                             [lo for lo in sharded
                              if not lo.op.label.endswith(".allreduce")]):
        assert original.op.label == new.op.label
        if not is_sharded_label(original.op.label):
            assert new.kernels == original.kernels


# ----------------------------------------------------------------------
# End-to-end TP runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dispatch", list(DispatchMode))
def test_tp_run_emits_per_device_kernels(dispatch):
    from repro.engine import EngineConfig

    result = run(BERT_BASE, INTEL_H100, batch_size=8, seq_len=64,
                 config=EngineConfig(iterations=1),
                 tp=TPConfig(degree=2, dispatch=dispatch))
    devices = {k.device for k in result.trace.kernels}
    assert devices == {0, 1}
    assert result.trace.metadata["tp_degree"] == 2
    names = {k.name for k in result.trace.kernels}
    assert allreduce_kernel_name(2) in names


# ----------------------------------------------------------------------
# TP degree validation
# ----------------------------------------------------------------------
def test_validate_tp_accepts_dividing_degrees():
    from repro.engine import validate_tp

    for degree in (1, 2, 3, 4, 6, 12):
        validate_tp(TPConfig(degree=degree), heads=12)


def test_validate_tp_rejects_non_dividing_degree():
    from repro.engine import validate_tp

    with pytest.raises(ConfigurationError) as excinfo:
        validate_tp(TPConfig(degree=5), heads=12, model_name="gpt2")
    message = str(excinfo.value)
    assert "gpt2" in message
    assert "valid degrees: 1, 2, 3, 4, 6, 12" in message


def test_run_rejects_non_dividing_tp_degree():
    from repro.engine import EngineConfig

    with pytest.raises(ConfigurationError):
        run(BERT_BASE, INTEL_H100, batch_size=1, seq_len=32,
            config=EngineConfig(iterations=1), tp=TPConfig(degree=5))


def test_run_accepts_prebuilt_graph_without_heads():
    """Degree validation needs a ModelConfig; raw graphs stay permitted."""
    from repro.engine import EngineConfig
    from repro.workloads import build_graph

    graph = build_graph(BERT_BASE, batch_size=1, seq_len=32)
    result = run(graph, INTEL_H100, config=EngineConfig(iterations=1),
                 tp=TPConfig(degree=2))
    assert {k.device for k in result.trace.kernels} == {0, 1}
