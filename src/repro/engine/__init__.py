"""Execution engine: lowering, cost model, and discrete-event simulation."""

from repro.engine.compiler import CompileReport, compile_time, unique_gemm_classes
from repro.engine.executor import (
    DEFAULT_CONFIG,
    EngineConfig,
    RunResult,
    build_core,
    run,
)
from repro.engine.fusion_apply import FusionPlan, apply_fusion_plan, launches_saved
from repro.engine.lowering import (
    KernelTask,
    LoweredOp,
    kernel_count,
    lower_graph,
    lower_op,
)
from repro.engine.modes import ExecutionMode
from repro.engine.pp import (
    PP_DISABLED,
    PP_STAGE_CACHE,
    PPConfig,
    ParallelConfig,
    build_core_pp,
    partition_lowered,
    stage_boundary_bytes,
    validate_pp,
)
from repro.engine.tp import (
    TP_DISABLED,
    DispatchMode,
    TPConfig,
    shard_lowered,
    validate_tp,
)

# The in-order stream model moved into the simulation core; the old name is
# kept as an alias for downstream code.
from repro.sim.resources import StreamResource as GpuStream

__all__ = [
    "CompileReport",
    "DEFAULT_CONFIG",
    "DispatchMode",
    "EngineConfig",
    "ExecutionMode",
    "FusionPlan",
    "GpuStream",
    "KernelTask",
    "LoweredOp",
    "PP_DISABLED",
    "PP_STAGE_CACHE",
    "PPConfig",
    "ParallelConfig",
    "RunResult",
    "TP_DISABLED",
    "TPConfig",
    "apply_fusion_plan",
    "build_core",
    "build_core_pp",
    "partition_lowered",
    "stage_boundary_bytes",
    "validate_pp",
    "compile_time",
    "kernel_count",
    "launches_saved",
    "lower_graph",
    "lower_op",
    "run",
    "shard_lowered",
    "unique_gemm_classes",
    "validate_tp",
]
