"""Unit-conversion helpers."""

import pytest

from repro import units


def test_constants_are_consistent():
    assert units.US == 1_000 * units.NS
    assert units.MS == 1_000 * units.US
    assert units.SEC == 1_000 * units.MS


def test_round_trips():
    assert units.ns_to_us(units.us_to_ns(3.5)) == pytest.approx(3.5)
    assert units.ns_to_ms(units.ms_to_ns(0.25)) == pytest.approx(0.25)
    assert units.ns_to_s(units.s_to_ns(1.75)) == pytest.approx(1.75)


@pytest.mark.parametrize("value,expected", [
    (500, "500.0 ns"),
    (1_500, "1.50 us"),
    (2_500_000, "2.50 ms"),
    (3_200_000_000, "3.200 s"),
])
def test_format_ns(value, expected):
    assert units.format_ns(value) == expected


@pytest.mark.parametrize("value,expected", [
    (512, "512 B"),
    (2_048, "2.00 KiB"),
    (3 * 1024**2, "3.00 MiB"),
    (5 * 1024**3, "5.00 GiB"),
])
def test_format_bytes(value, expected):
    assert units.format_bytes(value) == expected


def test_format_ns_boundary_units():
    # Exactly 1 us should already render in us, not ns.
    assert units.format_ns(1_000) == "1.00 us"
    assert units.format_ns(1_000_000) == "1.00 ms"
