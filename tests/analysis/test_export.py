"""Sweep export (JSON / CSV)."""

import csv
import io
import json

import pytest

from repro.analysis import (
    load_sweep_json,
    metrics_to_dict,
    sweep_to_csv,
    sweep_to_json,
    sweep_to_records,
)
from repro.errors import AnalysisError


def test_records_cover_every_point(bert_sweep):
    records = sweep_to_records(bert_sweep)
    assert len(records) == len(bert_sweep.points)
    keys = set(records[0])
    assert {"model", "platform", "batch_size", "inference_latency_ns",
            "tklqt_ns"} <= keys


def test_metrics_dict_values_match(bert_sweep):
    point = bert_sweep.points[0]
    flat = metrics_to_dict(point.metrics)
    assert flat["inference_latency_ns"] == pytest.approx(
        point.metrics.inference_latency_ns)
    assert flat["kernel_launches"] == point.metrics.kernel_launches


def test_json_round_trip(tmp_path, bert_sweep):
    path = tmp_path / "sweep.json"
    text = sweep_to_json(bert_sweep, path)
    assert json.loads(text)["model"] == bert_sweep.model
    loaded = load_sweep_json(path)
    assert loaded["batch_sizes"] == list(bert_sweep.batch_sizes)
    assert len(loaded["points"]) == len(bert_sweep.points)


def test_csv_is_parseable(bert_sweep):
    text = sweep_to_csv(bert_sweep)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == len(bert_sweep.points)
    assert float(rows[0]["inference_latency_ns"]) > 0


def test_csv_write_to_file(tmp_path, bert_sweep):
    path = tmp_path / "sweep.csv"
    sweep_to_csv(bert_sweep, path)
    assert path.read_text().startswith("model,platform,batch_size")


def test_invalid_json_rejected(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(AnalysisError):
        load_sweep_json(bad)


def test_empty_sweep_rejected():
    from repro.analysis.sweep import SweepResult
    with pytest.raises(AnalysisError):
        sweep_to_csv(SweepResult(model="x", batch_sizes=(1,)))
