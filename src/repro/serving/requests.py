"""Request model and workload generators for serving simulations."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Request:
    """One inference request."""

    request_id: int
    arrival_ns: float
    prompt_len: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.arrival_ns < 0:
            raise ConfigurationError("arrival must be non-negative")
        if self.prompt_len <= 0 or self.output_tokens <= 0:
            raise ConfigurationError("prompt_len and output_tokens must be positive")


@dataclass(frozen=True)
class ServingRequest(Request):
    """A :class:`Request` carrying cluster-scale serving tags.

    ``repro.traffic`` generators emit these: the tenant and session tags
    drive router policies (session affinity pins a session to one replica),
    and the shared-prefix tags drive copy-on-write prefix caching — every
    request with the same ``prefix_hash`` shares the first ``prefix_len``
    prompt tokens, so their KV blocks can be refcounted instead of
    recomputed. Untagged defaults make a ``ServingRequest`` behave exactly
    like a plain :class:`Request` in every pre-cluster code path.
    """

    tenant: str = "default"
    session: str | None = None
    prefix_hash: int | None = None
    prefix_len: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.prefix_hash is None:
            if self.prefix_len != 0:
                raise ConfigurationError(
                    "prefix_len set without a prefix_hash")
        else:
            if not 0 < self.prefix_len < self.prompt_len:
                raise ConfigurationError(
                    f"prefix_len must be in (0, prompt_len): got "
                    f"{self.prefix_len} with prompt_len {self.prompt_len}")


@dataclass(frozen=True)
class RequestOutcome:
    """Measured latencies for one completed request."""

    request: Request
    ttft_ns: float        # arrival -> first token
    completion_ns: float  # arrival -> last token
    batch_size: int       # batch the request was served in
    queue_ns: float = 0.0  # time waited before its batch started prefill
    replica: int = 0      # engine replica that served the request


def queue_delay_ns(request: Request, service_start_ns: float) -> float:
    """The canonical queue-time definition shared by every serving loop.

    Queue time is the wait between a request's arrival and the instant its
    batch starts service (prefill launch). Every policy — static,
    continuous, priority, speculative, pipeline, RAG — and both the legacy
    and sim-backed paths use this one definition, so ``queue_ns`` means the
    same thing in every :class:`RequestOutcome` and recorder histogram.
    """
    return max(0.0, service_start_ns - request.arrival_ns)


def poisson_requests(
    rate_per_s: float,
    duration_s: float,
    prompt_len: int = 512,
    prompt_jitter: int = 0,
    output_tokens: int = 64,
    output_jitter: int = 0,
    seed: int = 0,
) -> list[Request]:
    """Generate a Poisson arrival stream with optional length jitter.

    Args:
        rate_per_s: Mean arrival rate.
        duration_s: Stream duration.
        prompt_len / prompt_jitter: Prompt length and uniform +/- jitter.
        output_tokens / output_jitter: Output length and uniform +/- jitter.
        seed: RNG seed (deterministic streams for tests/benches).
    """
    if rate_per_s <= 0 or duration_s <= 0:
        raise ConfigurationError("rate and duration must be positive")
    rng = random.Random(seed)
    requests: list[Request] = []
    clock_s = 0.0
    index = 0
    while True:
        clock_s += rng.expovariate(rate_per_s)
        if clock_s >= duration_s:
            break
        plen = prompt_len + (rng.randint(-prompt_jitter, prompt_jitter)
                             if prompt_jitter else 0)
        olen = output_tokens + (rng.randint(-output_jitter, output_jitter)
                                if output_jitter else 0)
        requests.append(Request(
            request_id=index,
            arrival_ns=clock_s * 1e9,
            prompt_len=max(1, plen),
            output_tokens=max(1, olen),
        ))
        index += 1
    return requests
