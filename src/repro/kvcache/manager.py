"""KvManager — per-replica KV-pool policy engine.

One manager per engine replica owns that replica's block pool (wrapped in a
:class:`KvCacheResource` so the sim core sees it), applies the configured
pressure policy, prices swap transfers over the platform interconnect, and
logs every pool mutation as a :class:`KvCacheEvent` for the K-rules.

The two pressure policies reproduce the serving-system trade-off the paper's
coupling argument bears on:

* **recompute** — a preempted victim's blocks are freed outright and its
  prefill is re-simulated on readmission. No interconnect traffic; the cost
  is recomputed prefill FLOPs, identical on every platform.
* **offload** — a victim's blocks are copied to host memory over the
  CPU-GPU link and copied back before its next decode step. The cost is
  ``Platform.transfer_ns(blocks * block_bytes)`` per direction, so the
  loosely-coupled PCIe platforms pay ~14x the NVLink-C2C (GH200) price per
  byte — which is exactly the regime where coupling shows up in tokens/s.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.hardware.platform import Platform
from repro.kvcache.events import KvCacheEvent
from repro.kvcache.pool import (
    KV_BLOCK_TOKENS,
    BlockPool,
    block_bytes,
    blocks_for_tokens,
    pool_capacity_blocks,
)
from repro.kvcache.resource import KvCacheResource
from repro.workloads.config import ModelConfig

if TYPE_CHECKING:
    from repro.obs.recorder import RunRecorder


class KvPolicy(enum.Enum):
    """What to do when the KV pool runs out of blocks."""

    NONE = "none"            # unlimited memory: today's serving behaviour
    RECOMPUTE = "recompute"  # preempt victims; re-prefill on readmission
    OFFLOAD = "offload"      # swap victims' blocks to host over the link


@dataclass(frozen=True)
class KvCacheConfig:
    """Per-run KV-cache settings (CLI: ``--kv-policy`` / ``--kv-pool-gib``).

    Attributes:
        policy: Pressure policy; ``NONE`` disables the subsystem entirely,
            reproducing pre-kvcache serving bit-identically.
        pool_gib: Explicit pool size in GiB; ``None`` derives the pool from
            GPU capacity minus weights and the runtime reserve.
        block_tokens: Tokens per KV block.
        prefix_caching: Share full KV blocks between requests tagged with
            the same prefix hash (copy-on-write forks for the divergent
            suffix). Orthogonal to the pressure policy — it works with
            ``NONE`` (capacity derived from HBM) as well as under
            recompute/offload pressure.
    """

    policy: KvPolicy = KvPolicy.NONE
    pool_gib: float | None = None
    block_tokens: int = KV_BLOCK_TOKENS
    prefix_caching: bool = False

    def __post_init__(self) -> None:
        if self.block_tokens <= 0:
            raise ConfigurationError("block_tokens must be positive")
        if self.pool_gib is not None and self.pool_gib <= 0:
            raise ConfigurationError("pool_gib must be positive")

    @property
    def enabled(self) -> bool:
        return self.policy is not KvPolicy.NONE or self.prefix_caching


class KvManager:
    """One replica's paged KV cache under a pressure policy."""

    def __init__(
        self,
        model: ModelConfig,
        platform: Platform,
        policy: KvPolicy,
        capacity_blocks: int,
        block_tokens: int = KV_BLOCK_TOKENS,
        recorder: RunRecorder | None = None,
        replica: int = 0,
        prefix_caching: bool = False,
    ) -> None:
        if policy is KvPolicy.NONE and not prefix_caching:
            raise ConfigurationError(
                "KvManager is the pressure machinery; policy NONE means "
                "no manager at all")
        self.model = model
        self.platform = platform
        self.policy = policy
        self.prefix_caching = prefix_caching
        self.block_tokens = block_tokens
        self.block_bytes = block_bytes(model, block_tokens)
        self.recorder = recorder
        self.replica = replica
        self.resource = KvCacheResource(
            BlockPool(capacity_blocks, name=f"kv{replica}"),
            name=f"kv{replica}")
        self.events: list[KvCacheEvent] = []
        #: Host-resident block counts of swapped-out sequences.
        self._host_blocks: dict[int, int] = {}
        # Stats surfaced in ServingRunResult / the CLI summary.
        self.preemptions = 0
        self.swap_out_events = 0
        self.swap_in_events = 0
        self.swapped_blocks = 0
        self.swap_ns_total = 0.0
        #: seq -> (prefix key, shared full blocks) for bound sequences.
        self._seq_prefix: dict[int, tuple[int, int]] = {}
        self.prefix_hits = 0
        self.prefix_misses = 0
        self.cow_forks = 0
        self.prefix_evictions = 0

    @classmethod
    def for_gpu(cls, model: ModelConfig, platform: Platform,
                config: KvCacheConfig, recorder: RunRecorder | None = None,
                replica: int = 0) -> KvManager:
        """Build a manager with capacity derived from the platform's GPU."""
        capacity = pool_capacity_blocks(model, platform.gpu,
                                        pool_gib=config.pool_gib,
                                        block_tokens=config.block_tokens)
        return cls(model, platform, config.policy, capacity,
                   block_tokens=config.block_tokens, recorder=recorder,
                   replica=replica, prefix_caching=config.prefix_caching)

    # -- geometry --------------------------------------------------------
    @property
    def pool(self) -> BlockPool:
        return self.resource.pool

    @property
    def capacity_blocks(self) -> int:
        return self.pool.capacity_blocks

    def blocks_for(self, tokens: int) -> int:
        return blocks_for_tokens(tokens, self.block_tokens)

    def growth_delta(self, seq: int, tokens: int) -> int:
        """Extra *private* blocks ``seq`` needs for ``tokens`` entries.

        A sequence bound to a shared prefix group already covers the
        prefix's full blocks through the group, so only the copy-on-write
        suffix counts against its private holdings.
        """
        shared = self._seq_prefix.get(seq, (0, 0))[1]
        return max(0, self.blocks_for(tokens) - shared - self.pool.held(seq))

    # -- allocation ------------------------------------------------------
    def try_allocate(self, seq: int, blocks: int, ts_ns: float) -> bool:
        """Admission-time allocation; logs ``alloc`` on success."""
        if not self.resource.try_acquire(seq, blocks, ts_ns):
            return False
        self._log(ts_ns, "alloc", seq, blocks)
        return True

    def grow(self, seq: int, tokens: int, ts_ns: float) -> bool:
        """Grow ``seq`` to cover ``tokens`` entries; logs ``grow``."""
        delta = self.growth_delta(seq, tokens)
        if delta == 0:
            return True
        if not self.resource.try_acquire(seq, delta, ts_ns):
            return False
        self._log(ts_ns, "grow", seq, delta)
        return True

    def free(self, seq: int, ts_ns: float) -> int:
        """Sequence completed: return all its private blocks.

        A bound prefix reference is dropped too; the shared group's blocks
        stay warm in the pool until evicted or flushed.
        """
        freed = self.resource.release(seq, ts_ns)
        self._log(ts_ns, "free", seq, freed)
        if seq in self._seq_prefix:
            self.release_prefix(seq, ts_ns)
        return freed

    # -- pressure --------------------------------------------------------
    def preempt(self, seq: int, ts_ns: float) -> int:
        """Recompute policy: drop the victim's blocks on the floor."""
        freed = self.resource.release(seq, ts_ns)
        if freed == 0:
            raise SimulationError(
                f"preempting seq {seq} which holds no blocks")
        self.preemptions += 1
        self._log(ts_ns, "preempt", seq, freed)
        return freed

    def swap_out(self, seq: int, ts_ns: float) -> float:
        """Offload policy: move the victim's blocks to the host.

        Returns the transfer time over the platform interconnect; the
        caller charges it to the serving clock.
        """
        blocks = self.pool.held(seq)
        if blocks == 0:
            raise SimulationError(f"swapping out seq {seq} which holds "
                                  f"no blocks")
        self.resource.release(seq, ts_ns)
        self._host_blocks[seq] = blocks
        transfer = self.platform.transfer_ns(blocks * self.block_bytes)
        self.swap_out_events += 1
        self.swapped_blocks += blocks
        self.swap_ns_total += transfer
        self._log(ts_ns, "swap_out", seq, blocks)
        return transfer

    def swap_in(self, seq: int, ts_ns: float) -> float | None:
        """Bring an offloaded sequence back; ``None`` when there is no room.

        Must precede the sequence's next decode step (rule K003).
        """
        blocks = self._host_blocks.get(seq)
        if blocks is None:
            raise SimulationError(f"seq {seq} is not swapped out")
        if not self.resource.try_acquire(seq, blocks, ts_ns):
            return None
        del self._host_blocks[seq]
        transfer = self.platform.transfer_ns(blocks * self.block_bytes)
        self.swap_in_events += 1
        self.swap_ns_total += transfer
        self._log(ts_ns, "swap_in", seq, blocks)
        return transfer

    def is_swapped_out(self, seq: int) -> bool:
        return seq in self._host_blocks

    @property
    def host_blocks(self) -> int:
        """Blocks currently parked in host memory."""
        return sum(self._host_blocks.values())

    # -- shared-prefix caching (copy-on-write) ---------------------------
    def shared_blocks_for(self, prefix_len: int) -> int:
        """Full blocks a prefix of ``prefix_len`` tokens can share.

        Only whole blocks are shareable; the partial tail block (and
        everything after it) is the request's private copy-on-write fork.
        """
        return prefix_len // self.block_tokens

    def shared_blocks_of(self, seq: int) -> int:
        """Shared blocks ``seq`` covers through its bound prefix group."""
        return self._seq_prefix.get(seq, (0, 0))[1]

    def acquire_prefix(self, seq: int, key: int, prefix_len: int,
                       ts_ns: float) -> int | None:
        """Bind ``seq`` to the shared group for ``key``.

        Returns the number of *cached* prompt tokens ``seq`` can skip
        (0 on a cold miss — the group is inserted and this request's full
        prefill populates it), or ``None`` when a cold group cannot fit
        even after evicting idle groups.
        """
        if not self.prefix_caching:
            raise SimulationError("prefix caching is not enabled")
        if seq in self._seq_prefix:
            raise SimulationError(f"seq {seq} already holds a prefix")
        blocks = self.shared_blocks_for(prefix_len)
        if blocks == 0:
            return 0
        if self.pool.has_shared(key):
            refs = self.pool.ref_shared(key)
            self._seq_prefix[seq] = (key, blocks)
            self.prefix_hits += 1
            self.cow_forks += 1
            self._log(ts_ns, "prefix_ref", key, 0, refs=refs)
            return blocks * self.block_tokens
        if not self.pool.can_allocate(blocks):
            self.evict_idle_prefixes(blocks, ts_ns)
            if not self.pool.can_allocate(blocks):
                return None
        self.pool.add_shared(key, blocks)
        self._seq_prefix[seq] = (key, blocks)
        self.prefix_misses += 1
        self._log(ts_ns, "prefix_alloc", key, blocks, refs=1)
        return 0

    def release_prefix(self, seq: int, ts_ns: float) -> None:
        """Drop ``seq``'s reference on its bound group (blocks stay warm)."""
        key, _ = self._seq_prefix.pop(seq)
        refs = self.pool.deref_shared(key)
        self._log(ts_ns, "prefix_deref", key, 0, refs=refs)

    def evict_idle_prefixes(self, needed_blocks: int, ts_ns: float) -> bool:
        """Evict refcount-0 groups (oldest first) until ``needed`` fits.

        Returns True when the pool can now allocate ``needed_blocks``.
        """
        for key in self.pool.idle_shared_keys():
            if self.pool.can_allocate(needed_blocks):
                break
            freed = self.pool.evict_shared(key)
            self.prefix_evictions += 1
            self._log(ts_ns, "prefix_free", key, freed)
        return self.pool.can_allocate(needed_blocks)

    def flush_prefixes(self, ts_ns: float) -> None:
        """End of run: return every idle group's blocks to the pool.

        A group still referenced here means a sequence completed without
        releasing its prefix — the same class of leak rule K001 flags.
        """
        for key in self.pool.idle_shared_keys():
            freed = self.pool.evict_shared(key)
            self._log(ts_ns, "prefix_free", key, freed)
        if self.pool.shared_allocated:
            raise SimulationError(
                "prefix groups still referenced at end of run: "
                f"{self.pool.shared_allocated} blocks leaked")

    # -- observation -----------------------------------------------------
    def note_decode(self, seqs: Sequence[int], ts_ns: float) -> None:
        """Log which sequences took part in a decode step (for K003)."""
        for seq in seqs:
            self._log(ts_ns, "decode", seq, 0)

    def _log(self, ts_ns: float, kind: str, seq: int, blocks: int,
             refs: int = 0) -> None:
        event = KvCacheEvent(ts_ns=ts_ns, kind=kind, seq=seq, blocks=blocks,
                             allocated=self.pool.allocated,
                             replica=self.replica, refs=refs)
        self.events.append(event)
        if self.recorder is not None:
            self.recorder.on_kv_event(event)
