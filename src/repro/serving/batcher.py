"""Static batching: policy, report, and the sim-backed serving process.

Section II-A of the paper frames the central serving trade-off: large batches
maximize throughput but inflate per-user latency (TTFT); BS=1 minimizes
latency but wastes hardware. Static batching is the classic form: collect
requests until the batch is full or the oldest has waited too long, then run
prefill + decode for the whole batch padded to its longest member.

The serving loop itself is :func:`static_batching_process`, a process on
:class:`repro.serving.runtime.ServingRuntime`; :func:`simulate_static_batching`
wraps it for the single-call API. The original standalone loop survives as
:func:`repro.serving.legacy.legacy_static_batching`, and with one replica the
process reproduces it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.obs.events import EngineShape, StepKind
from repro.obs.recorder import RunRecorder
from repro.serving.latency import LatencyModel
from repro.serving.requests import Request, RequestOutcome, queue_delay_ns
from repro.workloads.config import ModelConfig

if TYPE_CHECKING:
    from repro.serving.runtime import EngineSession, ServingRuntime
    from repro.sim.core import Process


@dataclass(frozen=True)
class StaticBatchPolicy:
    """Collect up to ``max_batch_size`` requests or wait at most ``max_wait_ns``.

    ``max_batch_size=1`` degenerates to latency-critical single-stream
    serving (MLPerf SingleStream, per Section IV-B).
    """

    max_batch_size: int = 8
    max_wait_ns: float = 50e6  # 50 ms

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        if self.max_wait_ns < 0:
            raise ConfigurationError("max_wait_ns must be non-negative")


@dataclass
class ServingReport:
    """Aggregate statistics for one simulated serving run."""

    outcomes: list[RequestOutcome]

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ConfigurationError("no outcomes to report")

    def _values(self, attr: str) -> list[float]:
        return sorted(getattr(o, attr) for o in self.outcomes)

    def mean_ttft_ns(self) -> float:
        values = self._values("ttft_ns")
        return sum(values) / len(values)

    def p99_ttft_ns(self) -> float:
        values = self._values("ttft_ns")
        return values[min(len(values) - 1, int(0.99 * len(values)))]

    def mean_completion_ns(self) -> float:
        values = self._values("completion_ns")
        return sum(values) / len(values)

    def throughput_tokens_per_s(self) -> float:
        total_tokens = sum(o.request.output_tokens for o in self.outcomes)
        makespan_ns = max(o.request.arrival_ns + o.completion_ns
                          for o in self.outcomes)
        return total_tokens / (makespan_ns / 1e9)

    def mean_batch_size(self) -> float:
        return sum(o.batch_size for o in self.outcomes) / len(self.outcomes)


def static_batching_process(runtime: ServingRuntime, session: EngineSession,
                            policy: StaticBatchPolicy) -> Process:
    """One replica's static-batching scheduler, as a sim process.

    The replica sleeps until it is free, claims the oldest waiting request
    plus everything that arrived within the batching window, runs the padded
    batch as one prefill step plus a closed-form generation step, and goes
    back to sleep until the batch drains.
    """
    queue = runtime.queue
    latency = runtime.latency
    model = runtime.model
    recorder = runtime.recorder
    free = 0.0
    while True:
        now = yield ("at", free)
        seed = queue.first_unclaimed()
        if seed is None:
            break
        if seed.arrival_ns > now:
            # Nothing waiting yet: sleep until the next arrival. Another
            # replica may claim it first; re-check on wake.
            free = seed.arrival_ns
            continue
        batch_start = max(seed.arrival_ns, free)
        deadline = seed.arrival_ns + policy.max_wait_ns
        batch = queue.claim_batch(seed, policy.max_batch_size,
                                  max(deadline, batch_start))
        launch_ns = max(batch_start, batch[-1].arrival_ns)

        batch_size = len(batch)
        prompt_len = max(r.prompt_len for r in batch)
        output_tokens = max(r.output_tokens for r in batch)
        ttft = latency.ttft_ns(model, batch_size, prompt_len)
        total = latency.generation_ns(model, batch_size, prompt_len,
                                      output_tokens)
        waiting = queue.depth(launch_ns) if recorder is not None else 0
        if recorder is not None:
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     launch_ns)
        session.execute(
            StepKind.PREFILL, launch_ns, ttft, batch_size,
            queue_depth=waiting,
            shape=EngineShape(model.name, batch_size, prompt_len)
            if recorder is not None else None)
        if total > ttft:
            session.execute(StepKind.GENERATION, launch_ns + ttft,
                            total - ttft, batch_size, queue_depth=waiting)
        if recorder is not None:
            for request in batch:
                recorder.on_first_token(request.request_id, launch_ns + ttft)
                recorder.on_completed(request.request_id, launch_ns + total)
        for request in batch:
            queued = queue_delay_ns(request, launch_ns)
            runtime.complete(request, ttft_ns=queued + ttft,
                             completion_ns=queued + total,
                             batch_size=batch_size,
                             service_start_ns=launch_ns, session=session)
        free = launch_ns + total


def simulate_static_batching(
    requests: Sequence[Request],
    model: ModelConfig,
    latency: LatencyModel,
    policy: StaticBatchPolicy = StaticBatchPolicy(),
    recorder: RunRecorder | None = None,
) -> ServingReport:
    """Run a static-batching serving loop over an arrival stream.

    The server collects requests until the batch is full or the oldest
    request has waited ``max_wait_ns``, then runs prefill + decode for the
    whole batch (padded to the longest prompt/output in the batch — the
    classic static-batching inefficiency).

    A recorder, when given, sees each batch as one engine-shaped prefill step
    plus a closed-form generation step (decode here is priced by a trapezoid
    integral, not per-step engine runs).

    This is a thin wrapper over :func:`repro.serving.runtime.simulate_serving`
    with one replica; use ``simulate_serving`` directly for multi-replica
    runs or per-replica statistics.
    """
    from repro.serving.runtime import simulate_serving

    return simulate_serving(requests, model, latency, policy=policy,
                            recorder=recorder).report
