"""Property-based tests for the execution engine on random operator graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineConfig, run
from repro.hardware import GH200, INTEL_H100
from repro.skip import DependencyGraph, compute_metrics
from repro.workloads import ops
from repro.workloads.graph import OperatorGraph, Phase
from repro.workloads.ops import OpKind

FAST = EngineConfig(iterations=1)


@st.composite
def random_graphs(draw):
    """A random but well-formed operator stream."""
    count = draw(st.integers(1, 25))
    graph = OperatorGraph(model_name="random", phase=Phase.PREFILL,
                          batch_size=1, seq_len=16)
    for i in range(count):
        kind = draw(st.sampled_from(["linear", "matmul", "softmax", "norm",
                                     "elementwise", "copy", "view",
                                     "embedding"]))
        if kind == "linear":
            graph.append(ops.linear(f"op{i}", draw(st.integers(1, 256)),
                                    draw(st.integers(1, 512)),
                                    draw(st.integers(1, 512)),
                                    bias=draw(st.booleans())))
        elif kind == "matmul":
            graph.append(ops.matmul(f"op{i}", draw(st.integers(1, 8)),
                                    draw(st.integers(1, 128)),
                                    draw(st.integers(1, 128)),
                                    draw(st.integers(1, 128))))
        elif kind == "softmax":
            graph.append(ops.softmax(f"op{i}", draw(st.integers(1, 256)),
                                     draw(st.integers(1, 256))))
        elif kind == "norm":
            graph.append(ops.layernorm(f"op{i}", draw(st.integers(1, 128)),
                                       draw(st.integers(1, 512))))
        elif kind == "elementwise":
            graph.append(ops.elementwise(
                draw(st.sampled_from([OpKind.ADD, OpKind.MUL, OpKind.GELU])),
                f"op{i}", draw(st.integers(1, 10_000)),
                fanout=draw(st.integers(1, 4))))
        elif kind == "copy":
            graph.append(ops.reshape_copy(f"op{i}", draw(st.integers(1, 10_000))))
        elif kind == "view":
            graph.append(ops.transpose_view(f"op{i}", draw(st.integers(1, 100))))
        else:
            graph.append(ops.embedding(f"op{i}", draw(st.integers(1, 64)),
                                       draw(st.integers(1, 128)),
                                       draw(st.integers(1, 100_000))))
    return graph


@given(graph=random_graphs(), platform=st.sampled_from([INTEL_H100, GH200]))
@settings(max_examples=60, deadline=None)
def test_any_graph_produces_valid_trace(graph, platform):
    result = run(graph, platform, config=FAST)
    trace = result.trace
    trace.validate()
    # One launch per kernel; counts match the lowering.
    assert len(trace.launches) == len(trace.kernels)
    assert len(trace.kernels) == result.kernels_per_iteration
    # Dependency graph resolves completely.
    depgraph = DependencyGraph.from_trace(trace)
    assert all(r.operator is not None for r in depgraph.launches)


@given(graph=random_graphs())
@settings(max_examples=40, deadline=None)
def test_metric_invariants_on_random_graphs(graph):
    result = run(graph, INTEL_H100, config=FAST)
    if result.kernels_per_iteration == 0:
        return  # all-view graphs launch nothing; metrics reject them
    metrics = compute_metrics(result.trace)
    assert metrics.tklqt_ns >= (metrics.kernel_launches
                                * INTEL_H100.launch_latency_ns) - 1e-6
    assert metrics.inference_latency_ns > 0
    assert metrics.gpu_idle_ns >= -1e-6
    assert metrics.akd_ns >= INTEL_H100.gpu.min_kernel_ns - 1e-6


@given(graph=random_graphs())
@settings(max_examples=30, deadline=None)
def test_grace_never_dispatches_faster(graph):
    """GH200's CPU-side time dominates Intel's for identical streams."""
    intel = run(graph, INTEL_H100, config=FAST)
    gh200 = run(graph, GH200, config=FAST)
    intel_cpu = max(o.ts_end for o in intel.trace.operators)
    gh200_cpu = max(o.ts_end for o in gh200.trace.operators)
    assert gh200_cpu >= intel_cpu - 1e-6
