"""nullKernel micro-benchmark (Table V)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import (
    GH200,
    INTEL_H100,
    PAPER_PLATFORMS,
    measure_nullkernel,
    nullkernel_table,
)


def test_exact_values_without_jitter():
    result = measure_nullkernel(INTEL_H100)
    assert result.launch_overhead_ns == pytest.approx(2374.6)
    assert result.duration_ns == pytest.approx(1235.2)


def test_table_matches_paper_rows():
    rows = {r.platform: r for r in nullkernel_table(PAPER_PLATFORMS)}
    assert rows["AMD+A100"].launch_overhead_ns == pytest.approx(2260.5)
    assert rows["Intel+H100"].launch_overhead_ns == pytest.approx(2374.6)
    assert rows["GH200"].launch_overhead_ns == pytest.approx(2771.6)
    assert rows["GH200"].duration_ns == pytest.approx(1171.2)


def test_jitter_is_deterministic_per_seed():
    a = measure_nullkernel(GH200, samples=100, jitter_fraction=0.05, seed=7)
    b = measure_nullkernel(GH200, samples=100, jitter_fraction=0.05, seed=7)
    assert a.launch_overhead_ns == b.launch_overhead_ns


def test_jitter_averages_near_model_value():
    result = measure_nullkernel(GH200, samples=5000, jitter_fraction=0.05,
                                seed=3)
    assert result.launch_overhead_ns == pytest.approx(2771.6, rel=0.01)


def test_invalid_arguments():
    with pytest.raises(ConfigurationError):
        measure_nullkernel(GH200, samples=0)
    with pytest.raises(ConfigurationError):
        measure_nullkernel(GH200, jitter_fraction=-0.1)


def test_as_row_shape():
    row = measure_nullkernel(INTEL_H100).as_row()
    assert row[0] == "Intel+H100"
    assert len(row) == 3
