"""Property-based tests for the HBM footprint model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import GH200, get_platform
from repro.units import gib_to_bytes
from repro.workloads import GPT2, LLAMA_3_2_1B, get_model
from repro.workloads.memory import (
    RUNTIME_RESERVE_BYTES,
    max_batch_size,
    memory_report,
)

A100_GPU = get_platform("AMD+A100").gpu


def test_runtime_reserve_is_exact_pool_arithmetic():
    assert isinstance(RUNTIME_RESERVE_BYTES, int)
    assert RUNTIME_RESERVE_BYTES == gib_to_bytes(1.5)


def test_memory_report_capacity_uses_whole_bytes():
    report = memory_report(GPT2, GH200.gpu, batch_size=1, seq_len=128)
    assert isinstance(report.capacity_bytes, int)
    assert report.capacity_bytes == gib_to_bytes(GH200.gpu.memory_gib)


@settings(max_examples=40, deadline=None)
@given(
    model=st.sampled_from(["gpt2", "llama-3.2-1b", "llama-2-7b"]),
    seq_len=st.integers(min_value=1, max_value=8192),
    step=st.integers(min_value=1, max_value=4096),
)
def test_max_batch_size_is_monotone_in_seq_len(model, seq_len, step):
    """A longer sequence can never admit a larger batch.

    Every footprint term is non-decreasing in seq_len, so the largest
    fitting batch must be non-increasing — the invariant the `repro run`
    admission gate and the KV pool sizing both rely on.
    """
    config = get_model(model)
    shorter = max_batch_size(config, A100_GPU, seq_len, limit=256)
    longer = max_batch_size(config, A100_GPU, seq_len + step, limit=256)
    assert longer <= shorter


@settings(max_examples=20, deadline=None)
@given(seq_len=st.integers(min_value=1, max_value=4096))
def test_max_batch_size_result_actually_fits(seq_len):
    batch = max_batch_size(LLAMA_3_2_1B, A100_GPU, seq_len, limit=256)
    if batch > 0:
        assert memory_report(LLAMA_3_2_1B, A100_GPU, batch, seq_len).fits
        assert not memory_report(
            LLAMA_3_2_1B, A100_GPU, batch * 2, seq_len).fits or batch == 256
