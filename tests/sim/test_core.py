"""SimCore process scheduling: timers, rendezvous, topology."""

import pytest

from repro.errors import SimulationError
from repro.sim import LinkResource, SimCore
from repro.hardware.interconnect import NVLINK4_P2P


def test_topology_construction():
    core = SimCore()
    t0 = core.add_cpu_thread()
    t1 = core.add_cpu_thread("dispatch-1")
    assert (t0.tid, t1.tid) == (1, 2)
    core.add_device()
    core.add_device(streams=2)
    assert [d.index for d in core.devices] == [0, 1]
    assert [s.stream_id for s in core.devices[1].streams] == [7, 8]
    assert [s.device for s in core.streams()] == [0, 1]
    link = core.set_link(LinkResource(spec=NVLINK4_P2P))
    assert core.link is link


def test_process_resumes_at_requested_time():
    core = SimCore()
    seen = []

    def process():
        resumed = yield ("at", 100.0)
        seen.append(resumed)
        resumed = yield ("at", 250.0)
        seen.append(resumed)

    core.spawn(process())
    core.run()
    assert seen == [100.0, 250.0]
    assert core.now == 250.0


def test_processes_interleave_in_time_order():
    core = SimCore()
    order = []

    def process(name, times):
        for t in times:
            yield ("at", t)
            order.append((name, t))

    core.spawn(process("a", [10.0, 30.0]))
    core.spawn(process("b", [20.0, 40.0]))
    core.run()
    assert order == [("a", 10.0), ("b", 20.0), ("a", 30.0), ("b", 40.0)]


def test_rendezvous_releases_all_parties_at_max_ready():
    core = SimCore()
    released = []

    def party(name, ready_ns):
        rdv = core.rendezvous("collective", parties=2)
        resumed = yield ("join", rdv, ready_ns)
        released.append((name, resumed))

    core.spawn(party("fast", 100.0))
    core.spawn(party("slow", 400.0))
    core.run()
    assert released == [("fast", 400.0), ("slow", 400.0)]


def test_rendezvous_pooled_by_key():
    core = SimCore()
    first = core.rendezvous(("allreduce", 0, 1), parties=2)
    again = core.rendezvous(("allreduce", 0, 1), parties=2)
    assert first is again
    other = core.rendezvous(("allreduce", 0, 2), parties=2)
    assert other is not first
    with pytest.raises(SimulationError):
        core.rendezvous(("allreduce", 0, 1), parties=3)


def test_incomplete_rendezvous_is_a_deadlock():
    core = SimCore()

    def lonely():
        rdv = core.rendezvous("never", parties=2)
        yield ("join", rdv, 0.0)

    core.spawn(lonely())
    with pytest.raises(SimulationError, match="deadlock"):
        core.run()


def test_malformed_request_rejected():
    core = SimCore()

    def bad():
        yield ("teleport", 5.0)

    core.spawn(bad())
    with pytest.raises(SimulationError):
        core.run()


def test_non_yielding_process_runs_to_completion():
    core = SimCore()
    ran = []

    def straight_line():
        ran.append(True)
        return
        yield  # pragma: no cover - makes this a generator

    core.spawn(straight_line())
    core.run()
    assert ran == [True]


def test_over_joined_rendezvous_names_its_key():
    from repro.sim import Rendezvous

    rdv = Rendezvous(parties=2, key=("pp.act", 0, 1, 3))
    rdv.join(object(), 10.0)
    rdv.join(object(), 20.0)
    with pytest.raises(SimulationError) as excinfo:
        rdv.join(object(), 30.0)
    message = str(excinfo.value)
    assert "('pp.act', 0, 1, 3)" in message
    assert "all 2 parties" in message


def test_core_rendezvous_carries_its_pool_key():
    core = SimCore()
    rdv = core.rendezvous(("allreduce", 7), parties=2)
    assert rdv.key == ("allreduce", 7)
