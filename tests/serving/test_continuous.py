"""Continuous (iteration-level) batching."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import INTEL_H100
from repro.obs import RunRecorder
from repro.serving import (
    ContinuousBatchPolicy,
    LatencyModel,
    Request,
    StaticBatchPolicy,
    poisson_requests,
    simulate_continuous_batching,
    simulate_static_batching,
)
from repro.workloads import GPT2


@pytest.fixture(scope="module")
def latency():
    return LatencyModel(INTEL_H100)


@pytest.fixture(scope="module")
def stream():
    return poisson_requests(rate_per_s=30, duration_s=1.0, prompt_len=256,
                            output_tokens=12, seed=11)


def test_every_request_completes(latency, stream):
    report = simulate_continuous_batching(stream, GPT2, latency)
    assert {o.request.request_id for o in report.outcomes} == {
        r.request_id for r in stream}


def test_latency_invariants(latency, stream):
    report = simulate_continuous_batching(stream, GPT2, latency)
    for outcome in report.outcomes:
        assert outcome.ttft_ns > 0
        assert outcome.completion_ns >= outcome.ttft_ns


def test_continuous_beats_static_on_mean_ttft(latency, stream):
    """The vLLM argument the paper cites: continuous batching approaches
    BS=1 latency while keeping the batch full."""
    continuous = simulate_continuous_batching(
        stream, GPT2, latency, ContinuousBatchPolicy(max_active=16))
    static = simulate_static_batching(
        stream, GPT2, latency,
        StaticBatchPolicy(max_batch_size=16, max_wait_ns=100e6))
    assert continuous.mean_ttft_ns() < static.mean_ttft_ns()


def test_max_active_bounds_concurrency(latency):
    burst = poisson_requests(rate_per_s=500, duration_s=0.1, prompt_len=128,
                             output_tokens=8, seed=3)
    report = simulate_continuous_batching(
        burst, GPT2, latency, ContinuousBatchPolicy(max_active=4))
    assert {o.request.request_id for o in report.outcomes} == {
        r.request_id for r in burst}


def test_context_bucket_bounds_latency_lookups(stream):
    fresh = LatencyModel(INTEL_H100)
    policy = ContinuousBatchPolicy(max_active=8, context_bucket=128)
    simulate_continuous_batching(stream, GPT2, fresh, policy)
    contexts = {key[2] for key in fresh._decode_cache}
    assert contexts
    assert all(c % 128 == 0 for c in contexts)


def test_single_token_request_completes_at_prefill(latency):
    """output_tokens=1 finishes at its first token: no decode step runs."""
    requests = [Request(0, 0.0, prompt_len=64, output_tokens=1)]
    recorder = RunRecorder()
    report = simulate_continuous_batching(requests, GPT2, latency,
                                          recorder=recorder)
    outcome = report.outcomes[0]
    assert outcome.completion_ns == outcome.ttft_ns
    assert not [s for s in recorder.steps if s.kind.value == "decode"]
    span = recorder.spans[0]
    assert span.first_token_ns == span.completed_ns
    assert recorder.counters.get("tokens_generated") == 0  # no decode tokens


def test_decode_steps_match_output_tokens(latency):
    """Prefill emits token 1; each decode step emits exactly one more."""
    requests = [Request(0, 0.0, prompt_len=64, output_tokens=6)]
    recorder = RunRecorder()
    simulate_continuous_batching(requests, GPT2, latency, recorder=recorder)
    decode_steps = [s for s in recorder.steps if s.kind.value == "decode"]
    assert len(decode_steps) == 5
    assert recorder.counters.get("tokens_generated") == 5  # plus the prefill token


def test_outcome_reports_actual_decode_batch(latency):
    """batch_size is the decode batch the request finished in, not
    policy.max_active."""
    requests = [Request(0, 0.0, prompt_len=64, output_tokens=4),
                Request(1, 0.0, prompt_len=64, output_tokens=2)]
    report = simulate_continuous_batching(
        requests, GPT2, latency, ContinuousBatchPolicy(max_active=16))
    by_id = {o.request.request_id for o in report.outcomes}
    assert by_id == {0, 1}
    outcomes = {o.request.request_id: o for o in report.outcomes}
    # Request 1 finishes while both are decoding; request 0 finishes alone.
    assert outcomes[1].batch_size == 2
    assert outcomes[0].batch_size == 1


def test_empty_stream_rejected(latency):
    with pytest.raises(ConfigurationError):
        simulate_continuous_batching([], GPT2, latency)


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        ContinuousBatchPolicy(max_active=0)
    with pytest.raises(ConfigurationError):
        ContinuousBatchPolicy(context_bucket=0)
