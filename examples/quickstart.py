"""Quickstart: profile an LLM on a coupled platform with SKIP.

Runs Llama-3.2-1B prefill on the GH200 model, prints the SKIP metric report,
classifies the run as CPU- or GPU-bound, and prints the proximity-score
fusion recommendations.

Usage:
    python examples/quickstart.py [batch_size]
"""

import sys

from repro import GH200, LLAMA_3_2_1B, SkipProfiler
from repro.skip import fusion_report, profile_report


def main() -> None:
    batch_size = int(sys.argv[1]) if len(sys.argv) > 1 else 4

    profiler = SkipProfiler(GH200)
    result = profiler.profile(LLAMA_3_2_1B, batch_size=batch_size, seq_len=512)

    print(profile_report(result))
    print()
    print(f"This run is {result.boundedness.value}.")
    print()
    print("Proximity-score fusion recommendations (Eqs. 6-8):")
    print(fusion_report(result.recommend_fusions()))


if __name__ == "__main__":
    main()
