"""Trace container.

A :class:`Trace` is the unit of exchange between the execution engine (which
produces traces) and SKIP (which consumes them). It holds CPU-side events
(operators and runtime calls) and GPU-side kernel events, plus iteration
boundary marks so analyses can work per-forward-pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import TraceError
from repro.trace.events import (
    KernelEvent,
    LAUNCH_KERNEL,
    OperatorEvent,
    RuntimeEvent,
    TraceEvent,
)


@dataclass
class IterationMark:
    """Marks one profiled iteration (forward pass) inside a trace."""

    index: int
    ts: float
    ts_end: float

    def __post_init__(self) -> None:
        if self.ts_end < self.ts:
            raise TraceError(f"iteration {self.index} ends before it starts")


@dataclass
class Trace:
    """A profiled run: CPU operator/runtime events plus GPU kernel events.

    Events are kept in separate, time-sorted lists. ``metadata`` carries
    provenance (platform/model/mode names) for reports; it never affects
    analysis results.
    """

    operators: list[OperatorEvent] = field(default_factory=list)
    runtime_calls: list[RuntimeEvent] = field(default_factory=list)
    kernels: list[KernelEvent] = field(default_factory=list)
    iterations: list[IterationMark] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, event: TraceEvent) -> None:
        """Append an event to the appropriate list (kept sorted lazily)."""
        if isinstance(event, OperatorEvent):
            self.operators.append(event)
        elif isinstance(event, RuntimeEvent):
            self.runtime_calls.append(event)
        elif isinstance(event, KernelEvent):
            self.kernels.append(event)
        else:
            raise TraceError(f"unknown event type: {type(event).__name__}")

    def mark_iteration(self, ts: float, ts_end: float) -> None:
        """Record the time span of one profiled iteration."""
        self.iterations.append(IterationMark(len(self.iterations), ts, ts_end))

    def sort(self) -> None:
        """Sort all event lists by begin timestamp (stable on program order)."""
        self.operators.sort(key=lambda e: (e.ts, e.seq, e.event_id))
        self.runtime_calls.sort(key=lambda e: (e.ts, e.event_id))
        self.kernels.sort(key=lambda e: (e.ts, e.event_id))
        self.iterations.sort(key=lambda m: m.ts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def launches(self) -> list[RuntimeEvent]:
        """All kernel-launching runtime calls, in time order."""
        return [r for r in self.runtime_calls if r.is_launch]

    @property
    def span(self) -> tuple[float, float]:
        """(first begin, last end) over every event in the trace."""
        events = self.all_events()
        if not events:
            raise TraceError("trace is empty")
        begin = min(e.ts for e in events)
        end = max(e.ts_end for e in events)
        return begin, end

    def all_events(self) -> list[TraceEvent]:
        """All events (CPU + GPU) in one list, unsorted."""
        out: list[TraceEvent] = []
        out.extend(self.operators)
        out.extend(self.runtime_calls)
        out.extend(self.kernels)
        return out

    def cpu_events(self) -> list[TraceEvent]:
        """Operators and runtime calls merged and time-sorted."""
        events: list[TraceEvent] = [*self.operators, *self.runtime_calls]
        events.sort(key=lambda e: (e.ts, e.event_id))
        return events

    def kernels_by_correlation(self) -> dict[int, KernelEvent]:
        """Map correlation id -> kernel event.

        Kernels enqueued by a CUDA-graph replay carry negative correlation
        ids (they have no individual launch call) and are excluded.

        Raises:
            TraceError: if two kernels share a non-negative correlation id.
        """
        out: dict[int, KernelEvent] = {}
        for kernel in self.kernels:
            if kernel.correlation_id < 0:
                continue
            if kernel.correlation_id in out:
                raise TraceError(
                    f"duplicate correlation id {kernel.correlation_id} "
                    f"({out[kernel.correlation_id].name!r} vs {kernel.name!r})"
                )
            out[kernel.correlation_id] = kernel
        return out

    def kernels_in_iteration(self, index: int) -> list[KernelEvent]:
        """Kernels launched by CPU work inside iteration ``index``.

        Attribution is by the launch call's timestamp, not the kernel's own
        start, because queued kernels may begin executing after the iteration's
        CPU work has finished. Graph-replayed kernels (negative correlation
        ids) have no launch call and are attributed by their own start time.
        """
        mark = self._iteration(index)
        launches = {
            r.correlation_id
            for r in self.runtime_calls
            if r.is_launch and mark.ts <= r.ts < mark.ts_end
        }
        return [
            k for k in self.kernels
            if k.correlation_id in launches
            or (k.correlation_id < 0 and mark.ts <= k.ts < mark.ts_end)
        ]

    def operators_in_iteration(self, index: int) -> list[OperatorEvent]:
        """Operators beginning inside iteration ``index``."""
        mark = self._iteration(index)
        return [o for o in self.operators if mark.ts <= o.ts < mark.ts_end]

    def _iteration(self, index: int) -> IterationMark:
        for mark in self.iterations:
            if mark.index == index:
                return mark
        raise TraceError(f"trace has no iteration {index}")

    def validate(self) -> None:
        """Check internal consistency; raises :class:`TraceError` on problems."""
        correlated = self.kernels_by_correlation()
        launch_ids = {r.correlation_id for r in self.runtime_calls if r.is_launch}
        orphans = [cid for cid in correlated if cid not in launch_ids]
        if orphans:
            raise TraceError(f"kernels without launch calls: {sorted(orphans)[:5]}")
        for launch in self.runtime_calls:
            # A cudaGraphLaunch enqueues many kernels that carry negative
            # correlation ids; only individual cudaLaunchKernel calls must
            # pair 1:1 with kernels.
            if (launch.name == LAUNCH_KERNEL and launch.is_launch
                    and launch.correlation_id not in correlated):
                raise TraceError(
                    f"launch {launch.correlation_id} at {launch.ts} has no kernel"
                )

    def merged(self, other: "Trace") -> "Trace":
        """Return a new trace containing events from both traces."""
        out = Trace(metadata={**self.metadata, **other.metadata})
        for event_list in (self.all_events(), other.all_events()):
            for event in event_list:
                out.add(event)
        for mark in [*self.iterations, *other.iterations]:
            out.iterations.append(mark)
        out.iterations = [
            IterationMark(i, m.ts, m.ts_end)
            for i, m in enumerate(sorted(out.iterations, key=lambda m: m.ts))
        ]
        out.sort()
        return out


def concat_kernel_names(kernels: Iterable[KernelEvent]) -> list[str]:
    """Kernel names in launch order (by correlation id ascending)."""
    ordered = sorted(kernels, key=lambda k: k.correlation_id)
    return [k.name for k in ordered]
