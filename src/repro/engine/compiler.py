"""torch.compile model: compile-time cost and lowering transformation.

The paper's Table I measures compile time and TTFT speedup for the
torch.compile mode ladder on Gemma-2B. Two things are modeled:

* **Compile time.** Eager pays only cold-start initialization; ``default``
  adds per-operator Inductor compilation; ``reduce-overhead`` adds CUDA-graph
  capture and warm-up replays (priced per kernel); ``max-autotune`` adds a
  Triton search over every unique GEMM problem class — by far the dominant
  term (Table I's 387 s).
* **Lowering transformation.** Inductor fuses runs of adjacent pointwise /
  normalization / copy kernels into single Triton kernels (fewer launches,
  less intermediate traffic); max-autotune additionally speeds up GEMMs.

Constants are calibrated to Table I (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.lowering import KernelTask, LoweredOp
from repro.engine.modes import ExecutionMode
from repro.errors import ConfigurationError
from repro.workloads.graph import OperatorGraph
from repro.workloads.ops import OpKind

#: Cold-start initialization every mode pays (CUDA context, allocator,
#: cuDNN/cuBLAS handles). Matches Table I's "eager compile time" of ~0.41 s.
COLD_START_S = 0.406

#: Inductor compilation cost per framework operator (tracing, scheduling,
#: Triton codegen).
PER_OP_COMPILE_S = 0.0129

#: CUDA-graph capture + warm-up replay cost per captured kernel.
PER_KERNEL_CAPTURE_S = 0.0205

#: Extra capture session overhead (stream capture begin/end, pool setup).
CAPTURE_BASE_S = 0.5

#: Triton max-autotune search cost per unique GEMM problem class.
AUTOTUNE_PER_GEMM_CLASS_S = 74.9

#: Fraction of intermediate traffic that pointwise fusion eliminates.
FUSED_TRAFFIC_FACTOR = 0.45

#: Kernel kinds Inductor will merge into one Triton kernel when adjacent.
_FUSIBLE_KINDS = frozenset({
    OpKind.GELU, OpKind.SILU, OpKind.TANH, OpKind.ADD, OpKind.MUL,
    OpKind.SCALE, OpKind.MASKED_FILL, OpKind.CAST, OpKind.FILL,
    OpKind.LAYERNORM, OpKind.RMSNORM, OpKind.RESHAPE_COPY, OpKind.ROPE,
    OpKind.SOFTMAX,
})


@dataclass(frozen=True)
class CompileReport:
    """Breakdown of compile-time cost for one (graph, mode) pair."""

    mode: ExecutionMode
    cold_start_s: float
    inductor_s: float
    capture_s: float
    autotune_s: float

    @property
    def total_s(self) -> float:
        return self.cold_start_s + self.inductor_s + self.capture_s + self.autotune_s


def unique_gemm_classes(graph: OperatorGraph) -> int:
    """Count distinct GEMM problem classes max-autotune must search."""
    classes: set[tuple] = set()
    for op in graph.ops:
        if op.kind is OpKind.LINEAR:
            classes.add(("linear", op.dims[0], op.dims[1], op.dims[3]))
        elif op.kind is OpKind.MATMUL:
            classes.add(("bmm", *op.dims))
    return len(classes)


def compile_time(graph: OperatorGraph, mode: ExecutionMode,
                 kernel_count: int) -> CompileReport:
    """Compile-time cost model for Table I.

    Args:
        graph: The operator stream being compiled.
        mode: Execution mode.
        kernel_count: Kernels per iteration after lowering (capture cost).
    """
    if kernel_count < 0:
        raise ConfigurationError("kernel_count must be non-negative")
    inductor = capture = autotune = 0.0
    if mode.is_compiled:
        inductor = PER_OP_COMPILE_S * len(graph.ops)
    if mode.uses_cuda_graph:
        capture = CAPTURE_BASE_S + PER_KERNEL_CAPTURE_S * kernel_count
    if mode is ExecutionMode.COMPILE_MAX_AUTOTUNE:
        autotune = AUTOTUNE_PER_GEMM_CLASS_S * unique_gemm_classes(graph)
    return CompileReport(mode, COLD_START_S, inductor, capture, autotune)


def apply_inductor_fusion(lowered: list[LoweredOp],
                          mode: ExecutionMode) -> list[LoweredOp]:
    """Transform an eager lowering the way torch.compile would.

    Adjacent fusible kernels (within and across operators) merge into single
    Triton kernels; GEMMs keep their identity but get the mode's duration
    scale. The operator structure is preserved — fused kernels attach to the
    first contributing operator.
    """
    if not mode.fuses_elementwise:
        return lowered

    gemm_scale = mode.gemm_duration_scale
    out: list[LoweredOp] = []
    pending: list[KernelTask] = []   # fusible kernels not yet flushed
    pending_owner: int | None = None  # index in `out` of the owning op
    fused_id = 0

    def flush() -> None:
        nonlocal pending, pending_owner, fused_id
        if not pending:
            return
        if len(pending) == 1:
            fused = pending[0]
        else:
            fused = KernelTask(
                name=f"triton_fused_pointwise_{len(pending)}_{fused_id}",
                flops=sum(k.flops for k in pending),
                bytes_read=sum(k.bytes_read for k in pending) * FUSED_TRAFFIC_FACTOR,
                bytes_written=(
                    sum(k.bytes_written for k in pending) * FUSED_TRAFFIC_FACTOR
                ),
            )
            fused_id += 1
        owner = out[pending_owner]
        out[pending_owner] = LoweredOp(owner.op, (*owner.kernels, fused))
        pending = []
        pending_owner = None

    for lowered_op in lowered:
        fusible_op = lowered_op.op.kind in _FUSIBLE_KINDS
        if fusible_op and lowered_op.kernels:
            # Keep 1:1 op alignment: absorbed ops stay in the list with no
            # kernels (they still pay the compiled guard cost); the fused
            # kernel attaches to the first contributing op.
            out.append(LoweredOp(lowered_op.op, ()))
            if pending_owner is None:
                pending_owner = len(out) - 1
            pending.extend(lowered_op.kernels)
            continue
        flush()
        kernels = tuple(
            KernelTask(k.name, k.flops, k.bytes_read, k.bytes_written,
                       duration_scale=gemm_scale if k.is_gemm else 1.0,
                       comm_bytes=k.comm_bytes)
            for k in lowered_op.kernels
        )
        out.append(LoweredOp(lowered_op.op, kernels))
    flush()
    return out
