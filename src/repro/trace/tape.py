"""TraceTape — the engine's allocation-free fast path for metrics-only runs.

Sweeps and serving latency lookups run thousands of engine simulations and
keep nothing but the :class:`~repro.skip.metrics.SkipMetrics` of each.
Building a full :class:`~repro.trace.trace.Trace` for every one of them —
one ``OperatorEvent``/``RuntimeEvent``/``KernelEvent`` dataclass per event,
a global sort, a validation pass, then a dependency-graph reconstruction —
is most of their wall time.

:class:`TapeBuilder` is a drop-in substitute for
:class:`~repro.trace.builder.TraceBuilder` (the execution processes call it
through the identical method surface) that records flat tuples instead of
event objects. The resulting :class:`TraceTape` carries exactly the
information SKIP metrics consume; ``repro.skip.metrics.metrics_from_tape``
computes metrics from it **bit-identically** to
``compute_metrics(trace)`` on the equivalent full trace.

Bit-identity rests on two invariants, both locked by the fast-path parity
suite (``tests/perf/test_fastpath_parity.py``):

* **Id parity.** ``TraceBuilder`` draws event ids from a global counter in
  a fixed pattern (operator: one id; ``launch_kernel``: call id then kernel
  id; ``runtime_call``/graph kernel: one id). The tape replays the same
  pattern from a local counter, so *relative* event-id order — the only
  thing any SKIP sort key uses — is identical.
* **Order parity.** Every float sum in the metrics pipeline iterates in the
  order induced by those sort keys, so identical orders give identical
  floating-point results, not merely close ones.

Runtime calls that launch nothing (synchronizes, ``cudaGraphLaunch``
markers) consume an id but are not recorded: operator nesting/root
detection depends only on operator events (a runtime call never pushes the
operator stack, and the pop scan is monotone in ``ts``), and non-launch
calls feed no metric.
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.trace.events import LAUNCH_KERNEL
from repro.trace.trace import IterationMark

#: Operator record layout: [ts, dur, tid, seq, event_id] (dur patched by
#: ``end_operator``).
OP_TS, OP_DUR, OP_TID, OP_SEQ, OP_ID = range(5)

#: Launch record layout: (call_ts, call_event_id, kernel_name, kernel_ts,
#: kernel_dur, device).
L_CALL_TS, L_CALL_ID, L_NAME, L_TS, L_DUR, L_DEVICE = range(6)

#: Graph-kernel record layout: (ts, event_id, name, dur, device).
G_TS, G_ID, G_NAME, G_DUR, G_DEVICE = range(5)


class TraceTape:
    """Flat event tuples from one engine run — the metrics-only trace."""

    __slots__ = ("ops", "launches", "graph_kernels", "iterations", "metadata")

    def __init__(self, metadata: dict | None = None) -> None:
        self.ops: list[list] = []
        self.launches: list[tuple] = []
        self.graph_kernels: list[tuple] = []
        self.iterations: list[IterationMark] = []
        self.metadata: dict = dict(metadata or {})

    def __len__(self) -> int:
        return len(self.ops) + len(self.launches) + len(self.graph_kernels)


class TapeBuilder:
    """``TraceBuilder``-compatible sink writing a :class:`TraceTape`.

    Validation is intentionally minimal: the execution processes driving it
    are the same ones the validating ``TraceBuilder`` accepts on the slow
    path, and the parity suite runs both.
    """

    __slots__ = ("_tape", "_tid", "_next_id", "_seq", "_open", "_iteration_start")

    def __init__(self, metadata: dict | None = None, tid: int = 1) -> None:
        self._tape = TraceTape(metadata)
        self._tid = tid
        self._next_id = 1  # local stand-in for the global event-id counter
        self._seq = 0
        self._open = 0
        self._iteration_start: float | None = None

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def begin_operator(self, name: str, ts: float,
                       tid: int | None = None) -> list:
        record = [ts, 0.0, self._tid if tid is None else tid,
                  self._seq, self._next_id]
        self._next_id += 1
        self._seq += 1
        self._open += 1
        self._tape.ops.append(record)
        return record

    def end_operator(self, record: list, ts_end: float) -> None:
        record[OP_DUR] = ts_end - record[OP_TS]
        self._open -= 1

    # ------------------------------------------------------------------
    # Runtime calls & kernels
    # ------------------------------------------------------------------
    def launch_kernel(
        self,
        call_ts: float,
        call_dur: float,
        kernel_name: str,
        kernel_ts: float,
        kernel_dur: float,
        stream: int = 7,
        device: int = 0,
        tid: int | None = None,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        call_name: str = LAUNCH_KERNEL,
    ) -> None:
        call_id = self._next_id
        self._next_id += 2  # call event id, then kernel event id
        self._tape.launches.append(
            (call_ts, call_id, kernel_name, kernel_ts, kernel_dur, device))

    def runtime_call(self, name: str, ts: float, dur: float,
                     tid: int | None = None) -> None:
        # Consumes an id (id parity with TraceBuilder) but feeds no metric.
        self._next_id += 1

    def enqueue_graph_kernel(
        self,
        kernel_name: str,
        kernel_ts: float,
        kernel_dur: float,
        stream: int = 7,
        device: int = 0,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
    ) -> None:
        kernel_id = self._next_id
        self._next_id += 1
        self._tape.graph_kernels.append(
            (kernel_ts, kernel_id, kernel_name, kernel_dur, device))

    # ------------------------------------------------------------------
    # Iterations
    # ------------------------------------------------------------------
    def begin_iteration(self, ts: float) -> None:
        if self._iteration_start is not None:
            raise TraceError("iteration already open")
        self._iteration_start = ts

    def end_iteration(self, ts_end: float) -> None:
        if self._iteration_start is None:
            raise TraceError("no open iteration")
        marks = self._tape.iterations
        marks.append(IterationMark(len(marks), self._iteration_start, ts_end))
        self._iteration_start = None

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finish(self) -> TraceTape:
        if self._open:
            raise TraceError(f"unclosed operator scopes: {self._open}")
        if self._iteration_start is not None:
            raise TraceError("unclosed iteration")
        self._tape.iterations.sort(key=lambda m: m.ts)
        return self._tape
