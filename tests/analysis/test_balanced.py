"""Balanced-utilization regions (Section V-D)."""

import pytest

from repro.analysis import find_balanced_region
from repro.errors import AnalysisError


def test_bert_balanced_regions_shift_with_coupling(bert_sweep):
    """Paper: encoders balance at LC BS=4-8 vs CC BS=16-32 — the CC region
    sits at strictly larger batch sizes."""
    intel = find_balanced_region(bert_sweep, "Intel+H100")
    gh200 = find_balanced_region(bert_sweep, "GH200")
    assert intel.found and gh200.found
    assert gh200.low > intel.low
    assert gh200.high >= intel.high


def test_idle_fractions_are_fractions(bert_sweep):
    region = find_balanced_region(bert_sweep, "GH200")
    for series in (region.gpu_idle_fraction, region.cpu_idle_fraction):
        assert all(0.0 <= v <= 1.0 for v in series)


def test_gpu_idle_falls_cpu_idle_rises_with_batch(bert_sweep):
    region = find_balanced_region(bert_sweep, "Intel+H100")
    gpu = region.gpu_idle_fraction
    cpu = region.cpu_idle_fraction
    assert gpu[0] > gpu[-1]   # GPU idles at BS=1, saturates at BS=128
    assert cpu[0] < cpu[-1]   # CPU idles once the GPU dominates


def test_region_membership(bert_sweep):
    region = find_balanced_region(bert_sweep, "Intel+H100")
    assert region.low in region
    assert region.high in region
    assert 1024 not in region


def test_tight_threshold_may_find_nothing(bert_sweep):
    region = find_balanced_region(bert_sweep, "Intel+H100",
                                  idle_threshold=0.01)
    assert not region.found
    assert 8 not in region


def test_threshold_validation(bert_sweep):
    with pytest.raises(AnalysisError):
        find_balanced_region(bert_sweep, "Intel+H100", idle_threshold=0.0)
    with pytest.raises(AnalysisError):
        find_balanced_region(bert_sweep, "Intel+H100", idle_threshold=1.0)
