"""Analyses built on SKIP: sweeps, crossovers, balanced regions, baselines."""

from repro.analysis.balanced import (
    BalancedRegion,
    DEFAULT_IDLE_THRESHOLD,
    find_balanced_region,
)
from repro.analysis.crossover import CrossoverPoint, find_crossover
from repro.analysis.export import (
    load_sweep_json,
    metrics_to_dict,
    sweep_to_csv,
    sweep_to_json,
    sweep_to_records,
)
from repro.analysis.pareto import (
    OperatingPoint,
    ServingOperatingPoint,
    chunk_budget_sweep,
    chunk_sweep_report,
    cross_platform_frontier,
    mixed_prompt_requests,
    operating_points,
    pareto_frontier,
    serving_operating_point,
    serving_pareto_frontier,
)
from repro.analysis.sensitivity import (
    Knob,
    Sensitivity,
    metric_sensitivity,
    sensitivity_sweep,
)
from repro.analysis.slo import (
    DEFAULT_SLO_MS,
    ReplicaAttainment,
    ServingSloAttainment,
    SloPoint,
    SloReport,
    advise,
    serving_slo_attainment,
)
from repro.analysis.whatif import (
    CpuSpeedupRequirement,
    latency_at,
    latency_vs_cpu_scale,
    required_cpu_speedup,
    scaled_platform,
)
from repro.analysis.frameworktax import (
    DEFAULT_FLATNESS_THRESHOLD,
    FrameworkTaxResult,
    LatencyBound,
    classify_latency_curve,
)
from repro.analysis.kvpressure import (
    DEFAULT_KV_POLICIES,
    DEFAULT_POOL_GIB,
    KvPressurePoint,
    KvPressureResult,
    kv_pressure_report,
    run_kv_pressure_sweep,
)
from repro.analysis.sweep import (
    DEFAULT_BATCH_SIZES,
    SweepPoint,
    SweepResult,
    run_batch_sweep,
)
from repro.analysis.tpsweep import (
    DEFAULT_TP_DEGREES,
    TPSweepPoint,
    TPSweepResult,
    run_tp_sweep,
    tp_sweep_report,
)

__all__ = [
    "BalancedRegion",
    "CpuSpeedupRequirement",
    "DEFAULT_SLO_MS",
    "Knob",
    "OperatingPoint",
    "ServingOperatingPoint",
    "chunk_budget_sweep",
    "chunk_sweep_report",
    "cross_platform_frontier",
    "mixed_prompt_requests",
    "operating_points",
    "pareto_frontier",
    "serving_operating_point",
    "serving_pareto_frontier",
    "Sensitivity",
    "load_sweep_json",
    "metric_sensitivity",
    "metrics_to_dict",
    "sensitivity_sweep",
    "sweep_to_csv",
    "sweep_to_json",
    "sweep_to_records",
    "ReplicaAttainment",
    "ServingSloAttainment",
    "SloPoint",
    "SloReport",
    "advise",
    "serving_slo_attainment",
    "latency_at",
    "latency_vs_cpu_scale",
    "required_cpu_speedup",
    "scaled_platform",
    "CrossoverPoint",
    "DEFAULT_BATCH_SIZES",
    "DEFAULT_KV_POLICIES",
    "DEFAULT_POOL_GIB",
    "KvPressurePoint",
    "KvPressureResult",
    "kv_pressure_report",
    "run_kv_pressure_sweep",
    "DEFAULT_FLATNESS_THRESHOLD",
    "DEFAULT_IDLE_THRESHOLD",
    "DEFAULT_TP_DEGREES",
    "FrameworkTaxResult",
    "LatencyBound",
    "SweepPoint",
    "SweepResult",
    "TPSweepPoint",
    "TPSweepResult",
    "classify_latency_curve",
    "find_balanced_region",
    "find_crossover",
    "run_batch_sweep",
    "run_tp_sweep",
    "tp_sweep_report",
]
