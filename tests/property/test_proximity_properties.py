"""Property-based tests for chain mining (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skip import mine_chains, select_nonoverlapping

# Small alphabets force repeated chains; lists long enough to hold windows.
segments_strategy = st.lists(
    st.lists(st.sampled_from("abcde"), min_size=0, max_size=60),
    min_size=1, max_size=4,
)


@given(segments=segments_strategy, length=st.integers(2, 6))
@settings(max_examples=150, deadline=None)
def test_proximity_scores_bounded(segments, length):
    result = mine_chains(segments, length)
    for chain in result.chains:
        assert 0 < chain.proximity_score <= 1.0
        assert chain.frequency <= chain.anchor_frequency
        assert len(chain.chain) == length


@given(segments=segments_strategy, length=st.integers(2, 6))
@settings(max_examples=150, deadline=None)
def test_window_count_identity(segments, length):
    result = mine_chains(segments, length)
    expected = sum(max(0, len(s) - length + 1) for s in segments)
    assert result.total_instances == expected
    assert sum(c.frequency for c in result.chains) == expected


@given(segments=segments_strategy)
@settings(max_examples=100, deadline=None)
def test_longer_chains_never_have_more_instances(segments):
    short = mine_chains(segments, 2)
    long = mine_chains(segments, 4)
    assert long.total_instances <= short.total_instances


@given(segment=st.lists(st.sampled_from("abc"), min_size=0, max_size=50),
       length=st.integers(2, 5))
@settings(max_examples=150, deadline=None)
def test_selected_instances_never_overlap(segment, length):
    result = mine_chains([segment] or [[]], length) if segment else None
    if result is None:
        return
    selected = select_nonoverlapping(segment, result.deterministic(1.0))
    covered: set[int] = set()
    for start, chain in selected:
        span = set(range(start, start + len(chain)))
        assert not (span & covered)
        covered |= span
        assert tuple(segment[start:start + len(chain)]) == chain


@given(segment=st.lists(st.sampled_from("ab"), min_size=2, max_size=40))
@settings(max_examples=100, deadline=None)
def test_deterministic_chain_occurrences_match_frequency(segment):
    result = mine_chains([segment], 2)
    for chain in result.deterministic(1.0):
        # Every occurrence of the anchor (with room for a window) must be
        # followed by the chain's continuation.
        anchor = chain.chain[0]
        occurrences = [i for i, name in enumerate(segment) if name == anchor]
        with_window = [i for i in occurrences if i + 2 <= len(segment)]
        assert chain.frequency == len(with_window) == chain.anchor_frequency
