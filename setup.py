"""Setuptools shim for environments without the `wheel` package.

The sandboxed environment has no network and an older setuptools that cannot
build PEP 660 editable wheels, so `pip install -e .` falls back to the legacy
`setup.py develop` path through this file. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
