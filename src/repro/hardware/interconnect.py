"""Interconnect model and coupling taxonomy.

The paper's Figure 1 taxonomy:

* **LC** (loosely-coupled): discrete CPU/GPU over PCIe, separate memories.
* **CC** (closely-coupled): same board, high-speed chip-to-chip link
  (NVLink-C2C on GH200), unified *virtual* memory.
* **TC** (tightly-coupled): same package, physically unified memory
  (AMD MI300A).

For kernel-launch behavior the relevant interconnect property is the
submission (doorbell) latency the launch path pays; for data movement it is
link bandwidth and base latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class Coupling(enum.Enum):
    """Degree of CPU-GPU integration (Fig. 1 of the paper)."""

    LOOSELY_COUPLED = "LC"
    CLOSELY_COUPLED = "CC"
    TIGHTLY_COUPLED = "TC"

    @property
    def shares_board(self) -> bool:
        return self is not Coupling.LOOSELY_COUPLED

    @property
    def shares_physical_memory(self) -> bool:
        return self is Coupling.TIGHTLY_COUPLED


@dataclass(frozen=True)
class InterconnectSpec:
    """A CPU<->GPU link.

    Attributes:
        name: Link name ("PCIe Gen5 x16", "NVLink-C2C", ...).
        bandwidth_gbs: Unidirectional bandwidth in GB/s.
        base_latency_ns: One-way small-message latency.
        submission_ns: Extra launch-path cost (doorbell write + fetch) a
            kernel launch pays crossing this link.
    """

    name: str
    bandwidth_gbs: float
    base_latency_ns: float
    submission_ns: float

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be positive")
        if self.base_latency_ns < 0 or self.submission_ns < 0:
            raise ConfigurationError(f"{self.name}: latencies must be non-negative")

    def transfer_ns(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` across the link (one direction)."""
        if num_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        # bandwidth_gbs GB/s is numerically equal to bytes per nanosecond.
        return self.base_latency_ns + num_bytes / self.bandwidth_gbs


PCIE_GEN4_X16 = InterconnectSpec(
    name="PCIe Gen4 x16",
    bandwidth_gbs=32.0,
    base_latency_ns=800.0,
    submission_ns=260.0,
)

PCIE_GEN5_X16 = InterconnectSpec(
    name="PCIe Gen5 x16",
    bandwidth_gbs=64.0,
    base_latency_ns=700.0,
    submission_ns=220.0,
)

NVLINK_C2C = InterconnectSpec(
    name="NVLink-C2C",
    bandwidth_gbs=450.0,  # 900 GB/s bidirectional
    base_latency_ns=120.0,
    submission_ns=90.0,
)

INFINITY_FABRIC = InterconnectSpec(
    name="Infinity Fabric (on-package)",
    bandwidth_gbs=512.0,
    base_latency_ns=60.0,
    submission_ns=40.0,
)

#: GPU<->GPU NVLink used for tensor-parallel collectives (per-direction
#: NVLink 4 bandwidth on Hopper-class parts). ``submission_ns`` is zero
#: because collectives launch through the normal kernel-launch path; only
#: the data movement crosses this link.
NVLINK4_P2P = InterconnectSpec(
    name="NVLink 4 (GPU-GPU)",
    bandwidth_gbs=450.0,
    base_latency_ns=1_000.0,
    submission_ns=0.0,
)
