"""Cluster-scale analyses: prefix-caching crossover and router comparison.

Two questions the cluster tier makes answerable:

**Where does prefix caching move the CPU-bound -> GPU-bound crossover?**
A shared-prefix hit deletes the cached tokens' prefill *compute* but not
the per-layer launch tax — the suffix still walks every layer, paying the
full dispatch path (:func:`repro.kvcache.serving.prefill_cached`). Pricing
TTFT over a batch sweep with and without the cached prefix therefore
shifts the launch-flat region: the uncached curve ``ttft(B, P)`` leaves
the framework-bound plateau where compute overtakes launch tax, while the
cached curve ``ttft(B, S)`` with suffix ``S << P`` has less compute per
batch and stays flat to *larger* batch sizes. The transition is detected
with the same flatness rule the framework-tax study uses
(:func:`repro.analysis.frameworktax.classify_latency_curve`), so the
shift is measured, not asserted.

**Does load-aware routing beat blind rotation?** One bursty, length-jittered
stream served through :func:`repro.serving.cluster.simulate_cluster` once
per router policy. Round-robin ignores that a burst's heavy prompts pile
onto whichever replica rotation lands on; least-loaded spreads by
outstanding token mass and finishes the same stream sooner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.frameworktax import classify_latency_curve
from repro.errors import AnalysisError
from repro.hardware.platform import Platform
from repro.serving.cluster import RouterPolicy, simulate_cluster
from repro.serving.continuous import ContinuousBatchPolicy
from repro.serving.latency import LatencyModel
from repro.traffic import (
    ArrivalFamily,
    ArrivalSpec,
    PrefixSpec,
    TrafficConfig,
    generate_traffic,
)
from repro.workloads.config import ModelConfig

#: Batch sizes the crossover sweep prices (doubling, as the flatness rule
#: assumes).
DEFAULT_CROSSOVER_BATCHES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Router policies the comparison serves by default.
DEFAULT_ROUTER_POLICIES: tuple[RouterPolicy, ...] = (
    RouterPolicy.ROUND_ROBIN, RouterPolicy.LEAST_LOADED)


# ----------------------------------------------------------------------
# Prefix-caching crossover
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrefixCrossoverPoint:
    """One platform's TTFT-vs-batch sweep, uncached vs prefix-cached."""

    platform: str
    batch_sizes: tuple[int, ...]
    uncached_ns: tuple[float, ...]
    cached_ns: tuple[float, ...]
    #: First batch size in the compute-bound region; None = still
    #: launch-flat at the largest swept batch (crossover beyond range).
    uncached_transition: int | None
    cached_transition: int | None

    @property
    def shifted(self) -> bool:
        """Did caching move the crossover to a strictly larger batch?

        ``None`` sorts as beyond-range: a cached curve that never leaves
        the flat region counts as shifted iff the uncached one does.
        """
        if self.uncached_transition is None:
            return False
        if self.cached_transition is None:
            return True
        return self.cached_transition > self.uncached_transition


@dataclass
class PrefixCrossoverResult:
    """The crossover sweep over all platforms."""

    model: str
    prompt_len: int
    prefix_len: int
    cached_tokens: int   # whole blocks only — what a COW hit actually skips
    suffix_len: int
    points: list[PrefixCrossoverPoint] = field(default_factory=list)

    def point(self, platform: str) -> PrefixCrossoverPoint:
        for candidate in self.points:
            if candidate.platform == platform:
                return candidate
        raise AnalysisError(f"no crossover sweep for platform {platform!r}")

    def shifted_platforms(self) -> list[str]:
        return [p.platform for p in self.points if p.shifted]


def run_prefix_crossover(
    model: ModelConfig,
    platforms: Sequence[Platform],
    batch_sizes: Sequence[int] = DEFAULT_CROSSOVER_BATCHES,
    prompt_len: int = 512,
    prefix_len: int = 448,
    block_tokens: int = 16,
) -> PrefixCrossoverResult:
    """Price ``ttft(B, prompt)`` vs ``ttft(B, suffix)`` per platform.

    The cached curve prefills only the non-shared suffix — the same
    ``ttft_ns(model, B, suffix)`` lookup :func:`prefill_cached` makes for
    a batch of hits — so each curve's flatness transition is exactly the
    crossover batch the serving path would see.

    Raises:
        AnalysisError: on an empty platform list, a prefix that is not
            shorter than the prompt, or one too short to cover a block.
    """
    if not platforms:
        raise AnalysisError("at least one platform is required")
    if not 0 < prefix_len < prompt_len:
        raise AnalysisError("prefix_len must be in (0, prompt_len)")
    if block_tokens <= 0:
        raise AnalysisError("block_tokens must be positive")
    cached = (prefix_len // block_tokens) * block_tokens
    if cached <= 0:
        raise AnalysisError(
            f"prefix_len {prefix_len} does not cover one "
            f"{block_tokens}-token block; nothing would be cached")
    suffix = prompt_len - cached
    result = PrefixCrossoverResult(
        model=model.name, prompt_len=prompt_len, prefix_len=prefix_len,
        cached_tokens=cached, suffix_len=suffix)
    for platform in platforms:
        latency = LatencyModel(platform=platform)
        uncached = [latency.ttft_ns(model, b, prompt_len)
                    for b in batch_sizes]
        hit = [latency.ttft_ns(model, b, suffix) for b in batch_sizes]
        result.points.append(PrefixCrossoverPoint(
            platform=platform.name,
            batch_sizes=tuple(batch_sizes),
            uncached_ns=tuple(uncached),
            cached_ns=tuple(hit),
            uncached_transition=classify_latency_curve(
                batch_sizes, uncached).transition_batch_size,
            cached_transition=classify_latency_curve(
                batch_sizes, hit).transition_batch_size,
        ))
    return result


def prefix_crossover_report(result: PrefixCrossoverResult) -> str:
    """Render the crossover sweep as a per-platform text table."""
    header = (f"{result.model}: prefix caching vs the launch-tax crossover "
              f"(prompt={result.prompt_len}, cached={result.cached_tokens}, "
              f"suffix={result.suffix_len})")
    lines = [header, "-" * len(header)]
    for point in result.points:
        fmt = lambda t: "beyond sweep" if t is None else f"B={t}"
        lines.append(
            f"{point.platform:<10} uncached crossover {fmt(point.uncached_transition):>12}"
            f"   cached {fmt(point.cached_transition):>12}"
            f"   {'SHIFTED' if point.shifted else 'unchanged'}")
    shifted = result.shifted_platforms()
    if shifted:
        lines.append(
            f"prefix caching defers the CPU-bound->GPU-bound transition on "
            f"{', '.join(shifted)}: a hit deletes prefill compute but not "
            f"the per-layer launch tax, so the launch-flat region extends "
            f"to larger batches")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Router policy comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RouterComparisonPoint:
    """One router policy's serve of the shared bursty stream."""

    policy: RouterPolicy
    tokens_per_s: float
    mean_ttft_ns: float
    routed_per_replica: tuple[int, ...]
    requests_completed: int


@dataclass
class RouterComparisonResult:
    """All policies' serves of one stream on one platform."""

    model: str
    platform: str
    replicas: int
    requests: int
    points: list[RouterComparisonPoint] = field(default_factory=list)

    def point(self, policy: RouterPolicy) -> RouterComparisonPoint:
        for candidate in self.points:
            if candidate.policy is policy:
                return candidate
        raise AnalysisError(f"router policy {policy.value} was not compared")


def run_router_comparison(
    model: ModelConfig,
    platform: Platform,
    policies: Sequence[RouterPolicy] = DEFAULT_ROUTER_POLICIES,
    replicas: int = 4,
    rate_per_s: float = 3000.0,
    duration_s: float = 0.05,
    seed: int = 7,
    prompt_len: int = 64,
    output_tokens: int = 128,
    output_jitter: int = 120,
    max_active: int = 8,
) -> RouterComparisonResult:
    """Serve one bursty, length-jittered stream once per router policy.

    Every cell replays the *same* MMPP-2 arrival stream, so the only
    difference between points is where the router placed each request.
    The default stream is decode-dominated (small fixed prompts, outputs
    jittered over a 15x range): decode steps are launch-bound and shared
    across a replica's active set, so a replica's wall time tracks the
    token mass routed to it — which is exactly the signal least-loaded
    balances and round-robin ignores.

    Raises:
        AnalysisError: on an empty policy list.
    """
    if not policies:
        raise AnalysisError("at least one router policy is required")
    requests = generate_traffic(TrafficConfig(
        arrivals=ArrivalSpec(family=ArrivalFamily.BURSTY,
                             rate_per_s=rate_per_s, duration_s=duration_s,
                             seed=seed, burst_multiplier=6.0,
                             burst_fraction=0.3),
        prompt_len=prompt_len, output_tokens=output_tokens,
        output_jitter=output_jitter))
    serving_policy = ContinuousBatchPolicy(max_active=max_active)
    result = RouterComparisonResult(
        model=model.name, platform=platform.name, replicas=replicas,
        requests=len(requests))
    latency = LatencyModel(platform=platform)
    for policy in policies:
        run = simulate_cluster(requests, model, latency,
                               policy=serving_policy, router=policy,
                               replicas=replicas)
        ttfts = [o.ttft_ns for o in run.outcomes]
        result.points.append(RouterComparisonPoint(
            policy=policy,
            tokens_per_s=run.throughput_tokens_per_s,
            mean_ttft_ns=sum(ttfts) / len(ttfts),
            routed_per_replica=run.router.routed_per_replica
            if run.router else (),
            requests_completed=len(run.outcomes),
        ))
    return result


def router_comparison_report(result: RouterComparisonResult) -> str:
    """Render the router comparison as a text table."""
    header = (f"{result.model} on {result.platform}: router policies over "
              f"one bursty stream ({result.requests} requests, "
              f"{result.replicas} replicas)")
    lines = [header, "-" * len(header)]
    for point in result.points:
        spread = "/".join(str(n) for n in point.routed_per_replica)
        lines.append(
            f"  {point.policy.value:<13} {point.tokens_per_s:>8.1f} tok/s  "
            f"mean TTFT {point.mean_ttft_ns / 1e6:>7.2f} ms  "
            f"placement {spread}")
    try:
        rr = result.point(RouterPolicy.ROUND_ROBIN)
        ll = result.point(RouterPolicy.LEAST_LOADED)
    except AnalysisError:
        return "\n".join(lines)
    if rr.tokens_per_s > 0:
        lines.append(
            f"least-loaded delivers {ll.tokens_per_s / rr.tokens_per_s:.2f}x "
            f"round-robin's tokens/s: bursts of jittered-length requests "
            f"pile onto rotation's next slot, while load-aware placement "
            f"levels outstanding token mass")
    return "\n".join(lines)
