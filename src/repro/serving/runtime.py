"""The serving runtime: policies as processes on the event-driven sim core.

Every serving policy used to be its own standalone simulator, each carrying
a private float clock, admission scan, and outcome bookkeeping. This module
hoists the machinery all six policies share onto :class:`repro.sim.SimCore`:

* :class:`AdmissionQueue` — the shared arrival stream. Entries are sorted by
  arrival; policy processes *claim* them (atomically, between yields) and a
  claim is what admission means. Claims may be filtered by an optional tag
  (e.g. priority classes).
* :func:`arrival_process` — injects each request into the queue at its
  ``arrival_ns``; pure bookkeeping, the open-loop load generator.
* :class:`EngineSession` — one engine replica's resources: a CPU dispatch
  thread plus one GPU device per tensor-parallel shard. ``execute`` is the
  single point where a policy's step touches simulated hardware: it occupies
  the thread, submits one kernel per device stream, appends to the replica's
  device schedules (checkable by ``repro check schedule``), and records the
  step with the run recorder.
* :class:`ServingRuntime` — owns the core, the queue, the sessions, and the
  outcome list. ``run(policy_factory)`` spawns the arrival process plus one
  policy process per replica and drives the simulation to completion.
* :func:`simulate_serving` — the one entry point: dispatches a policy object
  to its process implementation and wraps the results (report, per-replica
  stats, schedules) in a :class:`ServingRunResult`.

With ``replicas=1`` the policy processes perform exactly the same float
operations in the same order as the legacy loops in
:mod:`repro.serving.legacy`, so their outcomes are bit-identical — the
parity tests hold the refactor to that. With ``replicas>1`` the processes
race for claims on the shared queue; the core's deterministic FIFO
tie-break (spawn order at equal timestamps) keeps multi-replica runs
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.obs.events import EngineShape, StepKind
from repro.obs.recorder import RunRecorder
from repro.serving.latency import LatencyModel
from repro.serving.requests import Request, RequestOutcome, queue_delay_ns
from repro.sim.causality import CausalityLog
from repro.sim.core import Process, SimCore
from repro.sim.queue import EventQueue
from repro.sim.resources import CpuThread, GpuDevice
from repro.workloads.config import ModelConfig

if TYPE_CHECKING:
    from repro.host.model import HostModel, HostStats
    from repro.kvcache.manager import KvCacheConfig, KvManager
    from repro.serving.batcher import ServingReport


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------
@dataclass(slots=True)
class AdmissionEntry:
    """One request waiting in (or already claimed from) the shared queue."""

    request: Request
    tag: Hashable = None
    injected: bool = False
    claimed: bool = False
    #: Position in the queue's arrival-sorted entry list; lets claim_batch
    #: resume scanning right after its seed instead of from the front.
    index: int = -1

    @property
    def arrival_ns(self) -> float:
        return self.request.arrival_ns


class AdmissionQueue:
    """The arrival stream every replica's policy process claims work from.

    Entries stay in arrival order for the queue's whole lifetime; *claiming*
    flips a flag rather than removing the entry, so "consecutive unclaimed"
    — the static batcher's contiguity rule — survives interleaved claims by
    other replicas. All mutation happens inside a policy process between
    yields, which the single-threaded core runs atomically.
    """

    def __init__(self, requests: Sequence[Request],
                 tags: dict[int, Hashable] | None = None) -> None:
        if not requests:
            raise ConfigurationError("no requests to serve")
        # Stable sort by arrival keeps ties in caller order, matching the
        # legacy loops' ``sorted(requests, key=arrival)`` exactly.
        ordered = sorted(requests, key=lambda r: r.arrival_ns)
        tags = tags or {}
        self.entries = [
            AdmissionEntry(request=r, tag=tags.get(r.request_id), index=i)
            for i, r in enumerate(ordered)
        ]
        # Every entry before this index is claimed. Claims are monotone
        # (never undone), so the cursor only moves forward; it turns the
        # O(total-requests) front-of-queue rescans every policy wake-up
        # performs into O(still-pending). Pure bookkeeping: the entries
        # yielded are exactly those the full scan would yield.
        self._scan_start = 0

    # -- read side -----------------------------------------------------
    def _unclaimed(self, tag: Hashable = None) -> Iterable[AdmissionEntry]:
        entries = self.entries
        start = self._scan_start
        n = len(entries)
        while start < n and entries[start].claimed:
            start += 1
        self._scan_start = start
        for i in range(start, n):
            entry = entries[i]
            if not entry.claimed and (tag is None or entry.tag == tag):
                yield entry

    def first_unclaimed(self, tag: Hashable = None) -> AdmissionEntry | None:
        """Oldest unclaimed entry (optionally of one tag), or None."""
        for entry in self._unclaimed(tag):
            return entry
        return None

    def next_unclaimed_arrival(self, after: float | None = None,
                               tag: Hashable = None) -> float | None:
        """Arrival time of the first unclaimed entry, or of the first one
        arriving strictly after ``after``. None when no such entry exists."""
        for entry in self._unclaimed(tag):
            if after is None or entry.arrival_ns > after:
                return entry.arrival_ns
        return None

    def depth(self, now: float, tag: Hashable = None) -> int:
        """Unclaimed requests that have arrived by ``now``."""
        count = 0
        for entry in self._unclaimed(tag):
            if entry.arrival_ns > now:
                break
            count += 1
        return count

    def all_claimed(self) -> bool:
        return self.first_unclaimed() is None

    # -- write side ----------------------------------------------------
    def claim(self, now: float, limit: int,
              tag: Hashable = None) -> list[Request]:
        """Claim up to ``limit`` unclaimed requests that arrived by ``now``,
        oldest first. Returns the claimed requests in arrival order."""
        batch: list[Request] = []
        for entry in self._unclaimed(tag):
            if len(batch) >= limit or entry.arrival_ns > now:
                break
            entry.claimed = True
            entry.injected = True
            batch.append(entry.request)
        return batch

    def claim_batch(self, seed: AdmissionEntry, limit: int,
                    cutoff: float) -> list[Request]:
        """Claim ``seed`` plus the consecutive unclaimed entries after it
        whose arrivals are within ``cutoff`` — the static batcher's gather
        rule (a gap in arrivals past the cutoff closes the batch)."""
        if seed.claimed:
            raise SimulationError(
                f"request {seed.request.request_id} claimed twice")
        seed.claimed = True
        seed.injected = True
        batch = [seed.request]
        for entry in self.entries[seed.index + 1:]:
            if entry.claimed:
                continue
            if len(batch) >= limit or entry.arrival_ns > cutoff:
                break
            entry.claimed = True
            entry.injected = True
            batch.append(entry.request)
        return batch


def arrival_process(queue: AdmissionQueue) -> Process:
    """Open-loop load generator: marks each entry injected at its arrival.

    Claims gate on ``arrival_ns <= now`` directly, so this process carries
    no scheduling semantics — it exists so every arrival is a simulation
    event (visible in ``core.now`` advancement) and so tests can observe
    the injection front via :attr:`AdmissionEntry.injected`.
    """
    for entry in queue.entries:
        if not entry.injected:
            yield ("at", entry.arrival_ns)
        entry.injected = True


# ----------------------------------------------------------------------
# Engine sessions (one per replica)
# ----------------------------------------------------------------------
@dataclass
class EngineSession:
    """One engine replica: a CPU dispatch thread plus its TP shard devices.

    ``schedule_items`` holds, per device, the ordered issue list the policy
    produced — ``("kernel", name)`` entries plus, for multi-shard replicas,
    ``("join", key, parties)`` collectives that keep the shards in lockstep.
    ``repro.check.schedule.schedules_from_serving`` lifts these into typed
    :class:`DeviceSchedule` objects for the static checker.
    """

    replica: int
    thread: CpuThread
    devices: list[GpuDevice]
    recorder: RunRecorder | None = None
    kv: KvManager | None = None
    #: Finite-host CPU model (None = the classic infinite-CPU path, which
    #: is bit-identical to a build without :mod:`repro.host`).
    host: HostModel | None = None
    #: NUMA domain this replica's dispatch is affine to (host runs only).
    numa_domain: int | None = None
    schedule_items: dict[int, list[tuple]] = field(default_factory=dict)
    steps: int = 0
    requests: int = 0
    output_tokens: int = 0

    def __post_init__(self) -> None:
        if not self.devices:
            raise SimulationError("engine session needs at least one device")
        for device in self.devices:
            self.schedule_items[device.index] = []

    @property
    def world(self) -> int:
        return len(self.devices)

    def execute(self, kind: StepKind, ts_ns: float, dur_ns: float,
                batch_size: int, queue_depth: int = 0,
                shape: EngineShape | None = None,
                schedule_label: str | None = None,
                cpu_ns: float = 0.0) -> float:
        """Run one policy step on this replica's simulated hardware.

        Occupies the dispatch thread for the step, submits one covering
        kernel per shard's compute stream (steps on a replica are issued in
        time order, so each submission starts exactly at ``ts_ns``), and
        appends the issue to every shard's checkable schedule. Multi-shard
        steps also record a rendezvous joining all shards, mirroring how
        tensor-parallel execution keeps devices in lockstep.

        Returns the step's *effective* duration, which the caller adds to
        its clock. Without a host model that is exactly ``dur_ns`` — so
        ``clock += session.execute(...)`` performs the same float
        operations as the historical ``execute(...); clock += dur_ns``
        (the parity anchor). With a host model attached, the step first
        books its CPU share ``cpu_ns`` on the finite
        :class:`~repro.host.CpuPool`: the grant's queueing stall delays
        the whole step, and a remote-domain booking inflates the CPU
        share by the host's NUMA penalty — both surface in the returned
        duration and in the recorded step.

        ``schedule_label`` overrides the kernel name recorded in the
        checkable schedule (the chunked-prefill planner encodes chunk
        coordinates there for rule S007); the recorder stream is unaffected.
        """
        name = schedule_label or f"serving::{kind.value}"
        start_ns = ts_ns
        span_ns = dur_ns
        if self.host is None:
            self.thread.occupy(dur_ns)
        else:
            grant = self.host.dispatch(f"replica{self.replica}", ts_ns,
                                       cpu_ns, domain=self.numa_domain)
            start_ns = grant.start_ns
            span_ns = dur_ns + (grant.cpu_ns - cpu_ns)
            self.thread.occupy(span_ns)
        for device in self.devices:
            device.compute_stream.submit(start_ns, span_ns)
            items = self.schedule_items[device.index]
            items.append(("kernel", name))
            if self.world > 1:
                items.append(("join",
                              f"replica{self.replica}.step{self.steps}",
                              self.world))
        if self.recorder is not None:
            self.recorder.record_step(kind, start_ns, span_ns, batch_size,
                                      queue_depth=queue_depth, shape=shape,
                                      replica=self.replica)
        self.steps += 1
        return (start_ns - ts_ns) + span_ns

    @property
    def busy_ns(self) -> float:
        """Compute occupancy of the replica's first shard (all shards see
        identical submissions, so any one of them is representative)."""
        return self.devices[0].compute_stream.busy_ns

    @property
    def span_ns(self) -> float:
        return self.devices[0].compute_stream.free_at


# ----------------------------------------------------------------------
# Runtime + results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaStats:
    """Per-replica utilization summary for one serving run."""

    replica: int
    requests: int
    output_tokens: int
    steps: int
    busy_ns: float
    span_ns: float
    #: Dispatch-thread occupancy (CpuThread.busy_ns) — the CPU side of the
    #: replica, surfaced in the `repro serve` summary and timeline lanes.
    cpu_busy_ns: float = 0.0

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.span_ns <= 0:
            return 0.0
        return self.output_tokens / (self.span_ns / 1e9)

    @property
    def utilization(self) -> float:
        if self.span_ns <= 0:
            return 0.0
        return self.busy_ns / self.span_ns

    @property
    def cpu_utilization(self) -> float:
        """Dispatch-thread busy fraction over the replica's span."""
        if self.span_ns <= 0:
            return 0.0
        return self.cpu_busy_ns / self.span_ns


@dataclass(frozen=True)
class KvReplicaStats:
    """Per-replica KV-pool pressure summary for one serving run."""

    replica: int
    capacity_blocks: int
    block_tokens: int
    preemptions: int
    swap_out_events: int
    swap_in_events: int
    swapped_blocks: int
    swap_ns: float
    prefix_hits: int = 0
    prefix_misses: int = 0
    cow_forks: int = 0
    prefix_evictions: int = 0

    @property
    def pressured(self) -> bool:
        """Whether the pool ever forced an eviction on this replica."""
        return self.preemptions > 0 or self.swap_out_events > 0


PolicyFactory = Callable[["ServingRuntime", EngineSession], Process]


class ServingRuntime:
    """Owns the sim core, admission queue, and engine sessions of one run."""

    def __init__(
        self,
        requests: Sequence[Request],
        model: ModelConfig,
        latency: LatencyModel,
        recorder: RunRecorder | None = None,
        replicas: int = 1,
        tags: dict[int, Hashable] | None = None,
        kv: KvCacheConfig | None = None,
        queue: EventQueue | None = None,
        causality: CausalityLog | None = None,
        host: HostModel | None = None,
    ) -> None:
        if replicas <= 0:
            raise ConfigurationError("replicas must be positive")
        self.model = model
        self.latency = latency
        self.recorder = recorder
        # `queue` injects a tie-break discipline (the determinism certifier
        # runs the same stream FIFO and LIFO); `causality` opts into the
        # happens-before log. Both default to None = the untouched path.
        self.core = SimCore(queue=queue, causality=causality)
        self.queue = AdmissionQueue(requests, tags)
        # One engine replica spans tp.degree shards per pipeline stage.
        self.devices_per_replica = (
            (latency.tp.degree if latency.tp else 1)
            * (latency.pp.stages if latency.pp else 1))
        # kv=None (or policy NONE) builds no manager at all: the default
        # path stays bit-identical to pre-kvcache serving.
        self.kv_config = kv if kv is not None and kv.enabled else None
        # host=None is the infinite-CPU fast path (bit-identical to a
        # build without repro.host); a HostModel makes dispatch CPU a
        # finite resource the replicas contend for.
        self.host = host
        if host is not None:
            host.attach(self.core, recorder=recorder)
        self.sessions: list[EngineSession] = []
        for replica in range(replicas):
            thread = self.core.add_cpu_thread(name=f"serve{replica}")
            devices = [self.core.add_device(replica=replica)
                       for _ in range(self.devices_per_replica)]
            manager = None
            if self.kv_config is not None:
                from repro.kvcache.manager import KvManager

                manager = KvManager.for_gpu(
                    model, latency.platform, self.kv_config,
                    recorder=recorder, replica=replica)
                self.core.add_kv_resource(manager.resource)
                if recorder is not None:
                    recorder.on_kv_pool(replica, manager.capacity_blocks,
                                        self.kv_config.policy.value,
                                        self.kv_config.block_tokens)
            self.sessions.append(EngineSession(
                replica=replica, thread=thread, devices=devices,
                recorder=recorder, kv=manager, host=host,
                numa_domain=(host.domain_for(replica)
                             if host is not None else None)))
        self.outcomes: list[RequestOutcome] = []

    @property
    def replicas(self) -> int:
        return len(self.sessions)

    def complete(self, request: Request, ttft_ns: float, completion_ns: float,
                 batch_size: int, service_start_ns: float,
                 session: EngineSession) -> RequestOutcome:
        """Record one finished request against the replica that served it."""
        outcome = RequestOutcome(
            request=request,
            ttft_ns=ttft_ns,
            completion_ns=completion_ns,
            batch_size=batch_size,
            queue_ns=queue_delay_ns(request, service_start_ns),
            replica=session.replica,
        )
        self.outcomes.append(outcome)
        session.requests += 1
        session.output_tokens += request.output_tokens
        return outcome

    def run(self, policy_factory: PolicyFactory) -> list[RequestOutcome]:
        """Spawn the arrival process plus one policy process per replica and
        drive the simulation until every request has been served."""
        self.core.spawn(arrival_process(self.queue))
        for session in self.sessions:
            self.core.spawn(policy_factory(self, session))
        self.core.run()
        if not self.queue.all_claimed():
            unserved = [e.request.request_id
                        for e in self.queue.entries if not e.claimed]
            raise SimulationError(
                f"policy left requests unserved: {unserved[:5]}")
        if len(self.outcomes) != len(self.queue.entries):
            raise SimulationError(
                f"served {len(self.outcomes)} outcomes for "
                f"{len(self.queue.entries)} requests")
        served = [o.request.request_id for o in self.outcomes]
        if len(set(served)) != len(served):
            raise SimulationError("a request completed more than once")
        for session in self.sessions:
            if session.kv is None:
                continue
            if session.kv.prefix_caching:
                # Warm (idle) shared-prefix groups are cache, not leaks:
                # return their blocks before the leak accounting below.
                session.kv.flush_prefixes(self.core.now)
            if session.kv.pool.allocated != 0:
                raise SimulationError(
                    f"replica {session.replica} leaked "
                    f"{session.kv.pool.allocated} KV blocks at run end")
            if session.kv.host_blocks != 0:
                raise SimulationError(
                    f"replica {session.replica} left {session.kv.host_blocks}"
                    f" KV blocks stranded in host memory at run end")
        if self.host is not None and self.recorder is not None:
            # Re-register with the end-of-run core occupancy totals so
            # the exported metadata carries what rule N004 conserves.
            self.recorder.on_host(self.host.describe())
        return self.outcomes

    def replica_stats(self) -> list[ReplicaStats]:
        return [ReplicaStats(
            replica=s.replica,
            requests=s.requests,
            output_tokens=s.output_tokens,
            steps=s.steps,
            busy_ns=s.busy_ns,
            span_ns=s.span_ns,
            cpu_busy_ns=s.thread.busy_ns,
        ) for s in self.sessions]

    def kv_stats(self) -> list[KvReplicaStats]:
        """Per-replica KV pressure summaries (empty when kv is disabled)."""
        stats = []
        for session in self.sessions:
            manager = session.kv
            if manager is None:
                continue
            stats.append(KvReplicaStats(
                replica=session.replica,
                capacity_blocks=manager.capacity_blocks,
                block_tokens=manager.block_tokens,
                preemptions=manager.preemptions,
                swap_out_events=manager.swap_out_events,
                swap_in_events=manager.swap_in_events,
                swapped_blocks=manager.swapped_blocks,
                swap_ns=manager.swap_ns_total,
                prefix_hits=manager.prefix_hits,
                prefix_misses=manager.prefix_misses,
                cow_forks=manager.cow_forks,
                prefix_evictions=manager.prefix_evictions,
            ))
        return stats


@dataclass
class ServingRunResult:
    """Everything one sim-backed serving run produced."""

    report: ServingReport
    outcomes: list[RequestOutcome]
    replicas: list[ReplicaStats]
    sessions: list[EngineSession]
    devices_per_replica: int
    kv: list[KvReplicaStats] = field(default_factory=list)
    #: Host CPU accounting when the run contended for a finite host
    #: (``host=...``); None on the classic infinite-CPU path.
    host: "HostStats | None" = None

    @property
    def throughput_tokens_per_s(self) -> float:
        return self.report.throughput_tokens_per_s()


def _normalize(requests: Sequence) -> tuple[list[Request], dict[int, Hashable]]:
    """Accept plain Requests or ClassifiedRequests; split off the tags."""
    plain: list[Request] = []
    tags: dict[int, Hashable] = {}
    for item in requests:
        request = getattr(item, "request", None)
        if isinstance(request, Request):
            plain.append(request)
            tags[request.request_id] = item.request_class
        elif isinstance(item, Request):
            plain.append(item)
        else:
            raise ConfigurationError(
                f"not a request: {item!r}")
    return plain, tags


def _policy_factory(policy: object) -> Callable[..., Process]:
    """Map a policy object to its process implementation (lazy imports keep
    the policy modules free to import this one at module level)."""
    from repro.serving.batcher import StaticBatchPolicy, static_batching_process
    from repro.serving.continuous import (
        ContinuousBatchPolicy,
        continuous_batching_process,
    )
    from repro.serving.pipeline import (
        PipelineServingPolicy,
        pipeline_serving_process,
    )
    from repro.serving.rag import RagServingPolicy, rag_serving_process
    from repro.serving.scheduler import (
        PriorityPolicy,
        priority_scheduling_process,
    )
    from repro.serving.speculative import (
        SpeculativeServingPolicy,
        speculative_serving_process,
    )

    table: list[tuple[type, Callable[..., Process]]] = [
        (StaticBatchPolicy, static_batching_process),
        (ContinuousBatchPolicy, continuous_batching_process),
        (PriorityPolicy, priority_scheduling_process),
        (SpeculativeServingPolicy, speculative_serving_process),
        (PipelineServingPolicy, pipeline_serving_process),
        (RagServingPolicy, rag_serving_process),
    ]
    for policy_type, process in table:
        if isinstance(policy, policy_type):
            return process
    raise ConfigurationError(
        f"no serving process for policy {type(policy).__name__}")


def simulate_serving(
    requests: Sequence,
    model: ModelConfig,
    latency: LatencyModel,
    policy: object | None = None,
    replicas: int = 1,
    recorder: RunRecorder | None = None,
    kv: KvCacheConfig | None = None,
    queue: EventQueue | None = None,
    causality: CausalityLog | None = None,
    host: HostModel | None = None,
) -> ServingRunResult:
    """Serve an arrival stream with any policy on the sim-backed runtime.

    Args:
        requests: Plain :class:`Request` stream, or ``ClassifiedRequest``
            stream for the priority scheduler (tags travel with the queue).
        policy: Any serving policy object; defaults to continuous batching.
        replicas: Engine replicas sharing the one admission queue. Each gets
            its own CPU thread and TP-shard devices; requests go to whichever
            replica claims them first.
        kv: KV-cache settings. ``None`` or policy ``NONE`` builds no pool
            and reproduces pre-kvcache outcomes bit-identically; a pressure
            policy (``RECOMPUTE``/``OFFLOAD``) requires continuous batching
            and gates admission and decode growth on per-replica pools.
        queue: Optional event-queue override (e.g.
            :class:`~repro.sim.queue.PerturbedEventQueue` for determinism
            certification); None = the production FIFO-tie-break queue.
        causality: Optional happens-before log the run records into
            (``repro check hb`` consumes it); None = no logging.
        host: Optional finite-host CPU model
            (:class:`repro.host.HostModel`). Replicas then book every
            step's dispatch CPU share on the shared core pool and pay
            queueing stalls plus NUMA penalties; ``None`` keeps dispatch
            CPU free and infinite, bit-identically to prior behavior.
            Only the continuous-batching policy family prices per-step
            CPU shares, so other policies require ``host=None``.
    """
    from repro.serving.batcher import ServingReport
    from repro.serving.continuous import ContinuousBatchPolicy

    if policy is None:
        policy = ContinuousBatchPolicy()
    if host is not None and not isinstance(policy, ContinuousBatchPolicy):
        raise ConfigurationError(
            f"host CPU contention requires continuous batching "
            f"(only that policy family prices per-step CPU shares); "
            f"got {type(policy).__name__}")
    if kv is not None and kv.enabled:
        if not isinstance(policy, ContinuousBatchPolicy):
            raise ConfigurationError(
                f"KV pressure policies require continuous batching; "
                f"got {type(policy).__name__}")
        from repro.kvcache.serving import kv_continuous_batching_process

        process: Callable[..., Process] = kv_continuous_batching_process
    else:
        process = _policy_factory(policy)
    plain, tags = _normalize(requests)
    runtime = ServingRuntime(plain, model, latency, recorder=recorder,
                             replicas=replicas, tags=tags or None, kv=kv,
                             queue=queue, causality=causality, host=host)
    runtime.run(lambda rt, session: process(rt, session, policy))
    return ServingRunResult(
        report=ServingReport(outcomes=list(runtime.outcomes)),
        outcomes=list(runtime.outcomes),
        replicas=runtime.replica_stats(),
        sessions=runtime.sessions,
        devices_per_replica=runtime.devices_per_replica,
        kv=runtime.kv_stats(),
        host=runtime.host.stats() if runtime.host is not None else None,
    )
