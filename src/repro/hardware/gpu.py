"""GPU model.

Kernel durations follow a roofline with size-dependent efficiency:

``duration = max(min_kernel_ns, flops / eff_flops, bytes / eff_bandwidth)``

where the effective rates ramp up with kernel size (small kernels cannot fill
the machine). The ramp is the standard saturating form ``x / (x + ramp)``,
so a GEMM with ``ramp_flops`` useful FLOPs runs at half the sustained rate.

``min_kernel_ns`` is the nullKernel duration of Table V — the floor any kernel
pays for scheduling/teardown on that GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GIGA, TERA


@dataclass(frozen=True)
class GpuSpec:
    """A GPU participating in a coupled platform.

    Attributes:
        name: Marketing name.
        fp16_tflops: Peak dense FP16 tensor throughput (TFLOP/s).
        sustain: Fraction of peak sustainable under the board's power cap
            (e.g. the 350 W H100 PCIe sustains far less than its datasheet
            peak; the 900 W GH200 module sustains close to peak).
        hbm_bandwidth_gbs: Peak HBM bandwidth (GB/s).
        bandwidth_sustain: Achievable fraction of peak bandwidth.
        min_kernel_ns: nullKernel execution duration (Table V floor).
        ramp_flops: FLOP count at which compute efficiency reaches 50%.
        ramp_bytes: Byte count at which bandwidth efficiency reaches 50%.
        memory_gib: HBM capacity (informational).
    """

    name: str
    fp16_tflops: float
    sustain: float
    hbm_bandwidth_gbs: float
    bandwidth_sustain: float
    min_kernel_ns: float
    ramp_flops: float = 1.2e9
    ramp_bytes: float = 1.5e6
    memory_gib: int = 80

    def __post_init__(self) -> None:
        if self.fp16_tflops <= 0 or self.hbm_bandwidth_gbs <= 0:
            raise ConfigurationError(f"{self.name}: rates must be positive")
        if not (0 < self.sustain <= 1) or not (0 < self.bandwidth_sustain <= 1):
            raise ConfigurationError(f"{self.name}: sustain fractions must be in (0, 1]")
        if self.min_kernel_ns <= 0:
            raise ConfigurationError(f"{self.name}: min_kernel_ns must be positive")

    # ------------------------------------------------------------------
    # Effective rates
    # ------------------------------------------------------------------
    def compute_efficiency(self, flops: float) -> float:
        """Fraction of sustained FLOP rate achieved by a kernel of this size."""
        if flops <= 0:
            return 0.0
        return flops / (flops + self.ramp_flops)

    def bandwidth_efficiency(self, bytes_moved: float) -> float:
        """Fraction of sustained bandwidth achieved by a kernel of this size."""
        if bytes_moved <= 0:
            return 0.0
        return bytes_moved / (bytes_moved + self.ramp_bytes)

    def effective_flops_per_ns(self, flops: float) -> float:
        """Achievable FLOPs per nanosecond for a kernel with ``flops`` work."""
        rate_per_s = self.fp16_tflops * TERA * self.sustain * self.compute_efficiency(flops)
        return rate_per_s / GIGA  # per ns

    def effective_bytes_per_ns(self, bytes_moved: float) -> float:
        """Achievable bytes per nanosecond for a kernel moving ``bytes_moved``."""
        rate_per_s = (
            self.hbm_bandwidth_gbs
            * GIGA
            * self.bandwidth_sustain
            * self.bandwidth_efficiency(bytes_moved)
        )
        return rate_per_s / GIGA

    def kernel_duration_ns(self, flops: float, bytes_moved: float,
                           floor_scale: float = 1.0) -> float:
        """Roofline duration of a kernel on this GPU, in nanoseconds.

        ``floor_scale`` scales the per-kernel scheduling floor; CUDA-graph
        replay pre-encodes launch descriptors and pays roughly half the
        front-end cost of an individually launched kernel.
        """
        if flops < 0 or bytes_moved < 0:
            raise ConfigurationError("kernel work must be non-negative")
        if floor_scale <= 0:
            raise ConfigurationError("floor_scale must be positive")
        # With the saturating efficiency x/(x+ramp), the roofline term
        # work / (rate * eff(work)) reduces exactly to (work + ramp) / rate,
        # which is numerically stable for arbitrarily small work.
        compute_ns = 0.0
        if flops > 0:
            compute_rate = self.fp16_tflops * TERA * self.sustain / GIGA
            compute_ns = (flops + self.ramp_flops) / compute_rate
        memory_ns = 0.0
        if bytes_moved > 0:
            memory_rate = self.hbm_bandwidth_gbs * self.bandwidth_sustain
            memory_ns = (bytes_moved + self.ramp_bytes) / memory_rate
        return max(self.min_kernel_ns * floor_scale, compute_ns, memory_ns)
