"""Engine-backed latency model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import INTEL_H100
from repro.serving import LatencyModel
from repro.workloads import GPT2, LLAMA_3_2_1B


@pytest.fixture(scope="module")
def model():
    return LatencyModel(INTEL_H100)


def test_ttft_positive_and_cached(model):
    first = model.ttft_ns(GPT2, 1, 256)
    second = model.ttft_ns(GPT2, 1, 256)
    assert first > 0
    assert first == second
    assert (GPT2.name, 1, 256) in model._ttft_cache


def test_ttft_grows_with_batch(model):
    assert model.ttft_ns(GPT2, 32, 256) > model.ttft_ns(GPT2, 1, 256)


def test_decode_step_vs_prefill_by_batch(model):
    # At BS=1 both phases are CPU-bound and comparable (decode even has two
    # extra KV-append ops per layer); at BS=16 prefill is GPU-bound while the
    # one-token decode step stays cheap.
    prefill_1 = model.ttft_ns(LLAMA_3_2_1B, 1, 512)
    decode_1 = model.decode_step_ns(LLAMA_3_2_1B, 1, 512)
    assert decode_1 == pytest.approx(prefill_1, rel=0.3)
    prefill_16 = model.ttft_ns(LLAMA_3_2_1B, 16, 512)
    decode_16 = model.decode_step_ns(LLAMA_3_2_1B, 16, 512)
    assert decode_16 < prefill_16 / 3


def test_generation_composes_prefill_and_decode(model):
    ttft = model.ttft_ns(GPT2, 1, 128)
    total = model.generation_ns(GPT2, 1, 128, 16)
    assert total > ttft
    step = model.decode_step_ns(GPT2, 1, 129)
    assert total == pytest.approx(ttft + 16 * step, rel=0.2)


def test_generation_zero_output_is_ttft(model):
    assert model.generation_ns(GPT2, 1, 128, 0) == model.ttft_ns(GPT2, 1, 128)


def test_generation_negative_output_rejected(model):
    with pytest.raises(ConfigurationError):
        model.generation_ns(GPT2, 1, 128, -1)


def test_throughput_improves_with_batching(model):
    single = model.tokens_per_second(GPT2, 1, 128, 16)
    batched = model.tokens_per_second(GPT2, 16, 128, 16)
    assert batched > 4 * single
