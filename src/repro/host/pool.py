"""CpuPool — host cores as a finite, contended simulation resource.

Every serving replica used to get a private, infinite
:class:`~repro.sim.resources.CpuThread`: dispatch CPU was free, so "how
many replicas per host?" had no answer. ``CpuPool`` closes that hole. It
models the host's physical cores (grouped into NUMA domains, see
:class:`repro.hardware.host.HostSpec`) and hands out *time-booked grants*:
a step's CPU share is scheduled onto the earliest-free core of the
replica's affine domain, and the difference between the grant's start and
the request time is a real queueing stall the step pays on its critical
path.

Two access modes, mirroring :class:`repro.kvcache.KvCacheResource`:

* **Synchronous booking** (:meth:`dispatch`) — policy processes book CPU
  shares between yields. Booking is deterministic: cores are chosen by
  ``(earliest start, lowest index)``, local domain first; a remote-domain
  core is used only when it starts *strictly* earlier and the caller is
  not pinned, and the booked CPU time is inflated by the host's
  ``remote_penalty``. Per-core bookings are monotone in time, so grants on
  one core can never overlap — rule N001 replays that invariant from the
  exported trace.
* **Blocking reservation** (``("acquire", pool, owner, cores, ready_ns)``
  / ``("release", pool, owner, ready_ns)`` yield verbs) — exclusive
  whole-core reservations with deterministic FIFO grants, for experiments
  where the waiting and the freeing happen in different processes.
  Reserved cores are excluded from booking until released; a run ending
  with parked waiters is a deadlock, reported by :meth:`SimCore.run`
  exactly like a starved KV acquisition.

With an attached causality log every booking records an ``occupy``
interval on ``<pool>.core<i>`` and every reservation records
``acquire``/``grant``/``free`` events, so ``repro check hb`` can certify
grant-order determinism under adversarial tie-breaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:
    from repro.sim.causality import CausalityLog
    from repro.sim.core import Process
    from repro.sim.queue import EventQueue


@dataclass(slots=True)
class CpuCore:
    """One physical core: identity plus its booking frontier.

    Attributes:
        index: Core ordinal on the host (stable causality label
            ``<pool>.core<index>``).
        domain: Owning NUMA domain ordinal.
        free_at: Time the core finishes its last booked CPU share.
        busy_ns: Accumulated booked CPU time.
        grants: Number of bookings taken on this core.
    """

    index: int
    domain: int
    free_at: float = 0.0
    busy_ns: float = 0.0
    grants: int = 0


@dataclass(frozen=True, slots=True)
class CoreGrant:
    """One CPU-share booking: which core ran it, when, and at what cost.

    ``cpu_ns`` is the *effective* booked time — the requested share
    inflated by the host's remote penalty when ``remote`` is True. The
    caller's queueing stall is ``start_ns`` minus its request time.
    """

    owner: str
    core: int
    domain: int
    start_ns: float
    end_ns: float
    cpu_ns: float
    remote: bool = False


@dataclass(slots=True)
class _Waiter:
    """One parked reservation: who wants how many cores, since when."""

    process: Process
    owner: Hashable
    cores: int
    ready_ns: float


class CpuPool:
    """A host's cores, bound to a sim core's event queue."""

    def __init__(self, cores: Sequence[CpuCore], name: str = "host",
                 remote_penalty: float = 1.0) -> None:
        if not cores:
            raise ConfigurationError("a cpu pool needs at least one core")
        if remote_penalty < 1.0:
            raise ConfigurationError(
                "remote_penalty is a slowdown multiplier; must be >= 1.0")
        indices = [core.index for core in cores]
        if len(set(indices)) != len(indices):
            raise ConfigurationError("cpu pool core indices must be unique")
        self.cores: list[CpuCore] = list(cores)
        self.name = name
        self.remote_penalty = remote_penalty
        self.waiters: list[_Waiter] = []
        self._held: dict[Hashable, list[CpuCore]] = {}
        self._held_count = 0
        self._queue: EventQueue | None = None
        self._log: CausalityLog | None = None

    # -- introspection ---------------------------------------------------
    @property
    def capacity(self) -> int:
        return len(self.cores)

    @property
    def available(self) -> int:
        """Cores not under an exclusive reservation."""
        return len(self.cores) - self._held_count

    @property
    def busy_ns(self) -> float:
        """Total booked CPU time across all cores."""
        return sum(core.busy_ns for core in self.cores)

    def domains(self) -> dict[int, int]:
        """Core count per NUMA domain."""
        counts: dict[int, int] = {}
        for core in self.cores:
            counts[core.domain] = counts.get(core.domain, 0) + 1
        return counts

    # -- core binding ----------------------------------------------------
    def bind(self, queue: EventQueue,
             causality: CausalityLog | None = None) -> None:
        """Attach to a core's event queue (``SimCore.add_host_pool``)."""
        self._queue = queue
        self._log = causality
        if causality is not None:
            causality.resource(self.name, len(self.cores))

    # -- synchronous booking (policy processes, between yields) ----------
    def dispatch(self, owner: str, ts_ns: float, cpu_ns: float,
                 domain: int | None = None,
                 pinned: bool = False) -> CoreGrant:
        """Book ``cpu_ns`` of dispatch CPU for ``owner``, requested at
        ``ts_ns``, preferring the cores of ``domain``.

        Returns the grant; the caller stalls until ``grant.start_ns`` and
        pays ``grant.cpu_ns`` (remote-inflated when the booking spilled to
        another domain) instead of the raw share. ``domain=None`` treats
        every core as local; ``pinned=True`` forbids remote spill.
        """
        if cpu_ns < 0:
            raise SimulationError("cpu share must be non-negative")
        if ts_ns < 0:
            raise SimulationError("cpu request time must be non-negative")
        local = self._best_core(ts_ns, domain, invert=False)
        if local is None and pinned:
            where = "any domain" if domain is None else f"domain {domain}"
            raise SimulationError(
                f"cpu pool {self.name}: no unreserved core in {where} "
                f"for pinned owner {owner!r}")
        best, remote = local, False
        if domain is not None and not pinned:
            other = self._best_core(ts_ns, domain, invert=True)
            if other is not None and (
                    local is None
                    or max(ts_ns, other.free_at) < max(ts_ns, local.free_at)):
                best, remote = other, True
        if best is None:
            raise SimulationError(
                f"cpu pool {self.name}: every core is reserved; "
                f"cannot book dispatch work for owner {owner!r}")
        effective = cpu_ns * self.remote_penalty if remote else cpu_ns
        start = max(ts_ns, best.free_at)
        end = start + effective
        best.free_at = end
        best.busy_ns += effective
        best.grants += 1
        if self._log is not None:
            self._log.occupy(f"{self.name}.core{best.index}", start, end)
        return CoreGrant(owner=owner, core=best.index, domain=best.domain,
                         start_ns=start, end_ns=end, cpu_ns=effective,
                         remote=remote)

    def _best_core(self, ts_ns: float, domain: int | None,
                   invert: bool) -> CpuCore | None:
        """Earliest-starting unreserved core in (``invert``: outside of)
        ``domain``; ties break on the lowest index. ``domain=None`` with
        ``invert=False`` considers every core."""
        best: CpuCore | None = None
        best_start = 0.0
        held = self._held_ids()
        for core in self.cores:
            if core.index in held:
                continue
            if domain is not None and (core.domain == domain) == invert:
                continue
            start = ts_ns if core.free_at <= ts_ns else core.free_at
            if best is None or start < best_start:
                best, best_start = core, start
        return best

    def _held_ids(self) -> set[int]:
        if not self._held:
            return set()
        return {core.index for cores in self._held.values() for core in cores}

    # -- synchronous reservation side ------------------------------------
    def try_acquire(self, owner: Hashable, cores: int,
                    now: float = 0.0) -> bool:
        """Reserve ``cores`` whole cores for ``owner`` now if enough are
        free. ``now`` is only observational (the grant timestamp an
        attached causality log records)."""
        self._check_reservation(owner, cores)
        if self.available < cores:
            return False
        self._reserve(owner, cores)
        if self._log is not None:
            self._log.grant(self._log.current_pid, self.name, owner,
                            cores, now)
        return True

    def release(self, owner: Hashable, now: float) -> int:
        """Release ``owner``'s reserved cores; wake eligible waiters."""
        freed = self._unreserve(owner)
        if freed > 0:
            if self._log is not None:
                self._log.free(self._log.current_pid, self.name, owner,
                               freed, now)
            self._wake(now)
        return freed

    # -- yield-protocol side (driven by SimCore._handle) -----------------
    def acquire_request(self, process: Process, owner: Hashable,
                        cores: int, ready_ns: float) -> None:
        self._check_reservation(owner, cores)
        if cores > len(self.cores):
            raise SimulationError(
                f"cpu pool {self.name}: acquire of {cores} cores can never "
                f"be granted (capacity {len(self.cores)})")
        if self._log is not None:
            self._log.acquire(self._log.pid_of(process), self.name, owner,
                              cores, ready_ns)
        if not self.waiters and self.available >= cores:
            self._reserve(owner, cores)
            if self._log is not None:
                self._log.grant(self._log.pid_of(process), self.name, owner,
                                cores, ready_ns)
            self._push(process, ready_ns)
        else:
            # FIFO: park behind earlier waiters even if this request would
            # fit, so grant order never depends on request size.
            self.waiters.append(_Waiter(process, owner, cores, ready_ns))

    def release_request(self, process: Process, owner: Hashable,
                        ready_ns: float) -> None:
        freed = self._unreserve(owner)
        if self._log is not None:
            self._log.free(self._log.pid_of(process), self.name, owner,
                           freed, ready_ns)
        self._wake(ready_ns)
        self._push(process, ready_ns)

    # -- internals -------------------------------------------------------
    def _check_reservation(self, owner: Hashable, cores: int) -> None:
        if cores <= 0:
            raise SimulationError("core reservations must be positive")
        if owner in self._held:
            raise SimulationError(
                f"cpu pool {self.name}: owner {owner!r} already holds a "
                f"reservation; release it first")

    def _reserve(self, owner: Hashable, cores: int) -> None:
        held = self._held_ids()
        taken = [core for core in self.cores
                 if core.index not in held][:cores]
        if len(taken) < cores:
            raise SimulationError(
                f"cpu pool {self.name}: reservation bookkeeping drifted")
        self._held[owner] = taken
        self._held_count += cores

    def _unreserve(self, owner: Hashable) -> int:
        taken = self._held.pop(owner, None)
        if taken is None:
            return 0
        self._held_count -= len(taken)
        return len(taken)

    def _wake(self, now: float) -> None:
        while self.waiters and self.available >= self.waiters[0].cores:
            waiter = self.waiters.pop(0)
            self._reserve(waiter.owner, waiter.cores)
            grant_at = max(now, waiter.ready_ns)
            if self._log is not None:
                self._log.grant(self._log.pid_of(waiter.process), self.name,
                                waiter.owner, waiter.cores, grant_at)
            self._push(waiter.process, grant_at)

    def _push(self, process: Process, at_ns: float) -> None:
        if self._queue is None:
            raise SimulationError(
                f"cpu pool {self.name} is not bound to a core; call "
                f"SimCore.add_host_pool first")
        self._queue.push(at_ns, process)


def pool_from_domains(domains: Sequence[tuple[int, int]],
                      name: str = "host",
                      remote_penalty: float = 1.0) -> CpuPool:
    """Build a :class:`CpuPool` from ``(domain, cores)`` pairs, numbering
    cores densely in domain order (matching ``lscpu`` enumeration)."""
    cores: list[CpuCore] = []
    for domain, count in domains:
        for _ in range(count):
            cores.append(CpuCore(index=len(cores), domain=domain))
    return CpuPool(cores, name=name, remote_penalty=remote_penalty)
