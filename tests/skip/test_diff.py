"""Profile A/B diffing."""

import pytest

from repro.engine import ExecutionMode
from repro.errors import AnalysisError
from repro.skip import SkipMetrics, diff_metrics, diff_report


@pytest.fixture(scope="module")
def flash_profile(intel_profiler):
    from repro.workloads import GPT2
    return intel_profiler.profile(GPT2, batch_size=1, seq_len=512,
                                  mode=ExecutionMode.FLASH_ATTENTION)


def test_diff_against_self_is_neutral(gpt2_profile):
    diff = diff_metrics(gpt2_profile.metrics, gpt2_profile.metrics)
    assert diff.speedup == pytest.approx(1.0)
    assert diff.launches_saved == 0
    assert not diff.added() and not diff.removed()


def test_flash_diff_shows_removed_attention_kernels(gpt2_profile,
                                                    flash_profile):
    diff = diff_metrics(gpt2_profile.metrics, flash_profile.metrics,
                        "eager", "flash")
    removed = {d.name for d in diff.removed()}
    added = {d.name for d in diff.added()}
    assert any("softmax" in name for name in removed)
    assert any("flash_fwd" in name for name in added)
    assert diff.launches_saved > 0
    assert diff.speedup > 1.0


def test_per_iteration_normalization(gpt2_profile, flash_profile):
    """Counts are per-iteration even when profiles ran different iteration
    counts."""
    diff = diff_metrics(gpt2_profile.metrics, flash_profile.metrics)
    gemm = next(d for d in diff.kernels if "gemm" in d.name and d.count_a)
    assert gemm.count_a < 200  # per-iteration, not 3x that


def test_kept_kernels_status(gpt2_profile, flash_profile):
    diff = diff_metrics(gpt2_profile.metrics, flash_profile.metrics)
    layer_norm = next(d for d in diff.kernels if "layer_norm" in d.name)
    assert layer_norm.status in ("kept", "changed")
    assert layer_norm.count_a == layer_norm.count_b


def test_report_rendering(gpt2_profile, flash_profile):
    diff = diff_metrics(gpt2_profile.metrics, flash_profile.metrics,
                        "eager", "flash")
    text = diff_report(diff)
    assert "eager -> flash" in text
    assert "launches" in text
    assert "+ flash_fwd" in text or "added kernels" in text


def test_empty_metrics_rejected():
    empty = SkipMetrics(iterations=[], top_kernels=[])
    with pytest.raises(AnalysisError):
        diff_metrics(empty, empty)
