"""Agentic pipelines: chained model invocations (Section II-A).

In agentic systems an orchestrator LLM's output feeds downstream models; the
paper's point is that per-stage latency *compounds*, so batching-induced
latency anywhere in the chain degrades end-to-end responsiveness. This module
composes per-stage generation latencies from the engine-backed LatencyModel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.events import EngineShape, StepKind
from repro.obs.recorder import RunRecorder
from repro.serving.latency import LatencyModel
from repro.serving.planner import PlannerConfig, StepPlanner
from repro.serving.requests import queue_delay_ns
from repro.workloads.config import ModelConfig

if TYPE_CHECKING:
    from repro.serving.runtime import EngineSession, ServingRuntime
    from repro.sim.core import Process


@dataclass(frozen=True)
class PipelineStage:
    """One model invocation in an agentic chain.

    ``consumes_upstream`` adds the previous stage's generated tokens to this
    stage's prompt (output chaining).
    """

    name: str
    model: ModelConfig
    prompt_len: int
    output_tokens: int
    consumes_upstream: bool = True

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.output_tokens <= 0:
            raise ConfigurationError(
                f"stage {self.name}: lengths must be positive")


@dataclass(frozen=True)
class StageLatency:
    """Latency of one executed stage."""

    stage: str
    prompt_len: int
    ttft_ns: float
    total_ns: float


@dataclass(frozen=True)
class PipelineResult:
    """End-to-end latency of a pipeline execution."""

    stages: tuple[StageLatency, ...]

    @property
    def total_ns(self) -> float:
        return sum(s.total_ns for s in self.stages)

    @property
    def total_ttft_ns(self) -> float:
        """Sum of per-stage TTFTs — the 'first signs of progress' latency."""
        return sum(s.ttft_ns for s in self.stages)

    def slowest_stage(self) -> StageLatency:
        return max(self.stages, key=lambda s: s.total_ns)


class AgenticPipeline:
    """A chain of model invocations evaluated on one platform."""

    def __init__(self, stages: list[PipelineStage], latency: LatencyModel) -> None:
        if not stages:
            raise ConfigurationError("pipeline needs at least one stage")
        self.stages = list(stages)
        self.latency = latency

    def run(self, batch_size: int = 1,
            recorder: RunRecorder | None = None) -> PipelineResult:
        """Evaluate end-to-end latency when every stage runs at ``batch_size``.

        Larger batch sizes model a deployment that batches concurrent
        pipeline executions at each stage; latency compounds per stage. A
        recorder sees each stage as a prefill step (engine-shaped) followed
        by a closed-form generation step on one compounding clock.
        """
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        results: list[StageLatency] = []
        upstream_tokens = 0
        clock = 0.0
        for stage in self.stages:
            prompt = stage.prompt_len + (upstream_tokens
                                         if stage.consumes_upstream else 0)
            ttft = self.latency.ttft_ns(stage.model, batch_size, prompt)
            total = self.latency.generation_ns(stage.model, batch_size, prompt,
                                               stage.output_tokens)
            if recorder is not None:
                recorder.record_step(
                    StepKind.PREFILL, clock, ttft, batch_size,
                    shape=EngineShape(stage.model.name, batch_size, prompt))
                if total > ttft:
                    recorder.record_step(StepKind.GENERATION, clock + ttft,
                                         total - ttft, batch_size)
            clock += total
            results.append(StageLatency(stage=stage.name, prompt_len=prompt,
                                        ttft_ns=ttft, total_ns=total))
            upstream_tokens = stage.output_tokens
        return PipelineResult(stages=tuple(results))


@dataclass(frozen=True)
class PipelineServingPolicy:
    """Serve an arrival stream where every request runs an agentic chain.

    Each claimed batch executes the whole stage chain back to back: the
    first stage's prompt is its configured ``prompt_len`` plus the padded
    request prompt; downstream stages chain on the previous stage's output
    when ``consumes_upstream`` is set, exactly like
    :class:`AgenticPipeline`.
    """

    stages: tuple[PipelineStage, ...]
    max_batch_size: int = 8
    chunk_tokens: int = 0

    def __post_init__(self) -> None:
        if not self.stages:
            raise ConfigurationError("pipeline needs at least one stage")
        if self.max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        if self.chunk_tokens < 0:
            raise ConfigurationError(
                "chunk_tokens must be non-negative (0 disables chunking)")


def pipeline_serving_process(runtime: ServingRuntime,
                             session: EngineSession,
                             policy: PipelineServingPolicy) -> Process:
    """One replica's agentic-pipeline server, as a sim process.

    FIFO batching: the replica claims the oldest waiting requests, then runs
    every stage of the chain for the padded batch. TTFT is the first stage's
    prefill (the user's first signs of progress); completion is the whole
    chain, which compounds per stage — the paper's agentic-latency point.
    """
    queue = runtime.queue
    latency = runtime.latency
    recorder = runtime.recorder
    planner = StepPlanner(PlannerConfig(chunk_tokens=policy.chunk_tokens))
    free = 0.0
    while True:
        now = yield ("at", free)
        decision = StepPlanner.next_fifo_batch(queue, now,
                                               policy.max_batch_size)
        if decision.done:
            break
        if decision.wake_at is not None:
            free = decision.wake_at
            continue
        launch = max(decision.seed_arrival, free)
        batch = list(decision.batch)

        batch_size = len(batch)
        request_prompt = max(r.prompt_len for r in batch)
        waiting = queue.depth(launch) if recorder is not None else 0
        if recorder is not None:
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     launch)
        clock = launch
        upstream_tokens = request_prompt
        first_ttft = 0.0
        for position, stage in enumerate(policy.stages):
            consumes = position == 0 or stage.consumes_upstream
            prompt = stage.prompt_len + (upstream_tokens if consumes else 0)
            ttft = latency.ttft_ns(stage.model, batch_size, prompt)
            total = latency.generation_ns(stage.model, batch_size, prompt,
                                          stage.output_tokens)
            # Planner-decomposed stage prefill: one whole-prompt chunk
            # when chunking is off, budget-sized chunks otherwise.
            offset = 0.0
            for chunk in planner.prefill_plan(batch[0].request_id, prompt):
                chunk_ns = (ttft if chunk.is_whole
                            else StepPlanner.chunk_cost_ns(
                                latency, stage.model, batch_size, chunk))
                session.execute(
                    chunk.kind, clock + offset, chunk_ns, batch_size,
                    queue_depth=waiting,
                    shape=EngineShape(stage.model.name, batch_size, prompt)
                    if recorder is not None and chunk.is_whole else None,
                    schedule_label=chunk.schedule_label)
                offset += chunk_ns
            if total > ttft:
                session.execute(StepKind.GENERATION, clock + offset,
                                total - ttft, batch_size, queue_depth=waiting)
            if position == 0:
                first_ttft = offset
            clock += total
            upstream_tokens = stage.output_tokens
        chain_ns = clock - launch
        for request in batch:
            queued = queue_delay_ns(request, launch)
            if recorder is not None:
                recorder.on_first_token(request.request_id,
                                        launch + first_ttft)
                recorder.on_completed(request.request_id, clock)
            runtime.complete(request,
                             ttft_ns=queued + first_ttft,
                             completion_ns=queued + chain_ns,
                             batch_size=batch_size,
                             service_start_ns=launch, session=session)
        free = clock
