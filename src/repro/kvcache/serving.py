"""KV-aware continuous batching: admission and growth gated on the pool.

This is :func:`repro.serving.continuous.continuous_batching_process` with
the infinite-memory assumption removed. Each replica's process consults its
:class:`~repro.kvcache.manager.KvManager` at the two points where a real
engine touches KV memory:

* **admission** — a request is claimed only once blocks for its prompt (plus
  the prefill's first token) are allocated; the claim order stays FIFO, so
  a too-big head-of-line request blocks later ones rather than being
  skipped.
* **decode growth** — before each decode step, every active sequence gets
  the blocks for one more token. When the pool cannot cover the growth, the
  policy evicts victims newest-first (never below one resident sequence):
  ``recompute`` frees the victim and re-prefills it later; ``offload``
  pays a swap-out transfer over the interconnect now and a swap-in
  transfer before the victim's next decode step.

Swap transfers appear on the serving timeline as ``SWAP_OUT`` /
``SWAP_IN`` steps — they occupy the engine like a real synchronous
``cudaMemcpy`` on the scheduler's critical path, and they export to traces
on their own copy-engine stream lane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError
from repro.kvcache.manager import KvManager, KvPolicy
from repro.obs.events import EngineShape, StepKind
from repro.serving.planner import (ChunkedSequenceState, PlannerConfig,
                                   StepPlanner)
from repro.serving.requests import Request

if TYPE_CHECKING:
    from repro.serving.continuous import ContinuousBatchPolicy
    from repro.serving.runtime import EngineSession, ServingRuntime
    from repro.sim.core import Process


def lifetime_blocks(manager: KvManager, request: Request) -> int:
    """Blocks the request needs at its largest (full prompt + output)."""
    return manager.blocks_for(request.prompt_len + request.output_tokens)


def kv_continuous_batching_process(
        runtime: ServingRuntime, session: EngineSession,
        policy: ContinuousBatchPolicy) -> Process:
    """One replica's iteration-level scheduler with a finite KV pool."""
    queue = runtime.queue
    latency = runtime.latency
    model = runtime.model
    recorder = runtime.recorder
    kv = session.kv
    if kv is None:
        raise ConfigurationError(
            "kv_continuous_batching_process needs a session with a KvManager")
    # Finite-host runs book each step's dispatch-CPU share on the shared
    # core pool; swap bookkeeping pays one launch call per transfer, so
    # KV pressure itself contends for host cores.
    host = session.host
    planner = StepPlanner(PlannerConfig(chunk_tokens=policy.chunk_tokens))
    active: list[ChunkedSequenceState] = []
    swapped: list[ChunkedSequenceState] = []   # offloaded, FIFO readmission order
    preempted: list[Request] = []     # recompute victims awaiting re-prefill
    clock = 0.0

    def depth() -> int:
        return queue.depth(clock) if recorder is not None else 0

    def admitted_count() -> int:
        return len(active) + len(swapped) + len(preempted)

    def prefill(batch: list[Request]) -> None:
        """Run one prefill step for ``batch`` (blocks already allocated)."""
        nonlocal clock
        admitted_ns = clock
        prompt_len = max(r.prompt_len for r in batch)
        prefill_ns = latency.ttft_ns(model, len(batch), prompt_len)
        if recorder is not None:
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     clock)
        # Planner-decomposed prefill. Blocks for the whole prompt are
        # already allocated, so chunks run back to back at admission time:
        # chunking here bounds step granularity (observability + S007
        # checkability), not decode interleave — see docs/serving.md.
        for chunk in planner.prefill_plan(batch[0].request_id, prompt_len):
            chunk_ns = (prefill_ns if chunk.is_whole
                        else StepPlanner.chunk_cost_ns(latency, model,
                                                       len(batch), chunk))
            if host is None:
                chunk_cpu = 0.0
            elif chunk.is_whole:
                chunk_cpu = latency.ttft_cpu_ns(model, len(batch), prompt_len)
            else:
                chunk_cpu = StepPlanner.chunk_cpu_ns(latency, model,
                                                     len(batch), chunk)
            clock += session.execute(
                chunk.kind, clock, chunk_ns, len(batch),
                queue_depth=depth(),
                shape=EngineShape(model.name, len(batch), prompt_len)
                if recorder is not None and chunk.is_whole else None,
                schedule_label=chunk.schedule_label,
                cpu_ns=chunk_cpu)
        for request in batch:
            seq = ChunkedSequenceState(
                request=request,
                first_token_ns=clock - request.arrival_ns,
                remaining=request.output_tokens - 1,
                context=request.prompt_len + 1,
                admitted_ns=admitted_ns,
                last_token_ns=clock - request.arrival_ns,
            )
            if recorder is not None:
                recorder.on_first_token(request.request_id, clock)
            if seq.remaining <= 0:
                if recorder is not None:
                    recorder.on_completed(request.request_id, clock)
                kv.free(request.request_id, clock)
                runtime.complete(request,
                                 ttft_ns=seq.first_token_ns,
                                 completion_ns=seq.first_token_ns,
                                 batch_size=len(batch),
                                 service_start_ns=admitted_ns,
                                 session=session)
            else:
                active.append(seq)

    def prefill_cached(request: Request, cached_tokens: int) -> None:
        """Prefill a prefix-cache hit: compute only the divergent suffix.

        The cached prefix deletes prefill *compute* but not the launch tax —
        the suffix still runs a full forward pass (every layer's kernels
        dispatch, over fewer tokens), which is exactly the mechanism that
        shifts the CPU-bound→GPU-bound crossover per platform.
        """
        nonlocal clock
        admitted_ns = clock
        suffix = request.prompt_len - cached_tokens
        prefill_ns = latency.ttft_ns(model, 1, suffix)
        if recorder is not None:
            recorder.on_admitted(request.request_id, request.arrival_ns,
                                 clock)
        clock += session.execute(
            StepKind.PREFILL, clock, prefill_ns, 1,
            queue_depth=depth(),
            shape=EngineShape(model.name, 1, suffix)
            if recorder is not None else None,
            cpu_ns=latency.ttft_cpu_ns(model, 1, suffix)
            if host is not None else 0.0)
        seq = ChunkedSequenceState(
            request=request,
            first_token_ns=clock - request.arrival_ns,
            remaining=request.output_tokens - 1,
            context=request.prompt_len + 1,
            admitted_ns=admitted_ns,
            last_token_ns=clock - request.arrival_ns,
        )
        if recorder is not None:
            recorder.on_first_token(request.request_id, clock)
        if seq.remaining <= 0:
            if recorder is not None:
                recorder.on_completed(request.request_id, clock)
            kv.free(request.request_id, clock)
            runtime.complete(request,
                             ttft_ns=seq.first_token_ns,
                             completion_ns=seq.first_token_ns,
                             batch_size=1,
                             service_start_ns=admitted_ns,
                             session=session)
        else:
            active.append(seq)

    def run_prefills(pending: list[tuple[Request, int]]) -> None:
        """Prefill claimed requests in FIFO order.

        Consecutive uncached requests keep the pre-refactor batched prefill
        (bit-identical when nothing is tagged); cache hits run as
        suffix-only singletons.
        """
        plain: list[Request] = []
        for request, cached_tokens in pending:
            if cached_tokens:
                if plain:
                    prefill(plain)
                    plain = []
                prefill_cached(request, cached_tokens)
            else:
                plain.append(request)
        if plain:
            prefill(plain)

    def swap_in_ready() -> None:
        """Bring back offloaded sequences, oldest first, while room lasts."""
        nonlocal clock
        while swapped:
            seq = swapped[0]
            transfer_ns = kv.swap_in(seq.request.request_id, clock)
            if transfer_ns is None:
                break
            swapped.pop(0)
            clock += session.execute(
                StepKind.SWAP_IN, clock, transfer_ns, 1,
                queue_depth=depth(),
                cpu_ns=latency.platform.launch_call_cpu_ns
                if host is not None else 0.0)
            active.append(seq)

    def readmit_preempted() -> None:
        """Re-prefill recompute victims, oldest first, while room lasts."""
        batch: list[tuple[Request, int]] = []
        # Preempted sequences are not counted against max_active here:
        # they are the ones being drained back in. A victim's prefix
        # binding survives preemption (only private blocks were dropped),
        # so its re-prefill recomputes just the copy-on-write suffix.
        while (preempted
               and len(active) + len(swapped) + len(batch) < policy.max_active):
            request = preempted[0]
            need = kv.growth_delta(request.request_id,
                                   request.prompt_len + 1)
            if not kv.try_allocate(request.request_id, need, clock):
                break
            preempted.pop(0)
            shared = kv.shared_blocks_of(request.request_id)
            batch.append((request, shared * kv.block_tokens))
        if batch:
            run_prefills(batch)

    def claim_new() -> None:
        """Claim fresh arrivals, FIFO, while blocks and slots last."""
        batch: list[tuple[Request, int]] = []
        while admitted_count() + len(batch) < policy.max_active:
            entry = queue.first_unclaimed()
            if entry is None or entry.arrival_ns > clock:
                break
            request = entry.request
            if lifetime_blocks(kv, request) > kv.capacity_blocks:
                raise ConfigurationError(
                    f"request {request.request_id} needs "
                    f"{lifetime_blocks(kv, request)} KV blocks but the pool "
                    f"holds {kv.capacity_blocks}; the pool cannot fit a "
                    f"single sequence of this length")
            cached_tokens = 0
            prefix_key = (getattr(request, "prefix_hash", None)
                          if kv.prefix_caching else None)
            if prefix_key is not None:
                got = kv.acquire_prefix(request.request_id, prefix_key,
                                        request.prefix_len, clock)
                if got is None:
                    break  # cold prefix cannot fit; head-of-line waits
                cached_tokens = got
            need = kv.growth_delta(request.request_id,
                                   request.prompt_len + 1)
            if not kv.try_allocate(request.request_id, need, clock):
                if prefix_key is not None:
                    kv.release_prefix(request.request_id, clock)
                break
            claimed = queue.claim(clock, 1)
            if not claimed or claimed[0] is not request:
                raise SimulationError(
                    f"claim raced ahead of admission gating for request "
                    f"{request.request_id}")
            batch.append((request, cached_tokens))
        if batch:
            run_prefills(batch)

    def admit() -> None:
        swap_in_ready()
        readmit_preempted()
        claim_new()

    def evict_until_growth_fits() -> None:
        """Make room for every active sequence to grow by one token."""
        nonlocal clock
        while True:
            needed = sum(kv.growth_delta(seq.request.request_id,
                                         seq.context + 1) for seq in active)
            if kv.pool.can_allocate(needed):
                return
            # Warm (idle) prefix groups are the cheapest victims: evicting
            # them costs future hits, not live work.
            if (kv.prefix_caching
                    and kv.evict_idle_prefixes(needed, clock)):
                return
            if kv.policy is KvPolicy.NONE:
                raise SimulationError(
                    "kv pool exhausted with policy none: prefix caching "
                    "alone cannot evict live sequences — use recompute or "
                    "offload, or grow the pool")
            if len(active) <= 1:
                raise SimulationError(
                    "kv pool cannot cover a single sequence's decode growth "
                    "(admission capacity guard should have prevented this)")
            victim = active.pop()  # newest admission loses its residency
            if kv.policy is KvPolicy.RECOMPUTE:
                kv.preempt(victim.request.request_id, clock)
                preempted.append(victim.request)
            else:
                transfer_ns = kv.swap_out(victim.request.request_id, clock)
                clock += session.execute(
                    StepKind.SWAP_OUT, clock, transfer_ns, 1,
                    queue_depth=depth(),
                    cpu_ns=latency.platform.launch_call_cpu_ns
                    if host is not None else 0.0)
                swapped.append(victim)

    while True:
        clock = yield ("at", clock)
        if not active:
            if swapped or preempted:
                admit()
                if not active:
                    raise SimulationError(
                        "kv serving stalled: parked sequences but an empty "
                        "pool refused readmission")
                continue
            nxt = queue.next_unclaimed_arrival()
            if nxt is None:
                break
            if nxt > clock:
                clock = nxt
                continue
            admit()
            continue
        # One decode step for the whole active set, growth paid up front.
        evict_until_growth_fits()
        for seq in active:
            if not kv.grow(seq.request.request_id, seq.context + 1, clock):
                raise SimulationError(
                    f"kv growth failed for seq {seq.request.request_id} "
                    f"after eviction made room")
        kv.note_decode([seq.request.request_id for seq in active], clock)
        context = max(seq.context for seq in active)
        bucketed = -(-context // policy.context_bucket) * policy.context_bucket
        step_ns = latency.decode_step_ns(model, len(active), bucketed)
        clock += session.execute(
            StepKind.DECODE, clock, step_ns, len(active),
            queue_depth=depth(),
            shape=EngineShape(model.name, len(active), 1,
                              phase="decode", context_len=bucketed)
            if recorder is not None else None,
            cpu_ns=latency.decode_step_cpu_ns(model, len(active), bucketed)
            if host is not None else 0.0)
        step_batch = len(active)
        finished: list[ChunkedSequenceState] = []
        for seq in active:
            seq.context += 1
            seq.remaining -= 1
            seq.last_token_ns = clock - seq.request.arrival_ns
            if recorder is not None:
                recorder.on_token(seq.request.request_id, clock)
            if seq.remaining <= 0:
                finished.append(seq)
        for seq in finished:
            active.remove(seq)
            kv.free(seq.request.request_id, clock)
            if recorder is not None:
                recorder.on_completed(seq.request.request_id, clock)
            runtime.complete(seq.request,
                             ttft_ns=seq.first_token_ns,
                             completion_ns=seq.last_token_ns,
                             batch_size=step_batch,
                             service_start_ns=seq.admitted_ns,
                             session=session)
        admit()
