"""Platform catalog: the paper's three evaluation systems plus projections.

Performance constants come from two sources:

* public spec sheets (peak FLOP rates, HBM bandwidths, core counts);
* the paper's own measurements, used as calibration anchors — Table V's
  nullKernel launch overheads fix the per-platform launch path exactly, and
  the reported TTFT ratios fix the dispatch scores and sustained-rate
  fractions.

Because we substitute simulation for the physical testbed (see DESIGN.md §2),
these constants are the honest statement of what was calibrated versus what
is derived.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hardware.cpu import REFERENCE_RUNTIME_CALL_NS, CpuSpec
from repro.hardware.gpu import GpuSpec
from repro.hardware.interconnect import (
    Coupling,
    INFINITY_FABRIC,
    NVLINK_C2C,
    PCIE_GEN4_X16,
    PCIE_GEN5_X16,
)
from repro.hardware.platform import DRIVER_LAUNCH_NS, Platform

# ---------------------------------------------------------------------------
# CPUs
# ---------------------------------------------------------------------------
# runtime_call_score values are derived from Table V of the paper:
#   launch overhead = cpu runtime call + driver (900 ns) + link submission
# so the CPU share is (overhead - 900 - submission), and the score is the
# reference CPU share divided by the platform's share.

_AMD_CPU_CALL_NS = 2260.5 - DRIVER_LAUNCH_NS - PCIE_GEN4_X16.submission_ns
_INTEL_CPU_CALL_NS = 2374.6 - DRIVER_LAUNCH_NS - PCIE_GEN5_X16.submission_ns
_GRACE_CPU_CALL_NS = 2771.6 - DRIVER_LAUNCH_NS - NVLINK_C2C.submission_ns

AMD_EPYC_7313 = CpuSpec(
    name="AMD EPYC 7313",
    isa="x86_64",
    cores=16,
    base_clock_ghz=3.0,
    boost_clock_ghz=3.7,
    runtime_call_score=REFERENCE_RUNTIME_CALL_NS / _AMD_CPU_CALL_NS,
    # Fig. 10a: at BS=1 GH200 is 2.8x slower than Intel+H100 but only 1.9x
    # slower than AMD+A100 => AMD's dispatch path is ~1.45x slower than
    # Intel's (older cores, slower memory attach for the allocator).
    dispatch_score=0.72,
    memory_gib=512,
)

INTEL_XEON_8468V = CpuSpec(
    name="Intel Xeon Platinum 8468V (2P)",
    isa="x86_64",
    cores=96,
    base_clock_ghz=2.4,
    boost_clock_ghz=3.8,
    runtime_call_score=1.0,
    dispatch_score=1.0,
    memory_gib=512,
)

GRACE = CpuSpec(
    name="NVIDIA Grace (72c Neoverse V2)",
    isa="aarch64",
    cores=72,
    base_clock_ghz=3.1,
    boost_clock_ghz=3.4,
    runtime_call_score=REFERENCE_RUNTIME_CALL_NS / _GRACE_CPU_CALL_NS,
    # Single-thread deficit plus the less mature aarch64 software stack the
    # paper calls out in Section V-D.
    dispatch_score=0.37,
    memory_gib=480,
)

ZEN4_MI300A = CpuSpec(
    name="AMD Zen4 (24c, MI300A host)",
    isa="x86_64",
    cores=24,
    base_clock_ghz=3.7,
    boost_clock_ghz=3.9,
    runtime_call_score=1.15,
    dispatch_score=1.05,
    memory_gib=128,
)

# ---------------------------------------------------------------------------
# GPUs
# ---------------------------------------------------------------------------

A100_SXM4_80GB = GpuSpec(
    name="A100-SXM4-80GB (500W)",
    fp16_tflops=312.0,
    sustain=0.95,
    hbm_bandwidth_gbs=2039.0,
    bandwidth_sustain=0.85,
    min_kernel_ns=1440.0,
    ramp_flops=1.0e9,
    ramp_bytes=1.2e6,
    memory_gib=80,
)

H100_PCIE = GpuSpec(
    name="H100 PCIe (350W)",
    fp16_tflops=756.0,
    # The 350 W PCIe card clocks far below the SXM/GH200 part under sustained
    # tensor load.
    sustain=0.70,
    hbm_bandwidth_gbs=2000.0,
    bandwidth_sustain=0.85,
    min_kernel_ns=1235.2,
    ramp_flops=1.5e9,
    ramp_bytes=1.2e6,
    memory_gib=80,
)

H100_GH200 = GpuSpec(
    name="H100 (GH200, 96GB HBM3)",
    fp16_tflops=989.0,
    sustain=0.92,
    hbm_bandwidth_gbs=4022.0,
    bandwidth_sustain=0.88,
    min_kernel_ns=1171.2,
    ramp_flops=1.5e9,
    ramp_bytes=1.2e6,
    memory_gib=96,
)

CDNA3_MI300A = GpuSpec(
    name="MI300A CDNA3 (unified HBM3)",
    fp16_tflops=980.6,
    sustain=0.88,
    hbm_bandwidth_gbs=5300.0,
    bandwidth_sustain=0.88,
    min_kernel_ns=1250.0,
    ramp_flops=1.5e9,
    ramp_bytes=1.2e6,
    memory_gib=128,
)

# ---------------------------------------------------------------------------
# Platforms
# ---------------------------------------------------------------------------

AMD_A100 = Platform(
    name="AMD+A100",
    cpu=AMD_EPYC_7313,
    gpu=A100_SXM4_80GB,
    interconnect=PCIE_GEN4_X16,
    coupling=Coupling.LOOSELY_COUPLED,
    description="AMD EPYC 7313 + A100-SXM4-80GB over PCIe Gen4 (loosely coupled)",
)

INTEL_H100 = Platform(
    name="Intel+H100",
    cpu=INTEL_XEON_8468V,
    gpu=H100_PCIE,
    interconnect=PCIE_GEN5_X16,
    coupling=Coupling.LOOSELY_COUPLED,
    description="2P Intel Xeon 8468V + H100 PCIe over PCIe Gen5 (loosely coupled)",
)

GH200 = Platform(
    name="GH200",
    cpu=GRACE,
    gpu=H100_GH200,
    interconnect=NVLINK_C2C,
    coupling=Coupling.CLOSELY_COUPLED,
    description="NVIDIA Grace Hopper Superchip over NVLink-C2C (closely coupled)",
)

#: Tightly-coupled projection (the paper's future work, Section VI).
MI300A = Platform(
    name="MI300A",
    cpu=ZEN4_MI300A,
    gpu=CDNA3_MI300A,
    interconnect=INFINITY_FABRIC,
    coupling=Coupling.TIGHTLY_COUPLED,
    description="AMD Instinct MI300A APU projection (tightly coupled, unified HBM)",
)

#: The paper's evaluation platforms, in Table IV order.
PAPER_PLATFORMS: tuple[Platform, ...] = (AMD_A100, INTEL_H100, GH200)

#: All cataloged platforms.
ALL_PLATFORMS: tuple[Platform, ...] = (AMD_A100, INTEL_H100, GH200, MI300A)

_BY_NAME = {p.name.lower(): p for p in ALL_PLATFORMS}


def get_platform(name: str) -> Platform:
    """Look up a platform by name (case-insensitive).

    Raises:
        ConfigurationError: if the name is unknown.
    """
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        known = ", ".join(sorted(p.name for p in ALL_PLATFORMS))
        raise ConfigurationError(f"unknown platform {name!r}; known: {known}") from None
