"""Request streams."""

import pytest

from repro.errors import ConfigurationError
from repro.serving import Request, poisson_requests


def test_poisson_stream_is_deterministic_per_seed():
    a = poisson_requests(10, 2, seed=42)
    b = poisson_requests(10, 2, seed=42)
    assert [r.arrival_ns for r in a] == [r.arrival_ns for r in b]


def test_poisson_rate_roughly_matches():
    requests = poisson_requests(50, 20, seed=0)
    assert len(requests) == pytest.approx(1000, rel=0.2)


def test_arrivals_sorted_and_within_duration():
    requests = poisson_requests(20, 3, seed=1)
    arrivals = [r.arrival_ns for r in requests]
    assert arrivals == sorted(arrivals)
    assert all(0 <= a < 3e9 for a in arrivals)


def test_jitter_bounds():
    requests = poisson_requests(50, 5, prompt_len=100, prompt_jitter=20,
                                output_tokens=10, output_jitter=5, seed=2)
    assert all(80 <= r.prompt_len <= 120 for r in requests)
    assert all(5 <= r.output_tokens <= 15 for r in requests)


def test_request_ids_sequential():
    requests = poisson_requests(30, 2, seed=3)
    assert [r.request_id for r in requests] == list(range(len(requests)))


def test_invalid_request_fields():
    with pytest.raises(ConfigurationError):
        Request(0, -1.0, 10, 10)
    with pytest.raises(ConfigurationError):
        Request(0, 0.0, 0, 10)
    with pytest.raises(ConfigurationError):
        Request(0, 0.0, 10, 0)


def test_invalid_stream_parameters():
    with pytest.raises(ConfigurationError):
        poisson_requests(0, 1)
    with pytest.raises(ConfigurationError):
        poisson_requests(1, 0)
