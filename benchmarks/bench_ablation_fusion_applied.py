"""Ablation — idealized (Eq. 8) vs simulated proximity-fusion speedups.

The paper's Eq. 8 assumes latency is proportional to launch count. Actually
executing the recommended fusions in the engine (the paper's future work)
shows how much of the idealized gain survives once operator dispatch — which
fusion does not remove — is accounted for.
"""

from _harness import BENCH_ENGINE, report, run_once
from repro.engine import ExecutionMode, run
from repro.hardware import GH200, INTEL_H100
from repro.skip import analyze_trace, combined_plan, compute_metrics
from repro.viz import render_table
from repro.workloads import GPT2, XLM_ROBERTA_BASE


def _applied_vs_ideal(model, platform):
    baseline = run(model, platform, batch_size=1, seq_len=512,
                   config=BENCH_ENGINE)
    base_metrics = compute_metrics(baseline.trace)
    analyses = analyze_trace(baseline.trace)
    ideal = max(a.ideal_speedup for a in analyses)
    plan = combined_plan(analyses)
    fused = run(model, platform, batch_size=1, seq_len=512,
                mode=ExecutionMode.PROXIMITY_FUSED, fusion_plan=plan,
                config=BENCH_ENGINE)
    fused_metrics = compute_metrics(fused.trace)
    simulated = (base_metrics.inference_latency_ns
                 / fused_metrics.inference_latency_ns)
    launches_removed = (base_metrics.kernel_launches
                        - fused_metrics.kernel_launches)
    saved_ns = (base_metrics.inference_latency_ns
                - fused_metrics.inference_latency_ns)
    return ideal, simulated, launches_removed, base_metrics.kernel_launches, saved_ns


def test_ablation_idealized_vs_simulated(benchmark):
    cases = [(GPT2, INTEL_H100), (XLM_ROBERTA_BASE, INTEL_H100),
             (GPT2, GH200)]
    results = run_once(benchmark,
                       lambda: {(m.name, p.name): _applied_vs_ideal(m, p)
                                for m, p in cases})
    rows = []
    for (model, platform), (ideal, simulated, removed, total, saved) in results.items():
        rows.append([model, platform, f"{ideal:.2f}x", f"{simulated:.3f}x",
                     f"{removed:.0f}/{total:.0f}", f"{saved / 1e3:.0f} us"])
    report(render_table(
        ["model", "platform", "idealized (Eq.8)", "simulated",
         "launches removed", "time saved"],
        rows,
        title="Ablation: idealized vs simulated proximity-fusion speedup (BS=1)"))

    for (model, platform), (ideal, simulated, removed, total, _saved) in results.items():
        # The idealized number upper-bounds the simulated one: dispatch
        # survives fusion.
        assert 1.0 < simulated < ideal
        assert removed > 0.5 * total  # the combined plan fuses most launches

    # The Grace CPU's slower launch path means fusion removes more absolute
    # time per run on GH200 (the paper's Section V-C argument for CC
    # systems), even though its relative gain is diluted by the larger
    # dispatch share.
    gpt2_intel_saved = results[("gpt2", "Intel+H100")][4]
    gpt2_gh200_saved = results[("gpt2", "GH200")][4]
    assert gpt2_gh200_saved > gpt2_intel_saved
