"""Serving-scenario composition: batching, agentic chains, RAG."""

from repro.serving.batcher import (
    ServingReport,
    StaticBatchPolicy,
    simulate_static_batching,
)
from repro.serving.continuous import (
    ContinuousBatchPolicy,
    simulate_continuous_batching,
)
from repro.serving.latency import LatencyModel
from repro.serving.pipeline import (
    AgenticPipeline,
    PipelineResult,
    PipelineStage,
    StageLatency,
)
from repro.serving.rag import RagLatency, RagPipeline
from repro.serving.scheduler import (
    ClassifiedRequest,
    PriorityPolicy,
    PriorityReport,
    RequestClass,
    simulate_priority_scheduling,
)
from repro.serving.requests import Request, RequestOutcome, poisson_requests
from repro.serving.speculative import (
    SpeculativeConfig,
    SpeculativeLatency,
    speculative_generation_ns,
)

__all__ = [
    "AgenticPipeline",
    "ContinuousBatchPolicy",
    "simulate_continuous_batching",
    "LatencyModel",
    "PipelineResult",
    "PipelineStage",
    "ClassifiedRequest",
    "PriorityPolicy",
    "PriorityReport",
    "RagLatency",
    "RagPipeline",
    "RequestClass",
    "simulate_priority_scheduling",
    "Request",
    "RequestOutcome",
    "ServingReport",
    "SpeculativeConfig",
    "SpeculativeLatency",
    "speculative_generation_ns",
    "StageLatency",
    "StaticBatchPolicy",
    "poisson_requests",
    "simulate_static_batching",
]
