"""Priority-aware serving: the paper's "intelligent scheduling" lever.

Section VI: GH200's low-batch weakness can be addressed by "enhancing CPU
performance or employing intelligent scheduling in CC/TC designs". This
scheduler implements the second lever: two request classes share one
engine —

* **interactive** requests are served immediately at small batch (low TTFT);
* **bulk** requests accumulate into large batches that run whenever no
  interactive work is waiting, exploiting the CC system's large-batch
  strength.

Compared with a single FIFO queue, interactive latency approaches BS=1
serving while bulk work keeps the GPU in its high-throughput region.

The serving loop is :func:`priority_scheduling_process` on
:class:`repro.serving.runtime.ServingRuntime`. It fixes the legacy loop's
batch-accounting bug: :func:`repro.serving.legacy.legacy_priority_scheduling`
charged every request in a bulk batch the batch maximum ``output_tokens``,
overstating short requests' completion latency; the sim-backed path charges
each request its own generation time (the engine still runs for the padded
batch maximum, so scheduling decisions and TTFTs are unchanged).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.events import EngineShape, StepKind
from repro.obs.recorder import RunRecorder
from repro.serving.batcher import ServingReport
from repro.serving.latency import LatencyModel
from repro.serving.planner import PlannerConfig, StepPlanner
from repro.serving.requests import Request, RequestOutcome, queue_delay_ns
from repro.workloads.config import ModelConfig

if TYPE_CHECKING:
    from repro.serving.runtime import EngineSession, ServingRuntime
    from repro.sim.core import Process


class RequestClass(enum.Enum):
    INTERACTIVE = "interactive"
    BULK = "bulk"


@dataclass(frozen=True)
class ClassifiedRequest:
    """A request tagged with its service class."""

    request: Request
    request_class: RequestClass


@dataclass(frozen=True)
class PriorityPolicy:
    """Scheduling knobs.

    Attributes:
        interactive_batch: Maximum batch for interactive service.
        bulk_batch: Target batch for bulk service.
        bulk_max_wait_ns: Oldest bulk request age that forces a bulk run
            even when the batch is not full (starvation guard).
        chunk_tokens: Per-step token budget for chunked prefill; 0 keeps
            whole-batch prefills (bit-identical to the legacy schedule).
    """

    interactive_batch: int = 2
    bulk_batch: int = 32
    bulk_max_wait_ns: float = 500e6
    chunk_tokens: int = 0

    def __post_init__(self) -> None:
        if self.interactive_batch <= 0 or self.bulk_batch <= 0:
            raise ConfigurationError("batch sizes must be positive")
        if self.bulk_max_wait_ns < 0:
            raise ConfigurationError("bulk_max_wait_ns must be non-negative")
        if self.chunk_tokens < 0:
            raise ConfigurationError(
                "chunk_tokens must be non-negative (0 disables chunking)")


@dataclass
class PriorityReport:
    """Per-class serving statistics."""

    interactive: ServingReport
    bulk: ServingReport

    @property
    def all_outcomes(self) -> list[RequestOutcome]:
        return [*self.interactive.outcomes, *self.bulk.outcomes]


def priority_scheduling_process(runtime: ServingRuntime,
                                session: EngineSession,
                                policy: PriorityPolicy) -> Process:
    """One replica's two-class scheduler, as a sim process.

    Interactive requests preempt the queue at small batch; bulk requests
    accumulate until the batch fills, the oldest hits the starvation guard,
    or no further arrivals are coming. Requests carry their class as the
    admission-queue tag (see ``ClassifiedRequest``).
    """
    queue = runtime.queue
    latency = runtime.latency
    model = runtime.model
    recorder = runtime.recorder
    planner = StepPlanner(PlannerConfig(chunk_tokens=policy.chunk_tokens))
    clock = 0.0

    def serve(batch: list[Request]) -> None:
        nonlocal clock
        start = clock
        batch_size = len(batch)
        prompt = max(r.prompt_len for r in batch)
        output = max(r.output_tokens for r in batch)
        ttft = latency.ttft_ns(model, batch_size, prompt)
        total = latency.generation_ns(model, batch_size, prompt, output)
        waiting = queue.depth(start) if recorder is not None else 0
        if recorder is not None:
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     start)
        # The planner decomposes the batch prefill: one whole-prompt
        # chunk when chunking is off (the legacy step, bit-identical), or
        # budget-sized chunks priced at their marginal prefill cost.
        offset = 0.0
        for chunk in planner.prefill_plan(batch[0].request_id, prompt):
            chunk_ns = (ttft if chunk.is_whole
                        else StepPlanner.chunk_cost_ns(latency, model,
                                                       batch_size, chunk))
            session.execute(chunk.kind, start + offset, chunk_ns, batch_size,
                            queue_depth=waiting,
                            shape=EngineShape(model.name, batch_size, prompt)
                            if recorder is not None and chunk.is_whole
                            else None,
                            schedule_label=chunk.schedule_label)
            offset += chunk_ns
        if total > ttft:
            session.execute(StepKind.GENERATION, start + offset, total - ttft,
                            batch_size, queue_depth=waiting)
        clock = start + total
        for request in batch:
            # Each request is charged its own generation time; the engine
            # still runs for the padded batch maximum (``total`` above), so
            # the clock advance and every scheduling decision are unchanged.
            total_r = latency.generation_ns(model, batch_size, prompt,
                                            request.output_tokens)
            queued = queue_delay_ns(request, start)
            if recorder is not None:
                recorder.on_first_token(request.request_id, start + ttft)
                recorder.on_completed(request.request_id, start + total_r)
            runtime.complete(request, ttft_ns=queued + ttft,
                             completion_ns=queued + total_r,
                             batch_size=batch_size,
                             service_start_ns=start, session=session)

    while True:
        clock = yield ("at", clock)
        if queue.all_claimed():
            break
        interactive = queue.claim(clock, policy.interactive_batch,
                                  tag=RequestClass.INTERACTIVE)
        if interactive:
            serve(interactive)
            continue
        bulk_depth = queue.depth(clock, tag=RequestClass.BULK)
        if bulk_depth:
            oldest = queue.first_unclaimed(tag=RequestClass.BULK)
            assert oldest is not None
            bulk_due = (
                bulk_depth >= policy.bulk_batch
                or clock - oldest.arrival_ns >= policy.bulk_max_wait_ns
                or queue.next_unclaimed_arrival(after=clock) is None)
            if bulk_due:
                serve(queue.claim(clock, policy.bulk_batch,
                                  tag=RequestClass.BULK))
                continue
        nxt = queue.next_unclaimed_arrival(after=clock)
        if nxt is not None:
            clock = nxt
        elif bulk_depth:
            clock += policy.bulk_max_wait_ns  # let the starvation guard fire


def simulate_priority_scheduling(
    requests: list[ClassifiedRequest],
    model: ModelConfig,
    latency: LatencyModel,
    policy: PriorityPolicy = PriorityPolicy(),
    recorder: RunRecorder | None = None,
) -> PriorityReport:
    """Run the two-class scheduler over a classified arrival stream.

    This is a thin wrapper over :func:`repro.serving.runtime.simulate_serving`
    with one replica, re-partitioning the outcomes by class.
    """
    from repro.serving.runtime import simulate_serving

    if not requests:
        raise ConfigurationError("no requests to serve")
    classes = {c.request.request_id: c.request_class for c in requests}
    result = simulate_serving(requests, model, latency, policy=policy,
                              recorder=recorder)
    by_class: dict[RequestClass, list[RequestOutcome]] = {
        RequestClass.INTERACTIVE: [],
        RequestClass.BULK: [],
    }
    for outcome in result.outcomes:
        by_class[classes[outcome.request.request_id]].append(outcome)
    interactive_outcomes = by_class[RequestClass.INTERACTIVE]
    bulk_outcomes = by_class[RequestClass.BULK]
    if not interactive_outcomes or not bulk_outcomes:
        raise ConfigurationError(
            "stream must contain both interactive and bulk requests")
    return PriorityReport(
        interactive=ServingReport(outcomes=interactive_outcomes),
        bulk=ServingReport(outcomes=bulk_outcomes),
    )
