"""Trace data model: events, containers, builders, Chrome-trace I/O."""

from repro.trace.builder import TraceBuilder
from repro.trace.events import (
    DEVICE_SYNCHRONIZE,
    GRAPH_LAUNCH,
    KernelEvent,
    LAUNCH_KERNEL,
    OperatorEvent,
    RuntimeEvent,
    SYNC_CALLS,
    TraceEvent,
)
from repro.trace.trace import IterationMark, Trace

__all__ = [
    "DEVICE_SYNCHRONIZE",
    "GRAPH_LAUNCH",
    "IterationMark",
    "KernelEvent",
    "LAUNCH_KERNEL",
    "OperatorEvent",
    "RuntimeEvent",
    "SYNC_CALLS",
    "Trace",
    "TraceBuilder",
    "TraceEvent",
]
