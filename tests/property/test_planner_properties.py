"""Property-based tests for the token-budget step planner.

Two conservation laws hold for *any* admission/step sequence:

* no plan the planner emits ever exceeds ``max_num_batched_tokens``;
* a prompt's chunks tile it exactly — lengths sum to the prompt length,
  offsets are contiguous, and no chunk exceeds the budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.planner import (
    PlannerConfig,
    StepPlanner,
    chunk_plan,
)
from repro.serving.requests import Request


@given(prompt_len=st.integers(1, 5000), budget=st.integers(0, 600))
def test_chunk_plan_tiles_the_prompt_exactly(prompt_len, budget):
    chunks = chunk_plan(7, prompt_len, budget)
    assert sum(c.length for c in chunks) == prompt_len
    offset = 0
    for chunk in chunks:
        assert chunk.start == offset
        assert chunk.total == prompt_len
        if budget > 0:
            assert chunk.length <= budget
        offset += chunk.length
    assert chunks[0].is_first and chunks[-1].is_last
    if budget == 0:
        assert len(chunks) == 1 and chunks[0].is_whole


@st.composite
def admissions(draw):
    """A sequence of admitted prompt batches interleaved with step calls."""
    events = []
    rid = 0
    for _ in range(draw(st.integers(1, 10))):
        if draw(st.booleans()):
            batch = []
            for _ in range(draw(st.integers(1, 3))):
                batch.append(Request(
                    request_id=rid, arrival_ns=0.0,
                    prompt_len=draw(st.integers(1, 2000)),
                    output_tokens=1))
                rid += 1
            events.append(("admit", batch))
        else:
            events.append(("step", draw(st.integers(0, 8))))
    return events


@given(events=admissions(), budget=st.integers(8, 512))
@settings(max_examples=60, deadline=None)
def test_no_step_exceeds_the_token_budget(events, budget):
    planner = StepPlanner(PlannerConfig(chunk_tokens=budget), max_active=8)
    prefilled: dict[int, int] = {}
    totals: dict[int, int] = {}
    for kind, payload in events:
        if kind == "admit":
            planner.admit(payload, now=0.0)
            for request in payload:
                totals[request.request_id] = request.prompt_len
            continue
        decode_count = min(payload, budget)
        plan = planner.plan_step(decode_count)
        assert plan.total_tokens <= planner.config.max_num_batched_tokens
        assert plan.decode_tokens == decode_count
        for chunk in plan.chunks:
            # Chunks continue exactly where the previous one stopped.
            assert chunk.start == prefilled.get(chunk.request_id, 0)
            assert chunk.total == totals[chunk.request_id]
            prefilled[chunk.request_id] = chunk.start + chunk.length
    # Drain: every admitted prompt eventually tiles exactly.
    while planner.has_pending:
        plan = planner.plan_step(0)
        assert 0 < plan.total_tokens <= budget
        for chunk in plan.chunks:
            assert chunk.start == prefilled.get(chunk.request_id, 0)
            prefilled[chunk.request_id] = chunk.start + chunk.length
    assert prefilled == totals or all(
        prefilled[rid] == total for rid, total in totals.items()
        if rid in prefilled)
    for rid, total in totals.items():
        assert prefilled[rid] == total


@given(decode_count=st.integers(0, 64))
def test_disabled_planner_emits_pure_decode_plans(decode_count):
    planner = StepPlanner(PlannerConfig(chunk_tokens=0))
    plan = planner.plan_step(decode_count)
    assert plan.chunks == ()
    assert plan.total_tokens == decode_count
