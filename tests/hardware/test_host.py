"""Host topology catalog: sockets, NUMA domains, and GPU affinity."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import (
    HOST_SPECS,
    GH200,
    HostSpec,
    NumaDomain,
    PAPER_PLATFORMS,
    host_for,
)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_domain_rejects_negative_index_and_cores():
    with pytest.raises(ConfigurationError):
        NumaDomain(index=-1, cores=4)
    with pytest.raises(ConfigurationError):
        NumaDomain(index=0, cores=-1)


@pytest.mark.parametrize("kwargs", [
    {"sockets": 0},
    {"cores_per_socket": 0},
    {"remote_penalty": 0.9},
])
def test_spec_rejects_bad_shapes(kwargs):
    base = dict(name="h", platform="P", sockets=2, cores_per_socket=8)
    with pytest.raises(ConfigurationError):
        HostSpec(**{**base, **kwargs})


def test_domains_for_rejects_bad_arguments():
    spec = HOST_SPECS["AMD+A100"]
    with pytest.raises(ConfigurationError):
        spec.domains_for(0)
    with pytest.raises(ConfigurationError):
        spec.domains_for(4, cores_override=-1)
    with pytest.raises(ConfigurationError, match="cannot populate"):
        spec.domains_for(4, cores_override=1)  # 2 sockets need >= 2 cores


def test_domain_of_gpu_rejects_negative_ordinal():
    with pytest.raises(ConfigurationError):
        HOST_SPECS["GH200"].domain_of_gpu(-1)


# ----------------------------------------------------------------------
# Fixed (shared-socket) hosts
# ----------------------------------------------------------------------
def test_fixed_host_presents_cataloged_sockets():
    spec = HOST_SPECS["AMD+A100"]
    domains = spec.domains_for(4)
    assert [d.index for d in domains] == [0, 1]
    assert all(d.cores == 16 for d in domains)
    # Riser layout: GPUs round-robin across the sockets.
    assert domains[0].gpus == (0, 2)
    assert domains[1].gpus == (1, 3)
    assert spec.total_cores == 32
    assert [spec.domain_of_gpu(g) for g in range(4)] == [0, 1, 0, 1]


def test_fixed_host_core_override_spreads_with_spill():
    domains = HOST_SPECS["AMD+A100"].domains_for(2, cores_override=5)
    # 5 cores over 2 sockets: the spill core lands on domain 0.
    assert [d.cores for d in domains] == [3, 2]


def test_fixed_host_grows_domains_with_more_gpus_not_sockets():
    domains = HOST_SPECS["Intel+H100"].domains_for(8)
    assert len(domains) == 2
    assert domains[0].gpus == (0, 2, 4, 6)


# ----------------------------------------------------------------------
# Per-GPU (coupled) hosts
# ----------------------------------------------------------------------
def test_coupled_host_brings_one_domain_per_replica():
    spec = HOST_SPECS["GH200"]
    domains = spec.domains_for(3)
    assert [d.index for d in domains] == [0, 1, 2]
    assert all(d.cores == 72 for d in domains)
    assert [d.gpus for d in domains] == [(0,), (1,), (2,)]
    assert spec.domain_of_gpu(5) == 5


def test_coupled_host_override_is_per_domain():
    domains = HOST_SPECS["GH200"].domains_for(2, cores_override=4)
    assert [d.cores for d in domains] == [4, 4]


# ----------------------------------------------------------------------
# Catalog lookups
# ----------------------------------------------------------------------
def test_every_paper_platform_has_a_host():
    for platform in PAPER_PLATFORMS:
        assert host_for(platform).platform == platform.name


def test_host_for_accepts_platform_or_name():
    assert host_for(GH200) is host_for("GH200")
    assert host_for("GH200").per_gpu_domains


def test_host_for_unknown_platform_names_the_catalog():
    with pytest.raises(ConfigurationError, match="GH200"):
        host_for("TPUv9")
