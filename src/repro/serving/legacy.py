"""Legacy float-clock serving loops, kept as parity oracles.

Before the serving layer moved onto :mod:`repro.sim` (see
``serving/runtime.py``), each policy was a standalone simulator advancing
its own ``clock`` float. Those loops live here unchanged — the same role
:mod:`repro.engine.legacy` plays for the engine refactor: with one replica
and default dispatch, the sim-backed policy processes perform exactly the
same floating-point operations in the same order, so their
:class:`~repro.serving.batcher.ServingReport` outcomes are bit-identical to
these oracles. Tests diff the two paths; new features (multi-replica,
per-device traces, schedule checking) exist only on the sim side.

The one deliberate divergence: the sim-backed priority scheduler charges
each request its *own* output length inside a bulk batch, while
:func:`legacy_priority_scheduling` preserves the historical
``max(output_tokens)`` accounting (the bug the refactor fixed).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.obs.events import EngineShape, StepKind
from repro.obs.recorder import RunRecorder
from repro.serving.latency import LatencyModel
from repro.serving.requests import Request, RequestOutcome, queue_delay_ns
from repro.workloads.config import ModelConfig

if TYPE_CHECKING:
    from repro.serving.batcher import ServingReport, StaticBatchPolicy
    from repro.serving.continuous import ContinuousBatchPolicy
    from repro.serving.scheduler import (
        ClassifiedRequest,
        PriorityPolicy,
        PriorityReport,
    )


def legacy_static_batching(
    requests: Sequence[Request],
    model: ModelConfig,
    latency: LatencyModel,
    policy: StaticBatchPolicy | None = None,
    recorder: RunRecorder | None = None,
) -> ServingReport:
    """The original single-loop static-batching simulator."""
    from repro.serving.batcher import ServingReport, StaticBatchPolicy

    if policy is None:
        policy = StaticBatchPolicy()
    if not requests:
        raise ConfigurationError("no requests to serve")
    pending = sorted(requests, key=lambda r: r.arrival_ns)
    outcomes: list[RequestOutcome] = []
    server_free_ns = 0.0
    i = 0
    while i < len(pending):
        first = pending[i]
        batch_start = max(first.arrival_ns, server_free_ns)
        batch = [first]
        j = i + 1
        deadline = first.arrival_ns + policy.max_wait_ns
        while (j < len(pending) and len(batch) < policy.max_batch_size
               and pending[j].arrival_ns <= max(deadline, batch_start)):
            batch.append(pending[j])
            j += 1
        launch_ns = max(batch_start, batch[-1].arrival_ns)

        batch_size = len(batch)
        prompt_len = max(r.prompt_len for r in batch)
        output_tokens = max(r.output_tokens for r in batch)
        ttft = latency.ttft_ns(model, batch_size, prompt_len)
        total = latency.generation_ns(model, batch_size, prompt_len,
                                      output_tokens)
        if recorder is not None:
            waiting = sum(1 for r in pending[j:] if r.arrival_ns <= launch_ns)
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     launch_ns)
            recorder.record_step(
                StepKind.PREFILL, launch_ns, ttft, batch_size,
                queue_depth=waiting,
                shape=EngineShape(model.name, batch_size, prompt_len))
            if total > ttft:
                recorder.record_step(StepKind.GENERATION, launch_ns + ttft,
                                     total - ttft, batch_size,
                                     queue_depth=waiting)
            for request in batch:
                recorder.on_first_token(request.request_id, launch_ns + ttft)
                recorder.on_completed(request.request_id, launch_ns + total)
        for request in batch:
            queued = queue_delay_ns(request, launch_ns)
            outcomes.append(RequestOutcome(
                request=request,
                ttft_ns=queued + ttft,
                completion_ns=queued + total,
                batch_size=batch_size,
                queue_ns=queued,
            ))
        server_free_ns = launch_ns + total
        i = j
    return ServingReport(outcomes=outcomes)


@dataclass
class _Sequence:
    request: Request
    first_token_ns: float
    remaining: int
    context: int
    admitted_ns: float
    last_token_ns: float = 0.0


def legacy_continuous_batching(
    requests: Sequence[Request],
    model: ModelConfig,
    latency: LatencyModel,
    policy: ContinuousBatchPolicy | None = None,
    recorder: RunRecorder | None = None,
) -> ServingReport:
    """The original iteration-level (continuous-batching) simulator."""
    from repro.serving.batcher import ServingReport
    from repro.serving.continuous import ContinuousBatchPolicy

    if policy is None:
        policy = ContinuousBatchPolicy()
    if not requests:
        raise ConfigurationError("no requests to serve")

    pending = sorted(requests, key=lambda r: r.arrival_ns)
    arrivals = [r.arrival_ns for r in pending]
    active: list[_Sequence] = []
    outcomes: list[RequestOutcome] = []
    clock = 0.0
    next_pending = 0

    def queue_depth() -> int:
        """Requests that have arrived but are not yet admitted."""
        return bisect_right(arrivals, clock) - next_pending

    def admit() -> None:
        nonlocal clock, next_pending
        space = policy.max_active - len(active)
        batch: list[Request] = []
        while (space > 0 and next_pending < len(pending)
               and pending[next_pending].arrival_ns <= clock):
            batch.append(pending[next_pending])
            next_pending += 1
            space -= 1
        if not batch:
            return
        admitted_ns = clock
        prompt_len = max(r.prompt_len for r in batch)
        prefill_ns = latency.ttft_ns(model, len(batch), prompt_len)
        if recorder is not None:
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     clock)
            recorder.record_step(
                StepKind.PREFILL, clock, prefill_ns, len(batch),
                queue_depth=queue_depth(),
                shape=EngineShape(model.name, len(batch), prompt_len))
        clock += prefill_ns
        for request in batch:
            seq = _Sequence(
                request=request,
                first_token_ns=clock - request.arrival_ns,
                remaining=request.output_tokens - 1,
                context=request.prompt_len + 1,
                admitted_ns=admitted_ns,
                last_token_ns=clock - request.arrival_ns,
            )
            if recorder is not None:
                recorder.on_first_token(request.request_id, clock)
            if seq.remaining <= 0:
                # Single-token request: its first (prefill) token is its
                # last; it completes here and never joins the decode batch.
                if recorder is not None:
                    recorder.on_completed(request.request_id, clock)
                outcomes.append(RequestOutcome(
                    request=request,
                    ttft_ns=seq.first_token_ns,
                    completion_ns=seq.first_token_ns,
                    batch_size=len(batch),
                    queue_ns=queue_delay_ns(request, admitted_ns),
                ))
            else:
                active.append(seq)

    while next_pending < len(pending) or active:
        if not active:
            # Idle engine: jump to the next arrival.
            clock = max(clock, pending[next_pending].arrival_ns)
            admit()
            continue
        # One decode step for the whole active set.
        context = max(seq.context for seq in active)
        bucketed = -(-context // policy.context_bucket) * policy.context_bucket
        step_ns = latency.decode_step_ns(model, len(active), bucketed)
        if recorder is not None:
            recorder.record_step(
                StepKind.DECODE, clock, step_ns, len(active),
                queue_depth=queue_depth(),
                shape=EngineShape(model.name, len(active), 1,
                                  phase="decode", context_len=bucketed))
        clock += step_ns
        step_batch = len(active)
        finished: list[_Sequence] = []
        for seq in active:
            seq.context += 1
            seq.remaining -= 1
            seq.last_token_ns = clock - seq.request.arrival_ns
            if recorder is not None:
                recorder.on_token(seq.request.request_id, clock)
            if seq.remaining <= 0:
                finished.append(seq)
        for seq in finished:
            active.remove(seq)
            if recorder is not None:
                recorder.on_completed(seq.request.request_id, clock)
            outcomes.append(RequestOutcome(
                request=seq.request,
                ttft_ns=seq.first_token_ns,
                completion_ns=seq.last_token_ns,
                batch_size=step_batch,
                queue_ns=queue_delay_ns(seq.request, seq.admitted_ns),
            ))
        # Admit newly arrived requests at the step boundary.
        admit()

    return ServingReport(outcomes=outcomes)


def legacy_priority_scheduling(
    requests: list[ClassifiedRequest],
    model: ModelConfig,
    latency: LatencyModel,
    policy: PriorityPolicy | None = None,
) -> PriorityReport:
    """The original two-class scheduler, including its batch-accounting bug:
    every request in a batch is charged ``max(output_tokens)``."""
    from repro.serving.batcher import ServingReport
    from repro.serving.scheduler import (
        PriorityPolicy,
        PriorityReport,
        RequestClass,
    )

    if policy is None:
        policy = PriorityPolicy()
    if not requests:
        raise ConfigurationError("no requests to serve")
    pending = sorted(requests, key=lambda c: c.request.arrival_ns)
    interactive_queue: list[Request] = []
    bulk_queue: list[Request] = []
    outcomes: dict[RequestClass, list[RequestOutcome]] = {
        RequestClass.INTERACTIVE: [],
        RequestClass.BULK: [],
    }
    clock = 0.0
    next_arrival = 0

    def pull_arrivals() -> None:
        nonlocal next_arrival
        while (next_arrival < len(pending)
               and pending[next_arrival].request.arrival_ns <= clock):
            entry = pending[next_arrival]
            if entry.request_class is RequestClass.INTERACTIVE:
                interactive_queue.append(entry.request)
            else:
                bulk_queue.append(entry.request)
            next_arrival += 1

    def serve(batch: list[Request], request_class: RequestClass) -> None:
        nonlocal clock
        start = clock
        batch_size = len(batch)
        prompt = max(r.prompt_len for r in batch)
        output = max(r.output_tokens for r in batch)
        ttft = latency.ttft_ns(model, batch_size, prompt)
        total = latency.generation_ns(model, batch_size, prompt, output)
        clock = start + total
        for request in batch:
            queued = queue_delay_ns(request, start)
            outcomes[request_class].append(RequestOutcome(
                request=request,
                ttft_ns=queued + ttft,
                completion_ns=queued + total,
                batch_size=batch_size,
                queue_ns=queued,
            ))

    while (next_arrival < len(pending) or interactive_queue or bulk_queue):
        pull_arrivals()
        if interactive_queue:
            batch = interactive_queue[:policy.interactive_batch]
            del interactive_queue[:policy.interactive_batch]
            serve(batch, RequestClass.INTERACTIVE)
            continue
        bulk_due = bulk_queue and (
            len(bulk_queue) >= policy.bulk_batch
            or clock - bulk_queue[0].arrival_ns >= policy.bulk_max_wait_ns
            or next_arrival >= len(pending))
        if bulk_due:
            batch = bulk_queue[:policy.bulk_batch]
            del bulk_queue[:policy.bulk_batch]
            serve(batch, RequestClass.BULK)
            continue
        if next_arrival < len(pending):
            clock = max(clock, pending[next_arrival].request.arrival_ns)
        elif bulk_queue:
            clock += policy.bulk_max_wait_ns  # let the starvation guard fire

    interactive_outcomes = outcomes[RequestClass.INTERACTIVE]
    bulk_outcomes = outcomes[RequestClass.BULK]
    if not interactive_outcomes or not bulk_outcomes:
        raise ConfigurationError(
            "stream must contain both interactive and bulk requests")
    return PriorityReport(
        interactive=ServingReport(outcomes=interactive_outcomes),
        bulk=ServingReport(outcomes=bulk_outcomes),
    )
