"""Hardware models: CPUs, GPUs, interconnects, coupled platforms."""

from repro.hardware.catalog import (
    ALL_PLATFORMS,
    AMD_A100,
    GH200,
    INTEL_H100,
    MI300A,
    PAPER_PLATFORMS,
    get_platform,
)
from repro.hardware.cpu import CpuSpec
from repro.hardware.gpu import GpuSpec
from repro.hardware.host import HOST_SPECS, HostSpec, NumaDomain, host_for
from repro.hardware.interconnect import (
    Coupling,
    INFINITY_FABRIC,
    InterconnectSpec,
    NVLINK_C2C,
    PCIE_GEN4_X16,
    PCIE_GEN5_X16,
)
from repro.hardware.nullkernel import NullKernelResult, measure_nullkernel, nullkernel_table
from repro.hardware.platform import Platform
from repro.hardware.power import (
    EnergyReport,
    POWER_MODELS,
    PowerModel,
    energy_of,
    get_power_model,
)

__all__ = [
    "ALL_PLATFORMS",
    "AMD_A100",
    "Coupling",
    "CpuSpec",
    "GH200",
    "GpuSpec",
    "HOST_SPECS",
    "HostSpec",
    "NumaDomain",
    "host_for",
    "INFINITY_FABRIC",
    "INTEL_H100",
    "InterconnectSpec",
    "MI300A",
    "NVLINK_C2C",
    "EnergyReport",
    "NullKernelResult",
    "PAPER_PLATFORMS",
    "POWER_MODELS",
    "PowerModel",
    "energy_of",
    "get_power_model",
    "PCIE_GEN4_X16",
    "PCIE_GEN5_X16",
    "Platform",
    "get_platform",
    "measure_nullkernel",
    "nullkernel_table",
]
