"""In-order GPU stream semantics."""

import pytest

from repro.engine import GpuStream
from repro.errors import SimulationError


def test_idle_stream_starts_at_arrival():
    stream = GpuStream()
    start, end = stream.submit(100.0, 50.0)
    assert (start, end) == (100.0, 150.0)


def test_busy_stream_queues():
    stream = GpuStream()
    stream.submit(0.0, 100.0)
    start, end = stream.submit(10.0, 5.0)
    assert start == 100.0
    assert end == 105.0


def test_in_order_even_when_later_kernel_is_short():
    stream = GpuStream()
    stream.submit(0.0, 1000.0)
    s2, _ = stream.submit(1.0, 1.0)
    s3, _ = stream.submit(2.0, 1.0)
    assert s2 < s3


def test_gap_applies_only_back_to_back():
    stream = GpuStream()
    s1, e1 = stream.submit(0.0, 10.0, gap_ns=5.0)
    assert s1 == 0.0  # first kernel pays no gap
    s2, _ = stream.submit(0.0, 10.0, gap_ns=5.0)
    assert s2 == e1 + 5.0


def test_gap_hidden_when_arrival_is_late():
    stream = GpuStream()
    _, e1 = stream.submit(0.0, 10.0, gap_ns=5.0)
    s2, _ = stream.submit(100.0, 1.0, gap_ns=5.0)
    assert s2 == 100.0


def test_busy_time_accumulates():
    stream = GpuStream()
    stream.submit(0.0, 10.0)
    stream.submit(0.0, 15.0)
    assert stream.busy_ns == 25.0
    assert stream.kernel_count == 2


def test_start_times_monotonic():
    stream = GpuStream()
    for i in range(20):
        stream.submit(float(i), 3.0)
    assert stream.start_times == sorted(stream.start_times)


def test_nth_start():
    stream = GpuStream()
    stream.submit(0.0, 10.0)
    stream.submit(0.0, 10.0)
    assert stream.nth_start(1) == 10.0
    with pytest.raises(SimulationError):
        stream.nth_start(5)


@pytest.mark.parametrize("arrival,duration,gap", [
    (-1.0, 1.0, 0.0),
    (0.0, -1.0, 0.0),
    (0.0, 1.0, -1.0),
])
def test_invalid_submissions_rejected(arrival, duration, gap):
    with pytest.raises(SimulationError):
        GpuStream().submit(arrival, duration, gap_ns=gap)


def test_pending_at_counts_submitted_not_started():
    stream = GpuStream()
    stream.submit(100.0, 50.0)   # runs 100-150
    stream.submit(110.0, 50.0)   # queued, runs 150-200
    stream.submit(120.0, 50.0)   # queued, runs 200-250
    assert stream.pending_at(90.0) == 3   # nothing has started yet
    assert stream.pending_at(100.0) == 2  # first started exactly at 100
    assert stream.pending_at(160.0) == 1
    assert stream.pending_at(300.0) == 0


def test_pending_at_empty_stream():
    assert GpuStream().pending_at(0.0) == 0
