"""Speculative decoding: a draft model proposes, the target model verifies.

A latency-optimization technique squarely in the paper's problem space —
with a regime dependence the simulator makes explicit. Speculation replaces
K sequential target-model steps with K draft steps plus one verification
pass. That trade only pays when a decode step's cost scales with model
*size* (memory-bound weight streaming, e.g. under CUDA-graph execution).
In the eager dispatch-bound regime the paper characterizes, every forward
pass costs roughly the same CPU time regardless of model width, so a
"small" draft model is no cheaper per step and speculation loses — fuse or
capture graphs first, then speculate.

Latency model per round (draft length K, acceptance rate a):

* K draft-model decode steps;
* one target-model forward over the K proposed tokens (a small prefill);
* expected accepted tokens per round: classic geometric acceptance,
  ``E = (1 - a^(K+1)) / (1 - a)`` (includes the bonus token).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.events import EngineShape, StepKind
from repro.obs.recorder import RunRecorder
from repro.serving.latency import LatencyModel
from repro.serving.planner import PlannerConfig, StepPlanner
from repro.serving.requests import queue_delay_ns
from repro.workloads.config import ModelConfig

if TYPE_CHECKING:
    from repro.serving.runtime import EngineSession, ServingRuntime
    from repro.sim.core import Process


@dataclass(frozen=True)
class SpeculativeConfig:
    """Draft/verify configuration.

    Attributes:
        draft_tokens: Tokens proposed per round (K).
        acceptance_rate: Probability each proposed token matches the target
            model's choice (a).
    """

    draft_tokens: int = 4
    acceptance_rate: float = 0.7

    def __post_init__(self) -> None:
        if self.draft_tokens <= 0:
            raise ConfigurationError("draft_tokens must be positive")
        if not (0.0 < self.acceptance_rate < 1.0):
            raise ConfigurationError("acceptance_rate must be in (0, 1)")

    @property
    def expected_tokens_per_round(self) -> float:
        """Expected accepted tokens per round, including the bonus token."""
        a = self.acceptance_rate
        k = self.draft_tokens
        return (1 - a ** (k + 1)) / (1 - a)


@dataclass(frozen=True)
class SpeculativeLatency:
    """Latency comparison for one generation request."""

    baseline_ns: float          # target model decoding alone
    speculative_ns: float       # draft + verify rounds
    rounds: float
    tokens: int

    @property
    def speedup(self) -> float:
        return self.baseline_ns / self.speculative_ns


def speculative_generation_ns(
    target: ModelConfig,
    draft: ModelConfig,
    latency: LatencyModel,
    config: SpeculativeConfig = SpeculativeConfig(),
    prompt_len: int = 256,
    output_tokens: int = 128,
    batch_size: int = 1,
    recorder: RunRecorder | None = None,
) -> SpeculativeLatency:
    """Compare plain decoding against draft-and-verify decoding.

    Both paths pay the target model's prefill; the decode phase differs.
    Context-length growth is approximated at the mid-generation point (decode
    latency is near-affine in context). A recorder sees the speculative
    path's timeline: the target prefill, then per-round draft decode steps
    and verification passes (the fractional last round is recorded as a
    closed-form step so recorded time matches the returned latency exactly).
    """
    if output_tokens <= 0:
        raise ConfigurationError("output_tokens must be positive")
    mid_context = prompt_len + output_tokens // 2

    prefill = latency.ttft_ns(target, batch_size, prompt_len)

    target_step = latency.decode_step_ns(target, batch_size, mid_context)
    baseline = prefill + output_tokens * target_step

    draft_step = latency.decode_step_ns(draft, batch_size, mid_context)
    # Verification: one target forward over K proposed tokens. Modeled as a
    # K-token prefill continuation (the KV cache covers the context).
    verify = latency.ttft_ns(target, batch_size, config.draft_tokens)
    per_round = config.draft_tokens * draft_step + verify
    rounds = output_tokens / config.expected_tokens_per_round
    speculative = prefill + rounds * per_round

    if recorder is not None:
        clock = 0.0
        recorder.record_step(
            StepKind.PREFILL, clock, prefill, batch_size,
            shape=EngineShape(target.name, batch_size, prompt_len))
        clock += prefill
        draft_shape = EngineShape(draft.name, batch_size, 1, phase="decode",
                                  context_len=mid_context)
        verify_shape = EngineShape(target.name, batch_size,
                                   config.draft_tokens)
        for _ in range(math.floor(rounds)):
            for _ in range(config.draft_tokens):
                recorder.record_step(StepKind.DRAFT, clock, draft_step,
                                     batch_size, shape=draft_shape)
                clock += draft_step
            recorder.record_step(StepKind.VERIFY, clock, verify, batch_size,
                                 shape=verify_shape)
            clock += verify
        remainder = rounds - math.floor(rounds)
        if remainder > 1e-9:
            recorder.record_step(StepKind.DRAFT, clock,
                                 remainder * config.draft_tokens * draft_step,
                                 batch_size)
            clock += remainder * config.draft_tokens * draft_step
            recorder.record_step(StepKind.VERIFY, clock, remainder * verify,
                                 batch_size)

    return SpeculativeLatency(
        baseline_ns=baseline,
        speculative_ns=speculative,
        rounds=rounds,
        tokens=output_tokens,
    )


@dataclass(frozen=True)
class SpeculativeServingPolicy:
    """Serve an arrival stream with draft-and-verify decoding.

    Attributes:
        draft: The draft model proposing tokens (the runtime's model is the
            verifying target).
        config: Draft length / acceptance knobs.
        max_batch_size: Requests served together (padded to the batch
            maximum, like static batching).
        chunk_tokens: Per-step token budget for chunked target prefill;
            0 keeps whole-batch prefills (bit-identical legacy schedule).
    """

    draft: ModelConfig
    config: SpeculativeConfig = field(default_factory=SpeculativeConfig)
    max_batch_size: int = 8
    chunk_tokens: int = 0

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        if self.chunk_tokens < 0:
            raise ConfigurationError(
                "chunk_tokens must be non-negative (0 disables chunking)")


def speculative_serving_process(runtime: ServingRuntime,
                                session: EngineSession,
                                policy: SpeculativeServingPolicy) -> Process:
    """One replica's speculative-decoding server, as a sim process.

    FIFO batching: the replica claims the oldest waiting requests up to
    ``max_batch_size``, runs the target prefill, then per-round draft decode
    steps and verification passes until the padded batch maximum output is
    generated (mirroring :func:`speculative_generation_ns`'s timeline).
    Requests finish at their own expected round count, not the batch
    maximum's.
    """
    queue = runtime.queue
    latency = runtime.latency
    target = runtime.model
    recorder = runtime.recorder
    config = policy.config
    planner = StepPlanner(PlannerConfig(chunk_tokens=policy.chunk_tokens))
    free = 0.0
    while True:
        now = yield ("at", free)
        decision = StepPlanner.next_fifo_batch(queue, now,
                                               policy.max_batch_size)
        if decision.done:
            break
        if decision.wake_at is not None:
            free = decision.wake_at
            continue
        launch = max(decision.seed_arrival, free)
        batch = list(decision.batch)

        batch_size = len(batch)
        prompt_len = max(r.prompt_len for r in batch)
        output_tokens = max(r.output_tokens for r in batch)
        mid_context = prompt_len + output_tokens // 2
        prefill = latency.ttft_ns(target, batch_size, prompt_len)
        draft_step = latency.decode_step_ns(policy.draft, batch_size,
                                            mid_context)
        verify = latency.ttft_ns(target, batch_size, config.draft_tokens)
        per_round = config.draft_tokens * draft_step + verify
        expected = config.expected_tokens_per_round
        rounds = output_tokens / expected

        waiting = queue.depth(launch) if recorder is not None else 0
        if recorder is not None:
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     launch)
        clock = launch
        # Planner-decomposed target prefill: one whole-prompt chunk when
        # chunking is off (the legacy step), budget-sized chunks otherwise.
        offset = 0.0
        for chunk in planner.prefill_plan(batch[0].request_id, prompt_len):
            chunk_ns = (prefill if chunk.is_whole
                        else StepPlanner.chunk_cost_ns(latency, target,
                                                       batch_size, chunk))
            session.execute(chunk.kind, clock, chunk_ns, batch_size,
                            queue_depth=waiting,
                            shape=EngineShape(target.name, batch_size,
                                              prompt_len)
                            if recorder is not None and chunk.is_whole
                            else None,
                            schedule_label=chunk.schedule_label)
            clock += chunk_ns
            offset += chunk_ns
        first_token_ns = clock
        draft_shape = verify_shape = None
        if recorder is not None:
            draft_shape = EngineShape(policy.draft.name, batch_size, 1,
                                      phase="decode", context_len=mid_context)
            verify_shape = EngineShape(target.name, batch_size,
                                       config.draft_tokens)
        for _ in range(math.floor(rounds)):
            for _ in range(config.draft_tokens):
                session.execute(StepKind.DRAFT, clock, draft_step, batch_size,
                                queue_depth=waiting, shape=draft_shape)
                clock += draft_step
            session.execute(StepKind.VERIFY, clock, verify, batch_size,
                            queue_depth=waiting, shape=verify_shape)
            clock += verify
        remainder = rounds - math.floor(rounds)
        if remainder > 1e-9:
            tail_draft = remainder * config.draft_tokens * draft_step
            session.execute(StepKind.DRAFT, clock, tail_draft, batch_size,
                            queue_depth=waiting)
            clock += tail_draft
            session.execute(StepKind.VERIFY, clock, remainder * verify,
                            batch_size, queue_depth=waiting)
            clock += remainder * verify

        for request in batch:
            queued = queue_delay_ns(request, launch)
            own_rounds = request.output_tokens / expected
            completion = queued + offset + own_rounds * per_round
            if recorder is not None:
                recorder.on_first_token(request.request_id, first_token_ns)
                recorder.on_completed(request.request_id,
                                      request.arrival_ns + completion)
            runtime.complete(request,
                             ttft_ns=queued + offset,
                             completion_ns=completion,
                             batch_size=batch_size,
                             service_start_ns=launch, session=session)
        free = clock
