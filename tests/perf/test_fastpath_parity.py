"""Parity locks for every simulator fast path.

Each optimization this package measures (lowering cache, tape metrics,
slimmed event queue, process-pool sweeps) must be *invisible* in the
results: same floats, same orderings, same outcomes. These tests run the
fast path and its reference path on identical inputs and assert
bit-identical output — not approximate, not statistical.
"""

import pytest

from repro.engine import EngineConfig, ExecutionMode, TPConfig
from repro.engine.cache import LOWERING_CACHE
from repro.engine.executor import run
from repro.hardware import get_platform
from repro.kvcache import KvPolicy
from repro.sim.core import SimCore
from repro.sim.queue import EventQueue, ReferenceEventQueue
from repro.skip.metrics import compute_metrics, metrics_from_tape
from repro.workloads import get_model
from tests import scenarios

INTEL_H100 = get_platform("Intel+H100")
GPT2 = get_model("gpt2")
LLAMA = get_model("llama-3.2-1b")


def _trace_values(trace):
    """A trace's observable content, independent of global event-id draws.

    Event ids are allocation-order artifacts (a cached run skips the
    build/lower draws a fresh run performs, shifting every subsequent id),
    so parity compares everything *but* the ids — and the correlation ids
    derived from them — plus the launch→kernel pairing they encode.
    """
    kernels_by_corr = {k.correlation_id: k for k in trace.kernels}
    pairs = []
    for call in trace.runtime_calls:
        kernel = kernels_by_corr.get(call.correlation_id)
        if kernel is not None:
            pairs.append((call.name, call.ts, kernel.name, kernel.ts))
    return (
        [(o.name, o.ts, o.dur, o.tid, o.seq) for o in trace.operators],
        [(r.name, r.ts, r.dur, r.tid) for r in trace.runtime_calls],
        [(k.name, k.ts, k.dur, k.stream, k.device, k.flops, k.bytes_moved)
         for k in trace.kernels],
        [(m.index, m.ts, m.ts_end) for m in trace.iterations],
        pairs,
    )


CONFIGS = [
    pytest.param(dict(mode=ExecutionMode.EAGER, batch_size=4), id="eager"),
    pytest.param(dict(mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD,
                      batch_size=2), id="graph-replay"),
    pytest.param(dict(mode=ExecutionMode.EAGER, batch_size=2,
                      tp=TPConfig(degree=2)), id="tp2"),
]


@pytest.mark.parametrize("kwargs", CONFIGS)
def test_lowering_cache_hit_is_bit_identical(kwargs):
    LOWERING_CACHE.clear()
    with LOWERING_CACHE.disabled():
        fresh = run(GPT2, INTEL_H100, seq_len=256, **kwargs)
    cold = run(GPT2, INTEL_H100, seq_len=256, **kwargs)   # populates
    warm = run(GPT2, INTEL_H100, seq_len=256, **kwargs)   # hits
    assert LOWERING_CACHE.stats.graph_hits >= 1
    assert LOWERING_CACHE.stats.lowering_hits >= 1
    for cached in (cold, warm):
        assert _trace_values(cached.trace) == _trace_values(fresh.trace)
        assert compute_metrics(cached.trace) == compute_metrics(fresh.trace)


@pytest.mark.parametrize("kwargs", CONFIGS)
def test_tape_metrics_match_full_trace_metrics(kwargs):
    full = run(GPT2, INTEL_H100, seq_len=256, **kwargs)
    taped = run(GPT2, INTEL_H100, seq_len=256, tape=True, **kwargs)
    assert taped.trace is None and taped.tape is not None
    assert metrics_from_tape(taped.tape) == compute_metrics(full.trace)


@pytest.mark.parametrize("kwargs", CONFIGS)
def test_slimmed_queue_matches_reference_queue(kwargs, monkeypatch):
    fast = run(GPT2, INTEL_H100, seq_len=256, **kwargs)
    assert type(fast.core._queue) is EventQueue

    reference = ReferenceEventQueue()
    monkeypatch.setattr(
        "repro.engine.executor.SimCore",
        lambda causality=None: SimCore(queue=reference,
                                       causality=causality))
    slow = run(GPT2, INTEL_H100, seq_len=256, **kwargs)
    assert _trace_values(slow.trace) == _trace_values(fast.trace)
    assert compute_metrics(slow.trace) == compute_metrics(fast.trace)
    # Both cores drained the same number of events, every one through the
    # queue under test.
    assert reference.popped == slow.core.events_processed
    assert slow.core.events_processed == fast.core.events_processed


def test_serving_on_reference_queue_is_bit_identical(monkeypatch):
    _, fast = scenarios.pressured_run(get_platform("GH200"),
                                      KvPolicy.OFFLOAD)
    monkeypatch.setattr(
        "repro.serving.runtime.SimCore",
        lambda queue=None, causality=None: SimCore(
            queue=ReferenceEventQueue(), causality=causality))
    _, slow = scenarios.pressured_run(get_platform("GH200"),
                                      KvPolicy.OFFLOAD)
    assert slow.outcomes == fast.outcomes
    assert slow.kv == fast.kv
    assert slow.throughput_tokens_per_s == fast.throughput_tokens_per_s


def test_sweep_jobs_parity():
    from repro.analysis.sweep import run_batch_sweep

    kwargs = dict(batch_sizes=(1, 4), seq_len=128,
                  engine_config=EngineConfig(iterations=1))
    serial = run_batch_sweep(LLAMA, [INTEL_H100, get_platform("GH200")],
                             **kwargs)
    pooled = run_batch_sweep(LLAMA, [INTEL_H100, get_platform("GH200")],
                             jobs=4, **kwargs)
    assert pooled.batch_sizes == serial.batch_sizes
    assert pooled.points == serial.points
