"""Host CPU-schedule verification (rules ``N...``).

Host-contention serving runs (:mod:`repro.host`) log the host topology and
every core-time grant into exported trace metadata (``host``: the pool
geometry with per-core busy totals, plus one event per grant). This pass
replays that log against the invariants of the core scheduler:

* **N001** — core exclusivity: no two grants on the same core overlap in
  time. The pool books a core by advancing its ``free_at`` watermark, so
  an overlap means a core ran two owners' dispatch work at once.
* **N002** — NUMA affinity: a *local* (non-remote) grant must land in its
  owner's home domain (the replica's GPU-attached domain, or the ``--numa``
  override), and a pinned run (``--pin``) must contain no remote grants
  at all — remote spill is exactly what pinning forbids.
* **N003** — grant-order determinism: each core's grants appear in the
  log in nondecreasing start order. The scheduler grants FIFO per core;
  out-of-order starts mean the recorded schedule could not have been
  produced by a deterministic replay.
* **N004** — core-time conservation: the per-core busy total reported by
  the topology block equals the sum of that core's grant durations. A
  mismatch means booked time leaked (or was double-counted) between the
  pool's accounting and the grant log.

Like the K and R rules, the pass is pure log replay and runs automatically
in ``repro check trace`` whenever a trace carries host metadata.
"""

from __future__ import annotations

from typing import Mapping

from repro.check.findings import Finding, Severity, register_rule

N001 = register_rule(
    "N001", "host", "two grants overlap on one CPU core")
N002 = register_rule(
    "N002", "host", "NUMA-affinity violation: grant off its home domain")
N003 = register_rule(
    "N003", "host", "per-core grant starts not in deterministic order")
N004 = register_rule(
    "N004", "host", "per-core busy time does not match its grant log")

#: Relative tolerance for the N004 busy-time comparison. The pool and the
#: replay sum the same floats in the same order, so the match is normally
#: exact; the slack only forgives re-serialization rounding.
_REL_TOL = 1e-9


def _home_domains(meta: Mapping) -> dict[str, int]:
    """owner -> home domain, reconstructed from the topology block."""
    homes: dict[str, int] = {}
    override = meta.get("numa_override")
    replica_domains = meta.get("replica_domains", {})
    for domain, gpus in replica_domains.items():
        for gpu in gpus:
            homes[f"replica{int(gpu)}"] = (int(override) if override
                                           is not None else int(domain))
    homes["router"] = int(override) if override is not None else 0
    return homes


def check_host_metadata(meta: Mapping, where: str = "host") -> list[Finding]:
    """Verify the ``host`` metadata block of an exported trace."""
    findings: list[Finding] = []
    grants = meta.get("grants", [])
    pinned = bool(meta.get("pinned", False))
    homes = _home_domains(meta)

    by_core: dict[int, list[dict]] = {}
    last_start: dict[int, float] = {}
    for position, grant in enumerate(grants):
        core = int(grant["core"])
        by_core.setdefault(core, []).append(grant)
        start = float(grant["start_ns"])
        if start < last_start.get(core, float("-inf")):
            findings.append(Finding(
                N003, Severity.ERROR, f"{where} core {core}",
                f"grant #{position} ({grant['owner']}) starts at "
                f"{start:.0f}ns, before the core's previous grant at "
                f"{last_start[core]:.0f}ns — the log is not a FIFO "
                f"replay of this core"))
        last_start[core] = max(last_start.get(core, start), start)

    for core, booked in sorted(by_core.items()):
        ordered = sorted(booked,
                         key=lambda g: (float(g["start_ns"]),
                                        float(g["end_ns"])))
        for prev, cur in zip(ordered, ordered[1:]):
            if float(cur["start_ns"]) < float(prev["end_ns"]):
                findings.append(Finding(
                    N001, Severity.ERROR, f"{where} core {core}",
                    f"grants to {prev['owner']} "
                    f"[{float(prev['start_ns']):.0f}, "
                    f"{float(prev['end_ns']):.0f}) and {cur['owner']} "
                    f"[{float(cur['start_ns']):.0f}, "
                    f"{float(cur['end_ns']):.0f}) overlap"))

    for position, grant in enumerate(grants):
        owner = str(grant["owner"])
        remote = bool(grant.get("remote", False))
        if remote and pinned:
            findings.append(Finding(
                N002, Severity.ERROR, f"{where} grant #{position}",
                f"{owner} got a remote-domain grant on core "
                f"{grant['core']} but the run was pinned (--pin forbids "
                f"remote spill)"))
            continue
        home = homes.get(owner)
        if home is None or remote:
            continue  # autoscaled replica (no cataloged home) or priced spill
        if int(grant["domain"]) != home:
            findings.append(Finding(
                N002, Severity.ERROR, f"{where} grant #{position}",
                f"{owner} booked a local grant in domain "
                f"{grant['domain']} but its home domain is {home}"))

    busy_reported = {int(core["index"]): float(core["busy_ns"])
                     for core in meta.get("cores", [])}
    for core, booked in sorted(by_core.items()):
        replayed = sum(float(g["end_ns"]) - float(g["start_ns"])
                       for g in booked)
        reported = busy_reported.get(core)
        if reported is None:
            findings.append(Finding(
                N004, Severity.ERROR, f"{where} core {core}",
                f"grants were booked on core {core} but the topology "
                f"block does not list it"))
            continue
        if abs(replayed - reported) > _REL_TOL * max(replayed, reported, 1.0):
            findings.append(Finding(
                N004, Severity.ERROR, f"{where} core {core}",
                f"topology reports {reported:.0f}ns busy but the grant "
                f"log sums to {replayed:.0f}ns"))
    return findings
