"""Custom AST lint pass: repo-specific rules over ``src/repro``.

Generic linters cannot know this repo's invariants, so this pass encodes
them directly:

* **C001** — simulation code must be deterministic and replayable, so the
  wall clock is banned inside ``repro.sim``, ``repro.engine``, and
  ``repro.kvcache`` (``time.time``/``perf_counter``/``monotonic``/...,
  ``datetime.now``). Simulated time is the only clock those layers may
  read.
* **C002** — simulated timestamps are floats accumulated over millions of
  additions; ``==``/``!=`` on them is a latent heisenbug. Comparing any
  timestamp-named expression (``ts``, ``ts_end``, ``now``, ``free_at``, or
  any ``*_ns`` name) for equality is banned everywhere in the package —
  use ordering comparisons or ``math.isclose``.
* **C003** — generator processes speak a fixed-verb protocol with
  :class:`repro.sim.SimCore`; in simulation modules, every ``yield``
  inside a ``*_process`` function must be a tuple literal whose first
  element is ``"at"``, ``"join"``, ``"acquire"``, or ``"release"``, so a
  malformed request fails the lint rather than a run.
* **C004** — a simulation-module function named ``*_process`` that never
  yields is not a generator and would be driven to nothing by the core.

The pass walks real files (``lint_path``) so tests can point it at fixture
trees with deliberately bad modules.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.check.findings import Finding, Severity, register_rule

C001 = register_rule(
    "C001", "code", "wall-clock call inside a simulation module")
C002 = register_rule(
    "C002", "code", "float equality on a simulated timestamp")
C003 = register_rule(
    "C003", "code", "process yields a malformed scheduler request")
C004 = register_rule(
    "C004", "code", "*_process function contains no yield")

#: Module path prefixes (relative to the package root) where the wall
#: clock is banned: everything the deterministic simulation touches.
SIM_MODULE_PREFIXES = ("sim", "engine", "kvcache")

#: Wall-clock callables, as (module alias target, attribute) pairs.
_WALL_CLOCK_TIME = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})

#: Expression names treated as simulated timestamps for C002.
_TIMESTAMP_NAMES = frozenset({"ts", "ts_end", "now", "free_at"})

#: Request verbs the simulation core understands (mirrors SimCore._handle).
_REQUEST_VERBS = frozenset({"at", "join", "acquire", "release"})


def _is_timestamp_name(node: ast.expr) -> str | None:
    """The timestamp-like identifier an expression reads, if any."""
    name = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    if name is not None and (name in _TIMESTAMP_NAMES
                             or name.endswith("_ns")):
        return name
    return None


class _ModuleLinter(ast.NodeVisitor):
    """Lints one parsed module."""

    def __init__(self, where: str, in_sim_module: bool) -> None:
        self.where = where
        self.in_sim_module = in_sim_module
        self.findings: list[Finding] = []
        #: Local aliases of the time/datetime modules and of their
        #: wall-clock functions, tracked from import statements.
        self._time_aliases: set[str] = set()
        self._datetime_aliases: set[str] = set()
        self._direct_clock_names: set[str] = set()

    def _at(self, node: ast.AST) -> str:
        return f"{self.where}:{getattr(node, 'lineno', '?')}"

    # -- import tracking -------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            target = alias.asname or alias.name
            if alias.name == "time":
                self._time_aliases.add(target)
            elif alias.name == "datetime":
                self._datetime_aliases.add(target)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            target = alias.asname or alias.name
            if node.module == "time" and alias.name in _WALL_CLOCK_TIME:
                self._direct_clock_names.add(target)
            elif node.module == "datetime" and alias.name == "datetime":
                self._datetime_aliases.add(target)
        self.generic_visit(node)

    # -- C001: wall-clock calls ------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self.in_sim_module:
            clock = self._wall_clock_callee(node.func)
            if clock is not None:
                self.findings.append(Finding(
                    C001, Severity.ERROR, self._at(node),
                    f"wall-clock call {clock}() in a simulation module; "
                    f"simulated time is the only clock sim/engine code "
                    f"may read"))
        self.generic_visit(node)

    def _wall_clock_callee(self, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name) and func.id in self._direct_clock_names:
            return func.id
        if not isinstance(func, ast.Attribute):
            return None
        owner = func.value
        if isinstance(owner, ast.Name):
            if (owner.id in self._time_aliases
                    and func.attr in _WALL_CLOCK_TIME):
                return f"{owner.id}.{func.attr}"
            if (owner.id in self._datetime_aliases
                    and func.attr in _WALL_CLOCK_DATETIME):
                return f"{owner.id}.{func.attr}"
        # datetime.datetime.now(...) spelled through the module.
        if (isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and owner.value.id in self._datetime_aliases
                and func.attr in _WALL_CLOCK_DATETIME):
            return f"{owner.value.id}.{owner.attr}.{func.attr}"
        return None

    # -- C002: float equality on timestamps ------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            name = _is_timestamp_name(left) or _is_timestamp_name(right)
            if name is not None:
                verb = "==" if isinstance(op, ast.Eq) else "!="
                self.findings.append(Finding(
                    C002, Severity.ERROR, self._at(node),
                    f"float {verb} on simulated timestamp {name!r}; use an "
                    f"ordering comparison or math.isclose"))
        self.generic_visit(node)

    # -- C003/C004: process protocol -------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_process(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.generic_visit(node)

    def _check_process(self, node: ast.FunctionDef) -> None:
        # Generator processes live in the simulation layers; elsewhere a
        # *_process name is just a name (e.g. a text-processing helper).
        if not self.in_sim_module or not node.name.endswith("_process"):
            return
        yields = [n for n in ast.walk(node)
                  if isinstance(n, (ast.Yield, ast.YieldFrom))]
        if not yields:
            self.findings.append(Finding(
                C004, Severity.ERROR, self._at(node),
                f"{node.name} is named like a process but never yields; "
                f"the simulation core would drive it to nothing"))
            return
        for item in yields:
            if isinstance(item, ast.YieldFrom):
                continue  # delegation inherits the delegate's requests
            request = item.value
            if request is None:
                self._bad_request(item, node.name, "bare yield")
            elif isinstance(request, ast.Tuple):
                if not request.elts:
                    self._bad_request(item, node.name, "empty tuple")
                    continue
                verb = request.elts[0]
                if (isinstance(verb, ast.Constant)
                        and isinstance(verb.value, str)
                        and verb.value not in _REQUEST_VERBS):
                    self._bad_request(
                        item, node.name, f"unknown verb {verb.value!r}")
            # Non-tuple yields (a variable holding a request) are allowed;
            # only literal requests are statically checkable.

    def _bad_request(self, node: ast.AST, func: str, what: str) -> None:
        self.findings.append(Finding(
            C003, Severity.ERROR, self._at(node),
            f"{func} yields a malformed scheduler request ({what}); "
            f"processes must yield ('at', t), ('join', rdv, ready), "
            f"('acquire', res, owner, blocks, ready), or "
            f"('release', res, owner, ready)"))


def _module_parts(path: Path, root: Path) -> tuple[str, ...]:
    """Module path parts relative to the package root directory."""
    return path.relative_to(root).with_suffix("").parts


def lint_source(source: str, where: str,
                in_sim_module: bool = False) -> list[Finding]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=where)
    except SyntaxError as exc:
        return [Finding(C003, Severity.ERROR, f"{where}:{exc.lineno}",
                        f"module does not parse: {exc.msg}")]
    linter = _ModuleLinter(where, in_sim_module)
    linter.visit(tree)
    return linter.findings


def lint_path(root: str | Path) -> tuple[list[Finding], list[str]]:
    """Lint every ``*.py`` file under ``root`` (a package directory).

    Returns the findings plus the list of files checked. A file belongs to
    a simulation module when its path relative to ``root`` starts with one
    of :data:`SIM_MODULE_PREFIXES` — point ``root`` at ``src/repro`` (or a
    fixture tree shaped like it).
    """
    root = Path(root)
    findings: list[Finding] = []
    checked: list[str] = []
    for path in sorted(root.rglob("*.py")):
        parts = _module_parts(path, root)
        in_sim = parts[0] in SIM_MODULE_PREFIXES if parts else False
        findings.extend(lint_source(path.read_text(), str(path), in_sim))
        checked.append(str(path))
    return findings, checked
