"""Platform: a CPU + GPU pair joined by an interconnect.

The platform derives the launch-path costs that feed both the nullKernel
micro-benchmark (Table V) and the execution engine:

* ``launch_call_cpu_ns`` — how long the CPU thread is occupied by one
  ``cudaLaunchKernel`` call;
* ``launch_latency_ns`` — launch-call begin to kernel begin when the GPU is
  idle (the paper's unqueued ``t_l``): CPU call + driver + link submission.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.hardware.cpu import CpuSpec
from repro.hardware.gpu import GpuSpec
from repro.hardware.interconnect import Coupling, InterconnectSpec

#: Driver-side share of the launch path (queue bookkeeping, command encode),
#: common to all NVIDIA-driver platforms in the study.
DRIVER_LAUNCH_NS = 900.0


@dataclass(frozen=True)
class Platform:
    """A CPU-GPU coupled platform.

    Attributes:
        name: Short platform id used in tables ("Intel+H100", "GH200", ...).
        cpu: CPU model.
        gpu: GPU model.
        interconnect: CPU<->GPU link.
        coupling: LC / CC / TC taxonomy bucket.
        driver_launch_ns: Driver share of the launch path.
    """

    name: str
    cpu: CpuSpec
    gpu: GpuSpec
    interconnect: InterconnectSpec
    coupling: Coupling
    driver_launch_ns: float = DRIVER_LAUNCH_NS
    description: str = ""
    extras: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.driver_launch_ns < 0:
            raise ConfigurationError(f"{self.name}: driver_launch_ns must be non-negative")

    # ------------------------------------------------------------------
    # Launch-path costs
    # ------------------------------------------------------------------
    @property
    def launch_call_cpu_ns(self) -> float:
        """CPU-thread occupancy of one ``cudaLaunchKernel`` call."""
        return self.cpu.runtime_call_ns

    @property
    def launch_latency_ns(self) -> float:
        """Unqueued launch-call begin to kernel begin (Table V's overhead)."""
        return self.cpu.runtime_call_ns + self.driver_launch_ns + self.interconnect.submission_ns

    def dispatch_ns(self, reference_cost_ns: float) -> float:
        """CPU time to dispatch an operator with the given reference cost."""
        return self.cpu.dispatch_ns(reference_cost_ns)

    def kernel_duration_ns(self, flops: float, bytes_moved: float,
                           floor_scale: float = 1.0) -> float:
        """Roofline kernel duration on this platform's GPU."""
        return self.gpu.kernel_duration_ns(flops, bytes_moved, floor_scale)

    def transfer_ns(self, num_bytes: float) -> float:
        """Host<->device transfer time across the platform's link.

        Tightly-coupled platforms share physical memory, so explicit transfer
        degenerates to the link's base latency (a cache-coherent access).
        """
        if self.coupling.shares_physical_memory:
            return self.interconnect.base_latency_ns
        return self.interconnect.transfer_ns(num_bytes)

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.name} [{self.coupling.value}] — {self.cpu.name} + {self.gpu.name} "
            f"over {self.interconnect.name}; launch latency "
            f"{self.launch_latency_ns:.0f} ns"
        )
