"""Extension — decode-phase characterization.

The paper measures prefill (TTFT) and notes decode stresses the memory
subsystem (Section II-A); this extension characterizes the decode step with
SKIP. One token per sequence makes every kernel tiny, so decode is deeply
launch/dispatch-bound at low batch — the strongest case for CUDA graphs and
kernel fusion.
"""

from _harness import BENCH_ENGINE, report, run_once
from repro.engine import ExecutionMode, run
from repro.hardware import AMD_A100, GH200, INTEL_H100
from repro.skip import classify_metrics, compute_metrics, Boundedness
from repro.units import ns_to_ms
from repro.viz import render_table
from repro.workloads import LLAMA_3_2_1B, Phase

BATCHES = (1, 8, 64)
CONTEXT = 1024


def _decode_grid():
    grid = {}
    for platform in (INTEL_H100, AMD_A100, GH200):
        for batch in BATCHES:
            result = run(LLAMA_3_2_1B, platform, batch_size=batch, seq_len=1,
                         phase=Phase.DECODE, context_len=CONTEXT,
                         config=BENCH_ENGINE)
            grid[(platform.name, batch)] = compute_metrics(result.trace)
    return grid


def test_ext_decode_step_characterization(benchmark):
    grid = run_once(benchmark, _decode_grid)
    rows = []
    for (platform, batch), metrics in grid.items():
        rows.append([
            platform, batch,
            f"{ns_to_ms(metrics.inference_latency_ns):.2f}",
            f"{ns_to_ms(metrics.gpu_busy_ns):.2f}",
            classify_metrics(metrics).value,
        ])
    report(render_table(
        ["platform", "batch", "step (ms)", "GPU busy (ms)", "bound"],
        rows, title=f"Extension: Llama-3.2-1B decode step, context={CONTEXT}"))

    # Decode is CPU/launch-bound across the board at these batch sizes —
    # kernel work per step is tiny relative to 421 dispatches.
    for (platform, batch), metrics in grid.items():
        if batch <= 8:
            assert classify_metrics(metrics) is Boundedness.CPU_BOUND, (
                platform, batch)
            assert metrics.gpu_busy_ns < 0.7 * metrics.inference_latency_ns
    # CPU-bound decode => the x86 LC systems beat GH200 at BS=1, the same
    # inversion as prefill.
    assert (grid[("Intel+H100", 1)].inference_latency_ns
            < grid[("GH200", 1)].inference_latency_ns)


def test_ext_decode_cuda_graph_gain(benchmark):
    def _pair():
        eager = run(LLAMA_3_2_1B, GH200, batch_size=1, seq_len=1,
                    phase=Phase.DECODE, context_len=CONTEXT,
                    config=BENCH_ENGINE)
        graphed = run(LLAMA_3_2_1B, GH200, batch_size=1, seq_len=1,
                      phase=Phase.DECODE, context_len=CONTEXT,
                      mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD,
                      config=BENCH_ENGINE)
        return (compute_metrics(eager.trace).inference_latency_ns,
                compute_metrics(graphed.trace).inference_latency_ns)

    eager_ns, graphed_ns = run_once(benchmark, _pair)
    speedup = eager_ns / graphed_ns
    report(f"Extension: GH200 decode step eager {ns_to_ms(eager_ns):.2f} ms "
           f"-> CUDA graph {ns_to_ms(graphed_ns):.2f} ms ({speedup:.1f}x)")
    # This is why serving stacks capture decode in CUDA graphs.
    assert speedup > 3.0
