"""Stream, thread, device, and link resource models."""

import pytest

from repro.errors import SimulationError
from repro.hardware.interconnect import NVLINK4_P2P, InterconnectSpec
from repro.sim import CpuThread, GpuDevice, LinkResource, StreamResource


# ----------------------------------------------------------------------
# StreamResource
# ----------------------------------------------------------------------
def test_first_kernel_pays_no_gap():
    stream = StreamResource()
    start, end = stream.submit(100.0, 50.0, gap_ns=700.0)
    assert (start, end) == (100.0, 150.0)


def test_back_to_back_kernels_pay_the_gap():
    stream = StreamResource()
    stream.submit(0.0, 100.0, gap_ns=700.0)
    start, _ = stream.submit(0.0, 10.0, gap_ns=700.0)
    assert start == 800.0  # free_at 100 + gap 700


def test_late_arrival_dominates_gap():
    stream = StreamResource()
    stream.submit(0.0, 100.0, gap_ns=700.0)
    start, _ = stream.submit(5000.0, 10.0, gap_ns=700.0)
    assert start == 5000.0


def test_earliest_start_matches_submit_without_mutating():
    stream = StreamResource()
    stream.submit(0.0, 100.0, gap_ns=700.0)
    predicted = stream.earliest_start(300.0, gap_ns=700.0)
    assert stream.kernel_count == 1  # not mutated
    start, _ = stream.submit(300.0, 10.0, gap_ns=700.0)
    assert start == predicted


def test_accounting_accumulates():
    stream = StreamResource()
    stream.submit(0.0, 40.0)
    stream.submit(0.0, 60.0)
    assert stream.busy_ns == 100.0
    assert stream.kernel_count == 2
    assert stream.free_at == 100.0
    assert stream.nth_start(1) == 40.0
    with pytest.raises(SimulationError):
        stream.nth_start(2)


def test_invalid_submissions_rejected():
    stream = StreamResource()
    with pytest.raises(SimulationError):
        stream.submit(0.0, -1.0)
    with pytest.raises(SimulationError):
        stream.submit(-1.0, 1.0)
    with pytest.raises(SimulationError):
        stream.submit(0.0, 1.0, gap_ns=-1.0)


# ----------------------------------------------------------------------
# CpuThread / GpuDevice
# ----------------------------------------------------------------------
def test_cpu_thread_occupancy():
    thread = CpuThread(tid=3, name="dispatch-2")
    thread.occupy(100.0)
    thread.occupy(50.0)
    assert thread.busy_ns == 150.0
    with pytest.raises(SimulationError):
        thread.occupy(-1.0)


def test_device_defaults_to_one_compute_stream():
    device = GpuDevice(index=2)
    assert len(device.streams) == 1
    assert device.compute_stream.stream_id == 7
    assert device.compute_stream.device == 2


def test_device_aggregates_across_streams():
    device = GpuDevice(index=0, streams=[
        StreamResource(stream_id=7), StreamResource(stream_id=8)])
    device.streams[0].submit(0.0, 100.0)
    device.streams[1].submit(0.0, 300.0)
    assert device.free_at == 300.0
    assert device.busy_ns == 400.0


# ----------------------------------------------------------------------
# LinkResource ring all-reduce model
# ----------------------------------------------------------------------
def test_allreduce_zero_cases():
    link = LinkResource(spec=NVLINK4_P2P)
    assert link.allreduce_ns(1 << 20, world=1) == 0.0
    assert link.allreduce_ns(0.0, world=8) == 0.0


def test_allreduce_matches_ring_formula():
    spec = InterconnectSpec(name="test", bandwidth_gbs=100.0,
                            base_latency_ns=500.0, submission_ns=0.0)
    link = LinkResource(spec=spec)
    message, world = 1e6, 4
    expected = 2 * (world - 1) * (500.0 + (message / world) / 100.0)
    assert link.allreduce_ns(message, world) == pytest.approx(expected)


def test_allreduce_invalid_inputs_rejected():
    link = LinkResource(spec=NVLINK4_P2P)
    with pytest.raises(SimulationError):
        link.allreduce_ns(-1.0, world=2)
    with pytest.raises(SimulationError):
        link.allreduce_ns(1.0, world=0)


def test_link_records_occupancy():
    link = LinkResource(spec=NVLINK4_P2P)
    link.record(100.0)
    link.record(50.0)
    assert link.transfers == 2
    assert link.busy_ns == 150.0
    with pytest.raises(SimulationError):
        link.record(-1.0)
