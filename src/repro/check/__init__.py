"""``repro.check`` — static verifiers for the artifacts analyses trust.

Six pure passes (none re-runs the system under test to judge it):

* **graph** (:mod:`repro.check.graph`) — dataflow and conservation laws
  over lowered kernel graphs and the TP sharding pass (rules ``G...``);
* **schedule** (:mod:`repro.check.schedule`) — rendezvous deadlocks,
  party-count mismatches, and unreachable work in multi-device schedules
  (rules ``S...``);
* **trace** (:mod:`repro.check.tracelint`) — Chrome-trace/sidecar linting
  and recomputed SKIP metric identities (rules ``T...``);
* **code** (:mod:`repro.check.code`) — repo-specific AST lint over
  ``src/repro`` (rules ``C...``);
* **kv** (:mod:`repro.check.kvrules`) — replay of the paged KV-pool
  event log against leak/over-commit/residency invariants (rules ``K...``),
  including the shared-prefix refcount discipline;
* **cluster** (:mod:`repro.check.clusterrules`) — replay of cluster
  routing decisions against conservation and session-affinity invariants
  (rules ``R...``);
* **host** (:mod:`repro.check.hostrules`) — replay of the host CPU
  grant log against core-exclusivity, NUMA-affinity, determinism, and
  conservation invariants (rules ``N...``);
* **hb** (:mod:`repro.check.hb`) — vector-clock happens-before analysis
  over a run's causality log plus determinism certification under
  adversarial tie-break perturbation (rules ``H...``). The log comes from
  a simulation run (``SimCore(causality=...)``), but the analysis itself
  is a pure pass over the recorded events.

All passes report :class:`Finding` records with stable rule ids; the
``repro check`` CLI aggregates them into a :class:`CheckReport`.
"""

from repro.check.clusterrules import check_cluster_metadata
from repro.check.code import lint_path, lint_source
from repro.check.findings import (
    CheckReport,
    Finding,
    RULES,
    Rule,
    Severity,
    register_rule,
)
from repro.check.graph import check_lowering, check_sharding
from repro.check.hb import (
    CANONICAL_SCENARIOS,
    HbScenario,
    certify_scenario,
    check_causality,
    get_scenario,
    happens_before,
    vector_clocks,
)
from repro.check.hostrules import check_host_metadata
from repro.check.kvrules import check_kv_events, check_kv_metadata
from repro.check.runner import (
    DEFAULT_CHECK_DEGREES,
    check_causality_logs,
    check_hb_scenarios,
    check_serving_schedules,
    check_source,
    check_trace_files,
    check_trace_schedules,
    check_workload_graphs,
    check_workload_schedules,
)
from repro.check.schedule import (
    CollectiveJoin,
    DeviceSchedule,
    KernelIssue,
    check_schedules,
    schedules_from_lowering,
    schedules_from_pp,
    schedules_from_serving,
    schedules_from_trace,
)
from repro.check.tracelint import lint_chrome_file, lint_chrome_text, lint_trace

__all__ = [
    "CANONICAL_SCENARIOS",
    "CheckReport",
    "CollectiveJoin",
    "DEFAULT_CHECK_DEGREES",
    "DeviceSchedule",
    "Finding",
    "HbScenario",
    "KernelIssue",
    "RULES",
    "Rule",
    "Severity",
    "certify_scenario",
    "check_causality",
    "check_cluster_metadata",
    "check_causality_logs",
    "check_host_metadata",
    "check_hb_scenarios",
    "check_kv_events",
    "check_kv_metadata",
    "check_lowering",
    "check_schedules",
    "check_serving_schedules",
    "check_sharding",
    "check_source",
    "check_trace_files",
    "check_trace_schedules",
    "check_workload_graphs",
    "check_workload_schedules",
    "get_scenario",
    "happens_before",
    "lint_chrome_file",
    "lint_chrome_text",
    "lint_path",
    "lint_source",
    "lint_trace",
    "register_rule",
    "schedules_from_lowering",
    "schedules_from_pp",
    "schedules_from_serving",
    "schedules_from_trace",
    "vector_clocks",
]
