"""Priority-aware serving: the paper's "intelligent scheduling" lever.

Section VI: GH200's low-batch weakness can be addressed by "enhancing CPU
performance or employing intelligent scheduling in CC/TC designs". This
scheduler implements the second lever: two request classes share one
engine —

* **interactive** requests are served immediately at small batch (low TTFT);
* **bulk** requests accumulate into large batches that run whenever no
  interactive work is waiting, exploiting the CC system's large-batch
  strength.

Compared with a single FIFO queue, interactive latency approaches BS=1
serving while bulk work keeps the GPU in its high-throughput region.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.serving.batcher import ServingReport
from repro.serving.latency import LatencyModel
from repro.serving.requests import Request, RequestOutcome
from repro.workloads.config import ModelConfig


class RequestClass(enum.Enum):
    INTERACTIVE = "interactive"
    BULK = "bulk"


@dataclass(frozen=True)
class ClassifiedRequest:
    """A request tagged with its service class."""

    request: Request
    request_class: RequestClass


@dataclass(frozen=True)
class PriorityPolicy:
    """Scheduling knobs.

    Attributes:
        interactive_batch: Maximum batch for interactive service.
        bulk_batch: Target batch for bulk service.
        bulk_max_wait_ns: Oldest bulk request age that forces a bulk run
            even when the batch is not full (starvation guard).
    """

    interactive_batch: int = 2
    bulk_batch: int = 32
    bulk_max_wait_ns: float = 500e6

    def __post_init__(self) -> None:
        if self.interactive_batch <= 0 or self.bulk_batch <= 0:
            raise ConfigurationError("batch sizes must be positive")
        if self.bulk_max_wait_ns < 0:
            raise ConfigurationError("bulk_max_wait_ns must be non-negative")


@dataclass
class PriorityReport:
    """Per-class serving statistics."""

    interactive: ServingReport
    bulk: ServingReport

    @property
    def all_outcomes(self) -> list[RequestOutcome]:
        return [*self.interactive.outcomes, *self.bulk.outcomes]


def simulate_priority_scheduling(
    requests: list[ClassifiedRequest],
    model: ModelConfig,
    latency: LatencyModel,
    policy: PriorityPolicy = PriorityPolicy(),
) -> PriorityReport:
    """Run the two-class scheduler over a classified arrival stream."""
    if not requests:
        raise ConfigurationError("no requests to serve")
    pending = sorted(requests, key=lambda c: c.request.arrival_ns)
    interactive_queue: list[Request] = []
    bulk_queue: list[Request] = []
    outcomes: dict[RequestClass, list[RequestOutcome]] = {
        RequestClass.INTERACTIVE: [],
        RequestClass.BULK: [],
    }
    clock = 0.0
    next_arrival = 0

    def pull_arrivals() -> None:
        nonlocal next_arrival
        while (next_arrival < len(pending)
               and pending[next_arrival].request.arrival_ns <= clock):
            entry = pending[next_arrival]
            if entry.request_class is RequestClass.INTERACTIVE:
                interactive_queue.append(entry.request)
            else:
                bulk_queue.append(entry.request)
            next_arrival += 1

    def serve(batch: list[Request], request_class: RequestClass) -> None:
        nonlocal clock
        start = clock
        batch_size = len(batch)
        prompt = max(r.prompt_len for r in batch)
        output = max(r.output_tokens for r in batch)
        ttft = latency.ttft_ns(model, batch_size, prompt)
        total = latency.generation_ns(model, batch_size, prompt, output)
        clock = start + total
        for request in batch:
            queued = start - request.arrival_ns
            outcomes[request_class].append(RequestOutcome(
                request=request,
                ttft_ns=queued + ttft,
                completion_ns=queued + total,
                batch_size=batch_size,
                queue_ns=queued,
            ))

    while (next_arrival < len(pending) or interactive_queue or bulk_queue):
        pull_arrivals()
        if interactive_queue:
            batch = interactive_queue[:policy.interactive_batch]
            del interactive_queue[:policy.interactive_batch]
            serve(batch, RequestClass.INTERACTIVE)
            continue
        bulk_due = bulk_queue and (
            len(bulk_queue) >= policy.bulk_batch
            or clock - bulk_queue[0].arrival_ns >= policy.bulk_max_wait_ns
            or next_arrival >= len(pending))
        if bulk_due:
            batch = bulk_queue[:policy.bulk_batch]
            del bulk_queue[:policy.bulk_batch]
            serve(batch, RequestClass.BULK)
            continue
        if next_arrival < len(pending):
            clock = max(clock, pending[next_arrival].request.arrival_ns)
        elif bulk_queue:
            clock += policy.bulk_max_wait_ns  # let the starvation guard fire

    interactive_outcomes = outcomes[RequestClass.INTERACTIVE]
    bulk_outcomes = outcomes[RequestClass.BULK]
    if not interactive_outcomes or not bulk_outcomes:
        raise ConfigurationError(
            "stream must contain both interactive and bulk requests")
    return PriorityReport(
        interactive=ServingReport(outcomes=interactive_outcomes),
        bulk=ServingReport(outcomes=bulk_outcomes),
    )
