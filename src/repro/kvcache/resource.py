"""KvCacheResource — the block pool as a blocking simulated resource.

Processes on :class:`repro.sim.SimCore` interact with the pool through two
yield verbs (mirroring the core's ``("at", t)`` / ``("join", ...)``
protocol):

* ``("acquire", resource, owner, blocks, ready_ns)`` — suspend until the
  pool can grant ``blocks`` to ``owner``; resumes at
  ``max(ready_ns, grant time)``. Grants are FIFO: a large request at the
  head of the wait list blocks later small ones, so acquisition order is
  deterministic and starvation-free.
* ``("release", resource, owner, ready_ns)`` — free every block ``owner``
  holds, wake eligible waiters, and resume at ``ready_ns``.

The serving layer's :class:`repro.kvcache.manager.KvManager` drives the same
resource synchronously (try-acquire between yields) because a replica's
policy process must keep stepping to create the frees it is waiting for;
the blocking verbs are for multi-process experiments where the waiting and
the freeing happen in different processes. A run that ends with waiters
still parked is a deadlock, reported by :meth:`SimCore.run` exactly like an
incomplete rendezvous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.errors import SimulationError
from repro.kvcache.pool import BlockPool

if TYPE_CHECKING:
    from repro.sim.causality import CausalityLog
    from repro.sim.core import Process
    from repro.sim.queue import EventQueue


@dataclass
class _Waiter:
    """One parked acquire: who wants how much, and since when."""

    process: Process
    owner: Hashable
    blocks: int
    ready_ns: float


class KvCacheResource:
    """A :class:`BlockPool` bound to a sim core's event queue."""

    def __init__(self, pool: BlockPool, name: str = "kv") -> None:
        self.pool = pool
        self.name = name
        self.waiters: list[_Waiter] = []
        self._queue: EventQueue | None = None
        self._log: CausalityLog | None = None

    # -- core binding ---------------------------------------------------
    def bind(self, queue: EventQueue,
             causality: CausalityLog | None = None) -> None:
        """Attach to a core's event queue (``SimCore.add_kv_resource``)."""
        self._queue = queue
        self._log = causality
        if causality is not None:
            causality.resource(self.name, self.pool.capacity_blocks)

    # -- synchronous side (policy processes, between yields) ------------
    def try_acquire(self, owner: Hashable, blocks: int,
                    now: float = 0.0) -> bool:
        """Grant ``blocks`` to ``owner`` now if the pool has room.

        ``now`` is only observational (the grant timestamp an attached
        causality log records); the grant decision ignores it.
        """
        if self.pool.can_allocate(blocks):
            self.pool.allocate(owner, blocks)
            if self._log is not None:
                self._log.grant(self._log.current_pid, self.name, owner,
                                blocks, now)
            return True
        return False

    def release(self, owner: Hashable, now: float) -> int:
        """Free ``owner``'s blocks and wake any newly-eligible waiters."""
        freed = self.pool.release(owner)
        if freed > 0:
            if self._log is not None:
                self._log.free(self._log.current_pid, self.name, owner,
                               freed, now)
            self._wake(now)
        return freed

    # -- yield-protocol side (driven by SimCore._handle) -----------------
    def acquire_request(self, process: Process, owner: Hashable,
                        blocks: int, ready_ns: float) -> None:
        if blocks > self.pool.capacity_blocks:
            raise SimulationError(
                f"kv resource {self.name}: acquire of {blocks} blocks can "
                f"never be granted (capacity {self.pool.capacity_blocks})")
        if self._log is not None:
            self._log.acquire(self._log.pid_of(process), self.name, owner,
                              blocks, ready_ns)
        if not self.waiters and self.pool.can_allocate(blocks):
            self.pool.allocate(owner, blocks)
            if self._log is not None:
                self._log.grant(self._log.pid_of(process), self.name, owner,
                                blocks, ready_ns)
            self._push(process, ready_ns)
        else:
            # FIFO: park behind earlier waiters even if this request would
            # fit, so grant order never depends on request size.
            self.waiters.append(_Waiter(process, owner, blocks, ready_ns))

    def release_request(self, process: Process, owner: Hashable,
                        ready_ns: float) -> None:
        freed = self.pool.release(owner)
        if self._log is not None:
            self._log.free(self._log.pid_of(process), self.name, owner,
                           freed, ready_ns)
        self._wake(ready_ns)
        self._push(process, ready_ns)

    # -- internals -------------------------------------------------------
    def _wake(self, now: float) -> None:
        while self.waiters and self.pool.can_allocate(self.waiters[0].blocks):
            waiter = self.waiters.pop(0)
            self.pool.allocate(waiter.owner, waiter.blocks)
            grant_at = max(now, waiter.ready_ns)
            if self._log is not None:
                self._log.grant(self._log.pid_of(waiter.process), self.name,
                                waiter.owner, waiter.blocks, grant_at)
            self._push(waiter.process, grant_at)

    def _push(self, process: Process, at_ns: float) -> None:
        if self._queue is None:
            raise SimulationError(
                f"kv resource {self.name} is not bound to a core; call "
                f"SimCore.add_kv_resource first")
        self._queue.push(at_ns, process)
