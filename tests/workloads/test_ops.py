"""Operator factories and work accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import ops
from repro.workloads.ops import FP16_BYTES, OpKind


def test_linear_flops_with_bias():
    op = ops.linear("fc", tokens=4, in_features=8, out_features=16, bias=True)
    assert op.flops == 2 * 4 * 8 * 16 + 4 * 16
    assert op.dims == (8, 16, 1, 4)


def test_linear_flops_without_bias():
    op = ops.linear("fc", tokens=4, in_features=8, out_features=16, bias=False)
    assert op.flops == 2 * 4 * 8 * 16
    assert op.dims[2] == 0


def test_linear_bytes_account_for_weights_and_activations():
    op = ops.linear("fc", tokens=2, in_features=4, out_features=8, bias=False)
    assert op.bytes_read == FP16_BYTES * (2 * 4 + 4 * 8)
    assert op.bytes_written == FP16_BYTES * 2 * 8


def test_matmul_accounting():
    op = ops.matmul("mm", batch=3, m=4, n=5, k=6)
    assert op.flops == 2 * 3 * 4 * 5 * 6
    assert op.bytes_written == FP16_BYTES * 3 * 4 * 5
    assert op.dims == (4, 5, 6)


def test_softmax_rows_cols():
    op = ops.softmax("sm", rows=10, cols=32)
    assert op.flops == 5 * 10 * 32
    assert op.dims == (32,)


def test_layernorm_and_rmsnorm_costs_differ():
    ln = ops.layernorm("ln", tokens=8, hidden=16)
    rms = ops.rmsnorm("rms", tokens=8, hidden=16)
    assert ln.flops > rms.flops  # RMSNorm skips the mean subtraction


def test_elementwise_fanout_multiplies_traffic():
    single = ops.elementwise(OpKind.GELU, "g", elements=100)
    fanned = ops.elementwise(OpKind.GELU, "g", elements=100, fanout=8)
    assert fanned.kernel_fanout == 8
    assert fanned.bytes_read == 8 * single.bytes_read
    assert fanned.flops == 8 * single.flops


def test_elementwise_rejects_non_elementwise_kind():
    with pytest.raises(ConfigurationError):
        ops.elementwise(OpKind.LINEAR, "bad", elements=10)


def test_transpose_view_launches_nothing():
    op = ops.transpose_view("t", elements=10)
    assert not op.launches_kernel
    assert op.bytes_moved == 0


def test_view_op_with_fanout_rejected():
    from repro.workloads.ops import Op
    with pytest.raises(ConfigurationError):
        Op(OpKind.TRANSPOSE, "t", 0, 0, 0, dims=(), launches_kernel=False,
           kernel_fanout=2)


def test_fill_writes_only():
    op = ops.fill("f", elements=7)
    assert op.bytes_read == 0
    assert op.bytes_written == FP16_BYTES * 7


def test_embedding_variant_dimension():
    op = ops.embedding("emb", tokens=4, hidden=8, num_embeddings=50000)
    assert op.dims == (8, 50000)
    assert op.flops == 0


def test_rope_fanout():
    op = ops.rope("r", tokens=4, dim=8)
    assert op.kernel_fanout == 3


def test_sdpa_flash_flops_match_unfused_attention():
    flash = ops.sdpa_flash("f", batch_heads=12, q_len=128, kv_len=128,
                           head_dim=64)
    scores = ops.matmul("s", 12, 128, 128, 64)
    context = ops.matmul("c", 12, 128, 64, 128)
    assert flash.flops == pytest.approx(scores.flops + context.flops)


def test_sdpa_flash_moves_less_memory_than_unfused():
    flash = ops.sdpa_flash("f", batch_heads=12, q_len=512, kv_len=512,
                           head_dim=64)
    scores = ops.matmul("s", 12, 512, 512, 64)
    softmax = ops.softmax("sm", 12 * 512, 512)
    context = ops.matmul("c", 12, 512, 64, 512)
    unfused = scores.bytes_moved + softmax.bytes_moved + context.bytes_moved
    assert flash.bytes_moved < unfused / 2


def test_negative_work_rejected():
    from repro.workloads.ops import Op
    with pytest.raises(ConfigurationError):
        Op(OpKind.ADD, "bad", -1.0, 0.0, 0.0, dims=())


def test_aten_names_and_dispatch_costs_cover_all_kinds():
    from repro.workloads.ops import ATEN_NAMES, DISPATCH_COST_NS
    for kind in OpKind:
        assert kind in ATEN_NAMES
        assert DISPATCH_COST_NS[kind] > 0


@pytest.mark.parametrize("factory,kwargs", [
    (ops.linear, dict(tokens=0, in_features=1, out_features=1)),
    (ops.matmul, dict(batch=1, m=0, n=1, k=1)),
    (ops.softmax, dict(rows=0, cols=1)),
    (ops.embedding, dict(tokens=1, hidden=0)),
])
def test_factories_reject_nonpositive_dims(factory, kwargs):
    with pytest.raises(ConfigurationError):
        factory("bad", **kwargs)
