"""KV-cache pressure sweeps: throughput and SLO vs pool size and policy.

Section IV's coupling story, measured at the memory system: shrink the paged
KV pool until sequences no longer fit, and the serving loop must either
preempt-and-recompute (burning GPU time) or offload blocks to host memory
(burning interconnect time). The sweep serves one Poisson stream per
(platform, policy, pool size) cell and reports delivered tokens/s plus TTFT
SLO attainment, so the loosely-coupled vs closely-coupled divergence shows
up as numbers: a PCIe platform pays ~14x more per swapped block than
NVLink-C2C, so GH200 holds throughput under pressure where A100 collapses.

The default execution mode is ``COMPILE_REDUCE_OVERHEAD``: in eager mode
decode steps are launch-bound on every platform (flat in batch and context),
which hides the memory-pressure effect behind the CPU launch tax the other
analyses study. Compiled decode is bandwidth-bound, so pool pressure — not
launch overhead — dominates the cell-to-cell deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.slo import DEFAULT_SLO_MS, serving_slo_attainment
from repro.engine.modes import ExecutionMode
from repro.errors import AnalysisError
from repro.hardware.platform import Platform
from repro.kvcache.manager import KvCacheConfig, KvPolicy
from repro.serving.continuous import ContinuousBatchPolicy
from repro.serving.latency import LatencyModel
from repro.serving.requests import poisson_requests
from repro.serving.runtime import simulate_serving
from repro.workloads.config import ModelConfig

#: Pool sizes (GiB per replica) that pressure a ~1B model at prompt 1024.
DEFAULT_POOL_GIB: tuple[float, ...] = (0.2, 0.15, 0.1)

#: Pressure policies a sweep compares by default.
DEFAULT_KV_POLICIES: tuple[KvPolicy, ...] = (
    KvPolicy.RECOMPUTE, KvPolicy.OFFLOAD)


@dataclass(frozen=True)
class KvPressurePoint:
    """One (platform, policy, pool size) serving cell."""

    platform: str
    policy: KvPolicy
    pool_gib: float | None        # None = unconstrained baseline run
    tokens_per_s: float
    slo_attainment: float
    requests_completed: int
    capacity_blocks: int
    preemptions: int
    swap_out_events: int
    swap_in_events: int
    swap_ns: float

    @property
    def pressured(self) -> bool:
        """Did the pool ever force a preemption or swap?"""
        return (self.preemptions > 0 or self.swap_out_events > 0
                or self.swap_in_events > 0)


@dataclass
class KvPressureResult:
    """All cells of one KV-pressure sweep."""

    model: str
    prompt_len: int
    output_tokens: int
    rate_per_s: float
    duration_s: float
    mode: ExecutionMode
    slo_ms: float
    pool_gib: tuple[float, ...]
    policies: tuple[KvPolicy, ...]
    points: list[KvPressurePoint] = field(default_factory=list)

    def point(self, platform: str, policy: KvPolicy,
              pool_gib: float | None) -> KvPressurePoint:
        for candidate in self.points:
            if (candidate.platform == platform and candidate.policy is policy
                    and candidate.pool_gib == pool_gib):
                return candidate
        raise AnalysisError(
            f"no sweep cell for {platform}/{policy.value}/pool={pool_gib}")

    def series(self, platform: str, policy: KvPolicy) -> list[float]:
        """Tokens/s over the swept pool sizes for one (platform, policy)."""
        return [self.point(platform, policy, pool).tokens_per_s
                for pool in self.pool_gib]

    def platforms(self) -> list[str]:
        seen: list[str] = []
        for point in self.points:
            if point.platform not in seen:
                seen.append(point.platform)
        return seen


def run_kv_pressure_sweep(
    model: ModelConfig,
    platforms: Sequence[Platform],
    pool_gib: Sequence[float] = DEFAULT_POOL_GIB,
    policies: Sequence[KvPolicy] = DEFAULT_KV_POLICIES,
    prompt_len: int = 1024,
    output_tokens: int = 128,
    rate_per_s: float = 40.0,
    duration_s: float = 1.0,
    seed: int = 7,
    max_active: int = 16,
    mode: ExecutionMode = ExecutionMode.COMPILE_REDUCE_OVERHEAD,
    slo_ms: float = DEFAULT_SLO_MS,
    baseline: bool = True,
) -> KvPressureResult:
    """Serve one arrival stream per (platform, policy, pool size) cell.

    Every cell replays the *same* Poisson stream, so differences are purely
    pool arithmetic plus the policy's recovery cost on that platform. With
    ``baseline`` (default) each platform also serves the stream once with no
    pool at all (policy ``NONE``), anchoring the pressure cells.

    Raises:
        AnalysisError: on an empty platform, policy, or pool-size list, or
            when a pressure policy is ``NONE`` (the baseline covers that).
    """
    if not platforms:
        raise AnalysisError("at least one platform is required")
    if not pool_gib:
        raise AnalysisError("at least one pool size is required")
    if not policies:
        raise AnalysisError("at least one pressure policy is required")
    if any(policy is KvPolicy.NONE for policy in policies):
        raise AnalysisError(
            "policy NONE is the baseline, not a pressure policy; "
            "use baseline=True instead")
    requests = poisson_requests(
        rate_per_s=rate_per_s, duration_s=duration_s, prompt_len=prompt_len,
        output_tokens=output_tokens, seed=seed)
    if not requests:
        raise AnalysisError("arrival stream is empty; raise rate or duration")
    policy = ContinuousBatchPolicy(max_active=max_active)
    result = KvPressureResult(
        model=model.name, prompt_len=prompt_len, output_tokens=output_tokens,
        rate_per_s=rate_per_s, duration_s=duration_s, mode=mode,
        slo_ms=slo_ms, pool_gib=tuple(pool_gib), policies=tuple(policies))

    for platform in platforms:
        latency = LatencyModel(platform=platform, mode=mode)
        cells: list[tuple[KvPolicy, float | None]] = []
        if baseline:
            cells.append((KvPolicy.NONE, None))
        cells.extend((kv_policy, pool)
                     for kv_policy in policies for pool in pool_gib)
        for kv_policy, pool in cells:
            kv = (None if kv_policy is KvPolicy.NONE
                  else KvCacheConfig(policy=kv_policy, pool_gib=pool))
            run = simulate_serving(requests, model, latency, policy=policy,
                                   kv=kv)
            attainment = serving_slo_attainment(run.report, slo_ms=slo_ms)
            result.points.append(KvPressurePoint(
                platform=platform.name,
                policy=kv_policy,
                pool_gib=pool,
                tokens_per_s=run.throughput_tokens_per_s,
                slo_attainment=attainment.attainment,
                requests_completed=len(run.outcomes),
                capacity_blocks=sum(s.capacity_blocks for s in run.kv),
                preemptions=sum(s.preemptions for s in run.kv),
                swap_out_events=sum(s.swap_out_events for s in run.kv),
                swap_in_events=sum(s.swap_in_events for s in run.kv),
                swap_ns=sum(s.swap_ns for s in run.kv),
            ))
    return result


def kv_pressure_report(result: KvPressureResult) -> str:
    """Render a KV-pressure sweep as a per-platform text table."""
    header = (f"{result.model}: tokens/s vs KV pool size "
              f"(prompt={result.prompt_len}, output={result.output_tokens}, "
              f"rate={result.rate_per_s:g}/s, mode={result.mode.value})")
    lines = [header, "-" * len(header)]
    for platform in result.platforms():
        lines.append(platform)
        for point in result.points:
            if point.platform != platform:
                continue
            pool = ("unbounded" if point.pool_gib is None
                    else f"{point.pool_gib:g} GiB")
            pressure = (f"preempts={point.preemptions}"
                        if point.policy is KvPolicy.RECOMPUTE
                        else f"swaps={point.swap_out_events}"
                             f"+{point.swap_in_events}"
                             f" ({point.swap_ns / 1e6:.1f} ms)")
            if point.policy is KvPolicy.NONE:
                pressure = "baseline"
            lines.append(
                f"  {point.policy.value:<9} pool={pool:>9}  "
                f"{point.tokens_per_s:>8.1f} tok/s  "
                f"SLO {point.slo_attainment:>6.1%}  {pressure}")
    names = result.platforms()
    if "GH200" in names and len(names) > 1 and result.pool_gib:
        tightest = result.pool_gib[-1]
        others = [n for n in names if n != "GH200"]
        for policy in result.policies:
            if policy is not KvPolicy.OFFLOAD:
                continue
            gh = result.point("GH200", policy, tightest)
            for other in others:
                rival = result.point(other, policy, tightest)
                if rival.tokens_per_s > 0:
                    ratio = gh.tokens_per_s / rival.tokens_per_s
                    lines.append(
                        f"offload at {tightest:g} GiB: GH200 delivers "
                        f"{ratio:.2f}x the tokens/s of {other} "
                        f"(NVLink-C2C vs PCIe swap cost)")
    return "\n".join(lines)
