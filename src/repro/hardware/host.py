"""Host topology catalog: sockets, NUMA domains, and GPU affinity.

The platform catalog (:mod:`repro.hardware.catalog`) describes one CPU and
one GPU in isolation; this module describes the *host* those parts live in
— how many sockets share the board, how cores group into NUMA domains, and
which domain each GPU hangs off. That is the level at which multi-replica
serving contends for dispatch CPU (see :mod:`repro.host`): a replica whose
dispatch lands on a remote domain pays the cross-socket penalty on every
launch call, and a host with fewer cores than busy replicas queues them.

The three paper platforms split into two shapes:

* **Shared-socket x86 hosts** (AMD+A100, Intel+H100): a fixed set of
  sockets serves however many GPUs are installed. Host CPU is a constant
  while replica count grows — exactly the resource that saturates in
  "Characterizing CPU-Induced Slowdowns in Multi-GPU LLM Inference"
  (PAPERS.md, arxiv 2603.22774).
* **Coupled per-GPU hosts** (GH200, MI300A): every GPU brings its own CPU
  domain (one Grace per Hopper on a GH200 board; one Zen4 CCD cluster per
  XCD on MI300A). Host CPU *scales with* the replica count, which is why
  the closely-coupled parts sustain the most replicas before the launch
  tax explodes (``repro hostsweep``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.platform import Platform


@dataclass(frozen=True)
class NumaDomain:
    """One NUMA domain: a core group with affinity to some GPUs.

    Attributes:
        index: Domain ordinal on the host (socket number on x86 boards,
            superchip ordinal on coupled boards).
        cores: Physical cores in the domain.
        gpus: GPU ordinals directly attached to this domain.
    """

    index: int
    cores: int
    gpus: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError("NUMA domain index must be non-negative")
        if self.cores < 0:
            raise ConfigurationError("NUMA domain core count must be >= 0")


@dataclass(frozen=True)
class HostSpec:
    """Host-level topology for one cataloged platform.

    Attributes:
        name: Human-readable host description.
        platform: Name of the :class:`~repro.hardware.platform.Platform`
            this host carries (the ``HOST_SPECS`` key).
        sockets: Socket (or superchip) count on a fixed host; for
            ``per_gpu_domains`` hosts this is the domain count *per GPU*
            (always 1 in the catalog).
        cores_per_socket: Cores in each socket/domain.
        remote_penalty: Multiplier on dispatch CPU time when a launch
            issues from a core outside the replica's affine domain
            (cross-socket memory latency on the allocator and driver
            paths; >= 1.0).
        per_gpu_domains: True when every GPU brings its own CPU domain
            (GH200, MI300A) — host CPU then scales with replica count
            instead of being a fixed pool.
    """

    name: str
    platform: str
    sockets: int
    cores_per_socket: int
    remote_penalty: float = 1.0
    per_gpu_domains: bool = False

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise ConfigurationError("host needs at least one socket")
        if self.cores_per_socket <= 0:
            raise ConfigurationError("host sockets need at least one core")
        if self.remote_penalty < 1.0:
            raise ConfigurationError(
                "remote_penalty is a slowdown multiplier; must be >= 1.0")

    @property
    def total_cores(self) -> int:
        """Cores on a fixed host (per GPU for ``per_gpu_domains`` hosts)."""
        return self.sockets * self.cores_per_socket

    def domains_for(self, replicas: int,
                    cores_override: int = 0) -> tuple[NumaDomain, ...]:
        """Materialize the NUMA domains for a host serving ``replicas``.

        Fixed hosts always present their cataloged sockets, with GPUs
        distributed round-robin across domains (the usual riser layout).
        ``per_gpu_domains`` hosts present one domain per replica.

        ``cores_override`` rescales the topology, preserving its shape:
        on fixed hosts it is the *total* core budget spread evenly over
        the sockets; on per-GPU hosts it is the budget of each domain.
        The override exists for the ``repro hostsweep`` analysis, which
        shrinks hosts so the contention knee lands at a replica count
        cheap enough to sweep (docs/host.md).
        """
        if replicas <= 0:
            raise ConfigurationError("replicas must be positive")
        if cores_override < 0:
            raise ConfigurationError("cores_override must be non-negative")
        if self.per_gpu_domains:
            per_domain = cores_override or self.cores_per_socket
            return tuple(NumaDomain(index=i, cores=per_domain, gpus=(i,))
                         for i in range(replicas))
        if cores_override and cores_override < self.sockets:
            raise ConfigurationError(
                f"host {self.name}: {cores_override} cores cannot populate "
                f"{self.sockets} sockets (need at least one core each)")
        budget = cores_override or self.total_cores
        base, spill = divmod(budget, self.sockets)
        gpus_of: dict[int, list[int]] = {s: [] for s in range(self.sockets)}
        for gpu in range(replicas):
            gpus_of[gpu % self.sockets].append(gpu)
        return tuple(NumaDomain(index=s,
                                cores=base + (1 if s < spill else 0),
                                gpus=tuple(gpus_of[s]))
                     for s in range(self.sockets))

    def domain_of_gpu(self, gpu: int) -> int:
        """The domain ordinal GPU ``gpu`` is attached to."""
        if gpu < 0:
            raise ConfigurationError("gpu ordinal must be non-negative")
        if self.per_gpu_domains:
            return gpu
        return gpu % self.sockets


#: Host topologies of the paper's evaluation platforms (plus the MI300A
#: projection), keyed by platform name. The x86 testbeds are standard
#: dual-socket boards; the coupled parts pair one CPU domain with each GPU.
HOST_SPECS: dict[str, HostSpec] = {
    "AMD+A100": HostSpec(
        name="2P AMD EPYC 7313 host (2x16 cores, PCIe Gen4 risers)",
        platform="AMD+A100",
        sockets=2,
        cores_per_socket=16,
        # Cross-socket hop over xGMI: the allocator and driver structures
        # live in the first-touch domain, so remote dispatch pays the
        # inter-socket memory latency on most launch-path accesses.
        remote_penalty=1.30,
    ),
    "Intel+H100": HostSpec(
        name="2P Intel Xeon 8468V host (2x48 cores, PCIe Gen5 risers)",
        platform="Intel+H100",
        sockets=2,
        cores_per_socket=48,
        remote_penalty=1.20,
    ),
    "GH200": HostSpec(
        name="GH200 superchip host (one 72c Grace per Hopper)",
        platform="GH200",
        sockets=1,
        cores_per_socket=72,
        # NVLink-C2C keeps remote-superchip traffic cheap relative to a
        # PCIe host's cross-socket hop.
        remote_penalty=1.12,
        per_gpu_domains=True,
    ),
    "MI300A": HostSpec(
        name="MI300A APU host (24 Zen4 cores per accelerator)",
        platform="MI300A",
        sockets=1,
        cores_per_socket=24,
        remote_penalty=1.10,
        per_gpu_domains=True,
    ),
}


def host_for(platform: Platform | str) -> HostSpec:
    """The cataloged host topology for ``platform``.

    Raises:
        ConfigurationError: if the platform has no cataloged host.
    """
    name = platform if isinstance(platform, str) else platform.name
    try:
        return HOST_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(HOST_SPECS))
        raise ConfigurationError(
            f"no host topology cataloged for platform {name!r}; "
            f"known: {known}") from None
