"""Every example script must run clean — they are part of the public API."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Minimum substrings expected in each example's stdout.
EXPECTED_OUTPUT = {
    "quickstart.py": ["TKLQT", "fusion"],
    "platform_advisor.py": ["transition stars", "Balanced"],
    "agentic_pipeline.py": ["planner", "Takeaway"],
    "rag_serving.py": ["retrieval", "user TTFT"],
    "fusion_advisor.py": ["speedup", "launches/iteration"],
    "trace_import.py": ["TKLQT drift"],
    "beyond_llm.py": ["dlrm", "gcn"],
    "optimization_playbook.py": ["Optimization ladder", "speculation"],
}


def test_every_example_is_covered():
    names = {p.name for p in EXAMPLES}
    assert names == set(EXPECTED_OUTPUT), (
        "add new examples to EXPECTED_OUTPUT so they stay tested")


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example, tmp_path):
    args = [sys.executable, str(example)]
    if example.name == "trace_import.py":
        args.append(str(tmp_path / "trace.json"))
    result = subprocess.run(args, capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, result.stderr[-2000:]
    for token in EXPECTED_OUTPUT[example.name]:
        assert token in result.stdout, (example.name, token)
