"""Batch-size sweeps — the backbone of Figs. 6, 10, and 11.

A sweep runs one model across batch sizes on one or more platforms, profiles
every run with SKIP, and exposes metric series (TTFT, TKLQT, GPU/CPU idle)
plus the TKLQT transition point per platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine.executor import DEFAULT_CONFIG, EngineConfig
from repro.engine.modes import ExecutionMode
from repro.engine.tp import TPConfig
from repro.errors import AnalysisError
from repro.hardware.platform import Platform
from repro.skip.classify import TransitionPoint, find_transition
from repro.skip.metrics import SkipMetrics
from repro.skip.profiler import SkipProfiler
from repro.workloads.config import ModelConfig
from repro.workloads.graph import Phase

#: The paper's evaluation batch ladder.
DEFAULT_BATCH_SIZES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class SweepPoint:
    """One (platform, batch size) cell of a sweep."""

    platform: str
    model: str
    batch_size: int
    metrics: SkipMetrics

    @property
    def ttft_ns(self) -> float:
        """Time-to-first-token = prefill inference latency (Eq. 4)."""
        return self.metrics.inference_latency_ns


@dataclass
class SweepResult:
    """All points of one model's sweep across platforms and batch sizes."""

    model: str
    batch_sizes: tuple[int, ...]
    points: list[SweepPoint] = field(default_factory=list)

    def platforms(self) -> list[str]:
        """Platform names present, in first-seen order."""
        seen: list[str] = []
        for point in self.points:
            if point.platform not in seen:
                seen.append(point.platform)
        return seen

    def point(self, platform: str, batch_size: int) -> SweepPoint:
        for candidate in self.points:
            if candidate.platform == platform and candidate.batch_size == batch_size:
                return candidate
        raise AnalysisError(f"no sweep point for {platform} BS={batch_size}")

    def series(self, platform: str,
               extract: Callable[[SkipMetrics], float]) -> list[float]:
        """A metric series over the swept batch sizes for one platform."""
        return [extract(self.point(platform, bs).metrics)
                for bs in self.batch_sizes]

    def ttft_series(self, platform: str) -> list[float]:
        return self.series(platform, lambda m: m.inference_latency_ns)

    def tklqt_series(self, platform: str) -> list[float]:
        return self.series(platform, lambda m: m.tklqt_ns)

    def gpu_idle_series(self, platform: str) -> list[float]:
        return self.series(platform, lambda m: m.gpu_idle_ns)

    def cpu_idle_series(self, platform: str) -> list[float]:
        return self.series(platform, lambda m: m.cpu_idle_ns)

    def transition(self, platform: str) -> TransitionPoint:
        """The Fig. 6 star for one platform."""
        return find_transition(list(self.batch_sizes),
                               self.tklqt_series(platform))


def _sweep_point(payload: tuple) -> SweepPoint:
    """Compute one sweep cell. Top-level so process pools can pickle it."""
    model, platform, batch_size, seq_len, mode, phase, engine_config, tp = payload
    profiler = SkipProfiler(platform, engine_config)
    metrics = profiler.profile_metrics(model, batch_size=batch_size,
                                       seq_len=seq_len, mode=mode,
                                       phase=phase, tp=tp)
    return SweepPoint(platform=platform.name, model=model.name,
                      batch_size=batch_size, metrics=metrics)


def run_batch_sweep(
    model: ModelConfig,
    platforms: Sequence[Platform],
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    seq_len: int = 512,
    mode: ExecutionMode = ExecutionMode.EAGER,
    phase: Phase = Phase.PREFILL,
    engine_config: EngineConfig = DEFAULT_CONFIG,
    tp: TPConfig | None = None,
    jobs: int = 1,
) -> SweepResult:
    """Profile ``model`` across ``batch_sizes`` on every platform.

    ``jobs > 1`` fans the (platform, batch) grid out over a process pool.
    Results merge in platform-major, batch-minor order — the serial order —
    regardless of worker completion order, and each point's simulation is
    seed-free and self-contained, so the merged result is identical to a
    serial run (the parity suite asserts this).
    """
    if not platforms:
        raise AnalysisError("at least one platform is required")
    if not batch_sizes:
        raise AnalysisError("at least one batch size is required")
    if jobs < 1:
        raise AnalysisError("jobs must be at least 1")
    payloads = [
        (model, platform, batch_size, seq_len, mode, phase, engine_config, tp)
        for platform in platforms
        for batch_size in batch_sizes
    ]
    result = SweepResult(model=model.name, batch_sizes=tuple(batch_sizes))
    if jobs == 1:
        result.points.extend(_sweep_point(p) for p in payloads)
    else:
        from concurrent.futures import ProcessPoolExecutor

        # Executor.map preserves input order, which IS the serial order.
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            result.points.extend(pool.map(_sweep_point, payloads))
    return result
