"""Property-based tests for the arrival generators and traffic tagging.

The laws that must hold for *any* spec, not just the canonical ones:

* a spec is a complete description of its stream (seed determinism);
* times are strictly inside the window and non-decreasing;
* every family is time-average-rate preserving (Poisson trivially,
  BURSTY by base-rate normalization, DIURNAL by thinning over whole
  periods);
* tagging never moves an arrival or resamples a length.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    ArrivalFamily,
    ArrivalSpec,
    PrefixSpec,
    TrafficConfig,
    arrival_times_ns,
    generate_traffic,
)

families = st.sampled_from([ArrivalFamily.POISSON, ArrivalFamily.BURSTY,
                            ArrivalFamily.DIURNAL])


@st.composite
def specs(draw):
    return ArrivalSpec(
        family=draw(families),
        rate_per_s=draw(st.floats(10.0, 2000.0)),
        duration_s=draw(st.floats(0.01, 0.5)),
        seed=draw(st.integers(0, 2**16)),
        burst_multiplier=draw(st.floats(1.5, 16.0)),
        burst_fraction=draw(st.floats(0.05, 0.95)),
        burst_dwell_s=draw(st.floats(0.005, 0.1)),
        amplitude=draw(st.floats(0.0, 0.99)),
        period_s=draw(st.one_of(st.none(), st.floats(0.01, 0.5))),
    )


@given(spec=specs())
@settings(max_examples=60, deadline=None)
def test_a_spec_fully_determines_its_stream(spec):
    assert arrival_times_ns(spec) == arrival_times_ns(spec)


@given(spec=specs())
@settings(max_examples=60, deadline=None)
def test_times_are_sorted_and_inside_the_window(spec):
    times = arrival_times_ns(spec)
    assert times == sorted(times)
    assert all(0.0 < t < spec.duration_s * 1e9 for t in times)


@given(rate=st.floats(200.0, 1500.0), seeds=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_poisson_interarrival_mean_tracks_the_rate(rate, seeds):
    # Pool interarrivals over a batch of seeds so the sample mean is
    # tight enough for a 20% tolerance at any drawn rate.
    gaps = []
    for seed in range(seeds, seeds + 8):
        times = arrival_times_ns(ArrivalSpec(
            family=ArrivalFamily.POISSON, rate_per_s=rate, duration_s=1.0,
            seed=seed))
        gaps.extend(b - a for a, b in zip(times, times[1:]))
    mean_gap_s = (sum(gaps) / len(gaps)) / 1e9
    assert abs(mean_gap_s - 1.0 / rate) * rate < 0.2


@given(mult=st.floats(2.0, 12.0), frac=st.floats(0.1, 0.9),
       base_seed=st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_bursty_time_average_rate_is_preserved(mult, frac, base_seed):
    rate = 600.0
    counts = [len(arrival_times_ns(ArrivalSpec(
        family=ArrivalFamily.BURSTY, rate_per_s=rate, duration_s=1.0,
        seed=base_seed + i, burst_multiplier=mult, burst_fraction=frac)))
        for i in range(10)]
    mean = sum(counts) / len(counts)
    assert abs(mean - rate) / rate < 0.25


@given(amplitude=st.floats(0.0, 0.95), periods=st.integers(1, 8),
       base_seed=st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_diurnal_conserves_rate_over_whole_periods(amplitude, periods,
                                                   base_seed):
    rate, duration = 500.0, 1.0
    counts = [len(arrival_times_ns(ArrivalSpec(
        family=ArrivalFamily.DIURNAL, rate_per_s=rate, duration_s=duration,
        period_s=duration / periods, amplitude=amplitude,
        seed=base_seed + i))) for i in range(10)]
    mean = sum(counts) / len(counts)
    assert abs(mean - rate * duration) / (rate * duration) < 0.25


@given(share=st.floats(0.0, 1.0), sessions=st.integers(0, 12),
       tenants=st.integers(1, 5), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_tagging_is_independent_of_arrivals_and_lengths(share, sessions,
                                                        tenants, seed):
    arrivals = ArrivalSpec(family=ArrivalFamily.BURSTY, rate_per_s=500.0,
                           duration_s=0.05, seed=seed)
    plain = generate_traffic(TrafficConfig(
        arrivals=arrivals, prompt_jitter=48, output_jitter=12))
    tagged = generate_traffic(TrafficConfig(
        arrivals=arrivals, prompt_jitter=48, output_jitter=12,
        prefix=PrefixSpec(share=share, prefix_len=64),
        sessions=sessions, tenants=tenants))
    assert [r.arrival_ns for r in plain] == [r.arrival_ns for r in tagged]
    assert [r.output_tokens for r in plain] == [r.output_tokens
                                                for r in tagged]
    for p, t in zip(plain, tagged):
        assert t.prompt_len - t.prefix_len == p.prompt_len
        if t.prefix_hash is None:
            assert t.prefix_len == 0
        else:
            assert t.prefix_len == 64
