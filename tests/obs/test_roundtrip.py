"""Chrome-trace round trip: exporter and importer must agree.

Simulator-emitted traces carry exact-nanosecond ``ts_ns``/``dur_ns`` sidecar
args next to the Chrome-unit microsecond fields, so a dump/load round trip
rebuilds bit-identical timestamps and SKIP metrics are exactly preserved.
"""

import pytest

from repro.obs import recording_to_trace
from repro.skip import classify_metrics, compute_metrics
from repro.trace import chrome
from repro.workloads import GPT2

_COMPARED = ("tklqt_ns", "akd_ns", "inference_latency_ns", "gpu_idle_ns",
             "cpu_idle_ns", "cpu_busy_ns", "gpu_busy_ns", "queuing_ns")


@pytest.fixture(scope="module")
def exported(recorded_run):
    recorder, latency, _, _ = recorded_run
    return recording_to_trace(recorder, latency, GPT2)


def test_round_trip_yields_identical_skip_metrics(exported):
    rebuilt = chrome.loads(chrome.dumps(exported))
    original = compute_metrics(exported)
    recovered = compute_metrics(rebuilt)
    assert recovered.kernel_launches == original.kernel_launches
    for attr in _COMPARED:
        assert getattr(recovered, attr) == getattr(original, attr), attr
    assert classify_metrics(recovered) is classify_metrics(original)


def test_round_trip_preserves_structure(exported):
    rebuilt = chrome.loads(chrome.dumps(exported))
    assert len(rebuilt.kernels) == len(exported.kernels)
    assert len(rebuilt.operators) == len(exported.operators)
    assert len(rebuilt.runtime_calls) == len(exported.runtime_calls)
    assert len(rebuilt.iterations) == len(exported.iterations)
    assert rebuilt.metadata == exported.metadata


def test_round_trip_preserves_work_terms(exported):
    rebuilt = chrome.loads(chrome.dumps(exported))
    total_flops = sum(k.flops for k in exported.kernels)
    assert total_flops > 0
    assert sum(k.flops for k in rebuilt.kernels) == pytest.approx(total_flops)
    assert sum(k.bytes_moved for k in rebuilt.kernels) == pytest.approx(
        sum(k.bytes_moved for k in exported.kernels))


def test_file_round_trip(exported, tmp_path):
    path = tmp_path / "run.json"
    chrome.dump(exported, path)
    rebuilt = chrome.load(path)
    assert (compute_metrics(rebuilt).tklqt_ns
            == compute_metrics(exported).tklqt_ns)
