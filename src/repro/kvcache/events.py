"""KV-cache event log: the audit trail the K-rules verify.

Every pool mutation (and every decode step's resident set) is logged as a
:class:`KvCacheEvent`. The log rides along in exported trace metadata, so
``repro check trace`` can re-verify pool accounting — no leaked blocks, no
over-commit, no decode of a swapped-out sequence — on a trace file alone,
long after the run that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError

#: Event kinds, in the vocabulary the K-rules speak.
KV_EVENT_KINDS = frozenset({
    "alloc",      # first allocation for a sequence (admission prefill)
    "grow",       # decode-step block growth for a resident sequence
    "free",       # sequence completed; all its blocks returned
    "preempt",    # recompute policy evicted the sequence (blocks freed)
    "swap_out",   # offload policy moved the sequence's blocks to the host
    "swap_in",    # offloaded blocks returned to the device
    "decode",     # the sequence took part in a decode step (no pool change)
    # Shared-prefix (copy-on-write) cache events. For these four kinds the
    # ``seq`` field carries the *prefix key* (the group identity the
    # refcount rules replay), not a request id.
    "prefix_alloc",   # cold miss: shared group inserted, refcount 1
    "prefix_ref",     # hit: one more holder (no pool change)
    "prefix_deref",   # holder released its reference (no pool change)
    "prefix_free",    # idle group evicted/flushed; its blocks returned
})


@dataclass(frozen=True)
class KvCacheEvent:
    """One KV-pool event on one replica.

    Attributes:
        ts_ns: Serving-clock time of the event.
        kind: One of :data:`KV_EVENT_KINDS`.
        seq: Sequence (request) id the event concerns.
        blocks: Blocks the event moved (0 for ``decode``).
        allocated: Device-resident blocks on the replica *after* the event —
            the running counter rule K002 checks against capacity.
        replica: Replica whose pool the event touched.
        refs: Shared-group refcount *after* the event (``prefix_*`` kinds
            only; 0 otherwise) — the counter rule R003 replays.
    """

    ts_ns: float
    kind: str
    seq: int
    blocks: int
    allocated: int
    replica: int = 0
    refs: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KV_EVENT_KINDS:
            raise AnalysisError(f"unknown kv event kind: {self.kind!r}")
        if self.blocks < 0:
            raise AnalysisError(f"kv event has negative blocks: {self.blocks}")
        if self.allocated < 0:
            raise AnalysisError(
                f"kv event has negative allocated count: {self.allocated}")
        if self.refs < 0:
            raise AnalysisError(
                f"kv event has negative refcount: {self.refs}")

    def to_dict(self) -> dict:
        return {"ts_ns": self.ts_ns, "kind": self.kind, "seq": self.seq,
                "blocks": self.blocks, "allocated": self.allocated,
                "replica": self.replica, "refs": self.refs}

    @classmethod
    def from_dict(cls, payload: dict) -> KvCacheEvent:
        try:
            return cls(ts_ns=float(payload["ts_ns"]),
                       kind=str(payload["kind"]),
                       seq=int(payload["seq"]),
                       blocks=int(payload["blocks"]),
                       allocated=int(payload["allocated"]),
                       replica=int(payload.get("replica", 0)),
                       refs=int(payload.get("refs", 0)))
        except (KeyError, TypeError, ValueError) as exc:
            raise AnalysisError(f"malformed kv event: {payload!r}") from exc
