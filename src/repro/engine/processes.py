"""Execution modes as processes on the simulation core.

The engine's launch-per-kernel and CUDA-graph modes are written as
generator processes scheduled by :class:`repro.sim.SimCore`. Three process
shapes exist:

* **Single dispatch thread** (launch mode): one CPU process walks the op
  stream and issues one ``cudaLaunchKernel`` per device per kernel — the
  PyTorch-default topology, where launch overhead compounds with the TP
  degree. At TP=1 this process performs exactly the floating-point
  operations of the legacy single-device executor, in the same order, so
  its traces are bit-identical to the legacy ones.
* **Per-device dispatch threads** (launch mode): one CPU process per device
  (trace ``tid`` = 1 + device), each launching only to its own device.
  Processes meet at collectives and at an end-of-iteration barrier via the
  core's rendezvous.
* **Graph replay** (one process): replays the captured kernel chain on every
  device; per-device arrival chaining, collectives joined across devices.

Collective kernels (``KernelTask.is_collective``) price their duration with
the link's ring all-reduce model and start simultaneously on every device at
the earliest instant all streams can take them.
"""

from __future__ import annotations

from typing import Hashable

from repro.engine.lowering import KernelTask, LoweredOp
from repro.engine.modes import ExecutionMode
from repro.hardware.platform import Platform
from repro.obs.recorder import RunRecorder
from repro.sim.core import Process, SimCore
from repro.sim.resources import StreamResource
from repro.trace.builder import TraceBuilder
from repro.trace.events import DEVICE_SYNCHRONIZE, GRAPH_LAUNCH
from repro.workloads.ops import OpKind

_CHILD_OP_NAMES = {
    OpKind.LINEAR: "aten::addmm",
    OpKind.MATMUL: "aten::bmm",
}


def kernel_duration(platform: Platform, kernel: KernelTask,
                    floor_scale: float = 1.0) -> float:
    """Duration of one (non-collective) kernel task on a platform.

    Proximity-fused kernels (``members`` set) execute as the sum of their
    members' durations — the paper's assumption that fusion changes launch
    counts, not kernel work.
    """
    if kernel.members:
        return sum(kernel_duration(platform, member, floor_scale)
                   for member in kernel.members)
    return (platform.kernel_duration_ns(kernel.flops, kernel.bytes_moved,
                                        floor_scale=floor_scale)
            * kernel.duration_scale)


def _end_iteration_sync(builder: TraceBuilder, streams: list[StreamResource],
                        cpu: float, config, measured: bool = True,
                        tid: int | None = None) -> float:
    """Emit the end-of-iteration synchronize and advance the CPU clock.

    Waits for every stream the dispatching thread feeds. Warm-up iterations
    (``measured=False``) synchronize like real ones but leave no iteration
    mark, so analyses skip them.
    """
    free = max(stream.free_at for stream in streams)
    wait = max(0.0, free - cpu)
    builder.runtime_call(DEVICE_SYNCHRONIZE, cpu, config.sync_call_ns + wait,
                         tid=tid)
    cpu += config.sync_call_ns + wait
    if measured:
        builder.end_iteration(cpu)
    return cpu + config.inter_iteration_gap_ns


# ---------------------------------------------------------------------------
# Launch-per-kernel execution, single dispatch thread
# ---------------------------------------------------------------------------

def single_thread_launch_process(
    core: SimCore,
    builder: TraceBuilder,
    lowered: list[LoweredOp],
    platform: Platform,
    mode: ExecutionMode,
    config,
    recorder: RunRecorder | None = None,
) -> Process:
    """One CPU thread dispatches ops and launches to every device in turn."""
    streams = core.streams()
    world = len(streams)
    thread = core.cpu_threads[0]
    cpu = 0.0
    launched = 0
    total = config.warmup_iterations + config.iterations
    for iteration in range(total):
        measured = iteration >= config.warmup_iterations
        if measured:
            builder.begin_iteration(cpu)
        for lowered_op in lowered:
            op = lowered_op.op
            if mode.fuses_elementwise:
                dispatch = config.compiled_guard_ns / platform.cpu.dispatch_score
            else:
                dispatch = platform.dispatch_ns(op.dispatch_cost_ns)
            epilogue = dispatch * config.dispatch_epilogue_fraction
            pre = dispatch - epilogue

            parent = builder.begin_operator(op.aten_name, cpu)
            child = None
            child_name = _CHILD_OP_NAMES.get(op.kind)
            if child_name and lowered_op.kernels and not mode.fuses_elementwise:
                cpu += pre * (1.0 - config.child_dispatch_fraction)
                child = builder.begin_operator(child_name, cpu)
                cpu += pre * config.child_dispatch_fraction
            else:
                cpu += pre
            thread.occupy(dispatch)

            for kernel in lowered_op.kernels:
                # Bounded launch queue: the CPU cannot run more than
                # `launch_queue_depth` launches ahead of kernel starts.
                backlog_index = launched - config.launch_queue_depth
                if backlog_index >= 0:
                    cpu = max(cpu, streams[0].nth_start(backlog_index))
                if kernel.is_collective and world > 1:
                    duration = core.link.allreduce_ns(kernel.comm_bytes, world)
                    calls = []
                    for _ in streams:
                        calls.append(cpu)
                        cpu += platform.launch_call_cpu_ns
                        thread.occupy(platform.launch_call_cpu_ns)
                    start_at = max(
                        stream.earliest_start(
                            calls[di] + platform.launch_latency_ns,
                            config.stream_kernel_gap_ns)
                        for di, stream in enumerate(streams))
                    for di, stream in enumerate(streams):
                        start, _end = stream.submit(
                            start_at, duration,
                            gap_ns=config.stream_kernel_gap_ns)
                        builder.launch_kernel(
                            calls[di], platform.launch_call_cpu_ns,
                            kernel.name, start, duration,
                            stream=stream.stream_id, device=stream.device,
                            flops=kernel.flops, bytes_moved=kernel.bytes_moved)
                        if recorder is not None:
                            recorder.observe_launch_delay(start - calls[di])
                            recorder.observe_launch_queue(
                                stream.pending_at(calls[di]))
                    core.link.record(duration)
                else:
                    duration = kernel_duration(platform, kernel)
                    for stream in streams:
                        call_ts = cpu
                        arrival = call_ts + platform.launch_latency_ns
                        start, _end = stream.submit(
                            arrival, duration,
                            gap_ns=config.stream_kernel_gap_ns)
                        builder.launch_kernel(
                            call_ts, platform.launch_call_cpu_ns,
                            kernel.name, start, duration,
                            stream=stream.stream_id, device=stream.device,
                            flops=kernel.flops, bytes_moved=kernel.bytes_moved)
                        if recorder is not None:
                            recorder.observe_launch_delay(start - call_ts)
                            recorder.observe_launch_queue(
                                stream.pending_at(call_ts))
                        cpu += platform.launch_call_cpu_ns
                        thread.occupy(platform.launch_call_cpu_ns)
                launched += 1

            if child is not None:
                builder.end_operator(child, cpu)
            cpu += epilogue
            builder.end_operator(parent, cpu)

        cpu = _end_iteration_sync(builder, streams, cpu, config,
                                  measured=measured)
        cpu = yield ("at", cpu)


# ---------------------------------------------------------------------------
# Launch-per-kernel execution, one dispatch thread per device
# ---------------------------------------------------------------------------

def per_device_launch_processes(
    core: SimCore,
    builder: TraceBuilder,
    lowered: list[LoweredOp],
    platform: Platform,
    mode: ExecutionMode,
    config,
    recorder: RunRecorder | None = None,
    tenant: Hashable = None,
) -> list[Process]:
    """One dispatch process per device; rendezvous at collectives/barriers.

    ``tenant`` namespaces the rendezvous keys, so two independent engine
    process groups (two models, two replicas) can share one
    :class:`~repro.sim.core.SimCore` without their collectives colliding.
    The default (``None``) keeps the historical keys, so single-tenant runs
    are bit-identical to before the parameter existed.
    """
    world = len(core.devices)
    return [
        _device_dispatch_process(
            core, builder, lowered, platform, mode, config,
            recorder if device_index == 0 else None, device_index, world,
            tenant=tenant)
        for device_index in range(world)
    ]


def _device_dispatch_process(
    core: SimCore,
    builder: TraceBuilder,
    lowered: list[LoweredOp],
    platform: Platform,
    mode: ExecutionMode,
    config,
    recorder: RunRecorder | None,
    device_index: int,
    world: int,
    tenant: Hashable = None,
) -> Process:
    def rendezvous_key(*key: Hashable) -> tuple[Hashable, ...]:
        return key if tenant is None else (tenant, *key)

    stream = core.devices[device_index].compute_stream
    thread = core.cpu_threads[device_index]
    tid = thread.tid
    leader = device_index == 0
    cpu = 0.0
    launched = 0
    total = config.warmup_iterations + config.iterations
    for iteration in range(total):
        measured = iteration >= config.warmup_iterations
        if measured and leader:
            builder.begin_iteration(cpu)
        for op_index, lowered_op in enumerate(lowered):
            op = lowered_op.op
            if mode.fuses_elementwise:
                dispatch = config.compiled_guard_ns / platform.cpu.dispatch_score
            else:
                dispatch = platform.dispatch_ns(op.dispatch_cost_ns)
            epilogue = dispatch * config.dispatch_epilogue_fraction
            pre = dispatch - epilogue

            parent = builder.begin_operator(op.aten_name, cpu, tid=tid)
            child = None
            child_name = _CHILD_OP_NAMES.get(op.kind)
            if child_name and lowered_op.kernels and not mode.fuses_elementwise:
                cpu += pre * (1.0 - config.child_dispatch_fraction)
                child = builder.begin_operator(child_name, cpu, tid=tid)
                cpu += pre * config.child_dispatch_fraction
            else:
                cpu += pre
            thread.occupy(dispatch)

            for kernel_index, kernel in enumerate(lowered_op.kernels):
                backlog_index = launched - config.launch_queue_depth
                if backlog_index >= 0:
                    cpu = max(cpu, stream.nth_start(backlog_index))
                call_ts = cpu
                arrival = call_ts + platform.launch_latency_ns
                if kernel.is_collective and world > 1:
                    duration = core.link.allreduce_ns(kernel.comm_bytes, world)
                    ready = stream.earliest_start(
                        arrival, config.stream_kernel_gap_ns)
                    rdv = core.rendezvous(
                        rendezvous_key("allreduce", iteration, op_index,
                                       kernel_index), world)
                    start_at = yield ("join", rdv, ready)
                    start, _end = stream.submit(
                        start_at, duration, gap_ns=config.stream_kernel_gap_ns)
                    if leader:
                        core.link.record(duration)
                else:
                    duration = kernel_duration(platform, kernel)
                    start, _end = stream.submit(
                        arrival, duration, gap_ns=config.stream_kernel_gap_ns)
                builder.launch_kernel(
                    call_ts, platform.launch_call_cpu_ns, kernel.name,
                    start, duration, stream=stream.stream_id,
                    device=stream.device, tid=tid,
                    flops=kernel.flops, bytes_moved=kernel.bytes_moved)
                if recorder is not None:
                    recorder.observe_launch_delay(start - call_ts)
                    recorder.observe_launch_queue(stream.pending_at(call_ts))
                cpu += platform.launch_call_cpu_ns
                thread.occupy(platform.launch_call_cpu_ns)
                launched += 1

            if child is not None:
                builder.end_operator(child, cpu)
            cpu += epilogue
            builder.end_operator(parent, cpu)

        # Per-device synchronize, then an iteration barrier so all threads
        # enter the next iteration together (mirroring a framework-level
        # step boundary).
        wait = max(0.0, stream.free_at - cpu)
        builder.runtime_call(DEVICE_SYNCHRONIZE, cpu,
                             config.sync_call_ns + wait, tid=tid)
        cpu += config.sync_call_ns + wait
        barrier = core.rendezvous(rendezvous_key("iteration-end", iteration),
                                  world)
        cpu = yield ("join", barrier, cpu)
        if measured and leader:
            builder.end_iteration(cpu)
        cpu += config.inter_iteration_gap_ns


# ---------------------------------------------------------------------------
# CUDA-graph execution (reduce-overhead / max-autotune)
# ---------------------------------------------------------------------------

def graph_replay_process(
    core: SimCore,
    builder: TraceBuilder,
    lowered: list[LoweredOp],
    platform: Platform,
    config,
) -> Process:
    """Replay the captured kernel chain on every device."""
    streams = core.streams()
    world = len(streams)
    thread = core.cpu_threads[0]
    cpu = 0.0
    kernels = [k for lo in lowered for k in lo.kernels]
    total = config.warmup_iterations + config.iterations
    for iteration in range(total):
        measured = iteration >= config.warmup_iterations
        if measured:
            builder.begin_iteration(cpu)
        parent = builder.begin_operator("cuda_graph::replay", cpu)
        cpu += platform.dispatch_ns(config.graph_replay_dispatch_ns)
        thread.occupy(platform.dispatch_ns(config.graph_replay_dispatch_ns))
        arrivals = []
        for _ in streams:
            call_ts = cpu
            builder.runtime_call(GRAPH_LAUNCH, call_ts,
                                 platform.launch_call_cpu_ns)
            cpu += platform.launch_call_cpu_ns
            thread.occupy(platform.launch_call_cpu_ns)
            arrivals.append(call_ts + platform.launch_latency_ns)
        for kernel in kernels:
            if kernel.is_collective and world > 1:
                duration = core.link.allreduce_ns(kernel.comm_bytes, world)
                start_at = max(
                    stream.earliest_start(arrivals[di])
                    for di, stream in enumerate(streams))
                for di, stream in enumerate(streams):
                    start, end = stream.submit(start_at, duration)
                    builder.enqueue_graph_kernel(
                        kernel.name, start, duration,
                        stream=stream.stream_id, device=stream.device,
                        flops=kernel.flops, bytes_moved=kernel.bytes_moved)
                    arrivals[di] = end + config.graph_replay_kernel_gap_ns
                core.link.record(duration)
            else:
                duration = kernel_duration(
                    platform, kernel,
                    floor_scale=config.graph_kernel_floor_scale)
                for di, stream in enumerate(streams):
                    start, end = stream.submit(arrivals[di], duration)
                    builder.enqueue_graph_kernel(
                        kernel.name, start, duration,
                        stream=stream.stream_id, device=stream.device,
                        flops=kernel.flops, bytes_moved=kernel.bytes_moved)
                    arrivals[di] = end + config.graph_replay_kernel_gap_ns
        builder.end_operator(parent, cpu)
        cpu = _end_iteration_sync(builder, streams, cpu, config,
                                  measured=measured)
        cpu = yield ("at", cpu)
