"""Simulator performance harness: events/sec and wall-time per token.

Runs three canonical scenarios spanning the simulator's main workloads:

* ``single_run`` — one SKIP profile (eager llama-3.2-1b, BS=8, 3 iters);
* ``tp_sweep`` — a tensor-parallel sweep over degrees 1/2/4/8 with
  per-device dispatch threads (the heaviest engine shape);
* ``serve_kv_offload`` — a 4-replica continuous-batching serve under KV
  pressure with offload swaps, recorder attached;
* ``serve_chunked`` — chunked-prefill continuous batching over the mixed
  long-prompt stream (the stall-free-scheduling workload: budget-sized
  prompt chunks interleave with decodes, ~3x the engine steps of the
  whole-prompt run);
* ``serve_cluster`` — the routed cluster stack end to end: a bursty
  generated stream through the least-loaded router onto 4 replicas with
  copy-on-write prefix caching (router process + per-replica queues on
  top of the continuous-batching engine);
* ``serve_host_contention`` — the cluster stack on a finite host: 4
  replicas plus the router contending for a 4-core AMD+A100 pool, every
  engine step booking its dispatch-CPU share through ``repro.host``.

Each scenario reports:

* **wall_s** — best-of-N wall time;
* **ns_per_token** — wall nanoseconds per simulated token;
* **sim_events** — :data:`repro.sim.core.EVENTS_TOTAL` delta (scheduler
  events processed — an implementation-independent work measure);
* **events_per_sec** — sim_events / wall_s.

``BEFORE_BASELINES`` holds the wall times of the same scenario definitions
measured on the tree *before* the fast paths (lowering cache, tape metrics,
slimmed event loop, sampled recording) landed. Scenario event counts are
optimization-invariant — the fast paths change per-event cost, never which
events the processes schedule — so the before events/sec is derived as
``after_event_count / before_wall``.

Usage::

    python -m repro.perf.harness            # full run, BENCH_simperf.json
    python -m repro.perf.harness --quick    # CI smoke: small shapes, no
                                            # before/after comparison
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass

#: Wall seconds per scenario measured pre-optimization (same definitions,
#: best of 3) — the denominator of this PR's speedup column.
BEFORE_BASELINES: dict[str, float] = {
    "single_run": 0.0224,
    "tp_sweep": 0.305,
    "serve_kv_offload": 0.5896,
    # serve_chunked and serve_cluster postdate the fast-path PR, so their
    # befores were measured on this tree with the same paths forced off
    # (lowering cache disabled, full unsampled recording), best of 3.
    "serve_chunked": 0.4305,
    "serve_cluster": 0.3197,
    # serve_host_contention postdates everything above; its before is the
    # scenario's wall on the tree that introduced repro.host, best of 3
    # (the column tracks regressions from here on, not a speedup story).
    "serve_host_contention": 0.0358,
}

#: Canonical scenario names, in run order. docs/performance.md documents
#: each by name (a docs-lock test holds the two lists together).
SCENARIO_NAMES: tuple[str, ...] = (
    "single_run", "tp_sweep", "serve_kv_offload", "serve_chunked",
    "serve_cluster", "serve_host_contention")


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's measurement."""

    name: str
    wall_s: float
    simulated_tokens: int
    sim_events: int

    @property
    def ns_per_token(self) -> float:
        return self.wall_s * 1e9 / self.simulated_tokens

    @property
    def events_per_sec(self) -> float:
        return self.sim_events / self.wall_s


def _scenario_single_run(quick: bool) -> int:
    from repro.engine import EngineConfig, ExecutionMode
    from repro.hardware import get_platform
    from repro.skip import SkipProfiler
    from repro.workloads import get_model

    iterations = 1 if quick else 3
    batch = 4 if quick else 8
    seq = 256 if quick else 512
    profiler = SkipProfiler(get_platform("Intel+H100"),
                            EngineConfig(iterations=iterations))
    result = profiler.profile(get_model("llama-3.2-1b"), batch_size=batch,
                              seq_len=seq, mode=ExecutionMode.EAGER)
    assert result.metrics.tklqt_ns > 0
    return batch * seq * iterations


def _scenario_tp_sweep(quick: bool) -> int:
    from repro.analysis.tpsweep import run_tp_sweep
    from repro.engine import DispatchMode, EngineConfig
    from repro.hardware import get_platform
    from repro.workloads import get_model

    degrees = (1, 2) if quick else (1, 2, 4, 8)
    iterations = 1 if quick else 2
    seq = 256 if quick else 512
    sweep = run_tp_sweep(get_model("llama-3.2-1b"),
                         get_platform("Intel+H100"), batch_size=8,
                         degrees=degrees, seq_len=seq,
                         dispatch=DispatchMode.THREAD_PER_DEVICE,
                         engine_config=EngineConfig(iterations=iterations))
    assert sweep.best_degree() >= 1
    return 8 * seq * iterations * len(sweep.points)


def _scenario_serve_kv_offload(quick: bool) -> int:
    from repro.engine import ExecutionMode
    from repro.hardware import get_platform
    from repro.kvcache import KvCacheConfig, KvPolicy
    from repro.obs import RunRecorder
    from repro.serving import (
        ContinuousBatchPolicy,
        LatencyModel,
        poisson_requests,
        simulate_serving,
    )
    from repro.workloads import get_model

    rate = 40.0 if quick else 200.0
    duration = 0.3 if quick else 1.0
    output_tokens = 128
    requests = poisson_requests(rate_per_s=rate, duration_s=duration,
                                prompt_len=512, output_tokens=output_tokens,
                                seed=11)
    latency = LatencyModel(platform=get_platform("GH200"),
                           mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD)
    # Sampled recording is one of the measured fast paths: 1-in-8 requests
    # keep full spans while every aggregate stays exact (parity-locked by
    # the sampling property tests). The before baseline recorded everything.
    recorder = RunRecorder(sample_every=8)
    run = simulate_serving(requests, get_model("gpt2"), latency,
                           policy=ContinuousBatchPolicy(max_active=8),
                           replicas=4, recorder=recorder,
                           kv=KvCacheConfig(policy=KvPolicy.OFFLOAD,
                                            pool_gib=0.04))
    assert sum(s.swap_out_events for s in run.kv) > 0, "scenario must swap"
    assert recorder.aggregates.requests_completed == len(requests)
    return sum(o.request.output_tokens for o in run.outcomes)


def _scenario_serve_chunked(quick: bool) -> int:
    from repro.analysis.pareto import mixed_prompt_requests
    from repro.obs import RunRecorder
    from repro.serving import (
        ContinuousBatchPolicy,
        LatencyModel,
        simulate_serving,
    )
    from repro.hardware import get_platform
    from repro.workloads import get_model

    duration = 0.15 if quick else 0.4
    requests = mixed_prompt_requests(seed=3, duration_s=duration)
    recorder = RunRecorder(sample_every=8)
    run = simulate_serving(
        requests, get_model("gpt2"),
        LatencyModel(platform=get_platform("GH200")),
        policy=ContinuousBatchPolicy(max_active=8, chunk_tokens=256),
        recorder=recorder)
    chunk_steps = recorder.counters.as_dict().get("steps_prefill_chunk", 0)
    assert chunk_steps > 0, "scenario must actually chunk prompts"
    assert recorder.aggregates.requests_completed == len(requests)
    return sum(o.request.output_tokens for o in run.outcomes)


def _scenario_serve_cluster(quick: bool, sample_every: int = 8) -> int:
    from repro.hardware import get_platform
    from repro.kvcache import KvCacheConfig, KvPolicy
    from repro.obs import RunRecorder
    from repro.serving import ContinuousBatchPolicy, LatencyModel
    from repro.serving.cluster import simulate_cluster
    from repro.traffic import (
        ArrivalFamily,
        ArrivalSpec,
        PrefixSpec,
        TrafficConfig,
        generate_traffic,
    )
    from repro.workloads import get_model

    rate = 400.0 if quick else 1200.0
    duration = 0.05 if quick else 0.15
    requests = generate_traffic(TrafficConfig(
        arrivals=ArrivalSpec(family=ArrivalFamily.BURSTY, rate_per_s=rate,
                             duration_s=duration, seed=7),
        prompt_len=256, prompt_jitter=64, output_tokens=24, output_jitter=8,
        prefix=PrefixSpec(share=0.5, prefix_len=128, pool=2), sessions=6))
    recorder = RunRecorder(sample_every=sample_every)
    run = simulate_cluster(
        requests, get_model("gpt2"),
        LatencyModel(platform=get_platform("GH200")),
        policy=ContinuousBatchPolicy(max_active=8),
        router="least-loaded", replicas=4, recorder=recorder,
        kv=KvCacheConfig(policy=KvPolicy.NONE, prefix_caching=True))
    assert run.router is not None and run.router.routed == len(requests)
    assert sum(s.prefix_hits for s in run.kv) > 0, "scenario must share"
    return sum(o.request.output_tokens for o in run.outcomes)


def _scenario_serve_host_contention(quick: bool) -> int:
    from repro.hardware import get_platform
    from repro.host import HostConfig, HostModel
    from repro.obs import RunRecorder
    from repro.serving import (
        ContinuousBatchPolicy,
        LatencyModel,
        poisson_requests,
    )
    from repro.serving.cluster import simulate_cluster
    from repro.workloads import get_model

    rate = 300.0 if quick else 900.0
    duration = 0.05 if quick else 0.15
    requests = poisson_requests(rate_per_s=rate, duration_s=duration,
                                prompt_len=128, output_tokens=16, seed=11)
    recorder = RunRecorder(sample_every=8)
    host = HostModel.for_platform("AMD+A100", replicas=4,
                                  config=HostConfig(cores=4))
    run = simulate_cluster(
        requests, get_model("gpt2"),
        LatencyModel(platform=get_platform("AMD+A100")),
        policy=ContinuousBatchPolicy(max_active=8),
        router="round-robin", replicas=4, recorder=recorder, host=host)
    assert run.host is not None and run.host.stall_ns > 0, \
        "scenario must contend for cores"
    return sum(o.request.output_tokens for o in run.outcomes)


_SCENARIOS = {
    "single_run": _scenario_single_run,
    "tp_sweep": _scenario_tp_sweep,
    "serve_kv_offload": _scenario_serve_kv_offload,
    "serve_chunked": _scenario_serve_chunked,
    "serve_cluster": _scenario_serve_cluster,
    "serve_host_contention": _scenario_serve_host_contention,
}


def _measure(name: str, quick: bool, repeats: int) -> ScenarioResult:
    import repro.sim.core as sim_core

    fn = _SCENARIOS[name]
    best_wall = None
    tokens = 0
    events = 0
    for _ in range(repeats):
        events_before = sim_core.EVENTS_TOTAL
        t0 = time.perf_counter()
        tokens = fn(quick)
        wall = time.perf_counter() - t0
        events = sim_core.EVENTS_TOTAL - events_before
        if best_wall is None or wall < best_wall:
            best_wall = wall
    assert best_wall is not None
    return ScenarioResult(name=name, wall_s=best_wall,
                          simulated_tokens=tokens, sim_events=events)


def run_harness(quick: bool = False, repeats: int | None = None) -> dict:
    """Run every scenario and return the BENCH_simperf payload."""
    if repeats is None:
        repeats = 1 if quick else 3
    scenarios: dict[str, dict] = {}
    for name in SCENARIO_NAMES:
        result = _measure(name, quick, repeats)
        entry: dict = {
            "simulated_tokens": result.simulated_tokens,
            "after": {
                "wall_s": round(result.wall_s, 4),
                "ns_per_token": round(result.ns_per_token, 1),
                "sim_events": result.sim_events,
                "events_per_sec": round(result.events_per_sec, 1),
            },
        }
        if not quick:
            before_wall = BEFORE_BASELINES[name]
            entry["before"] = {
                "wall_s": before_wall,
                "ns_per_token": round(
                    before_wall * 1e9 / result.simulated_tokens, 1),
                # Event counts are optimization-invariant (see module
                # docstring), so the before rate divides the same count
                # by the before wall time.
                "sim_events": result.sim_events,
                "events_per_sec": round(result.sim_events / before_wall, 1),
            }
            entry["speedup"] = round(before_wall / result.wall_s, 2)
        scenarios[name] = entry
    return {
        "schema": "repro.perf/v1",
        "quick": quick,
        "scenarios": scenarios,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.harness",
        description="measure simulator events/sec and wall-time per token")
    parser.add_argument("--quick", action="store_true",
                        help="small shapes, single repeat, no before/after "
                             "comparison (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="runs per scenario (best wall time wins); "
                             "default 3, or 1 with --quick")
    parser.add_argument("--output", default="BENCH_simperf.json",
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args(argv)

    payload = run_harness(quick=args.quick, repeats=args.repeats)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for name, entry in payload["scenarios"].items():
        after = entry["after"]
        line = (f"{name:<18} wall={after['wall_s']:.4f}s "
                f"events/s={after['events_per_sec']:,.0f} "
                f"ns/token={after['ns_per_token']:.0f}")
        if "speedup" in entry:
            line += f" speedup={entry['speedup']:.2f}x"
        print(line)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
