"""Arrival processes: determinism, ordering, rate laws, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.serving.requests import poisson_requests
from repro.traffic import ArrivalFamily, ArrivalSpec, arrival_times_ns

FAMILIES = [ArrivalFamily.POISSON, ArrivalFamily.BURSTY,
            ArrivalFamily.DIURNAL]


@pytest.mark.parametrize("family", FAMILIES)
def test_equal_specs_produce_equal_streams(family):
    spec = ArrivalSpec(family=family, rate_per_s=300.0, duration_s=0.5,
                       seed=11)
    assert arrival_times_ns(spec) == arrival_times_ns(spec)


@pytest.mark.parametrize("family", FAMILIES)
def test_seed_changes_the_stream(family):
    a = ArrivalSpec(family=family, rate_per_s=300.0, duration_s=0.5, seed=1)
    b = ArrivalSpec(family=family, rate_per_s=300.0, duration_s=0.5, seed=2)
    assert arrival_times_ns(a) != arrival_times_ns(b)


@pytest.mark.parametrize("family", FAMILIES)
def test_times_ordered_and_inside_the_window(family):
    spec = ArrivalSpec(family=family, rate_per_s=500.0, duration_s=0.25,
                       seed=5)
    times = arrival_times_ns(spec)
    assert times == sorted(times)
    assert all(0.0 < t < spec.duration_s * 1e9 for t in times)


def test_poisson_matches_legacy_request_generator():
    # Same sampling loop, same seed -> the exact arrival instants
    # poisson_requests hands the serving stack.
    spec = ArrivalSpec(family=ArrivalFamily.POISSON, rate_per_s=200.0,
                       duration_s=0.5, seed=3)
    legacy = poisson_requests(rate_per_s=200.0, duration_s=0.5,
                              prompt_len=64, output_tokens=8, seed=3)
    assert arrival_times_ns(spec) == [r.arrival_ns for r in legacy]


def test_bursty_preserves_the_mean_rate():
    # Average over seeds: the MMPP's long-run rate is rate_per_s.
    expected = 400.0 * 1.0
    counts = [len(arrival_times_ns(ArrivalSpec(
        family=ArrivalFamily.BURSTY, rate_per_s=400.0, duration_s=1.0,
        seed=seed))) for seed in range(20)]
    mean = sum(counts) / len(counts)
    assert abs(mean - expected) / expected < 0.15


def test_bursty_is_burstier_than_poisson():
    # Coefficient of variation of interarrivals: MMPP > exponential.
    def cv(family):
        times = arrival_times_ns(ArrivalSpec(
            family=family, rate_per_s=500.0, duration_s=2.0, seed=9,
            burst_multiplier=8.0, burst_fraction=0.2))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        return var ** 0.5 / mean

    assert cv(ArrivalFamily.BURSTY) > cv(ArrivalFamily.POISSON)


def test_diurnal_conserves_rate_over_whole_periods():
    # Thinning against the peak keeps E[count] = rate * duration over
    # complete periods.
    expected = 300.0 * 1.0
    counts = [len(arrival_times_ns(ArrivalSpec(
        family=ArrivalFamily.DIURNAL, rate_per_s=300.0, duration_s=1.0,
        period_s=0.25, amplitude=0.9, seed=seed))) for seed in range(20)]
    mean = sum(counts) / len(counts)
    assert abs(mean - expected) / expected < 0.15


def test_fixed_has_no_process_to_sample():
    spec = ArrivalSpec(family=ArrivalFamily.FIXED)
    with pytest.raises(ConfigurationError, match="explicit request list"):
        arrival_times_ns(spec)


@pytest.mark.parametrize("kwargs", [
    dict(rate_per_s=0.0),
    dict(rate_per_s=-3.0),
    dict(duration_s=0.0),
    dict(burst_multiplier=1.0),
    dict(burst_fraction=0.0),
    dict(burst_fraction=1.0),
    dict(burst_dwell_s=0.0),
    dict(amplitude=-0.1),
    dict(amplitude=1.0),
    dict(period_s=0.0),
])
def test_spec_validation(kwargs):
    with pytest.raises(ConfigurationError):
        ArrivalSpec(**kwargs)
