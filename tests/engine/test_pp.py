"""Pipeline-parallel partitioning, topology, and executor integration.

The PP subsystem has three locks: ``pp=1`` never leaves the single-core
executor path (bit-parity with a run that never heard of PP), partitions
are exact contiguous covers of the lowered stream, and GPipe microbatching
actually pipelines — latency falls toward the ``(1 + (S-1)/M) / S`` ideal
on a GPU-bound shape while the traces stay lint-clean.
"""

import pytest

from repro.check import lint_trace
from repro.engine import (
    DispatchMode,
    EngineConfig,
    ExecutionMode,
    PP_STAGE_CACHE,
    PPConfig,
    ParallelConfig,
    TPConfig,
    partition_lowered,
    stage_boundary_bytes,
)
from repro.engine.executor import run
from repro.engine.lowering import lower_graph
from repro.engine.pp import PPStageCache, microbatch_lowered, validate_pp
from repro.errors import ConfigurationError
from repro.hardware import GH200
from repro.workloads import GPT2, build_graph, get_model

CONFIG = EngineConfig(iterations=1)


@pytest.fixture(scope="module")
def lowered():
    return lower_graph(build_graph(GPT2, batch_size=1, seq_len=64))


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_pp_config_rejects_bad_shapes():
    with pytest.raises(ConfigurationError):
        PPConfig(stages=0)
    with pytest.raises(ConfigurationError):
        PPConfig(stages=2, microbatches=0)
    assert not PPConfig(stages=1).enabled
    assert PPConfig(stages=2).enabled


def test_parallel_config_world_is_the_product():
    plan = ParallelConfig(tp=TPConfig(degree=2), pp=PPConfig(stages=4))
    assert plan.world == 8
    assert plan.enabled
    assert not ParallelConfig().enabled


def test_validate_pp_rejects_more_stages_than_ops(lowered):
    with pytest.raises(ConfigurationError, match="would be empty"):
        validate_pp(PPConfig(stages=len(lowered) + 1), len(lowered), "gpt2")
    validate_pp(PPConfig(stages=2), len(lowered), "gpt2")  # fine


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stages", [1, 2, 3, 4])
def test_partition_is_a_contiguous_cover(lowered, stages):
    parts = partition_lowered(lowered, stages)
    assert len(parts) == stages
    assert all(part for part in parts)  # every stage non-empty
    flattened = [op for part in parts for op in part]
    assert flattened == list(lowered)   # same objects, same order


def test_partition_balances_kernel_work(lowered):
    from repro.engine.pp import _op_weight

    parts = partition_lowered(lowered, 2)
    weights = [sum(_op_weight(lo) for lo in part) for part in parts]
    total = sum(weights)
    # The greedy split lands within one op's weight of the ideal half, so
    # neither stage hoards more than ~2/3 of the work on a real model.
    assert max(weights) / total < 0.67


def test_partition_rejects_empty_stages(lowered):
    with pytest.raises(ConfigurationError):
        partition_lowered(lowered, len(lowered) + 1)
    with pytest.raises(ConfigurationError):
        partition_lowered(lowered, 0)


def test_stage_boundary_bytes_is_last_kernel_ops_output(lowered):
    parts = partition_lowered(lowered, 2)
    for part in parts:
        expected = next(lo.op.bytes_written for lo in reversed(part)
                        if lo.kernels)
        assert stage_boundary_bytes(part) == expected
    assert stage_boundary_bytes([]) == 0.0


def test_microbatch_divides_every_work_term(lowered):
    quarters = microbatch_lowered(lowered, 4)
    for original, sliced in zip(lowered, quarters):
        assert original.op is sliced.op
        for k_full, k_part in zip(original.kernels, sliced.kernels):
            assert k_part.flops == k_full.flops / 4
            assert k_part.bytes_read == k_full.bytes_read / 4
            assert k_part.bytes_written == k_full.bytes_written / 4
            assert k_part.comm_bytes == k_full.comm_bytes / 4
    assert microbatch_lowered(lowered, 1) is lowered


def test_stage_cache_hits_and_evicts(lowered):
    cache = PPStageCache(max_entries=2)
    first = cache.partition(("a",), lowered, 2)
    assert cache.partition(("a",), lowered, 2) is first
    assert (cache.hits, cache.misses) == (1, 1)
    cache.partition(("b",), lowered, 2)
    cache.partition(("c",), lowered, 2)   # evicts "a" (FIFO)
    cache.partition(("a",), lowered, 2)
    assert cache.misses == 4
    cache.clear()
    assert (cache.hits, cache.misses) == (0, 0)


# ----------------------------------------------------------------------
# Executor integration
# ----------------------------------------------------------------------
def _latency_ns(result):
    mark = result.trace.iterations[0]
    return mark.ts_end - mark.ts


def test_pp1_is_bit_identical_to_no_pp():
    from tests.perf.test_fastpath_parity import _trace_values

    plain = run(GPT2, GH200, batch_size=2, seq_len=128,
                mode=ExecutionMode.EAGER, config=CONFIG)
    pp1 = run(GPT2, GH200, batch_size=2, seq_len=128,
              mode=ExecutionMode.EAGER, config=CONFIG, pp=PPConfig(stages=1))
    assert _trace_values(pp1.trace) == _trace_values(plain.trace)


def test_pp2_trace_is_lint_clean_and_tagged():
    result = run(GPT2, GH200, batch_size=2, seq_len=128,
                 mode=ExecutionMode.EAGER, config=CONFIG,
                 pp=PPConfig(stages=2, microbatches=2))
    assert lint_trace(result.trace) == []
    assert result.pp.stages == 2
    assert result.trace.metadata["pp_stages"] == 2
    assert result.trace.metadata["pp_microbatches"] == 2
    devices = {k.device for k in result.trace.kernels}
    assert devices == {0, 1}


def test_pp_composes_with_tp():
    result = run(GPT2, GH200, batch_size=2, seq_len=128,
                 mode=ExecutionMode.EAGER, config=CONFIG,
                 tp=TPConfig(degree=2), pp=PPConfig(stages=2, microbatches=2))
    assert lint_trace(result.trace) == []
    devices = {k.device for k in result.trace.kernels}
    assert devices == {0, 1, 2, 3}  # stage-major: 2 stages x 2 shards


def test_microbatching_pipelines_a_gpu_bound_shape():
    """GPipe's point: latency falls toward (1 + (S-1)/M) / S of the
    unpipelined run once microbatches overlap stages."""
    model = get_model("llama-2-7b")
    kwargs = dict(batch_size=8, seq_len=2048, mode=ExecutionMode.EAGER,
                  config=CONFIG)
    base = _latency_ns(run(model, GH200, **kwargs))
    serial = _latency_ns(run(model, GH200, pp=PPConfig(stages=2), **kwargs))
    piped = _latency_ns(run(model, GH200,
                            pp=PPConfig(stages=2, microbatches=4), **kwargs))
    # One microbatch cannot pipeline: both stages run back-to-back.
    assert serial == pytest.approx(base, rel=0.05)
    # Four microbatches overlap the stages; ideal is 62.5% of base.
    assert piped < 0.75 * base


def test_pp_run_uses_the_stage_cache():
    PP_STAGE_CACHE.clear()
    kwargs = dict(batch_size=2, seq_len=128, mode=ExecutionMode.EAGER,
                  config=CONFIG, pp=PPConfig(stages=2))
    run(GPT2, GH200, **kwargs)
    misses = PP_STAGE_CACHE.misses
    run(GPT2, GH200, **kwargs)
    assert PP_STAGE_CACHE.misses == misses
    assert PP_STAGE_CACHE.hits >= 1


def test_pp_rejects_cuda_graph_modes():
    with pytest.raises(ConfigurationError, match="graph"):
        run(GPT2, GH200, batch_size=2, seq_len=128,
            mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD, config=CONFIG,
            pp=PPConfig(stages=2))


def test_pp_rejects_thread_per_device_tp():
    with pytest.raises(ConfigurationError):
        run(GPT2, GH200, batch_size=2, seq_len=128,
            mode=ExecutionMode.EAGER, config=CONFIG,
            tp=TPConfig(degree=2, dispatch=DispatchMode.THREAD_PER_DEVICE),
            pp=PPConfig(stages=2))
