"""Pareto frontier analysis."""

import pytest

from repro.analysis.pareto import (
    OperatingPoint,
    cross_platform_frontier,
    operating_points,
    pareto_frontier,
)
from repro.errors import AnalysisError


def test_dominance_logic():
    fast_cheap = OperatingPoint("a", 1, 10.0, 100.0)
    slow_cheap = OperatingPoint("a", 2, 20.0, 100.0)
    slow_rich = OperatingPoint("a", 4, 20.0, 300.0)
    assert fast_cheap.dominates(slow_cheap)
    assert not fast_cheap.dominates(slow_rich)
    assert not fast_cheap.dominates(fast_cheap)


def test_every_swept_batch_becomes_a_point(bert_sweep):
    points = operating_points(bert_sweep, "GH200", 512)
    assert len(points) == len(bert_sweep.batch_sizes)
    assert all(p.tokens_per_second > 0 for p in points)


def test_single_platform_frontier_is_monotone(bert_sweep):
    points = operating_points(bert_sweep, "Intel+H100", 512)
    frontier = pareto_frontier(points)
    latencies = [p.ttft_ns for p in frontier]
    throughputs = [p.tokens_per_second for p in frontier]
    assert latencies == sorted(latencies)
    assert throughputs == sorted(throughputs)  # the frontier trades, never loses


def test_frontier_contains_no_dominated_points(bert_sweep):
    points = operating_points(bert_sweep, "AMD+A100", 512)
    frontier = pareto_frontier(points)
    for point in frontier:
        assert not any(q.dominates(point) for q in points)


def test_cross_platform_frontier_splits_by_regime(bert_sweep):
    """The paper's buy-guide: low-latency end of the joint frontier belongs
    to the LC system, the high-throughput end to GH200."""
    frontier = cross_platform_frontier(bert_sweep, 512)
    assert frontier[0].platform == "Intel+H100"   # lowest-latency point
    assert frontier[-1].platform == "GH200"       # highest-throughput point
    assert {p.platform for p in frontier} >= {"Intel+H100", "GH200"}


def test_validation(bert_sweep):
    with pytest.raises(AnalysisError):
        operating_points(bert_sweep, "GH200", 0)
    with pytest.raises(AnalysisError):
        pareto_frontier([])
