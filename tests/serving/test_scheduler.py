"""Priority-aware ("intelligent") scheduling."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import GH200
from repro.serving import LatencyModel, StaticBatchPolicy, poisson_requests
from repro.serving.batcher import simulate_static_batching
from repro.serving.scheduler import (
    ClassifiedRequest,
    PriorityPolicy,
    RequestClass,
    simulate_priority_scheduling,
)
from repro.workloads import GPT2


@pytest.fixture(scope="module")
def latency():
    return LatencyModel(GH200)


@pytest.fixture(scope="module")
def classified_stream():
    # Moderate load: priority scheduling needs spare capacity to pay off —
    # under heavy overload every policy degenerates to max-throughput
    # batching.
    stream = poisson_requests(rate_per_s=20, duration_s=2.0, prompt_len=256,
                              output_tokens=4, seed=13)
    # Every 4th request is interactive; the rest are bulk.
    return [ClassifiedRequest(
        request=request,
        request_class=(RequestClass.INTERACTIVE if request.request_id % 4 == 0
                       else RequestClass.BULK))
        for request in stream]


def test_every_request_served(latency, classified_stream):
    report = simulate_priority_scheduling(classified_stream, GPT2, latency)
    served = {o.request.request_id for o in report.all_outcomes}
    assert served == {c.request.request_id for c in classified_stream}


def test_interactive_runs_small_bulk_runs_big(latency, classified_stream):
    policy = PriorityPolicy(interactive_batch=2, bulk_batch=16)
    report = simulate_priority_scheduling(classified_stream, GPT2, latency,
                                          policy)
    assert all(o.batch_size <= 2 for o in report.interactive.outcomes)
    assert report.bulk.mean_batch_size() > 4


def test_interactive_ttft_beats_bulk(latency, classified_stream):
    report = simulate_priority_scheduling(classified_stream, GPT2, latency)
    assert (report.interactive.mean_ttft_ns()
            < report.bulk.mean_ttft_ns())


def test_priority_beats_fifo_for_interactive(latency, classified_stream):
    """The paper's scheduling lever: on GH200 the two-class scheduler keeps
    interactive TTFT far below a single FIFO batch queue."""
    report = simulate_priority_scheduling(classified_stream, GPT2, latency)
    fifo = simulate_static_batching(
        [c.request for c in classified_stream], GPT2, latency,
        StaticBatchPolicy(max_batch_size=16, max_wait_ns=100e6))
    interactive_ids = {c.request.request_id for c in classified_stream
                       if c.request_class is RequestClass.INTERACTIVE}
    fifo_interactive = [o.ttft_ns for o in fifo.outcomes
                        if o.request.request_id in interactive_ids]
    fifo_mean = sum(fifo_interactive) / len(fifo_interactive)
    assert report.interactive.mean_ttft_ns() < fifo_mean


def test_bulk_starvation_guard(latency):
    # Constant interactive pressure; a handful of bulk requests must still
    # finish thanks to the max-wait guard.
    stream = poisson_requests(rate_per_s=100, duration_s=0.5, prompt_len=128,
                              output_tokens=4, seed=21)
    classified = [ClassifiedRequest(
        request=request,
        request_class=(RequestClass.BULK if request.request_id < 5
                       else RequestClass.INTERACTIVE))
        for request in stream]
    report = simulate_priority_scheduling(
        classified, GPT2, latency,
        PriorityPolicy(bulk_batch=64, bulk_max_wait_ns=50e6))
    assert len(report.bulk.outcomes) == 5


def test_validation(latency, classified_stream):
    with pytest.raises(ConfigurationError):
        simulate_priority_scheduling([], GPT2, latency)
    with pytest.raises(ConfigurationError):
        PriorityPolicy(interactive_batch=0)
    only_bulk = [ClassifiedRequest(c.request, RequestClass.BULK)
                 for c in classified_stream]
    with pytest.raises(ConfigurationError):
        simulate_priority_scheduling(only_bulk, GPT2, latency)
