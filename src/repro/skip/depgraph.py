"""Operator-kernel dependency graph (Section IV-A of the paper).

SKIP links trace events exactly the way the paper describes:

* an ATen operator ``p`` is the parent of a child operator ``c`` or runtime
  call ``l`` when the child's begin timestamp falls within ``p``'s duration
  on the same thread;
* kernels link to their launch call through the CUDA correlation id.

The result is a forest of operator nodes, each knowing its runtime calls,
plus a flat list of launch records (call, kernel, owning operator) in launch
order — the substrate for every SKIP metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.trace.events import KernelEvent, OperatorEvent, RuntimeEvent
from repro.trace.trace import Trace


@dataclass
class OpNode:
    """One operator in the dependency forest."""

    event: OperatorEvent
    parent: "OpNode | None" = None
    children: list["OpNode"] = field(default_factory=list)
    runtime_calls: list[RuntimeEvent] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.event.name

    @property
    def depth(self) -> int:
        """Nesting depth (0 for a root operator)."""
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def iter_subtree(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def launch_calls(self) -> list[RuntimeEvent]:
        """All kernel-launching runtime calls in this subtree."""
        calls = []
        for node in self.iter_subtree():
            calls.extend(r for r in node.runtime_calls if r.is_launch)
        return calls


@dataclass(frozen=True)
class LaunchRecord:
    """A launch call, its kernel, and the operator that issued it."""

    call: RuntimeEvent
    kernel: KernelEvent
    operator: OpNode | None

    @property
    def launch_and_queue_ns(self) -> float:
        """The paper's per-kernel ``t_l`` (Eq. 1): kernel begin - call begin."""
        return self.kernel.ts - self.call.ts

    @property
    def root_operator(self) -> OpNode | None:
        """The top-level parent ATen operator for this launch."""
        node = self.operator
        while node is not None and node.parent is not None:
            node = node.parent
        return node


@dataclass
class DependencyGraph:
    """The full operator-kernel dependency structure of one trace."""

    roots: list[OpNode]
    launches: list[LaunchRecord]
    graph_kernels: list[KernelEvent]
    trace: Trace

    @classmethod
    def from_trace(cls, trace: Trace) -> "DependencyGraph":
        """Build the dependency graph from a trace.

        Raises:
            TraceError: when a launch call has no matching kernel.
        """
        roots: list[OpNode] = []
        all_nodes: list[OpNode] = []
        launch_calls: list[RuntimeEvent] = []

        # Group CPU events per thread; nesting is per-thread.
        threads: dict[int, list] = {}
        for op in trace.operators:
            threads.setdefault(op.tid, []).append(op)
        for call in trace.runtime_calls:
            threads.setdefault(call.tid, []).append(call)

        for tid_events in threads.values():
            # Sort so that at equal start times, longer (outer) events come
            # first; event_id breaks remaining ties in creation order.
            tid_events.sort(key=lambda e: (e.ts, -e.dur, e.event_id))
            stack: list[OpNode] = []
            for event in tid_events:
                while stack and event.ts >= stack[-1].event.ts_end:
                    stack.pop()
                if isinstance(event, OperatorEvent):
                    node = OpNode(event=event, parent=stack[-1] if stack else None)
                    if stack:
                        stack[-1].children.append(node)
                    else:
                        roots.append(node)
                    stack.append(node)
                    all_nodes.append(node)
                elif isinstance(event, RuntimeEvent):
                    if stack:
                        stack[-1].runtime_calls.append(event)
                    if event.is_launch:
                        launch_calls.append(event)

        call_owner: dict[int, OpNode] = {}
        for node in all_nodes:
            for call in node.runtime_calls:
                if call.is_launch and call.correlation_id >= 0:
                    call_owner[call.correlation_id] = node

        kernels = trace.kernels_by_correlation()
        launches: list[LaunchRecord] = []
        for call in sorted(launch_calls, key=lambda c: (c.ts, c.event_id)):
            if call.correlation_id < 0:
                continue  # graph launch; its kernels are tracked separately
            kernel = kernels.get(call.correlation_id)
            if kernel is None:
                raise TraceError(
                    f"launch correlation {call.correlation_id} has no kernel"
                )
            launches.append(LaunchRecord(
                call=call,
                kernel=kernel,
                operator=call_owner.get(call.correlation_id),
            ))

        graph_kernels = [k for k in trace.kernels if k.correlation_id < 0]
        graph_kernels.sort(key=lambda k: (k.ts, k.event_id))
        return cls(roots=roots, launches=launches, graph_kernels=graph_kernels,
                   trace=trace)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def launches_in(self, ts: float, ts_end: float) -> list[LaunchRecord]:
        """Launch records whose call begins within [ts, ts_end)."""
        return [r for r in self.launches if ts <= r.call.ts < ts_end]

    def roots_in(self, ts: float, ts_end: float) -> list[OpNode]:
        """Top-level operators beginning within [ts, ts_end)."""
        return [n for n in self.roots if ts <= n.event.ts < ts_end]

    def operator_count(self) -> int:
        """Total operators in the forest (all depths)."""
        return sum(1 for root in self.roots for _ in root.iter_subtree())

    def max_depth(self) -> int:
        """Deepest operator nesting level observed."""
        best = 0
        for root in self.roots:
            for node in root.iter_subtree():
                best = max(best, node.depth)
        return best
