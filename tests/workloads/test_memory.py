"""Memory-footprint estimation."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import GH200, INTEL_H100
from repro.workloads import (
    BERT_BASE,
    LLAMA_2_7B,
    LLAMA_3_2_1B,
    kv_cache_bytes,
    max_batch_size,
    memory_report,
    weights_bytes,
)
from repro.units import GB


def test_weights_are_two_bytes_per_param():
    assert weights_bytes(LLAMA_3_2_1B) == 2 * LLAMA_3_2_1B.param_count()
    assert weights_bytes(LLAMA_2_7B) == pytest.approx(13.5 * GB, rel=0.1)


def test_encoder_has_no_kv_cache():
    assert kv_cache_bytes(BERT_BASE, 8, 512) == 0.0


def test_gqa_shrinks_kv_cache():
    # Llama-3.2-1B has 8 KV heads vs 32 query heads: the cache is 1/4 of an
    # MHA model with the same hidden size.
    per_token = kv_cache_bytes(LLAMA_3_2_1B, 1, 1) \
        / (2 * LLAMA_3_2_1B.layers * 2)
    assert per_token == LLAMA_3_2_1B.kv_dim
    assert LLAMA_3_2_1B.kv_dim == LLAMA_3_2_1B.hidden // 4


def test_kv_cache_scales_linearly():
    one = kv_cache_bytes(LLAMA_3_2_1B, 1, 512)
    assert kv_cache_bytes(LLAMA_3_2_1B, 4, 512) == 4 * one
    assert kv_cache_bytes(LLAMA_3_2_1B, 1, 1024) == 2 * one


def test_report_breakdown_sums():
    report = memory_report(LLAMA_3_2_1B, GH200.gpu, 8, 512)
    assert report.total_bytes == pytest.approx(
        report.weights_bytes + report.activation_bytes
        + report.kv_cache_bytes + report.reserve_bytes)
    assert report.fits
    assert 0 < report.utilization < 1


def test_eager_attention_dominates_at_large_batch():
    eager = memory_report(BERT_BASE, INTEL_H100.gpu, 128, 512,
                          eager_attention=True)
    flash = memory_report(BERT_BASE, INTEL_H100.gpu, 128, 512,
                          eager_attention=False)
    assert eager.activation_bytes > 3 * flash.activation_bytes


def test_max_batch_size_monotone_in_capacity():
    small = max_batch_size(LLAMA_2_7B, INTEL_H100.gpu, 2048)
    large = max_batch_size(LLAMA_2_7B, GH200.gpu, 2048)
    assert 0 < small <= large


def test_max_batch_size_zero_when_weights_do_not_fit():
    from dataclasses import replace
    tiny_gpu = replace(INTEL_H100.gpu, memory_gib=8)
    assert max_batch_size(LLAMA_2_7B, tiny_gpu, 512) == 0


def test_flash_extends_max_batch():
    eager = max_batch_size(BERT_BASE, INTEL_H100.gpu, 512,
                           eager_attention=True)
    flash = max_batch_size(BERT_BASE, INTEL_H100.gpu, 512,
                           eager_attention=False)
    assert flash > eager


def test_validation():
    with pytest.raises(ConfigurationError):
        kv_cache_bytes(LLAMA_3_2_1B, 0, 512)
    with pytest.raises(ConfigurationError):
        memory_report(LLAMA_3_2_1B, GH200.gpu, 1, 0)
