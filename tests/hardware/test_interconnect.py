"""Interconnect model and coupling taxonomy."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import (
    Coupling,
    INFINITY_FABRIC,
    InterconnectSpec,
    NVLINK_C2C,
    PCIE_GEN4_X16,
    PCIE_GEN5_X16,
)


def test_coupling_taxonomy():
    assert not Coupling.LOOSELY_COUPLED.shares_board
    assert Coupling.CLOSELY_COUPLED.shares_board
    assert Coupling.TIGHTLY_COUPLED.shares_board
    assert not Coupling.CLOSELY_COUPLED.shares_physical_memory
    assert Coupling.TIGHTLY_COUPLED.shares_physical_memory


def test_nvlink_is_much_faster_than_pcie():
    # The paper: NVLink-C2C is ~7x faster than PCIe Gen5.
    assert NVLINK_C2C.bandwidth_gbs / PCIE_GEN5_X16.bandwidth_gbs >= 7.0


def test_submission_cost_ordering():
    # Tighter coupling -> cheaper doorbell.
    assert (INFINITY_FABRIC.submission_ns < NVLINK_C2C.submission_ns
            < PCIE_GEN5_X16.submission_ns < PCIE_GEN4_X16.submission_ns)


def test_transfer_time_includes_base_latency():
    assert PCIE_GEN5_X16.transfer_ns(0) == PCIE_GEN5_X16.base_latency_ns


def test_transfer_time_scales_with_bytes():
    one_mb = PCIE_GEN5_X16.transfer_ns(1 << 20)
    two_mb = PCIE_GEN5_X16.transfer_ns(2 << 20)
    delta = two_mb - one_mb
    assert delta == pytest.approx((1 << 20) / PCIE_GEN5_X16.bandwidth_gbs)


def test_transfer_rejects_negative_size():
    with pytest.raises(ConfigurationError):
        NVLINK_C2C.transfer_ns(-1)


@pytest.mark.parametrize("kwargs", [
    dict(name="x", bandwidth_gbs=0, base_latency_ns=1, submission_ns=1),
    dict(name="x", bandwidth_gbs=1, base_latency_ns=-1, submission_ns=1),
    dict(name="x", bandwidth_gbs=1, base_latency_ns=1, submission_ns=-1),
])
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        InterconnectSpec(**kwargs)
