"""Continuous (iteration-level) batching, vLLM-style.

Section IV-B: serving frameworks like vLLM "aim to maximize throughput while
approaching the low latency characteristic of BS=1 execution" using
continuous batching. This policy admits requests at decode-step boundaries
instead of waiting to assemble a full static batch: new arrivals are
prefilled as soon as the engine is free, then join the running decode batch,
so one slow request never holds a batch hostage.

Decode-step latencies are looked up through the engine-backed LatencyModel
with context lengths bucketed (decode cost is near-affine in context, and
bucketing bounds the number of engine runs).

The serving loop is :func:`continuous_batching_process`, a process on
:class:`repro.serving.runtime.ServingRuntime`; with one replica it
reproduces :func:`repro.serving.legacy.legacy_continuous_batching`
bit-for-bit. Passing a :class:`repro.obs.RunRecorder` records every
admission, prefill batch, decode step, token, and completion; the recorded
run exports as a SKIP-analyzable Chrome trace (see ``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.obs.events import EngineShape, StepKind
from repro.obs.recorder import RunRecorder
from repro.serving.batcher import ServingReport
from repro.serving.latency import LatencyModel
from repro.serving.requests import Request, queue_delay_ns
from repro.workloads.config import ModelConfig

if TYPE_CHECKING:
    from repro.serving.runtime import EngineSession, ServingRuntime
    from repro.sim.core import Process


@dataclass(frozen=True)
class ContinuousBatchPolicy:
    """Iteration-level scheduling knobs.

    Attributes:
        max_active: Maximum sequences decoding concurrently.
        context_bucket: Decode context lengths are rounded up to this
            multiple for latency lookups.
    """

    max_active: int = 16
    context_bucket: int = 64

    def __post_init__(self) -> None:
        if self.max_active <= 0:
            raise ConfigurationError("max_active must be positive")
        if self.context_bucket <= 0:
            raise ConfigurationError("context_bucket must be positive")


@dataclass
class _Sequence:
    request: Request
    first_token_ns: float
    remaining: int
    context: int
    admitted_ns: float
    last_token_ns: float = 0.0


def continuous_batching_process(runtime: ServingRuntime,
                                session: EngineSession,
                                policy: ContinuousBatchPolicy) -> Process:
    """One replica's iteration-level scheduler, as a sim process.

    Each wake-up is one engine iteration: if sequences are active, run one
    decode step for the whole set, retire finished sequences, and admit
    arrivals at the step boundary; otherwise sleep until the next arrival.
    """
    queue = runtime.queue
    latency = runtime.latency
    model = runtime.model
    recorder = runtime.recorder
    active: list[_Sequence] = []
    clock = 0.0

    def admit() -> None:
        nonlocal clock
        batch = queue.claim(clock, policy.max_active - len(active))
        if not batch:
            return
        admitted_ns = clock
        prompt_len = max(r.prompt_len for r in batch)
        prefill_ns = latency.ttft_ns(model, len(batch), prompt_len)
        if recorder is not None:
            for request in batch:
                recorder.on_admitted(request.request_id, request.arrival_ns,
                                     clock)
        session.execute(
            StepKind.PREFILL, clock, prefill_ns, len(batch),
            queue_depth=queue.depth(clock) if recorder is not None else 0,
            shape=EngineShape(model.name, len(batch), prompt_len)
            if recorder is not None else None)
        clock += prefill_ns
        for request in batch:
            seq = _Sequence(
                request=request,
                first_token_ns=clock - request.arrival_ns,
                remaining=request.output_tokens - 1,
                context=request.prompt_len + 1,
                admitted_ns=admitted_ns,
                last_token_ns=clock - request.arrival_ns,
            )
            if recorder is not None:
                recorder.on_first_token(request.request_id, clock)
            if seq.remaining <= 0:
                # Single-token request: its first (prefill) token is its
                # last; it completes here and never joins the decode batch.
                if recorder is not None:
                    recorder.on_completed(request.request_id, clock)
                runtime.complete(request,
                                 ttft_ns=seq.first_token_ns,
                                 completion_ns=seq.first_token_ns,
                                 batch_size=len(batch),
                                 service_start_ns=admitted_ns,
                                 session=session)
            else:
                active.append(seq)

    while True:
        clock = yield ("at", clock)
        if not active:
            nxt = queue.next_unclaimed_arrival()
            if nxt is None:
                break
            if nxt > clock:
                # Idle engine: sleep until the next arrival (another replica
                # may claim it first; re-check on wake).
                clock = nxt
                continue
            admit()
            continue
        # One decode step for the whole active set.
        context = max(seq.context for seq in active)
        bucketed = -(-context // policy.context_bucket) * policy.context_bucket
        step_ns = latency.decode_step_ns(model, len(active), bucketed)
        session.execute(
            StepKind.DECODE, clock, step_ns, len(active),
            queue_depth=queue.depth(clock) if recorder is not None else 0,
            shape=EngineShape(model.name, len(active), 1,
                              phase="decode", context_len=bucketed)
            if recorder is not None else None)
        clock += step_ns
        step_batch = len(active)
        finished: list[_Sequence] = []
        for seq in active:
            seq.context += 1
            seq.remaining -= 1
            seq.last_token_ns = clock - seq.request.arrival_ns
            if recorder is not None:
                recorder.on_token(seq.request.request_id, clock)
            if seq.remaining <= 0:
                finished.append(seq)
        for seq in finished:
            active.remove(seq)
            if recorder is not None:
                recorder.on_completed(seq.request.request_id, clock)
            runtime.complete(seq.request,
                             ttft_ns=seq.first_token_ns,
                             completion_ns=seq.last_token_ns,
                             batch_size=step_batch,
                             service_start_ns=seq.admitted_ns,
                             session=session)
        # Admit newly arrived requests at the step boundary.
        admit()


def simulate_continuous_batching(
    requests: Sequence[Request],
    model: ModelConfig,
    latency: LatencyModel,
    policy: ContinuousBatchPolicy = ContinuousBatchPolicy(),
    recorder: RunRecorder | None = None,
) -> ServingReport:
    """Run an iteration-level serving loop over an arrival stream.

    This is a thin wrapper over :func:`repro.serving.runtime.simulate_serving`
    with one replica; use ``simulate_serving`` directly for multi-replica
    runs or per-replica statistics.
    """
    from repro.serving.runtime import simulate_serving

    return simulate_serving(requests, model, latency, policy=policy,
                            recorder=recorder).report
