"""ASCII timeline rendering for traces.

A terminal-friendly version of the Chrome-trace view: CPU operators,
runtime calls, and GPU kernels on parallel lanes over a time window. Useful
for eyeballing the launch-ahead / queuing behavior the paper's Fig. 4-5
illustrate, without leaving the terminal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.trace.trace import Trace
from repro.units import format_ns


@dataclass(frozen=True)
class TimelineOptions:
    """Rendering knobs."""

    width: int = 100
    begin_ns: float | None = None
    end_ns: float | None = None

    def __post_init__(self) -> None:
        if self.width < 20:
            raise AnalysisError("timeline width must be at least 20 columns")


def _paint(lane: list[str], ts: float, ts_end: float, begin: float,
           scale: float, char: str, width: int) -> None:
    start_col = int((ts - begin) * scale)
    end_col = int((ts_end - begin) * scale)
    start_col = max(0, min(width - 1, start_col))
    end_col = max(start_col, min(width - 1, end_col))
    for col in range(start_col, end_col + 1):
        lane[col] = char


def render_timeline(trace: Trace, options: TimelineOptions = TimelineOptions()
                    ) -> str:
    """Render ops, launches, and per-device kernel lanes over a time window.

    Single-device traces keep the classic three-lane view (ops, launches,
    ``gpu``); multi-device (tensor-parallel) traces get one kernel lane per
    GPU ordinal (``gpu0``, ``gpu1``, ...). Lane legend: ``=`` operator on
    CPU, ``|`` launch call, ``#`` kernel executing, ``.`` idle.
    """
    events = trace.all_events()
    if not events:
        raise AnalysisError("trace is empty")
    span_begin, span_end = trace.span
    begin = options.begin_ns if options.begin_ns is not None else span_begin
    end = options.end_ns if options.end_ns is not None else span_end
    if end <= begin:
        raise AnalysisError("window end must exceed begin")
    width = options.width
    scale = width / (end - begin)

    op_lane = ["."] * width
    call_lane = ["."] * width
    devices = sorted({k.device for k in trace.kernels})
    kernel_lanes = {device: ["."] * width for device in devices}
    for op in trace.operators:
        if op.ts_end >= begin and op.ts <= end:
            _paint(op_lane, op.ts, op.ts_end, begin, scale, "=", width)
    for call in trace.runtime_calls:
        if call.ts_end >= begin and call.ts <= end:
            char = "|" if call.is_launch else "s"
            _paint(call_lane, call.ts, call.ts_end, begin, scale, char, width)
    for kernel in trace.kernels:
        if kernel.ts_end >= begin and kernel.ts <= end:
            _paint(kernel_lanes[kernel.device], kernel.ts, kernel.ts_end,
                   begin, scale, "#", width)

    lines = [
        f"timeline {format_ns(begin)} .. {format_ns(end)} "
        f"({format_ns(end - begin)} window)",
        "cpu ops  " + "".join(op_lane),
        "launches " + "".join(call_lane),
    ]
    if len(devices) <= 1:
        lane = kernel_lanes[devices[0]] if devices else ["."] * width
        lines.append("gpu      " + "".join(lane))
    else:
        for device in devices:
            lines.append(f"gpu{device:<6}" + "".join(kernel_lanes[device]))
    lines.append("legend: = op   | launch   s sync   # kernel   . idle")
    return "\n".join(lines)
