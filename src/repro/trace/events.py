"""Trace event model.

Mirrors the event vocabulary of PyTorch Profiler / CUPTI traces that SKIP
consumes in the paper (Section IV-A):

* :class:`OperatorEvent` — a CPU-side ATen operator (``aten::linear`` etc.).
  Parent/child relationships are *not* stored on the event; SKIP derives them
  from time containment, exactly as the paper describes.
* :class:`RuntimeEvent` — a CUDA runtime call on the CPU
  (``cudaLaunchKernel``, ``cudaDeviceSynchronize``, ...). Launch calls carry a
  correlation id that links them to the kernel they trigger.
* :class:`KernelEvent` — a GPU kernel execution on a stream, carrying the same
  correlation id as its launch call.

All timestamps are nanoseconds on a single monotonic clock shared by CPU and
GPU events (CUPTI aligns clocks for real traces; the simulator is trivially
aligned).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import TraceError

LAUNCH_KERNEL = "cudaLaunchKernel"
DEVICE_SYNCHRONIZE = "cudaDeviceSynchronize"
MEMCPY_ASYNC = "cudaMemcpyAsync"
GRAPH_LAUNCH = "cudaGraphLaunch"

#: Runtime call names that act as CPU/GPU synchronization points. Kernel-chain
#: mining treats these as sequence separators (Section III-C).
SYNC_CALLS = frozenset({DEVICE_SYNCHRONIZE, "cudaStreamSynchronize", "cudaMemcpy"})

_event_ids = itertools.count(1)


def _next_event_id() -> int:
    return next(_event_ids)


@dataclass(slots=True)
class TraceEvent:
    """Base class for all trace events.

    Attributes:
        name: Event name (operator name, runtime call, or kernel symbol).
        ts: Begin timestamp in nanoseconds (``ts_b`` in the paper).
        dur: Duration in nanoseconds.
        tid: CPU thread id (0 for GPU events).
        event_id: Unique id within the process, stable across sorting.
    """

    name: str
    ts: float
    dur: float
    tid: int = 0
    event_id: int = field(default_factory=_next_event_id)

    def __post_init__(self) -> None:
        if self.dur < 0:
            raise TraceError(f"event {self.name!r} has negative duration {self.dur}")

    @property
    def ts_end(self) -> float:
        """End timestamp (``ts_e`` in the paper)."""
        return self.ts + self.dur

    def contains(self, other: "TraceEvent") -> bool:
        """True when ``other`` begins within this event's duration.

        This is the paper's parent/child criterion: an ATen operator ``p`` is
        the parent of ``c`` if ``ts_b(c)`` falls within ``[ts_b(p), ts_e(p))``.
        """
        return self.ts <= other.ts < self.ts_end


@dataclass(slots=True)
class OperatorEvent(TraceEvent):
    """A CPU-side framework operator (ATen op in PyTorch terms)."""

    #: Monotonic index in program order; lets consumers recover issue order
    #: even when two events share a timestamp.
    seq: int = -1


@dataclass(slots=True)
class RuntimeEvent(TraceEvent):
    """A CUDA runtime API call executed on a CPU thread."""

    correlation_id: int = -1

    @property
    def is_launch(self) -> bool:
        """True when this call launches GPU work."""
        return self.name in (LAUNCH_KERNEL, GRAPH_LAUNCH)

    @property
    def is_sync(self) -> bool:
        """True when this call synchronizes the CPU with the GPU."""
        return self.name in SYNC_CALLS


@dataclass(slots=True)
class KernelEvent(TraceEvent):
    """A GPU kernel execution.

    Attributes:
        correlation_id: Links the kernel back to its launch call.
        stream: CUDA stream id.
        device: GPU ordinal.
        flops: Floating point operations modeled for the kernel (simulator
            only; 0 for imported real traces).
        bytes_moved: DRAM traffic modeled for the kernel (simulator only).
    """

    correlation_id: int = -1
    stream: int = 7
    device: int = 0
    flops: float = 0.0
    bytes_moved: float = 0.0

    @property
    def queue_delay_unknown(self) -> bool:
        """Imported kernels do not know their own queue delay; SKIP derives it."""
        return self.correlation_id < 0
