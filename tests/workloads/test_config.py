"""Model configuration derivations and validation."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    Arch,
    BERT_BASE,
    GEMMA_2B,
    GPT2,
    LLAMA_3_2_1B,
    ModelConfig,
    XLM_ROBERTA_BASE,
)


def test_param_counts_near_published_sizes():
    # Table III: BERT 110M, XLM-R 279M, GPT-2 137M, Llama-3.2-1B 1.24B.
    assert BERT_BASE.param_count() == pytest.approx(110e6, rel=0.05)
    assert XLM_ROBERTA_BASE.param_count() == pytest.approx(279e6, rel=0.05)
    assert GPT2.param_count() == pytest.approx(137e6, rel=0.12)
    assert LLAMA_3_2_1B.param_count() == pytest.approx(1.24e9, rel=0.05)


def test_gemma_head_dim_override():
    assert GEMMA_2B.effective_head_dim == 256
    assert GEMMA_2B.q_dim == 8 * 256


def test_gqa_dimensions():
    assert LLAMA_3_2_1B.effective_kv_heads == 8
    assert LLAMA_3_2_1B.kv_dim == 8 * 64
    assert LLAMA_3_2_1B.q_dim == 2048


def test_default_kv_heads_equal_heads():
    assert BERT_BASE.effective_kv_heads == BERT_BASE.heads


def test_gated_mlp_detection():
    assert LLAMA_3_2_1B.is_gated_mlp
    assert GEMMA_2B.is_gated_mlp
    assert not BERT_BASE.is_gated_mlp
    assert not GPT2.is_gated_mlp


def _base_config(**overrides):
    params = dict(name="toy", arch=Arch.DECODER_ONLY, hidden=64, layers=2,
                  heads=4, intermediate=128, vocab=1000)
    params.update(overrides)
    return ModelConfig(**params)


def test_indivisible_heads_rejected():
    with pytest.raises(ConfigurationError):
        _base_config(hidden=65)


def test_explicit_head_dim_allows_indivisible_hidden():
    config = _base_config(hidden=60, head_dim=32)
    assert config.q_dim == 4 * 32


def test_kv_heads_cannot_exceed_heads():
    with pytest.raises(ConfigurationError):
        _base_config(kv_heads=8)


def test_heads_must_divide_by_kv_heads():
    with pytest.raises(ConfigurationError):
        _base_config(kv_heads=3)


@pytest.mark.parametrize("field", ["hidden", "layers", "heads", "intermediate",
                                   "vocab"])
def test_nonpositive_dims_rejected(field):
    with pytest.raises(ConfigurationError):
        _base_config(**{field: 0})


def test_summary_mentions_arch_and_params():
    text = LLAMA_3_2_1B.summary()
    assert "decoder-only" in text
    assert "16L" in text


def test_xlmr_larger_than_bert_only_by_vocab():
    # Same transformer body; the multilingual vocabulary is the difference.
    body_bert = BERT_BASE.param_count() - BERT_BASE.vocab * BERT_BASE.hidden
    body_xlmr = (XLM_ROBERTA_BASE.param_count()
                 - XLM_ROBERTA_BASE.vocab * XLM_ROBERTA_BASE.hidden)
    assert body_bert == body_xlmr
