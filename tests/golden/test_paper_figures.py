"""Golden regression tests for the paper-figure benchmarks.

These lock the committed numbers behind Fig. 6 (TKLQT flat -> growing
across batch sizes, with the CPU->GPU-bound transition star), Fig. 8 (ideal
fusion speedup vs chain length) and Table V (nullKernel launch costs). The
figure benchmarks in ``benchmarks/`` assert loose paper-anchor ranges; the
goldens here pin the exact simulator output so an innocent-looking engine or
calibration change cannot silently move a published number.
"""

from __future__ import annotations

import pytest

from repro.hardware import PAPER_PLATFORMS, nullkernel_table
from repro.skip import analyze_trace

#: Fig. 8 chain-length ladder.
FIG8_LENGTHS = (2, 4, 8, 16, 32, 64, 128, 256)

_PLATFORM_SLUGS = {
    "Intel+H100": "intel_h100",
    "AMD+A100": "amd_a100",
    "GH200": "gh200",
}


@pytest.mark.parametrize("platform", sorted(_PLATFORM_SLUGS))
def test_fig6_tklqt_golden(bert_sweep, golden, platform):
    """Fig. 6: per-platform TKLQT series and transition batch size."""
    transition = bert_sweep.transition(platform)
    golden.check(f"fig6_tklqt_{_PLATFORM_SLUGS[platform]}", {
        "model": "bert-base-uncased",
        "platform": platform,
        "batch_sizes": list(transition.batch_sizes),
        "tklqt_ns": list(transition.tklqt_ns),
        "transition_batch_size": transition.batch_size,
        "plateau_tklqt_ns": transition.plateau_tklqt_ns,
    })


def test_fig8_ideal_speedup_golden(gpt2_profile, golden):
    """Fig. 8: GPT-2 ideal fusion speedup per chain length (Intel+H100)."""
    analyses = analyze_trace(gpt2_profile.trace, lengths=FIG8_LENGTHS)
    golden.check("fig8_ideal_speedup_gpt2", {
        "model": "gpt2",
        "platform": "Intel+H100",
        "lengths": list(FIG8_LENGTHS),
        "ideal_speedups": [a.ideal_speedup for a in analyses],
        "k_eager": [a.k_eager for a in analyses],
        "k_fused": [a.k_fused for a in analyses],
    })


def test_table5_nullkernel_golden(golden):
    """Table V: nullKernel launch overhead and duration per platform."""
    rows = nullkernel_table(PAPER_PLATFORMS, samples=1000)
    golden.check("table5_nullkernel", {
        row.platform: {
            "launch_overhead_ns": row.launch_overhead_ns,
            "duration_ns": row.duration_ns,
        }
        for row in rows
    })
