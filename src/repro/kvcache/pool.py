"""Paged KV-cache block pool: fixed-size blocks carved out of HBM.

vLLM-style paged attention allocates the KV cache in fixed-size blocks of
``block_tokens`` tokens each, so fragmentation is bounded and a sequence's
cache can grow one block at a time. This module owns the integer arithmetic:
block sizes derive from the model's KV geometry (``2 * layers * kv_dim``
bytes-per-token at FP16), and per-replica pool capacities derive from
:attr:`GpuSpec.memory_gib` minus the FP16 weights and the runtime reserve —
the same terms :func:`repro.workloads.memory.memory_report` charges
statically.

Everything here is an ``int``: byte counts are floored to whole bytes and
capacities to whole blocks, so pool accounting never compares floats for
equality (check-code rule C002 stays honest by construction).
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ConfigurationError, SimulationError
from repro.hardware.gpu import GpuSpec
from repro.units import gib_to_bytes
from repro.workloads.config import Arch, ModelConfig
from repro.workloads.memory import RUNTIME_RESERVE_BYTES, weights_bytes
from repro.workloads.ops import FP16_BYTES

#: Default tokens per KV block (vLLM's default page size).
KV_BLOCK_TOKENS = 16


def block_bytes(config: ModelConfig,
                block_tokens: int = KV_BLOCK_TOKENS) -> int:
    """HBM bytes one KV block occupies (K and V, all layers, FP16)."""
    if block_tokens <= 0:
        raise ConfigurationError("block_tokens must be positive")
    if config.arch is Arch.ENCODER_ONLY:
        raise ConfigurationError(
            f"{config.name} is encoder-only: it keeps no KV cache, so a "
            f"paged KV pool is meaningless for it")
    return 2 * config.layers * config.kv_dim * FP16_BYTES * block_tokens


def blocks_for_tokens(tokens: int,
                      block_tokens: int = KV_BLOCK_TOKENS) -> int:
    """Blocks needed to hold ``tokens`` cache entries (ceiling division)."""
    if tokens < 0:
        raise ConfigurationError(f"tokens must be non-negative, got {tokens}")
    if block_tokens <= 0:
        raise ConfigurationError("block_tokens must be positive")
    return -(-tokens // block_tokens)


def pool_bytes(config: ModelConfig, gpu: GpuSpec,
               pool_gib: float | None = None) -> int:
    """Whole bytes available to the KV pool on one replica's GPU.

    With ``pool_gib`` set the pool is exactly that size (the knob the
    pressure sweeps turn); otherwise it is everything HBM has left after
    the FP16 weights and :data:`RUNTIME_RESERVE_BYTES`.
    """
    if pool_gib is not None:
        if pool_gib <= 0:
            raise ConfigurationError("pool_gib must be positive")
        return gib_to_bytes(pool_gib)
    free = (gib_to_bytes(gpu.memory_gib) - int(weights_bytes(config))
            - RUNTIME_RESERVE_BYTES)
    if free <= 0:
        raise ConfigurationError(
            f"{config.name} weights plus runtime reserve exceed "
            f"{gpu.name}'s {gpu.memory_gib} GiB; no room for a KV pool")
    return free


def pool_capacity_blocks(config: ModelConfig, gpu: GpuSpec,
                         pool_gib: float | None = None,
                         block_tokens: int = KV_BLOCK_TOKENS) -> int:
    """Whole KV blocks the pool holds (floor of bytes / block size)."""
    per_block = block_bytes(config, block_tokens)
    capacity = pool_bytes(config, gpu, pool_gib) // per_block
    if capacity <= 0:
        raise ConfigurationError(
            f"KV pool of {pool_bytes(config, gpu, pool_gib)} bytes is "
            f"smaller than one {per_block}-byte block of {config.name}")
    return capacity


class BlockPool:
    """Counting allocator over a fixed number of KV blocks.

    Owners are opaque hashables (serving uses request ids). The pool tracks
    how many blocks each owner holds plus a running total, and refuses
    over-commit — the sim-level invariant rule K002 re-verifies from the
    event log.
    """

    def __init__(self, capacity_blocks: int, name: str = "kv") -> None:
        if capacity_blocks <= 0:
            raise ConfigurationError("pool capacity must be positive")
        self.capacity_blocks = capacity_blocks
        self.name = name
        self.allocated = 0
        self._held: dict[Hashable, int] = {}

    @property
    def free_blocks(self) -> int:
        return self.capacity_blocks - self.allocated

    def held(self, owner: Hashable) -> int:
        """Blocks ``owner`` currently holds (0 if none)."""
        return self._held.get(owner, 0)

    def owners(self) -> list[Hashable]:
        """Owners currently holding blocks, in insertion order."""
        return list(self._held)

    def can_allocate(self, blocks: int) -> bool:
        return blocks <= self.free_blocks

    def allocate(self, owner: Hashable, blocks: int) -> None:
        """Give ``owner`` ``blocks`` more blocks; raises on over-commit."""
        if blocks <= 0:
            raise SimulationError(
                f"pool {self.name}: allocation must be positive, "
                f"got {blocks}")
        if not self.can_allocate(blocks):
            raise SimulationError(
                f"pool {self.name}: over-commit — {blocks} blocks requested "
                f"with {self.free_blocks}/{self.capacity_blocks} free")
        self._held[owner] = self.held(owner) + blocks
        self.allocated += blocks

    def release(self, owner: Hashable) -> int:
        """Free every block ``owner`` holds; returns how many were freed."""
        freed = self._held.pop(owner, 0)
        self.allocated -= freed
        return freed
