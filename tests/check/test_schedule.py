"""Schedule hazard detector: deadlocks the simulator would hang on.

The adversarial schedules are hand-built: ``DeviceSchedule`` is exactly the
abstraction the engine's dispatch processes walk, so each fixture is the
static shape of a real multi-device bug (swapped collective order, a
device skipping a barrier, a stray stream assignment).
"""

from repro.check import (
    CollectiveJoin,
    DeviceSchedule,
    KernelIssue,
    check_schedules,
    schedules_from_lowering,
)
from repro.check.schedule import COMPUTE_STREAM
from repro.engine import TPConfig, shard_lowered


def _rule_ids(findings):
    return {f.rule_id for f in findings}


def _symmetric(world, keys):
    """World identical devices joining ``keys`` in order."""
    return [
        DeviceSchedule(device=d, items=[
            CollectiveJoin(key=key, parties=world) for key in keys])
        for d in range(world)
    ]


# ----------------------------------------------------------------------
# Real engine schedules are hazard-free
# ----------------------------------------------------------------------
def test_engine_tp_schedule_is_clean(gpt2_lowered):
    tp = TPConfig(degree=2)
    schedules = schedules_from_lowering(shard_lowered(gpt2_lowered, tp), tp)
    assert check_schedules(schedules) == []


def test_engine_tp4_schedule_is_clean(gpt2_lowered):
    tp = TPConfig(degree=4)
    schedules = schedules_from_lowering(shard_lowered(gpt2_lowered, tp), tp)
    assert len(schedules) == 4
    assert check_schedules(schedules) == []


def test_derived_schedules_match_engine_shape(gpt2_lowered):
    tp = TPConfig(degree=2)
    sharded = shard_lowered(gpt2_lowered, tp)
    schedules = schedules_from_lowering(sharded, tp)
    kernel_count = sum(len(lo.kernels) for lo in sharded)
    for schedule in schedules:
        # every kernel appears exactly once, plus the iteration-end barrier
        assert len(schedule.items) == kernel_count + 1
        assert schedule.items[-1].key == "iteration-end"


# ----------------------------------------------------------------------
# S001: wait-for cycle (the classic mismatched-collective-order deadlock)
# ----------------------------------------------------------------------
def test_swapped_collective_order_deadlocks_s001():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2), CollectiveJoin("y", 2)])
    b = DeviceSchedule(1, [CollectiveJoin("y", 2), CollectiveJoin("x", 2)])
    findings = check_schedules([a, b])
    assert "S001" in _rule_ids(findings)
    (cycle,) = [f for f in findings if f.rule_id == "S001"]
    assert "x" in cycle.message and "y" in cycle.message


def test_three_device_rotation_deadlocks_s001():
    keys = ["x", "y", "z"]
    schedules = [
        DeviceSchedule(d, [CollectiveJoin(keys[(i + d) % 3], 3)
                           for i in range(3)])
        for d in range(3)
    ]
    assert "S001" in _rule_ids(check_schedules(schedules))


def test_consistent_order_has_no_cycle():
    assert check_schedules(_symmetric(2, ["x", "y", "z"])) == []


# ----------------------------------------------------------------------
# S002 / S003: party-count hazards
# ----------------------------------------------------------------------
def test_disagreeing_party_count_flagged_s002():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2)])
    b = DeviceSchedule(1, [CollectiveJoin("x", 3)])
    assert "S002" in _rule_ids(check_schedules([a, b]))


def test_missing_joiner_flagged_s003():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2), CollectiveJoin("y", 2)])
    b = DeviceSchedule(1, [CollectiveJoin("y", 2)])  # never joins x
    findings = check_schedules([a, b])
    assert "S003" in _rule_ids(findings)


def test_overfull_rendezvous_flagged_s003():
    schedules = _symmetric(3, ["x"])
    for schedule in schedules:
        schedule.items[0] = CollectiveJoin("x", 2)  # 3 join, 2 expected
    assert "S003" in _rule_ids(check_schedules(schedules))


# ----------------------------------------------------------------------
# S004: duplicate join
# ----------------------------------------------------------------------
def test_double_join_flagged_s004():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2), CollectiveJoin("x", 2)])
    b = DeviceSchedule(1, [CollectiveJoin("x", 2)])
    assert "S004" in _rule_ids(check_schedules([a, b]))


# ----------------------------------------------------------------------
# S005: unreachable work behind a hanging collective
# ----------------------------------------------------------------------
def test_work_behind_hanging_collective_flagged_s005():
    a = DeviceSchedule(0, [
        CollectiveJoin("x", 2),
        KernelIssue("gemm_after"),
        CollectiveJoin("iteration-end", 2),
    ])
    b = DeviceSchedule(1, [CollectiveJoin("iteration-end", 2)])
    findings = check_schedules([a, b])
    rule_ids = _rule_ids(findings)
    assert "S003" in rule_ids  # x waits for a party that never comes
    assert "S005" in rule_ids
    (unreachable,) = [f for f in findings if f.rule_id == "S005"]
    assert "2 event(s)" in unreachable.message


def test_deadlock_marks_downstream_unreachable():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2), CollectiveJoin("y", 2),
                           KernelIssue("tail")])
    b = DeviceSchedule(1, [CollectiveJoin("y", 2), CollectiveJoin("x", 2),
                           KernelIssue("tail")])
    rule_ids = _rule_ids(check_schedules([a, b]))
    assert {"S001", "S005"} <= rule_ids


# ----------------------------------------------------------------------
# S006: collective off the compute stream
# ----------------------------------------------------------------------
def test_collective_off_compute_stream_flagged_s006():
    a = DeviceSchedule(0, [CollectiveJoin("x", 2, stream=COMPUTE_STREAM + 1)])
    b = DeviceSchedule(1, [CollectiveJoin("x", 2)])
    assert "S006" in _rule_ids(check_schedules([a, b]))


def test_kernel_issues_alone_are_clean():
    schedules = [DeviceSchedule(d, [KernelIssue(f"k{i}") for i in range(5)])
                 for d in range(2)]
    assert check_schedules(schedules) == []


# ----------------------------------------------------------------------
# S007: chunked prefill interleaving with its own decodes
# ----------------------------------------------------------------------
def _chunk(rid, start, length, total):
    return KernelIssue(f"serving::prefill_chunk[r{rid}:{start}+{length}/{total}]")


def test_ordered_chunks_then_decode_are_clean():
    schedule = DeviceSchedule(0, [
        _chunk(1, 0, 256, 700), _chunk(1, 256, 256, 700),
        _chunk(1, 512, 188, 700),
        KernelIssue("serving::decode[+r1]"),
        KernelIssue("serving::decode"),
    ])
    assert check_schedules([schedule]) == []


def test_out_of_order_chunk_flagged_s007():
    schedule = DeviceSchedule(0, [
        _chunk(1, 0, 256, 700), _chunk(1, 512, 188, 700),  # skips 256
    ])
    findings = check_schedules([schedule])
    assert _rule_ids(findings) == {"S007"}
    (finding,) = findings
    assert "expected 256" in finding.message


def test_premature_decode_flagged_s007():
    schedule = DeviceSchedule(0, [
        _chunk(1, 0, 256, 700),
        KernelIssue("serving::decode[+r1]"),  # 444 prompt tokens missing
    ])
    findings = check_schedules([schedule])
    assert _rule_ids(findings) == {"S007"}
    (finding,) = findings
    assert "256/700" in finding.message


def test_chunk_after_decode_started_flagged_s007():
    schedule = DeviceSchedule(0, [
        _chunk(1, 0, 700, 700),
        KernelIssue("serving::decode[+r1]"),
        _chunk(1, 0, 256, 700),  # prompt work after decoding began
    ])
    findings = check_schedules([schedule])
    assert _rule_ids(findings) == {"S007"}
    assert "after the request started decoding" in findings[0].message


def test_interleaved_requests_progress_independently():
    schedule = DeviceSchedule(0, [
        _chunk(1, 0, 256, 512), _chunk(2, 0, 256, 300),
        _chunk(2, 256, 44, 300), _chunk(1, 256, 256, 512),
        KernelIssue("serving::decode[+r1,+r2]"),
    ])
    assert check_schedules([schedule]) == []


def test_chunked_serving_run_schedules_are_clean():
    """A real chunked continuous-batching run passes its own rule."""
    from repro.check import check_serving_schedules
    from repro.hardware import GH200
    from repro.serving import (
        ContinuousBatchPolicy,
        LatencyModel,
        poisson_requests,
        simulate_serving,
    )
    from repro.workloads import GPT2

    requests = poisson_requests(rate_per_s=30, duration_s=0.2,
                                prompt_len=700, output_tokens=4, seed=5)
    run = simulate_serving(
        requests, GPT2, LatencyModel(GH200),
        policy=ContinuousBatchPolicy(max_active=4, chunk_tokens=256))
    report = check_serving_schedules(run.sessions)
    assert report.findings == []


# ----------------------------------------------------------------------
# S008: pipeline handoff ordering
# ----------------------------------------------------------------------
def _handoff(source, dest, microbatch, parties=2):
    return CollectiveJoin(f"pp.act@{source}->{dest}.mb{microbatch}", parties)


def test_pp_schedules_from_partition_are_clean(gpt2_lowered):
    from repro.check import schedules_from_pp
    from repro.engine import PPConfig
    from repro.engine.pp import partition_lowered

    pp = PPConfig(stages=2, microbatches=4)
    schedules = schedules_from_pp(partition_lowered(gpt2_lowered, 2), pp)
    assert len(schedules) == 2
    assert check_schedules(schedules) == []


def test_pp_schedules_compose_with_tp(gpt2_lowered, gpt2_tp2):
    from repro.check import schedules_from_pp
    from repro.engine import PPConfig, shard_lowered
    from repro.engine.pp import partition_lowered

    pp = PPConfig(stages=2, microbatches=2)
    stage_lowerings = partition_lowered(
        shard_lowered(gpt2_lowered, gpt2_tp2), 2)
    schedules = schedules_from_pp(stage_lowerings, pp, tp_degree=2)
    assert len(schedules) == 4
    assert check_schedules(schedules) == []


def test_microbatch_out_of_order_flagged_s008():
    a = DeviceSchedule(0, [_handoff(0, 1, 0), _handoff(0, 1, 1),
                           CollectiveJoin("pp.iteration-end", 2)])
    b = DeviceSchedule(1, [_handoff(0, 1, 1), _handoff(0, 1, 0),  # swapped
                           CollectiveJoin("pp.iteration-end", 2)])
    findings = check_schedules([a, b])
    assert "S008" in _rule_ids(findings)
    s008 = [f for f in findings if f.rule_id == "S008"]
    assert any("microbatch 1" in f.message for f in s008)


def test_send_before_recv_flagged_s008():
    # Middle stage of a 3-stage pipeline sends downstream before receiving.
    middle = DeviceSchedule(1, [_handoff(1, 2, 0), _handoff(0, 1, 0)])
    findings = [f for f in check_schedules([middle])
                if f.rule_id == "S008"]
    assert findings, "send-before-recv must be flagged"
    assert "before sending activations" in findings[0].message
