"""Fusion advisor: recommend kernel fusions and verify them end-to-end.

The full SKIP loop from the paper plus its proposed future work:

1. profile a CPU-bound model in eager mode;
2. mine deterministic kernel chains (proximity score = 1) at every length;
3. report the idealized Eq. 8 speedups (Fig. 8);
4. actually *apply* the recommended chains in the engine's PROXIMITY_FUSED
   mode and compare the simulated gain to the idealized one.

Usage:
    python examples/fusion_advisor.py [model-name] [platform-name]
"""

import sys

from repro import ExecutionMode, get_model, get_platform, SkipProfiler
from repro.skip import analyze_trace, combined_plan, fusion_report
from repro.units import format_ns


def main() -> None:
    model = get_model(sys.argv[1] if len(sys.argv) > 1 else "gpt2")
    platform = get_platform(sys.argv[2] if len(sys.argv) > 2 else "Intel+H100")

    profiler = SkipProfiler(platform)
    baseline = profiler.profile(model, batch_size=1, seq_len=512)
    print(f"{model.name} on {platform.name}: "
          f"{baseline.metrics.kernel_launches:.0f} launches/iteration, "
          f"classified {baseline.boundedness.value}\n")

    analyses = baseline.recommend_fusions()
    print(fusion_report(analyses))

    plan = combined_plan(analyses)
    if plan is None:
        print("\nNo deterministic chains found; nothing to fuse.")
        return

    fused = profiler.profile(model, batch_size=1, seq_len=512,
                             mode=ExecutionMode.PROXIMITY_FUSED,
                             fusion_plan=plan)
    ideal = max(a.ideal_speedup for a in analyses)
    simulated = (baseline.metrics.inference_latency_ns
                 / fused.metrics.inference_latency_ns)
    print(f"\nApplying the combined plan ({len(plan.chains)} chains):")
    print(f"  launches/iteration : {baseline.metrics.kernel_launches:.0f} "
          f"-> {fused.metrics.kernel_launches:.0f}")
    print(f"  inference latency  : {format_ns(baseline.metrics.inference_latency_ns)} "
          f"-> {format_ns(fused.metrics.inference_latency_ns)}")
    print(f"  idealized speedup  : {ideal:.2f}x (Eq. 8, launch-count ratio)")
    print(f"  simulated speedup  : {simulated:.3f}x (dispatch cost survives)")


if __name__ == "__main__":
    main()
