"""Profile A/B comparison.

Two profiles of the same workload — different platforms, modes, or fusion
plans — diff at the kernel-name level: which kernels appeared/disappeared
(fusion!), which got faster, and how the headline metrics moved. This is the
workflow a SKIP user runs after applying an optimization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.skip.metrics import SkipMetrics
from repro.units import format_ns


@dataclass(frozen=True)
class KernelDelta:
    """Per-kernel-name change between two profiles."""

    name: str
    count_a: int
    count_b: int
    duration_a_ns: float
    duration_b_ns: float

    @property
    def count_delta(self) -> int:
        return self.count_b - self.count_a

    @property
    def duration_delta_ns(self) -> float:
        return self.duration_b_ns - self.duration_a_ns

    @property
    def status(self) -> str:
        if self.count_a == 0:
            return "added"
        if self.count_b == 0:
            return "removed"
        return "changed" if self.count_delta else "kept"


@dataclass(frozen=True)
class ProfileDiff:
    """Full A -> B comparison."""

    label_a: str
    label_b: str
    kernels: tuple[KernelDelta, ...]
    latency_a_ns: float
    latency_b_ns: float
    tklqt_a_ns: float
    tklqt_b_ns: float
    launches_a: float
    launches_b: float

    @property
    def speedup(self) -> float:
        return self.latency_a_ns / self.latency_b_ns

    @property
    def launches_saved(self) -> float:
        return self.launches_a - self.launches_b

    def added(self) -> list[KernelDelta]:
        return [k for k in self.kernels if k.status == "added"]

    def removed(self) -> list[KernelDelta]:
        return [k for k in self.kernels if k.status == "removed"]


def diff_metrics(metrics_a: SkipMetrics, metrics_b: SkipMetrics,
                 label_a: str = "A", label_b: str = "B") -> ProfileDiff:
    """Diff two profiled runs' metrics and kernel populations."""
    if not metrics_a.top_kernels or not metrics_b.top_kernels:
        raise AnalysisError("both profiles need kernel aggregates; "
                            "compute_metrics(top_k=...) with a large enough k")
    iterations_a = len(metrics_a.iterations)
    iterations_b = len(metrics_b.iterations)
    table_a = {k.name: k for k in metrics_a.top_kernels}
    table_b = {k.name: k for k in metrics_b.top_kernels}
    deltas = []
    for name in sorted(set(table_a) | set(table_b)):
        a = table_a.get(name)
        b = table_b.get(name)
        deltas.append(KernelDelta(
            name=name,
            count_a=(a.count // iterations_a) if a else 0,
            count_b=(b.count // iterations_b) if b else 0,
            duration_a_ns=(a.total_duration_ns / iterations_a) if a else 0.0,
            duration_b_ns=(b.total_duration_ns / iterations_b) if b else 0.0,
        ))
    return ProfileDiff(
        label_a=label_a,
        label_b=label_b,
        kernels=tuple(deltas),
        latency_a_ns=metrics_a.inference_latency_ns,
        latency_b_ns=metrics_b.inference_latency_ns,
        tklqt_a_ns=metrics_a.tklqt_ns,
        tklqt_b_ns=metrics_b.tklqt_ns,
        launches_a=metrics_a.kernel_launches,
        launches_b=metrics_b.kernel_launches,
    )


def diff_report(diff: ProfileDiff, k: int = 8) -> str:
    """Text summary of an A/B diff."""
    lines = [
        f"profile diff: {diff.label_a} -> {diff.label_b}",
        f"  latency : {format_ns(diff.latency_a_ns)} -> "
        f"{format_ns(diff.latency_b_ns)}  ({diff.speedup:.3f}x)",
        f"  TKLQT   : {format_ns(diff.tklqt_a_ns)} -> "
        f"{format_ns(diff.tklqt_b_ns)}",
        f"  launches: {diff.launches_a:.0f} -> {diff.launches_b:.0f} "
        f"({diff.launches_saved:+.0f})",
    ]
    removed = diff.removed()
    added = diff.added()
    if removed:
        lines.append(f"  removed kernels ({len(removed)}):")
        for delta in removed[:k]:
            lines.append(f"    - {delta.name} (x{delta.count_a})")
    if added:
        lines.append(f"  added kernels ({len(added)}):")
        for delta in added[:k]:
            lines.append(f"    + {delta.name} (x{delta.count_b})")
    return "\n".join(lines)
