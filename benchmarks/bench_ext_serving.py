"""Extension — static vs continuous batching under one arrival stream.

Section IV-B cites vLLM's continuous batching as the way to "maximize
throughput while approaching the low latency characteristic of BS=1". This
bench quantifies that claim with the engine-backed serving loop.
"""

from _harness import report, run_once
from repro.hardware import INTEL_H100
from repro.serving import (
    ContinuousBatchPolicy,
    LatencyModel,
    StaticBatchPolicy,
    poisson_requests,
    simulate_continuous_batching,
    simulate_static_batching,
)
from repro.units import ns_to_ms
from repro.viz import render_table
from repro.workloads import GPT2


def _compare():
    latency = LatencyModel(INTEL_H100)
    stream = poisson_requests(rate_per_s=40, duration_s=2.0, prompt_len=256,
                              output_tokens=16, seed=5)
    static_1 = simulate_static_batching(
        stream, GPT2, latency, StaticBatchPolicy(max_batch_size=1))
    static_16 = simulate_static_batching(
        stream, GPT2, latency,
        StaticBatchPolicy(max_batch_size=16, max_wait_ns=100e6))
    continuous = simulate_continuous_batching(
        stream, GPT2, latency, ContinuousBatchPolicy(max_active=16))
    return {"static BS=1": static_1, "static BS<=16": static_16,
            "continuous (16)": continuous}


def test_ext_static_vs_continuous(benchmark):
    reports = run_once(benchmark, _compare)
    rows = []
    for name, serving in reports.items():
        rows.append([
            name,
            f"{ns_to_ms(serving.mean_ttft_ns()):.1f}",
            f"{ns_to_ms(serving.p99_ttft_ns()):.1f}",
            f"{serving.throughput_tokens_per_s():.0f}",
        ])
    report(render_table(
        ["policy", "mean TTFT (ms)", "p99 TTFT (ms)", "tokens/s"],
        rows, title="Extension: GPT-2 serving on Intel+H100, 40 req/s"))

    static_16 = reports["static BS<=16"]
    continuous = reports["continuous (16)"]
    # Continuous batching beats same-capacity static batching on latency
    # without giving up throughput.
    assert continuous.mean_ttft_ns() < static_16.mean_ttft_ns()
    assert (continuous.throughput_tokens_per_s()
            >= 0.8 * static_16.throughput_tokens_per_s())
