"""TraceBuilder — the engine's write interface for producing traces.

The builder enforces the structural invariants SKIP relies on:

* every kernel launch gets a fresh correlation id shared by exactly one
  launch call and one kernel event;
* operators form a properly nested stack per thread (parents strictly
  contain children in time);
* iteration marks do not overlap.

Multi-device runs record events from several CPU dispatch threads (one
``tid`` per thread) against several GPU devices/streams; the builder keeps
one operator stack per thread so concurrent dispatchers cannot corrupt each
other's nesting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import TraceError
from repro.trace.events import (
    KernelEvent,
    LAUNCH_KERNEL,
    OperatorEvent,
    RuntimeEvent,
)
from repro.trace.trace import Trace


@dataclass
class _OpenOperator:
    event: OperatorEvent


class TraceBuilder:
    """Incrementally builds a :class:`Trace` with validated nesting."""

    def __init__(self, metadata: dict | None = None, tid: int = 1) -> None:
        self._trace = Trace(metadata=dict(metadata or {}))
        self._tid = tid
        self._correlation = itertools.count(1)
        self._seq = itertools.count(0)
        self._stacks: dict[int, list[_OpenOperator]] = {}
        self._iteration_start: float | None = None

    def _stack_for(self, tid: int) -> list[_OpenOperator]:
        return self._stacks.setdefault(tid, [])

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def begin_operator(self, name: str, ts: float,
                       tid: int | None = None) -> OperatorEvent:
        """Open an operator scope; duration is set on :meth:`end_operator`."""
        tid = self._tid if tid is None else tid
        stack = self._stack_for(tid)
        if stack and ts < stack[-1].event.ts:
            raise TraceError(
                f"operator {name!r} begins at {ts} before its parent "
                f"{stack[-1].event.name!r} at {stack[-1].event.ts}"
            )
        event = OperatorEvent(name=name, ts=ts, dur=0.0, tid=tid, seq=next(self._seq))
        stack.append(_OpenOperator(event))
        self._trace.add(event)
        return event

    def end_operator(self, event: OperatorEvent, ts_end: float) -> None:
        """Close the innermost operator scope on the event's thread."""
        stack = self._stack_for(event.tid)
        if not stack or stack[-1].event is not event:
            raise TraceError(f"operator {event.name!r} is not the innermost open scope")
        if ts_end < event.ts:
            raise TraceError(f"operator {event.name!r} ends at {ts_end} before start {event.ts}")
        event.dur = ts_end - event.ts
        stack.pop()
        if stack:
            parent = stack[-1].event
            # A child may not outlive its parent; the engine guarantees this,
            # but a builder bug would silently corrupt SKIP's dependency graph.
            if ts_end < parent.ts:
                raise TraceError("child ends before parent begins")

    # ------------------------------------------------------------------
    # Runtime calls & kernels
    # ------------------------------------------------------------------
    def launch_kernel(
        self,
        call_ts: float,
        call_dur: float,
        kernel_name: str,
        kernel_ts: float,
        kernel_dur: float,
        stream: int = 7,
        device: int = 0,
        tid: int | None = None,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        call_name: str = LAUNCH_KERNEL,
    ) -> tuple[RuntimeEvent, KernelEvent]:
        """Record a launch call and its kernel under one correlation id."""
        if kernel_ts < call_ts:
            raise TraceError(
                f"kernel {kernel_name!r} starts at {kernel_ts} before its "
                f"launch call at {call_ts}"
            )
        correlation = next(self._correlation)
        call = RuntimeEvent(
            name=call_name,
            ts=call_ts,
            dur=call_dur,
            tid=self._tid if tid is None else tid,
            correlation_id=correlation,
        )
        kernel = KernelEvent(
            name=kernel_name,
            ts=kernel_ts,
            dur=kernel_dur,
            tid=0,
            correlation_id=correlation,
            stream=stream,
            device=device,
            flops=flops,
            bytes_moved=bytes_moved,
        )
        self._trace.add(call)
        self._trace.add(kernel)
        return call, kernel

    def runtime_call(self, name: str, ts: float, dur: float,
                     tid: int | None = None) -> RuntimeEvent:
        """Record a non-launching runtime call (e.g. a synchronize)."""
        event = RuntimeEvent(name=name, ts=ts, dur=dur,
                             tid=self._tid if tid is None else tid)
        self._trace.add(event)
        return event

    def enqueue_graph_kernel(
        self,
        kernel_name: str,
        kernel_ts: float,
        kernel_dur: float,
        stream: int = 7,
        device: int = 0,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
    ) -> KernelEvent:
        """Record a kernel enqueued by a CUDA-graph replay.

        Graph-replayed kernels have no individual launch call; they carry a
        unique *negative* correlation id so analyses can tell them apart.
        """
        correlation = -next(self._correlation)
        kernel = KernelEvent(
            name=kernel_name,
            ts=kernel_ts,
            dur=kernel_dur,
            tid=0,
            correlation_id=correlation,
            stream=stream,
            device=device,
            flops=flops,
            bytes_moved=bytes_moved,
        )
        self._trace.add(kernel)
        return kernel

    # ------------------------------------------------------------------
    # Iterations
    # ------------------------------------------------------------------
    def begin_iteration(self, ts: float) -> None:
        if self._iteration_start is not None:
            raise TraceError("iteration already open")
        self._iteration_start = ts

    def end_iteration(self, ts_end: float) -> None:
        if self._iteration_start is None:
            raise TraceError("no open iteration")
        self._trace.mark_iteration(self._iteration_start, ts_end)
        self._iteration_start = None

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finish(self) -> Trace:
        """Close the builder and return the validated trace."""
        for stack in self._stacks.values():
            if stack:
                names = [open_op.event.name for open_op in stack]
                raise TraceError(f"unclosed operator scopes: {names}")
        if self._iteration_start is not None:
            raise TraceError("unclosed iteration")
        self._trace.sort()
        self._trace.validate()
        return self._trace
