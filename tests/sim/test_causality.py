"""Causality logging: event capture, serialization, and parity locks."""

import pytest

from repro.errors import AnalysisError
from repro.sim import CausalityLog, SimCore
from repro.sim.causality import CAUSALITY_SCHEMA


def _kinds(log):
    return [e.kind for e in log.events]


# ----------------------------------------------------------------------
# Scheduling events
# ----------------------------------------------------------------------
def test_timer_process_logs_spawn_resume_suspend_exit():
    log = CausalityLog()
    core = SimCore(causality=log)

    def ticker():
        yield ("at", 100.0)
        yield ("at", 250.0)

    core.spawn(ticker())
    core.run()
    assert _kinds(log) == [
        "spawn", "resume", "suspend", "resume", "suspend", "resume", "exit"]
    assert all(e.pid == 0 for e in log.events)
    resumes = [e for e in log.events if e.kind == "resume"]
    assert [e.time_ns for e in resumes] == [0.0, 100.0, 250.0]
    assert all(e.tie is not None for e in resumes)
    suspends = [e for e in log.events if e.kind == "suspend"]
    assert [e.key for e in suspends] == ["at", "at"]


def test_pids_are_dense_in_spawn_order():
    log = CausalityLog()
    core = SimCore(causality=log)

    def nop():
        return
        yield

    first, second = nop(), nop()
    core.spawn(second, at_ns=10.0)
    core.spawn(first, at_ns=0.0)
    core.run()
    assert log.pid_of(second) == 0
    assert log.pid_of(first) == 1
    spawns = [e for e in log.events if e.kind == "spawn"]
    assert [e.pid for e in spawns] == [0, 1]


def test_sequence_numbers_are_strictly_increasing():
    log = CausalityLog()
    core = SimCore(causality=log)

    def ticker():
        yield ("at", 5.0)

    core.spawn(ticker())
    core.spawn(ticker())
    core.run()
    seqs = [e.seq for e in log.events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


# ----------------------------------------------------------------------
# Rendezvous events
# ----------------------------------------------------------------------
def test_rendezvous_logs_joins_release_and_wakes():
    log = CausalityLog()
    core = SimCore(causality=log)

    def party(ready_ns):
        rdv = core.rendezvous(("barrier", 0), parties=2)
        yield ("join", rdv, ready_ns)

    core.spawn(party(100.0))
    core.spawn(party(400.0))
    core.run()
    joins = [e for e in log.events if e.kind == "join"]
    assert [e.time_ns for e in joins] == [100.0, 400.0]
    assert all(e.parties == 2 for e in joins)
    releases = [e for e in log.events if e.kind == "release"]
    # Max-law: the release lands at the slowest party's ready time.
    assert [e.time_ns for e in releases] == [400.0]
    assert releases[0].key == joins[0].key
    wakes = [e for e in log.events if e.kind == "wake"]
    assert len(wakes) == 2
    # The completing joiner (pid 1) is the actor performing both wakes.
    assert {e.src for e in wakes} == {1}
    assert {e.pid for e in wakes} == {0, 1}


# ----------------------------------------------------------------------
# Resource events
# ----------------------------------------------------------------------
def test_kv_resource_logs_acquire_grant_free():
    from repro.kvcache.pool import BlockPool
    from repro.kvcache.resource import KvCacheResource

    log = CausalityLog()
    core = SimCore(causality=log)
    resource = KvCacheResource(BlockPool(capacity_blocks=4), name="kv0")
    core.add_kv_resource(resource)

    def holder():
        yield ("acquire", resource, "seq-a", 3, 10.0)
        yield ("release", resource, "seq-a", 50.0)

    def waiter():
        yield ("acquire", resource, "seq-b", 2, 20.0)

    core.spawn(holder())
    core.spawn(waiter())
    core.run()
    assert [e.kind for e in log.events if e.pid < 0] == ["resource"]
    resource_event = log.events[0]
    assert (resource_event.key, resource_event.blocks) == ("kv0", 4)
    grants = [e for e in log.events if e.kind == "grant"]
    assert [(e.owner, e.blocks, e.time_ns) for e in grants] == [
        ("seq-a", 3, 10.0), ("seq-b", 2, 50.0)]
    frees = [e for e in log.events if e.kind == "free"]
    assert [(e.owner, e.blocks, e.time_ns) for e in frees] == [
        ("seq-a", 3, 50.0)]
    # The blocked grant is performed by the releasing process (pid 0) on
    # behalf of the waiter (pid 1): actor attribution the hb pass uses.
    assert grants[1].pid == 1 and grants[1].src == 0


def test_stream_and_link_occupancy_intervals():
    from repro.hardware.interconnect import NVLINK4_P2P
    from repro.sim import LinkResource

    log = CausalityLog()
    core = SimCore(causality=log)
    core.add_device()
    link = core.set_link(LinkResource(spec=NVLINK4_P2P))
    stream = core.devices[0].streams[0]
    start, end = stream.submit(100.0, 40.0)
    link.record(25.0, start_ns=end)
    occupancies = [e for e in log.events if e.kind == "occupy"]
    assert [(e.key, e.time_ns, e.end_ns) for e in occupancies] == [
        ("device0.stream7", start, end), ("link", end, end + 25.0)]


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def test_json_roundtrip(tmp_path):
    log = CausalityLog()
    core = SimCore(causality=log)

    def party(ready_ns):
        rdv = core.rendezvous(("pp.act", 0, 1), parties=2)
        yield ("join", rdv, ready_ns)

    core.spawn(party(10.0))
    core.spawn(party(30.0))
    core.run()
    path = tmp_path / "causality.json"
    log.dump(path)
    loaded = CausalityLog.load(path)
    assert loaded.events == log.events

    payload = log.to_dict()
    assert payload["schema"] == CAUSALITY_SCHEMA
    assert CausalityLog.from_dict(payload).events == log.events


def test_from_dict_rejects_wrong_schema_and_bad_kinds():
    with pytest.raises(AnalysisError, match="schema"):
        CausalityLog.from_dict({"schema": "bogus/v9", "events": []})
    log = CausalityLog()
    log.emit("resume", 0.0, pid=0)
    payload = log.to_dict()
    payload["events"][0]["kind"] = "teleport"
    with pytest.raises(AnalysisError, match="kind"):
        CausalityLog.from_dict(payload)


# ----------------------------------------------------------------------
# Parity locks: logging off is the seed behavior, logging on changes
# nothing observable
# ----------------------------------------------------------------------
def _serving_rows():
    from repro.serving.runtime import simulate_serving
    from repro.serving.continuous import ContinuousBatchPolicy
    from repro.serving.latency import LatencyModel
    from repro.hardware import get_platform
    from repro.workloads import GPT2
    from tests.scenarios import MAX_ACTIVE, mixed_stream

    def run(causality=None):
        result = simulate_serving(
            mixed_stream(), GPT2,
            LatencyModel(platform=get_platform("GH200")),
            policy=ContinuousBatchPolicy(max_active=MAX_ACTIVE),
            causality=causality)
        return [(o.request.request_id, o.ttft_ns, o.completion_ns,
                 o.batch_size, o.queue_ns, o.replica)
                for o in result.outcomes]

    return run


def test_serving_outcomes_identical_with_causality_on():
    run = _serving_rows()
    log = CausalityLog()
    assert run() == run(causality=log)
    assert log.events, "causality run must actually record events"


def test_engine_run_identical_with_causality_on():
    from repro.engine.executor import run
    from repro.engine.pp import PPConfig
    from repro.hardware import get_platform
    from repro.workloads import GPT2

    def result(causality=None):
        outcome = run(GPT2, get_platform("GH200"), batch_size=2,
                      seq_len=128, pp=PPConfig(stages=2, microbatches=2),
                      causality=causality)
        return (outcome.trace.span, len(outcome.trace.kernels))

    log = CausalityLog()
    assert result() == result(causality=log)
    assert "join" in {e.kind for e in log.events}
