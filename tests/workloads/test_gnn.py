"""GCN workload."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import INTEL_H100
from repro.skip import KernelRegime, classify_kernels
from repro.workloads.gnn import GCN_LARGE, GCN_MEDIUM, GcnConfig, build_gcn_graph


def test_graph_structure():
    graph = build_gcn_graph(GCN_MEDIUM)
    labels = [op.label for op in graph.ops]
    aggregates = [l for l in labels if l.endswith(".aggregate")]
    projects = [l for l in labels if l.endswith(".project")]
    assert len(aggregates) == GCN_MEDIUM.layers
    assert len(projects) == GCN_MEDIUM.layers
    assert labels[-1] == "predict.softmax"


def test_layer_widths_chain():
    widths = GCN_MEDIUM.layer_widths()
    assert widths[0][0] == GCN_MEDIUM.in_features
    assert widths[-1][1] == GCN_MEDIUM.num_classes
    for (_, out_prev), (in_next, _) in zip(widths, widths[1:]):
        assert out_prev == in_next


def test_spmm_traffic_scales_with_edges():
    sparse = GcnConfig(avg_degree=4)
    dense = GcnConfig(avg_degree=64)
    sparse_bytes = build_gcn_graph(sparse).total_bytes
    dense_bytes = build_gcn_graph(dense).total_bytes
    assert dense_bytes > 3 * sparse_bytes


def test_batching_graphs_scales_work():
    one = build_gcn_graph(GCN_MEDIUM, 1).total_flops
    four = build_gcn_graph(GCN_MEDIUM, 4).total_flops
    assert four == pytest.approx(4 * one, rel=1e-6)


def test_large_config():
    assert GCN_LARGE.num_edges == 32_000_000
    assert len(build_gcn_graph(GCN_LARGE)) > len(build_gcn_graph(GCN_MEDIUM))


def test_validation():
    with pytest.raises(ConfigurationError):
        GcnConfig(layers=0)
    with pytest.raises(ConfigurationError):
        build_gcn_graph(GCN_MEDIUM, 0)


def test_spmm_kernels_are_memory_bound(intel_profiler):
    """The GCN balance point: aggregation is bandwidth-limited."""
    result = intel_profiler.profile_graph(build_gcn_graph(GCN_MEDIUM))
    roofline = classify_kernels(result.trace, INTEL_H100.gpu)
    spmm_points = [p for p in roofline.points if p.flops and p.bytes_moved
                   and p.arithmetic_intensity < 4]
    assert spmm_points
    assert all(p.regime is KernelRegime.MEMORY_BOUND for p in spmm_points)
