"""RAG serving: retrieval + generation TTFT vs batch size (Section II-A).

Builds a synthetic document corpus, indexes it with the brute-force and IVF
vector indexes, and measures the user-visible time-to-first-token of the
full RAG flow (retrieve top-k chunks, prefill question + context) across
generation batch sizes on two platforms.

Usage:
    python examples/rag_serving.py
"""

import numpy as np

from repro import GH200, INTEL_H100, LLAMA_3_2_1B
from repro.retrieval import BruteForceIndex, IVFIndex
from repro.serving import LatencyModel, RagPipeline
from repro.units import ns_to_ms
from repro.viz import render_table

DIM = 96
CORPUS_SIZE = 4096
BATCHES = (1, 4, 16, 64)


def build_indexes(rng: np.random.Generator):
    corpus = rng.normal(size=(CORPUS_SIZE, DIM)).astype(np.float32)
    brute = BruteForceIndex(DIM)
    brute.add(corpus)
    ivf = IVFIndex(DIM, n_cells=32, nprobe=4, seed=0)
    ivf.train(corpus)
    ivf.add(corpus)
    return brute, ivf


def main() -> None:
    rng = np.random.default_rng(7)
    brute, ivf = build_indexes(rng)

    rows = []
    for platform in (INTEL_H100, GH200):
        latency = LatencyModel(platform)
        for index_name, index in (("brute-force", brute), ("IVF", ivf)):
            pipeline = RagPipeline(index, LLAMA_3_2_1B, latency,
                                   tokens_per_chunk=128, top_k=4)
            for batch in BATCHES:
                queries = rng.normal(size=(batch, DIM)).astype(np.float32)
                result = pipeline.query(queries, question_tokens=64,
                                        output_tokens=128)
                rows.append([
                    platform.name, index_name, batch,
                    f"{result.retrieval_ns / 1e6:.2f}",
                    f"{ns_to_ms(result.ttft_ns):.1f}",
                    f"{ns_to_ms(result.user_ttft_ns):.1f}",
                ])
    print(render_table(
        ["platform", "index", "batch", "retrieval (ms)", "gen TTFT (ms)",
         "user TTFT (ms)"],
        rows, title="RAG flow: retrieve 4x128-token chunks, then generate"))

    print("\nTakeaway: generation prefill dominates user TTFT and grows with")
    print("the batch size the server chooses — large batches boost")
    print("throughput but directly tax each user's time-to-first-token,")
    print("and below the crossover batch the LC system answers faster.")


if __name__ == "__main__":
    main()
