"""Extension — MI300A tightly-coupled projection (the paper's future work).

The paper plans to extend the study to AMD's MI300A (Section VI). The
catalog carries a projection: unified physical HBM (no explicit transfers),
on-package Infinity Fabric (cheapest launch path), a strong x86 CPU, and
CDNA3-class compute. The projection predicts the TC design combines the LC
systems' low-batch latency with the CC system's large-batch throughput.
"""

from _harness import BATCH_LADDER, BENCH_ENGINE, report, run_once
from repro.analysis import find_crossover, run_batch_sweep
from repro.hardware import GH200, INTEL_H100, MI300A
from repro.units import ns_to_ms
from repro.viz import render_table
from repro.workloads import LLAMA_3_2_1B


def _sweep():
    return run_batch_sweep(LLAMA_3_2_1B, (INTEL_H100, GH200, MI300A),
                           BATCH_LADDER, seq_len=512,
                           engine_config=BENCH_ENGINE)


def test_ext_mi300a_projection(benchmark):
    sweep = run_once(benchmark, _sweep)
    rows = [[platform, *[f"{ns_to_ms(v):.1f}" for v in
                         sweep.ttft_series(platform)]]
            for platform in ("Intel+H100", "GH200", "MI300A")]
    report(render_table(
        ["platform \\ BS", *[str(b) for b in BATCH_LADDER]], rows,
        title="Extension: Llama-3.2-1B TTFT (ms) with the MI300A projection"))

    # TC projection: never loses the low-batch race the way GH200 does...
    bs1 = {p: sweep.point(p, 1).ttft_ns for p in ("Intel+H100", "GH200",
                                                  "MI300A")}
    assert bs1["MI300A"] < bs1["GH200"]
    assert bs1["MI300A"] < 1.3 * bs1["Intel+H100"]
    # ...while keeping (and extending) the CC system's large-batch win.
    vs_intel = find_crossover(sweep, "MI300A", "Intel+H100")
    assert vs_intel.found and vs_intel.batch_size <= 4
    assert vs_intel.speedup_at(sweep.batch_sizes, 64) > 1.8
    vs_gh200 = find_crossover(sweep, "MI300A", "GH200")
    assert vs_gh200.speedup_at(sweep.batch_sizes, 1) > 1.5
