"""Calibration sensitivity analysis."""

import pytest

from repro.analysis import Knob, metric_sensitivity, sensitivity_sweep
from repro.errors import AnalysisError
from repro.hardware import GH200, INTEL_H100
from repro.workloads import BERT_BASE


def test_cpu_bound_latency_is_cpu_elastic():
    """At BS=1 (CPU-bound), latency tracks the CPU dispatch knob almost 1:1
    and barely reacts to GPU knobs."""
    dispatch = metric_sensitivity(BERT_BASE, GH200, Knob.CPU_DISPATCH,
                                  batch_size=1)
    gpu = metric_sensitivity(BERT_BASE, GH200, Knob.GPU_COMPUTE, batch_size=1)
    assert dispatch.elasticity < -0.5      # faster CPU -> lower latency
    assert abs(gpu.elasticity) < 0.15


def test_gpu_bound_latency_is_gpu_elastic():
    """At BS=128 the same model flips: GPU knobs dominate."""
    dispatch = metric_sensitivity(BERT_BASE, INTEL_H100, Knob.CPU_DISPATCH,
                                  batch_size=128)
    compute = metric_sensitivity(BERT_BASE, INTEL_H100, Knob.GPU_COMPUTE,
                                 batch_size=128)
    bandwidth = metric_sensitivity(BERT_BASE, INTEL_H100, Knob.GPU_BANDWIDTH,
                                   batch_size=128)
    assert abs(dispatch.elasticity) < 0.1
    # BERT's eager attention traffic makes the BS=128 point mostly
    # bandwidth-elastic, with a smaller compute share.
    assert compute.elasticity < -0.1
    assert bandwidth.elasticity < -0.4
    # Compute and bandwidth elasticities roughly partition the roofline.
    assert -1.3 < compute.elasticity + bandwidth.elasticity < -0.7


def test_runtime_call_knob_is_minor():
    """The launch-call share of CPU time is small, so the Table V knob has
    low elasticity — the headline results don't hinge on it."""
    sensitivity = metric_sensitivity(BERT_BASE, INTEL_H100,
                                     Knob.CPU_RUNTIME_CALL, batch_size=1)
    assert -0.25 < sensitivity.elasticity <= 0.0


def test_sweep_covers_all_knobs():
    results = sensitivity_sweep(BERT_BASE, GH200, batch_size=1)
    assert {s.knob for s in results} == set(Knob)
    assert all(s.platform == "GH200" for s in results)


def test_elasticity_direction_consistency():
    sensitivity = metric_sensitivity(BERT_BASE, GH200, Knob.CPU_DISPATCH,
                                     batch_size=1)
    # Speeding the CPU up must not increase latency, slowing it must not
    # decrease it.
    assert sensitivity.perturbed_up <= sensitivity.baseline + 1e-6
    assert sensitivity.perturbed_down >= sensitivity.baseline - 1e-6


def test_perturbation_validation():
    with pytest.raises(AnalysisError):
        metric_sensitivity(BERT_BASE, GH200, Knob.CPU_DISPATCH,
                           perturbation=0.0)
