"""Platform crossover points (Section V-D, Figs. 10a/11a).

A crossover point (CP) is the batch size at which one platform's TTFT drops
below another's. The paper reads CPs off the latency curves: BS=16 for
encoders, BS=4 for GPT-2, ~BS=1 for Llama-3.2-1B (GH200 vs the LC systems).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sweep import SweepResult
from repro.errors import AnalysisError


@dataclass(frozen=True)
class CrossoverPoint:
    """Where ``challenger`` starts beating ``baseline`` on TTFT."""

    challenger: str
    baseline: str
    batch_size: int | None     # None when the challenger never wins
    speedups: tuple[float, ...]  # baseline TTFT / challenger TTFT per batch

    @property
    def found(self) -> bool:
        return self.batch_size is not None

    def speedup_at(self, sweep_batch_sizes: tuple[int, ...],
                   batch_size: int) -> float:
        """Challenger speedup over baseline at one swept batch size."""
        try:
            index = sweep_batch_sizes.index(batch_size)
        except ValueError:
            raise AnalysisError(f"batch size {batch_size} was not swept") from None
        return self.speedups[index]


def find_crossover(sweep: SweepResult, challenger: str,
                   baseline: str) -> CrossoverPoint:
    """Locate the first swept batch size where ``challenger`` wins.

    Args:
        sweep: A completed batch sweep containing both platforms.
        challenger: Platform expected to win at scale (e.g. "GH200").
        baseline: Platform to compare against (e.g. "Intel+H100").
    """
    if challenger == baseline:
        raise AnalysisError("challenger and baseline must differ")
    challenger_ttft = sweep.ttft_series(challenger)
    baseline_ttft = sweep.ttft_series(baseline)
    speedups = tuple(b / c for b, c in zip(baseline_ttft, challenger_ttft))
    crossover = None
    for batch_size, speedup in zip(sweep.batch_sizes, speedups):
        if speedup > 1.0:
            crossover = batch_size
            break
    return CrossoverPoint(
        challenger=challenger,
        baseline=baseline,
        batch_size=crossover,
        speedups=speedups,
    )
