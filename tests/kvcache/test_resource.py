"""KvCacheResource: blocking acquire/release verbs on the sim core."""

import pytest

from repro.errors import SimulationError
from repro.kvcache import BlockPool, KvCacheResource
from repro.sim import SimCore


def make_resource(core: SimCore, capacity: int) -> KvCacheResource:
    return core.add_kv_resource(KvCacheResource(BlockPool(capacity)))


def test_acquire_grants_immediately_when_pool_has_room():
    core = SimCore()
    kv = make_resource(core, 4)
    resumed = []

    def process():
        t = yield ("acquire", kv, "a", 3, 100.0)
        resumed.append(t)

    core.spawn(process())
    core.run()
    assert resumed == [100.0]
    assert kv.pool.held("a") == 3


def test_acquire_blocks_until_release():
    core = SimCore()
    kv = make_resource(core, 4)
    order = []

    def holder():
        yield ("acquire", kv, "a", 3, 10.0)
        order.append(("a-granted", 10.0))
        yield ("at", 500.0)  # hold the blocks until t=500
        t = yield ("release", kv, "a", 500.0)
        order.append(("a-released", t))

    def waiter():
        t = yield ("acquire", kv, "b", 3, 20.0)
        order.append(("b-granted", t))
        yield ("release", kv, "b", t)

    core.spawn(holder())
    core.spawn(waiter(), at_ns=15.0)
    core.run()
    # b wants 3 of 4 blocks while a holds 3: parked until a's release at 500.
    assert ("b-granted", 500.0) in order
    assert kv.pool.allocated == 0


def test_grants_are_fifo_even_when_later_requests_fit():
    core = SimCore()
    kv = make_resource(core, 4)
    granted = []

    def holder():
        yield ("acquire", kv, "h", 3, 0.0)
        yield ("at", 1000.0)
        yield ("release", kv, "h", 1000.0)

    def big():
        t = yield ("acquire", kv, "big", 3, 100.0)
        granted.append(("big", t))
        yield ("release", kv, "big", t + 1.0)

    def small():
        # One free block exists, but "small" arrived after "big": FIFO says
        # it must not jump the queue.
        t = yield ("acquire", kv, "small", 1, 200.0)
        granted.append(("small", t))
        yield ("release", kv, "small", t + 1.0)

    core.spawn(holder())
    core.spawn(big(), at_ns=100.0)
    core.spawn(small(), at_ns=200.0)
    core.run()
    assert [name for name, _ in granted] == ["big", "small"]
    # Neither jumped the queue: both waited for the holder's release.
    assert all(t == 1000.0 for _, t in granted)


def test_impossible_acquire_is_an_error():
    core = SimCore()
    kv = make_resource(core, 2)

    def process():
        yield ("acquire", kv, "a", 3, 0.0)

    core.spawn(process())
    with pytest.raises(SimulationError, match="never be granted"):
        core.run()


def test_starved_waiters_are_reported_as_deadlock():
    core = SimCore()
    kv = make_resource(core, 4)

    def holder():
        yield ("acquire", kv, "a", 3, 0.0)
        # Never releases.

    def waiter():
        yield ("acquire", kv, "b", 3, 10.0)

    core.spawn(holder())
    core.spawn(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        core.run()


def test_unbound_resource_refuses_requests():
    kv = KvCacheResource(BlockPool(2))

    def process():
        yield  # pragma: no cover - never driven

    with pytest.raises(SimulationError, match="not bound"):
        kv.acquire_request(process(), "a", 1, 0.0)


def test_sync_side_try_acquire_and_release():
    core = SimCore()
    kv = make_resource(core, 3)
    assert kv.try_acquire("a", 2)
    assert not kv.try_acquire("b", 2)
    assert kv.release("a", now=0.0) == 2
    assert kv.try_acquire("b", 2)
