"""Kernel-fusion recommendation and idealized speedup (Eqs. 7-8).

For each candidate chain length L the recommender reports the paper's four
Fig. 7 quantities — unique candidates, total instances, deterministic (PS=1)
fused chains, and eager launch count — and the idealized speedup from pure
launch savings:

    K_fused = K_eager - C_fused * (L - 1)            (Eq. 7)
    Speedup = K_eager / K_fused                      (Eq. 8)

The idealization assumes constant launch overhead per kernel and no other
performance effects — exactly the paper's assumption. The
``PROXIMITY_FUSED`` engine mode exists to check that assumption end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.fusion_apply import FusionPlan
from repro.errors import AnalysisError
from repro.skip.proximity import (
    ChainStats,
    kernel_segments,
    mine_chains,
    select_nonoverlapping,
)
from repro.trace.trace import Trace

#: The paper's Fig. 7/8 chain-length ladder.
DEFAULT_CHAIN_LENGTHS: tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class FusionAnalysis:
    """Fusion-recommendation statistics for one chain length.

    ``fused_chain_count`` is the paper's ``C_fused`` — the number of distinct
    deterministic chains that survive non-overlapping selection (Eq. 7 counts
    chains, not instances; Fig. 7c's "kernels fused with PS=1" is
    ``C_fused * L``). ``fused_instances`` additionally reports how many
    *instances* of those chains occur per iteration — what an implementation
    (the engine's PROXIMITY_FUSED mode) actually fuses.
    """

    length: int
    unique_candidates: int
    total_instances: int
    deterministic_chains: tuple[ChainStats, ...]
    fused_chain_count: float      # C_fused (Eq. 7): distinct usable chains
    fused_instances: float        # chain instances per iteration (extension)
    kernels_fused: float          # C_fused * L (Fig. 7c)
    k_eager: float                # launches per iteration, eager
    k_fused: float                # launches per iteration after fusion (Eq. 7)

    @property
    def ideal_speedup(self) -> float:
        """Eq. 8, pure launch-count savings."""
        if self.k_fused <= 0:
            raise AnalysisError("K_fused must be positive")
        return self.k_eager / self.k_fused

    @property
    def instance_k_fused(self) -> float:
        """Launches per iteration when every chain instance is fused."""
        return self.k_eager - self.fused_instances * (self.length - 1)

    @property
    def instance_speedup(self) -> float:
        """Idealized speedup when every chain instance is fused (extension)."""
        if self.instance_k_fused <= 0:
            raise AnalysisError("instance K_fused must be positive")
        return self.k_eager / self.instance_k_fused

    def plan(self) -> FusionPlan | None:
        """An engine-executable plan for the recommended chains."""
        selected = tuple(c.chain for c in self.deterministic_chains)
        if not selected:
            return None
        return FusionPlan(chains=selected)


def analyze_trace(trace: Trace,
                  lengths: Sequence[int] = DEFAULT_CHAIN_LENGTHS,
                  threshold: float = 1.0) -> list[FusionAnalysis]:
    """Run the full recommendation analysis over a trace."""
    return analyze_segments(kernel_segments(trace), lengths, threshold)


def analyze_segments(segments: Sequence[Sequence[str]],
                     lengths: Sequence[int] = DEFAULT_CHAIN_LENGTHS,
                     threshold: float = 1.0) -> list[FusionAnalysis]:
    """Recommendation analysis over prepared kernel segments.

    Args:
        segments: Kernel-name sequences (one per iteration).
        lengths: Chain lengths to analyze.
        threshold: Minimum proximity score T for a recommended chain.
    """
    if not segments:
        raise AnalysisError("no segments to analyze")
    k_eager = sum(len(s) for s in segments) / len(segments)
    results: list[FusionAnalysis] = []
    for length in sorted(set(lengths)):
        mining = mine_chains(segments, length)
        deterministic = mining.deterministic(threshold)

        instance_total = 0
        distinct_total = 0
        for segment in segments:
            selected = select_nonoverlapping(segment, deterministic)
            instance_total += len(selected)
            distinct_total += len({chain for _, chain in selected})
        c_fused = distinct_total / len(segments)
        instances = instance_total / len(segments)
        k_fused = k_eager - c_fused * (length - 1)

        results.append(FusionAnalysis(
            length=length,
            unique_candidates=mining.unique_candidates,
            total_instances=mining.total_instances,
            deterministic_chains=tuple(deterministic),
            fused_chain_count=c_fused,
            fused_instances=instances,
            kernels_fused=c_fused * length,
            k_eager=k_eager,
            k_fused=k_fused,
        ))
    return results


def best_speedup(analyses: Sequence[FusionAnalysis]) -> FusionAnalysis:
    """The analysis with the highest idealized speedup."""
    if not analyses:
        raise AnalysisError("no analyses given")
    return max(analyses, key=lambda a: a.ideal_speedup)


def combined_plan(analyses: Sequence[FusionAnalysis],
                  max_chains: int | None = None) -> FusionPlan | None:
    """Merge deterministic chains across lengths into one engine plan.

    Longer chains take precedence during application (the engine matches
    longest-first), so combining lengths is safe.
    """
    chains: list[tuple[str, ...]] = []
    seen: set[tuple[str, ...]] = set()
    for analysis in sorted(analyses, key=lambda a: -a.length):
        for chain in analysis.deterministic_chains:
            if chain.chain not in seen:
                seen.add(chain.chain)
                chains.append(chain.chain)
            if max_chains is not None and len(chains) >= max_chains:
                break
        if max_chains is not None and len(chains) >= max_chains:
            break
    if not chains:
        return None
    return FusionPlan(chains=tuple(chains))
