"""Schedule hazard detector: static deadlock/ordering analysis.

Models the multi-device execution statically: each device's dispatch
process is an ordered list of kernel issues and collective joins
(:class:`DeviceSchedule`), exactly the order
:mod:`repro.engine.processes` walks at run time. Because the simulator's
collectives are rendezvous barriers released only when *every* party has
joined, hazards are decidable without running anything:

* a **wait-for cycle** between collectives (device A joins X before Y,
  device B joins Y before X) hangs both devices;
* a collective whose **declared party count** disagrees across devices, or
  does not match the devices that actually join it, either hangs or
  over-fills the rendezvous;
* any event scheduled **after** a hanging collective is unreachable;
* a collective placed on a **different stream** than the device's compute
  stream breaks the in-order guarantee the engine relies on (the collective
  could start before the kernels queued ahead of it).

:func:`schedules_from_lowering` derives the schedules the engine would run
for a sharded lowering, so the CLI can verify every catalog model's TP
schedule; tests hand-build adversarial schedules directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.findings import Finding, Severity, register_rule
from repro.engine.lowering import LoweredOp
from repro.engine.tp import TPConfig

S001 = register_rule(
    "S001", "schedule", "collective wait-for cycle (rendezvous deadlock)")
S002 = register_rule(
    "S002", "schedule", "collective party count disagrees across devices")
S003 = register_rule(
    "S003", "schedule", "collective participants do not match its party count")
S004 = register_rule(
    "S004", "schedule", "device joins the same collective twice")
S005 = register_rule(
    "S005", "schedule", "events unreachable behind a hanging collective")
S006 = register_rule(
    "S006", "schedule", "collective scheduled off the device's compute stream")

#: Stream id of every device's compute stream (mirrors ``SimCore.add_device``).
COMPUTE_STREAM = 7


@dataclass(frozen=True)
class KernelIssue:
    """One kernel submission in a device's static schedule."""

    name: str
    stream: int = COMPUTE_STREAM


@dataclass(frozen=True)
class CollectiveJoin:
    """One rendezvous join in a device's static schedule."""

    key: str
    parties: int
    stream: int = COMPUTE_STREAM


ScheduleItem = KernelIssue | CollectiveJoin


@dataclass
class DeviceSchedule:
    """The ordered work one device's dispatch process performs."""

    device: int
    items: list[ScheduleItem] = field(default_factory=list)

    def collectives(self) -> list[CollectiveJoin]:
        return [item for item in self.items
                if isinstance(item, CollectiveJoin)]


def schedules_from_lowering(lowered: list[LoweredOp],
                            tp: TPConfig) -> list[DeviceSchedule]:
    """The per-device schedules the engine runs for a sharded lowering.

    All devices execute the same op stream (TP devices are symmetric), so
    each device's schedule is the kernel stream with collectives keyed by
    their program position — the same rendezvous keys
    :func:`repro.engine.processes._device_dispatch_process` derives — plus
    the end-of-iteration barrier.
    """
    world = max(1, tp.degree)
    schedules = []
    for device in range(world):
        items: list[ScheduleItem] = []
        for op_index, lowered_op in enumerate(lowered):
            for kernel_index, kernel in enumerate(lowered_op.kernels):
                if kernel.is_collective and world > 1:
                    items.append(CollectiveJoin(
                        key=f"allreduce@{op_index}.{kernel_index}",
                        parties=world))
                else:
                    items.append(KernelIssue(kernel.name))
        if world > 1:
            items.append(CollectiveJoin(key="iteration-end", parties=world))
        schedules.append(DeviceSchedule(device=device, items=items))
    return schedules


def _find_cycle(edges: dict[str, set[str]]) -> list[str] | None:
    """One cycle in a directed graph, as a node path, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    path: list[str] = []

    def visit(node: str) -> list[str] | None:
        color[node] = GRAY
        path.append(node)
        for succ in sorted(edges.get(node, ())):
            if color.get(succ, WHITE) == GRAY:
                return path[path.index(succ):] + [succ]
            if color.get(succ, WHITE) == WHITE:
                cycle = visit(succ)
                if cycle is not None:
                    return cycle
        path.pop()
        color[node] = BLACK
        return None

    for node in sorted(edges):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


def check_schedules(schedules: list[DeviceSchedule]) -> list[Finding]:
    """Statically detect rendezvous/ordering hazards in device schedules."""
    findings: list[Finding] = []
    world = len(schedules)

    # Per-collective bookkeeping: declared party counts and joining devices.
    declared: dict[str, set[int]] = {}
    joiners: dict[str, list[int]] = {}
    for schedule in schedules:
        seen: set[str] = set()
        for item in schedule.collectives():
            declared.setdefault(item.key, set()).add(item.parties)
            joiners.setdefault(item.key, []).append(schedule.device)
            if item.key in seen:
                findings.append(Finding(
                    S004, Severity.ERROR, f"device {schedule.device}",
                    f"collective {item.key!r} joined twice by the same "
                    f"dispatch process"))
            seen.add(item.key)
            if item.stream != COMPUTE_STREAM:
                findings.append(Finding(
                    S006, Severity.ERROR, f"device {schedule.device}",
                    f"collective {item.key!r} scheduled on stream "
                    f"{item.stream}, not the compute stream "
                    f"{COMPUTE_STREAM}: in-order semantics with queued "
                    f"kernels are lost"))

    hanging: set[str] = set()
    for key in sorted(declared):
        parties = declared[key]
        if len(parties) > 1:
            findings.append(Finding(
                S002, Severity.ERROR, f"collective {key}",
                f"party count declared inconsistently across devices: "
                f"{sorted(parties)}"))
            hanging.add(key)
            continue
        (count,) = parties
        participants = len(joiners[key])
        if participants != count:
            findings.append(Finding(
                S003, Severity.ERROR, f"collective {key}",
                f"{participants} of {world} devices join but the "
                f"rendezvous waits for {count} parties"))
            if participants < count:
                hanging.add(key)

    # Wait-for graph: on each device, a later collective cannot be joined
    # until every earlier one released. A cycle means two devices block on
    # each other's collectives forever.
    edges: dict[str, set[str]] = {key: set() for key in declared}
    for schedule in schedules:
        order = [item.key for item in schedule.collectives()]
        for earlier, later in zip(order, order[1:]):
            if earlier != later:
                edges[earlier].add(later)
    cycle = _find_cycle(edges)
    if cycle is not None:
        findings.append(Finding(
            S001, Severity.ERROR, f"collective {cycle[0]}",
            "wait-for cycle between collectives: " + " -> ".join(cycle)))
        hanging.update(cycle[:-1])

    # Everything scheduled behind a hanging collective never executes.
    for schedule in schedules:
        for index, item in enumerate(schedule.items):
            if isinstance(item, CollectiveJoin) and item.key in hanging:
                behind = len(schedule.items) - index - 1
                if behind:
                    findings.append(Finding(
                        S005, Severity.ERROR, f"device {schedule.device}",
                        f"{behind} event(s) unreachable behind hanging "
                        f"collective {item.key!r}"))
                break
    return findings
