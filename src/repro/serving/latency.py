"""LatencyModel — cached engine-backed latencies for serving simulations.

Serving simulations need many latency lookups for the same (model, batch,
length) shapes; this wrapper memoizes engine runs and interpolates decode
steps across context lengths so a K-token generation does not need K engine
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import EngineConfig, RunResult, run
from repro.engine.modes import ExecutionMode
from repro.engine.pp import PPConfig
from repro.engine.tp import TPConfig
from repro.errors import ConfigurationError
from repro.hardware.platform import Platform
from repro.skip.metrics import metrics_from_tape
from repro.workloads.config import ModelConfig
from repro.workloads.graph import Phase

#: One engine iteration is enough for latency lookups (the engine is
#: deterministic), which keeps sweeps cheap.
_FAST_CONFIG = EngineConfig(iterations=1)


@dataclass
class LatencyModel:
    """Memoized TTFT / decode-step latencies on one platform."""

    platform: Platform
    mode: ExecutionMode = ExecutionMode.EAGER
    engine_config: EngineConfig = field(default=_FAST_CONFIG)
    #: Tensor-parallel topology for every engine run behind this model.
    #: Fixed per instance, so the latency caches need no extra key.
    tp: TPConfig | None = None
    #: Pipeline-parallel topology, likewise fixed per instance.
    pp: PPConfig | None = None
    _ttft_cache: dict = field(default_factory=dict, repr=False)
    _decode_cache: dict = field(default_factory=dict, repr=False)
    _result_cache: dict = field(default_factory=dict, repr=False)
    # CPU-share caches (host-contention runs): the dispatch-CPU busy time
    # of the same tape run the latency caches are built from. Keyed
    # identically, populated alongside the latency on every cache miss.
    _ttft_cpu_cache: dict = field(default_factory=dict, repr=False)
    _decode_cpu_cache: dict = field(default_factory=dict, repr=False)

    def run_for(self, model: ModelConfig, batch_size: int, seq_len: int,
                phase: Phase = Phase.PREFILL,
                context_len: int | None = None) -> RunResult:
        """The memoized engine run behind one (model, shape) lookup.

        Used by the trace exporter (:mod:`repro.obs.export`) to recover the
        full kernel-level trace of a serving step. Results are cached
        separately from the scalar latency caches, so ordinary serving
        simulations never retain traces.
        """
        key = (model.name, batch_size, seq_len, phase.value, context_len)
        if key not in self._result_cache:
            self._result_cache[key] = run(
                model, self.platform, batch_size=batch_size, seq_len=seq_len,
                phase=phase, context_len=context_len, mode=self.mode,
                config=self.engine_config, tp=self.tp, pp=self.pp)
        return self._result_cache[key]

    def ttft_ns(self, model: ModelConfig, batch_size: int, prompt_len: int) -> float:
        """Prefill latency (time-to-first-token)."""
        key = (model.name, batch_size, prompt_len)
        if key not in self._ttft_cache:
            # Tape mode: metrics_from_tape is bit-identical to computing
            # metrics from the full trace, so cached latencies (and every
            # serving result built on them) are unchanged by the fast path.
            result = run(model, self.platform, batch_size=batch_size,
                         seq_len=prompt_len, mode=self.mode,
                         config=self.engine_config, tp=self.tp, pp=self.pp,
                         tape=True)
            assert result.tape is not None
            metrics = metrics_from_tape(result.tape)
            self._ttft_cache[key] = metrics.inference_latency_ns
            self._ttft_cpu_cache[key] = metrics.cpu_busy_ns
        return self._ttft_cache[key]

    def ttft_cpu_ns(self, model: ModelConfig, batch_size: int,
                    prompt_len: int) -> float:
        """Dispatch-CPU busy time inside one prefill (the launch-tax share
        a host-contention run books on the finite core pool)."""
        key = (model.name, batch_size, prompt_len)
        if key not in self._ttft_cpu_cache:
            result = run(model, self.platform, batch_size=batch_size,
                         seq_len=prompt_len, mode=self.mode,
                         config=self.engine_config, tp=self.tp, pp=self.pp,
                         tape=True)
            assert result.tape is not None
            metrics = metrics_from_tape(result.tape)
            self._ttft_cpu_cache[key] = metrics.cpu_busy_ns
            # The engine is deterministic, so the latency this run
            # produced matches any earlier cache entry bit-for-bit.
            self._ttft_cache.setdefault(key, metrics.inference_latency_ns)
        return self._ttft_cpu_cache[key]

    def decode_step_ns(self, model: ModelConfig, batch_size: int,
                       context_len: int) -> float:
        """Latency of one decode step at a given KV-cache length."""
        key = (model.name, batch_size, context_len)
        if key not in self._decode_cache:
            result = run(model, self.platform, batch_size=batch_size,
                         seq_len=1, phase=Phase.DECODE, context_len=context_len,
                         mode=self.mode, config=self.engine_config, tp=self.tp,
                         pp=self.pp, tape=True)
            assert result.tape is not None
            metrics = metrics_from_tape(result.tape)
            self._decode_cache[key] = metrics.inference_latency_ns
            self._decode_cpu_cache[key] = metrics.cpu_busy_ns
        return self._decode_cache[key]

    def decode_step_cpu_ns(self, model: ModelConfig, batch_size: int,
                           context_len: int) -> float:
        """Dispatch-CPU busy time inside one decode step (see
        :meth:`ttft_cpu_ns`)."""
        key = (model.name, batch_size, context_len)
        if key not in self._decode_cpu_cache:
            result = run(model, self.platform, batch_size=batch_size,
                         seq_len=1, phase=Phase.DECODE,
                         context_len=context_len, mode=self.mode,
                         config=self.engine_config, tp=self.tp,
                         pp=self.pp, tape=True)
            assert result.tape is not None
            metrics = metrics_from_tape(result.tape)
            self._decode_cpu_cache[key] = metrics.cpu_busy_ns
            self._decode_cache.setdefault(key, metrics.inference_latency_ns)
        return self._decode_cpu_cache[key]

    def generation_ns(self, model: ModelConfig, batch_size: int,
                      prompt_len: int, output_tokens: int) -> float:
        """End-to-end latency: prefill plus ``output_tokens`` decode steps.

        Decode cost is integrated with a two-point trapezoid over the context
        growth (decode latency is near-affine in context length).
        """
        if output_tokens < 0:
            raise ConfigurationError("output_tokens must be non-negative")
        total = self.ttft_ns(model, batch_size, prompt_len)
        if output_tokens == 0:
            return total
        first = self.decode_step_ns(model, batch_size, prompt_len + 1)
        last = self.decode_step_ns(model, batch_size, prompt_len + output_tokens)
        return total + output_tokens * (first + last) / 2.0

    def tokens_per_second(self, model: ModelConfig, batch_size: int,
                          prompt_len: int, output_tokens: int) -> float:
        """Aggregate generated-token throughput for a full batch."""
        total_ns = self.generation_ns(model, batch_size, prompt_len, output_tokens)
        if total_ns <= 0:
            raise ConfigurationError("generation latency must be positive")
        return batch_size * output_tokens / (total_ns / 1e9)
