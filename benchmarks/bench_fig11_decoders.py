"""Fig. 11 — prefill TTFT, GPU idle, and CPU idle vs batch size for the
decoder models (GPT-2, Llama-3.2-1B) on all three platforms.

Paper anchors: GPT-2 crossover at ~BS=4 (ours lands at BS=8); Llama-3.2-1B
1.9x/2.7x speedups at BS=16; decoder balanced regions LC BS=2-4 vs CC
BS=4-8.
"""

import pytest

from _harness import BATCH_LADDER, BENCH_ENGINE, report, run_once
from repro.analysis import find_balanced_region, find_crossover, run_batch_sweep
from repro.hardware import AMD_A100, GH200, INTEL_H100
from repro.units import ns_to_ms
from repro.viz import render_table
from repro.workloads import GPT2, LLAMA_3_2_1B

PLATFORMS = ("Intel+H100", "AMD+A100", "GH200")


def _sweep(model):
    return run_batch_sweep(model, (INTEL_H100, AMD_A100, GH200), BATCH_LADDER,
                           seq_len=512, engine_config=BENCH_ENGINE)


def _render(model_name, sweep):
    blocks = []
    for panel, series_fn in (
        ("(a) TTFT (ms)", sweep.ttft_series),
        ("(b) GPU idle (ms)", sweep.gpu_idle_series),
        ("(c) CPU idle (ms)", sweep.cpu_idle_series),
    ):
        rows = [[platform, *[f"{ns_to_ms(v):.2f}" for v in series_fn(platform)]]
                for platform in PLATFORMS]
        blocks.append(render_table(
            ["platform \\ BS", *[str(b) for b in BATCH_LADDER]], rows,
            title=f"Fig. 11{panel[1]} {panel[4:]}: {model_name}"))
    report("\n\n".join(blocks))


def test_fig11_gpt2(benchmark):
    sweep = run_once(benchmark, _sweep, GPT2)
    _render("gpt2", sweep)
    # Decoder crossovers come earlier than the encoders' BS=16 (paper: BS=4
    # for GPT-2; our simulator lands one step later at BS=8).
    cp = find_crossover(sweep, "GH200", "Intel+H100")
    assert cp.found and cp.batch_size <= 8
    # GPU-bound region: GH200 wins decisively at large batch.
    assert cp.speedup_at(sweep.batch_sizes, 128) > 1.5


def test_fig11_llama(benchmark):
    sweep = run_once(benchmark, _sweep, LLAMA_3_2_1B)
    _render("llama-3.2-1b", sweep)
    vs_intel = find_crossover(sweep, "GH200", "Intel+H100")
    vs_amd = find_crossover(sweep, "GH200", "AMD+A100")
    assert vs_intel.speedup_at(sweep.batch_sizes, 16) == pytest.approx(
        1.9, rel=0.15)
    assert vs_amd.speedup_at(sweep.batch_sizes, 16) == pytest.approx(
        2.7, rel=0.15)
    # Llama crosses over early (paper: ~BS=1; ours ~BS=8 — see
    # EXPERIMENTS.md on this deviation).
    assert vs_intel.found and vs_intel.batch_size <= 8


def test_fig11_balanced_regions(benchmark):
    sweep = run_once(benchmark, _sweep, GPT2)
    lc_region = find_balanced_region(sweep, "Intel+H100")
    cc_region = find_balanced_region(sweep, "GH200")
    report(f"balanced regions (gpt2): LC BS={lc_region.low}-{lc_region.high}, "
           f"CC BS={cc_region.low}-{cc_region.high} "
           f"(paper: decoders LC 2-4, CC 4-8)")
    assert lc_region.found and cc_region.found
    assert cc_region.low >= lc_region.low
