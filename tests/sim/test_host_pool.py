"""CpuPool mechanics: booking, NUMA spill, reservations, FIFO wakes."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.host.pool import CoreGrant, CpuCore, CpuPool, pool_from_domains
from repro.sim.core import SimCore


def _two_socket_pool(cores_per=2, penalty=1.5):
    return pool_from_domains([(0, cores_per), (1, cores_per)],
                             remote_penalty=penalty)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_pool_rejects_degenerate_shapes():
    with pytest.raises(ConfigurationError):
        CpuPool([])
    with pytest.raises(ConfigurationError):
        CpuPool([CpuCore(index=0, domain=0), CpuCore(index=0, domain=1)])
    with pytest.raises(ConfigurationError):
        CpuPool([CpuCore(index=0, domain=0)], remote_penalty=0.5)


def test_pool_from_domains_numbers_cores_densely():
    pool = _two_socket_pool()
    assert [(c.index, c.domain) for c in pool.cores] == [
        (0, 0), (1, 0), (2, 1), (3, 1)]
    assert pool.domains() == {0: 2, 1: 2}
    assert pool.capacity == pool.available == 4


def test_dispatch_rejects_negative_share_and_time():
    pool = _two_socket_pool()
    with pytest.raises(SimulationError):
        pool.dispatch("r", ts_ns=0.0, cpu_ns=-1.0)
    with pytest.raises(SimulationError):
        pool.dispatch("r", ts_ns=-1.0, cpu_ns=1.0)


# ----------------------------------------------------------------------
# Synchronous booking
# ----------------------------------------------------------------------
def test_contended_core_queues_bookings_back_to_back():
    pool = pool_from_domains([(0, 1)])
    first = pool.dispatch("a", ts_ns=0.0, cpu_ns=10.0, domain=0)
    second = pool.dispatch("b", ts_ns=4.0, cpu_ns=10.0, domain=0)
    assert (first.start_ns, first.end_ns) == (0.0, 10.0)
    # b asked at t=4 but the only core frees at t=10: a 6ns stall.
    assert (second.start_ns, second.end_ns) == (10.0, 20.0)
    assert pool.busy_ns == 20.0
    assert pool.cores[0].grants == 2


def test_local_core_wins_ties_over_remote():
    pool = _two_socket_pool()
    grant = pool.dispatch("r0", ts_ns=5.0, cpu_ns=1.0, domain=1)
    # Both sockets are idle: remote is not *strictly* earlier, so the
    # booking stays local (lowest index of domain 1).
    assert (grant.core, grant.domain, grant.remote) == (2, 1, False)
    assert grant.cpu_ns == 1.0


def test_remote_spill_is_strictly_earlier_and_penalized():
    pool = _two_socket_pool(cores_per=1, penalty=1.5)
    pool.dispatch("r0", ts_ns=0.0, cpu_ns=100.0, domain=0)
    spilled = pool.dispatch("r0", ts_ns=10.0, cpu_ns=8.0, domain=0)
    assert spilled.remote and spilled.domain == 1
    assert spilled.start_ns == 10.0          # no stall: the spill's point
    assert spilled.cpu_ns == pytest.approx(8.0 * 1.5)
    assert spilled.end_ns == pytest.approx(10.0 + 12.0)


def test_pinned_booking_waits_for_its_domain():
    pool = _two_socket_pool(cores_per=1)
    pool.dispatch("r0", ts_ns=0.0, cpu_ns=100.0, domain=0)
    pinned = pool.dispatch("r0", ts_ns=10.0, cpu_ns=8.0, domain=0,
                           pinned=True)
    assert not pinned.remote
    assert (pinned.core, pinned.start_ns) == (0, 100.0)


def test_domainless_booking_treats_every_core_as_local():
    pool = _two_socket_pool(cores_per=1)
    pool.dispatch("router", ts_ns=0.0, cpu_ns=50.0)
    second = pool.dispatch("router", ts_ns=1.0, cpu_ns=5.0)
    assert second.core == 1 and not second.remote


# ----------------------------------------------------------------------
# Reservations (synchronous side)
# ----------------------------------------------------------------------
def test_reserved_cores_are_excluded_from_booking():
    pool = _two_socket_pool(cores_per=1)
    assert pool.try_acquire("profiler", 1)
    assert pool.available == 1
    with pytest.raises(SimulationError, match="no unreserved core"):
        pool.dispatch("r0", ts_ns=0.0, cpu_ns=1.0, domain=0, pinned=True)
    # Unpinned work routes around the reservation onto the other socket.
    grant = pool.dispatch("r0", ts_ns=0.0, cpu_ns=1.0, domain=0)
    assert grant.remote and grant.core == 1
    pool.release("profiler", now=5.0)
    assert pool.available == 2


def test_reserving_every_core_starves_booking_entirely():
    pool = pool_from_domains([(0, 2)])
    assert pool.try_acquire("profiler", 2)
    with pytest.raises(SimulationError, match="every core is reserved"):
        pool.dispatch("r0", ts_ns=0.0, cpu_ns=1.0)


def test_try_acquire_rules():
    pool = pool_from_domains([(0, 2)])
    with pytest.raises(SimulationError):
        pool.try_acquire("a", 0)
    assert not pool.try_acquire("a", 3)
    assert pool.try_acquire("a", 2)
    with pytest.raises(SimulationError, match="already holds"):
        pool.try_acquire("a", 1)
    assert pool.release("a", now=1.0) == 2
    assert pool.release("a", now=2.0) == 0  # idempotent


# ----------------------------------------------------------------------
# Reservations (yield protocol, driven by SimCore)
# ----------------------------------------------------------------------
def test_blocking_reservations_grant_fifo():
    core = SimCore()
    pool = core.add_host_pool(pool_from_domains([(0, 3)]))
    grants: list[tuple[str, float]] = []

    def holder():
        yield ("acquire", pool, "big", 2, 0.0)
        grants.append(("big", 0.0))
        yield ("release", pool, "big", 30.0)

    def small_then_large():
        # Asks for 3 cores at t=10: must wait for the release at t=30.
        yield ("acquire", pool, "huge", 3, 10.0)
        grants.append(("huge", 30.0))
        yield ("release", pool, "huge", 40.0)

    def would_fit():
        # One core *is* free at t=20, but FIFO parks this behind "huge"
        # so grant order never depends on request size.
        yield ("acquire", pool, "small", 1, 20.0)
        grants.append(("small", 40.0))
        yield ("release", pool, "small", 50.0)

    core.spawn(holder())
    core.spawn(small_then_large())
    core.spawn(would_fit())
    core.run()
    assert [name for name, _ in grants] == ["big", "huge", "small"]
    assert pool.available == 3 and not pool.waiters


def test_unsatisfiable_acquire_is_rejected_up_front():
    core = SimCore()
    pool = core.add_host_pool(pool_from_domains([(0, 2)]))

    def greedy():
        yield ("acquire", pool, "greedy", 3, 0.0)

    core.spawn(greedy())
    with pytest.raises(SimulationError, match="can never be granted"):
        core.run()


def test_parked_waiter_at_run_end_is_a_deadlock():
    core = SimCore()
    pool = core.add_host_pool(pool_from_domains([(0, 1)]))

    def holder():
        yield ("acquire", pool, "a", 1, 0.0)
        # Never releases.

    def waiter():
        yield ("acquire", pool, "b", 1, 5.0)

    core.spawn(holder())
    core.spawn(waiter())
    with pytest.raises(SimulationError):
        core.run()


def test_unbound_pool_cannot_park_processes():
    pool = pool_from_domains([(0, 1)])

    def proc():
        yield ("acquire", pool, "a", 1, 0.0)

    with pytest.raises(SimulationError, match="not bound"):
        pool.acquire_request(proc(), "a", 1, 0.0)


def test_grant_is_immutable_record():
    grant = CoreGrant(owner="r0", core=0, domain=0, start_ns=0.0,
                      end_ns=1.0, cpu_ns=1.0)
    with pytest.raises(AttributeError):
        grant.core = 1
