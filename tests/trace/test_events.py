"""Trace event model."""

import pytest

from repro.errors import TraceError
from repro.trace import (
    KernelEvent,
    LAUNCH_KERNEL,
    OperatorEvent,
    RuntimeEvent,
    TraceEvent,
)


def test_event_end_timestamp():
    event = TraceEvent(name="x", ts=100.0, dur=25.0)
    assert event.ts_end == 125.0


def test_negative_duration_rejected():
    with pytest.raises(TraceError):
        TraceEvent(name="x", ts=0.0, dur=-1.0)


def test_contains_uses_begin_timestamp():
    parent = OperatorEvent(name="p", ts=0.0, dur=100.0)
    inside = OperatorEvent(name="c", ts=50.0, dur=200.0)  # begins inside
    outside = OperatorEvent(name="c2", ts=100.0, dur=1.0)  # begins at end
    assert parent.contains(inside)
    assert not parent.contains(outside)


def test_contains_at_exact_start():
    parent = OperatorEvent(name="p", ts=10.0, dur=5.0)
    child = OperatorEvent(name="c", ts=10.0, dur=1.0)
    assert parent.contains(child)


def test_event_ids_are_unique_and_monotonic():
    a = TraceEvent(name="a", ts=0.0, dur=0.0)
    b = TraceEvent(name="b", ts=0.0, dur=0.0)
    assert b.event_id > a.event_id


def test_runtime_event_launch_and_sync_flags():
    launch = RuntimeEvent(name=LAUNCH_KERNEL, ts=0, dur=1, correlation_id=7)
    sync = RuntimeEvent(name="cudaDeviceSynchronize", ts=0, dur=1)
    other = RuntimeEvent(name="cudaMalloc", ts=0, dur=1)
    assert launch.is_launch and not launch.is_sync
    assert sync.is_sync and not sync.is_launch
    assert not other.is_launch and not other.is_sync


def test_kernel_event_graph_replay_marker():
    normal = KernelEvent(name="k", ts=0, dur=1, correlation_id=3)
    replayed = KernelEvent(name="k", ts=0, dur=1, correlation_id=-3)
    assert not normal.queue_delay_unknown
    assert replayed.queue_delay_unknown
