"""Discrete-event execution engine.

Simulates eager (and compiled) LLM inference on a coupled platform: one CPU
thread dispatches operators in program order and launches kernels
asynchronously; one in-order GPU stream executes them. The engine emits a
PyTorch-Profiler-style trace that SKIP consumes — the same contract the paper
has between PyTorch Profiler and SKIP.

Timing rules (all per the platform model):

* operator dispatch occupies the CPU for the op's reference cost scaled by
  the CPU's dispatch score (compiled modes pay a small guard cost instead);
* each ``cudaLaunchKernel`` occupies the CPU for the platform's runtime-call
  time, and the kernel reaches the GPU a launch latency later;
* a kernel starts at ``max(arrival, stream free)`` — the gap from launch-call
  begin to kernel begin is the paper's ``t_l`` (Eq. 1);
* the CUDA runtime's bounded launch queue blocks the CPU when it runs too
  far ahead of the GPU;
* every iteration ends with a ``cudaDeviceSynchronize``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.compiler import CompileReport, apply_inductor_fusion, compile_time
from repro.engine.fusion_apply import FusionPlan, fused_kernel_name
from repro.engine.gpu_stream import GpuStream
from repro.engine.lowering import KernelTask, LoweredOp, lower_graph
from repro.engine.modes import ExecutionMode
from repro.errors import ConfigurationError
from repro.hardware.platform import Platform
from repro.obs.events import StepKind
from repro.obs.recorder import RunRecorder
from repro.trace.builder import TraceBuilder
from repro.trace.events import DEVICE_SYNCHRONIZE, GRAPH_LAUNCH
from repro.trace.trace import Trace
from repro.workloads.builder import AttentionImpl, build_graph
from repro.workloads.config import ModelConfig
from repro.workloads.graph import OperatorGraph, Phase
from repro.workloads.ops import OpKind


@dataclass(frozen=True)
class EngineConfig:
    """Tunable engine constants (all nanoseconds unless noted)."""

    iterations: int = 3
    #: Iterations simulated before measurement starts. Warm-up runs execute
    #: fully (they advance the clock) but get no iteration marks, so SKIP
    #: metrics exclude them — mirroring profiler practice on real hardware.
    warmup_iterations: int = 0
    launch_queue_depth: int = 1024
    inter_iteration_gap_ns: float = 2_000.0
    #: Share of an op's dispatch cost paid after its launches (return path).
    dispatch_epilogue_fraction: float = 0.1
    #: Share of the pre-launch dispatch spent inside the child ATen op.
    child_dispatch_fraction: float = 0.3
    #: Per-op CPU guard cost in compiled (non-graph) execution.
    compiled_guard_ns: float = 1_500.0
    #: CPU cost to invoke a CUDA-graph replay (reference CPU).
    graph_replay_dispatch_ns: float = 12_000.0
    #: GPU front-end gap between consecutive graph-replayed kernels (graphs
    #: pre-encode dependencies, so back-to-back kernels chain with no gap).
    graph_replay_kernel_gap_ns: float = 0.0
    #: Scale on the per-kernel scheduling floor inside a CUDA graph (graphs
    #: pre-encode launch descriptors, cutting most of the front-end cost).
    graph_kernel_floor_scale: float = 0.35
    #: Stream front-end gap between back-to-back individually launched
    #: kernels (avoided entirely by CUDA-graph replay).
    stream_kernel_gap_ns: float = 700.0
    #: CPU cost of a cudaDeviceSynchronize call itself (excluding the wait).
    sync_call_ns: float = 1_500.0

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if self.warmup_iterations < 0:
            raise ConfigurationError("warmup_iterations must be non-negative")
        if self.launch_queue_depth <= 0:
            raise ConfigurationError("launch_queue_depth must be positive")
        if not (0 <= self.dispatch_epilogue_fraction < 1):
            raise ConfigurationError("dispatch_epilogue_fraction must be in [0, 1)")
        if not (0 <= self.child_dispatch_fraction < 1):
            raise ConfigurationError("child_dispatch_fraction must be in [0, 1)")


DEFAULT_CONFIG = EngineConfig()

_CHILD_OP_NAMES = {
    OpKind.LINEAR: "aten::addmm",
    OpKind.MATMUL: "aten::bmm",
}


@dataclass
class RunResult:
    """Everything one engine run produced."""

    trace: Trace
    graph: OperatorGraph
    lowered: list[LoweredOp]
    platform: Platform
    mode: ExecutionMode
    compile_report: CompileReport
    config: EngineConfig = field(default_factory=EngineConfig)

    @property
    def kernels_per_iteration(self) -> int:
        """Kernel launches one iteration performs."""
        return sum(len(lo.kernels) for lo in self.lowered)

    def flat_kernels(self) -> list[KernelTask]:
        """The per-iteration kernel stream, in launch order."""
        return [k for lo in self.lowered for k in lo.kernels]


def run(
    model: ModelConfig | OperatorGraph,
    platform: Platform,
    batch_size: int = 1,
    seq_len: int = 512,
    mode: ExecutionMode = ExecutionMode.EAGER,
    phase: Phase = Phase.PREFILL,
    context_len: int | None = None,
    config: EngineConfig = DEFAULT_CONFIG,
    fusion_plan: FusionPlan | None = None,
    recorder: RunRecorder | None = None,
) -> RunResult:
    """Simulate inference and return the trace plus run context.

    Args:
        model: A model config (a graph is built) or a prebuilt operator graph.
        platform: Platform to simulate.
        batch_size / seq_len / phase / context_len: Workload shape (ignored
            when a prebuilt graph is passed).
        mode: Execution mode; FLASH/compile modes transform the lowering.
        config: Engine constants.
        fusion_plan: Required for ``PROXIMITY_FUSED`` mode — the chains to
            fuse (from SKIP's recommender).
        recorder: Optional observability hook; samples per-launch queue
            occupancy and launch delay during execution and records one
            ``ENGINE`` step per measured iteration.
    """
    if isinstance(model, OperatorGraph):
        graph = model
    else:
        attention = (AttentionImpl.FLASH if mode.uses_flash_attention
                     else AttentionImpl.EAGER)
        graph = build_graph(model, batch_size, seq_len, phase=phase,
                            attention=attention, context_len=context_len)

    lowered = lower_graph(graph)
    lowered = apply_inductor_fusion(lowered, mode)

    if mode is ExecutionMode.PROXIMITY_FUSED:
        if fusion_plan is None:
            raise ConfigurationError("PROXIMITY_FUSED mode requires a fusion_plan")
        lowered = _apply_plan_to_lowered(lowered, fusion_plan)
    elif fusion_plan is not None:
        raise ConfigurationError(f"fusion_plan is only valid in PROXIMITY_FUSED mode, not {mode}")

    kernel_count = sum(len(lo.kernels) for lo in lowered)
    report = compile_time(graph, mode, kernel_count)

    builder = TraceBuilder(metadata={
        "platform": platform.name,
        "model": graph.model_name,
        "mode": mode.value,
        "phase": graph.phase.value,
        "batch_size": graph.batch_size,
        "seq_len": graph.seq_len,
    })
    if mode.uses_cuda_graph:
        _simulate_graph_mode(builder, lowered, platform, config)
    else:
        _simulate_launch_mode(builder, lowered, platform, mode, config,
                              recorder=recorder)

    result = RunResult(
        trace=builder.finish(),
        graph=graph,
        lowered=lowered,
        platform=platform,
        mode=mode,
        compile_report=report,
        config=config,
    )
    if recorder is not None:
        for mark in result.trace.iterations:
            recorder.record_step(StepKind.ENGINE, mark.ts,
                                 mark.ts_end - mark.ts, graph.batch_size)
    return result


# ---------------------------------------------------------------------------
# Launch-per-kernel execution (eager / flash / compile-default / fused)
# ---------------------------------------------------------------------------

def _simulate_launch_mode(
    builder: TraceBuilder,
    lowered: list[LoweredOp],
    platform: Platform,
    mode: ExecutionMode,
    config: EngineConfig,
    recorder: RunRecorder | None = None,
) -> None:
    stream = GpuStream()
    cpu = 0.0
    launched = 0
    total = config.warmup_iterations + config.iterations
    for iteration in range(total):
        measured = iteration >= config.warmup_iterations
        if measured:
            builder.begin_iteration(cpu)
        for lowered_op in lowered:
            op = lowered_op.op
            if mode.fuses_elementwise:
                dispatch = config.compiled_guard_ns / platform.cpu.dispatch_score
            else:
                dispatch = platform.dispatch_ns(op.dispatch_cost_ns)
            epilogue = dispatch * config.dispatch_epilogue_fraction
            pre = dispatch - epilogue

            parent = builder.begin_operator(op.aten_name, cpu)
            child = None
            child_name = _CHILD_OP_NAMES.get(op.kind)
            if child_name and lowered_op.kernels and not mode.fuses_elementwise:
                cpu += pre * (1.0 - config.child_dispatch_fraction)
                child = builder.begin_operator(child_name, cpu)
                cpu += pre * config.child_dispatch_fraction
            else:
                cpu += pre

            for kernel in lowered_op.kernels:
                # Bounded launch queue: the CPU cannot run more than
                # `launch_queue_depth` launches ahead of kernel starts.
                backlog_index = launched - config.launch_queue_depth
                if backlog_index >= 0:
                    cpu = max(cpu, stream.nth_start(backlog_index))
                call_ts = cpu
                duration = _kernel_duration(platform, kernel)
                arrival = call_ts + platform.launch_latency_ns
                start, _end = stream.submit(arrival, duration,
                                            gap_ns=config.stream_kernel_gap_ns)
                builder.launch_kernel(
                    call_ts,
                    platform.launch_call_cpu_ns,
                    kernel.name,
                    start,
                    duration,
                    stream=stream.stream_id,
                    flops=kernel.flops,
                    bytes_moved=kernel.bytes_moved,
                )
                if recorder is not None:
                    recorder.observe_launch_delay(start - call_ts)
                    recorder.observe_launch_queue(stream.pending_at(call_ts))
                cpu += platform.launch_call_cpu_ns
                launched += 1

            if child is not None:
                builder.end_operator(child, cpu)
            cpu += epilogue
            builder.end_operator(parent, cpu)

        cpu = _end_iteration_sync(builder, stream, cpu, config,
                                  measured=measured)


# ---------------------------------------------------------------------------
# CUDA-graph execution (reduce-overhead / max-autotune)
# ---------------------------------------------------------------------------

def _simulate_graph_mode(
    builder: TraceBuilder,
    lowered: list[LoweredOp],
    platform: Platform,
    config: EngineConfig,
) -> None:
    stream = GpuStream()
    cpu = 0.0
    kernels = [k for lo in lowered for k in lo.kernels]
    total = config.warmup_iterations + config.iterations
    for iteration in range(total):
        measured = iteration >= config.warmup_iterations
        if measured:
            builder.begin_iteration(cpu)
        parent = builder.begin_operator("cuda_graph::replay", cpu)
        cpu += platform.dispatch_ns(config.graph_replay_dispatch_ns)
        call_ts = cpu
        builder.runtime_call(GRAPH_LAUNCH, call_ts, platform.launch_call_cpu_ns)
        cpu += platform.launch_call_cpu_ns
        arrival = call_ts + platform.launch_latency_ns
        for kernel in kernels:
            duration = _kernel_duration(
                platform, kernel, floor_scale=config.graph_kernel_floor_scale)
            start, end = stream.submit(arrival, duration)
            builder.enqueue_graph_kernel(
                kernel.name, start, duration,
                stream=stream.stream_id,
                flops=kernel.flops,
                bytes_moved=kernel.bytes_moved,
            )
            arrival = end + config.graph_replay_kernel_gap_ns
        builder.end_operator(parent, cpu)
        cpu = _end_iteration_sync(builder, stream, cpu, config,
                                  measured=measured)


def _kernel_duration(platform: Platform, kernel: KernelTask,
                     floor_scale: float = 1.0) -> float:
    """Duration of one kernel task on a platform.

    Proximity-fused kernels (``members`` set) execute as the sum of their
    members' durations — the paper's assumption that fusion changes launch
    counts, not kernel work.
    """
    if kernel.members:
        return sum(_kernel_duration(platform, member, floor_scale)
                   for member in kernel.members)
    return (platform.kernel_duration_ns(kernel.flops, kernel.bytes_moved,
                                        floor_scale=floor_scale)
            * kernel.duration_scale)


def _end_iteration_sync(builder: TraceBuilder, stream: GpuStream, cpu: float,
                        config: EngineConfig, measured: bool = True) -> float:
    """Emit the end-of-iteration synchronize and advance the CPU clock.

    Warm-up iterations (``measured=False``) synchronize like real ones but
    leave no iteration mark, so analyses skip them.
    """
    wait = max(0.0, stream.free_at - cpu)
    builder.runtime_call(DEVICE_SYNCHRONIZE, cpu, config.sync_call_ns + wait)
    cpu += config.sync_call_ns + wait
    if measured:
        builder.end_iteration(cpu)
    return cpu + config.inter_iteration_gap_ns


# ---------------------------------------------------------------------------
# Proximity-fusion plan application at op granularity
# ---------------------------------------------------------------------------

def _apply_plan_to_lowered(lowered: list[LoweredOp],
                           plan: FusionPlan) -> list[LoweredOp]:
    """Rewrite the lowering so recommended chains launch once.

    Matching runs over the flat kernel stream (chains cross operator
    boundaries); a fused kernel is attributed to the operator contributing
    its first member, and later members' operators keep their dispatch but
    lose the launches — exactly the paper's "fusion saves launches only"
    accounting.
    """
    flat: list[tuple[int, KernelTask]] = []
    for op_index, lowered_op in enumerate(lowered):
        for kernel in lowered_op.kernels:
            flat.append((op_index, kernel))

    by_length = sorted(plan.chains, key=len, reverse=True)
    names = [k.name for _, k in flat]
    new_kernels: dict[int, list[KernelTask]] = {i: [] for i in range(len(lowered))}
    fused_id = 0
    i = 0
    while i < len(flat):
        matched = None
        for chain in by_length:
            length = len(chain)
            if i + length <= len(names) and tuple(names[i:i + length]) == chain:
                matched = chain
                break
        if matched is None:
            owner, kernel = flat[i]
            new_kernels[owner].append(kernel)
            i += 1
            continue
        members = flat[i:i + len(matched)]
        owner = members[0][0]
        new_kernels[owner].append(KernelTask(
            name=fused_kernel_name(len(matched), fused_id),
            flops=sum(k.flops for _, k in members),
            bytes_read=sum(k.bytes_read for _, k in members),
            bytes_written=sum(k.bytes_written for _, k in members),
            members=tuple(k for _, k in members),
        ))
        fused_id += 1
        i += len(matched)

    return [LoweredOp(lo.op, tuple(new_kernels[idx]))
            for idx, lo in enumerate(lowered)]
