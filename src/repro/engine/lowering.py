"""Operator -> kernel lowering (eager mode).

Each framework operator lowers to one or more GPU kernels with realistic
names. Two properties matter for reproducing the paper:

* **Launch counts.** The number of kernels per operator drives TKLQT and
  every fusion result. Bias-carrying GEMMs emit a separate epilogue/split-K
  reduce kernel; composite activations fan out into several elementwise
  kernels; pure views emit nothing.
* **Shape-dependent variant names.** cuBLAS/cutlass pick different tiled
  kernels for different problem shapes, so GEMM kernel names include tile
  buckets derived from the problem size. This is why the paper's unique
  fusion-chain counts (Fig. 7a) vary with batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.graph import OperatorGraph
from repro.workloads.ops import FP16_BYTES, Op, OpKind


@dataclass(frozen=True)
class KernelTask:
    """One GPU kernel to execute: a name plus roofline work terms.

    ``duration_scale`` lets transformed lowerings (autotuned GEMMs) run the
    same work in less time; the executor multiplies the roofline duration by
    it. ``members`` marks a proximity-fused kernel: its duration is the sum
    of the member durations (the paper's "launch savings only" assumption —
    no efficiency gain or loss from fusing). ``comm_bytes`` marks a
    collective kernel: its duration comes from the interconnect's ring
    all-reduce model over that message size, not the roofline.
    """

    name: str
    flops: float
    bytes_read: float
    bytes_written: float
    duration_scale: float = 1.0
    members: tuple["KernelTask", ...] = ()
    comm_bytes: float = 0.0

    @property
    def bytes_moved(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def is_gemm(self) -> bool:
        return "gemm" in self.name or "bmm" in self.name

    @property
    def is_collective(self) -> bool:
        """True for cross-device collective kernels (nccl all-reduce)."""
        return self.comm_bytes > 0


@dataclass(frozen=True)
class LoweredOp:
    """An operator together with the kernels it launches (possibly none)."""

    op: Op
    kernels: tuple[KernelTask, ...]


# ---------------------------------------------------------------------------
# Kernel naming
# ---------------------------------------------------------------------------

_GEMM_TILES = (64, 128, 256)

#: Sub-kernel functor names for composite eager activations.
_GELU_TANH_STAGES = ("pow", "mul", "add", "mul", "tanh", "add", "mul", "mul")
_ROPE_STAGES = ("mul_cos", "rotate_half", "fma_sin")

_ELEMENTWISE_FUNCTORS: dict[OpKind, str] = {
    OpKind.GELU: "gelu",
    OpKind.SILU: "silu",
    OpKind.TANH: "tanh",
    OpKind.ADD: "add",
    OpKind.MUL: "mul",
    OpKind.SCALE: "div",
    OpKind.MASKED_FILL: "where",
    OpKind.CAST: "cast",
}


def _tile_bucket(extent: int) -> int:
    """Pick the tile size a GEMM library would use for one problem extent."""
    for tile in _GEMM_TILES:
        if extent <= tile:
            return tile
    return _GEMM_TILES[-1]


def _pow2_bucket(value: int, cap: int = 2048) -> int:
    bucket = 1
    while bucket < value and bucket < cap:
        bucket *= 2
    return bucket


def gemm_kernel_name(m: int, n: int, k: int, batched: bool = False) -> str:
    """cutlass-style GEMM kernel variant name for a problem shape."""
    kind = "bmm" if batched else "gemm"
    return (
        f"cutlass::f16_s16816{kind}_f16_{_tile_bucket(m)}x{_tile_bucket(n)}"
        f"_ldg8_f2f_stages_tn"
    )


def softmax_kernel_name(cols: int) -> str:
    return f"softmax_warp_forward<f16, {_pow2_bucket(cols)}>"


def elementwise_kernel_name(functor: str) -> str:
    return f"vectorized_elementwise_kernel<4, {functor}_f16>"


def flash_kernel_name(head_dim: int) -> str:
    return f"flash_fwd_kernel<f16, hdim{_pow2_bucket(head_dim, 256)}>"


def allreduce_kernel_name(world: int) -> str:
    """NCCL device-kernel name for a ring all-reduce over ``world`` ranks."""
    return f"ncclDevKernel_AllReduce_Sum_f16_RING<{world}>"


# ---------------------------------------------------------------------------
# Lowering rules
# ---------------------------------------------------------------------------

def lower_op(op: Op) -> LoweredOp:
    """Lower a single operator to its eager kernel sequence."""
    if not op.launches_kernel:
        return LoweredOp(op, ())
    handler = _HANDLERS.get(op.kind)
    if handler is None:
        raise ConfigurationError(f"no lowering for operator kind {op.kind}")
    return LoweredOp(op, tuple(handler(op)))


def lower_graph(graph: OperatorGraph) -> list[LoweredOp]:
    """Lower an entire operator stream."""
    return [lower_op(op) for op in graph.ops]


def kernel_count(graph: OperatorGraph) -> int:
    """Number of kernel launches one execution of ``graph`` performs."""
    return sum(len(lowered.kernels) for lowered in lower_graph(graph))


def _lower_linear(op: Op) -> list[KernelTask]:
    in_features, out_features, has_bias = op.dims[0], op.dims[1], op.dims[2]
    tokens = op.dims[3] if len(op.dims) > 3 else max(
        1, int(op.bytes_written / (FP16_BYTES * out_features)))
    kernels = []
    bias_flops = float(tokens * out_features) if has_bias else 0.0
    bias_bytes = FP16_BYTES * tokens * out_features
    gemm_read = op.bytes_read - (FP16_BYTES * out_features if has_bias else 0.0)
    kernels.append(KernelTask(
        name=gemm_kernel_name(tokens, out_features, in_features),
        flops=op.flops - bias_flops,
        bytes_read=max(0.0, gemm_read),
        bytes_written=op.bytes_written,
    ))
    if has_bias:
        kernels.append(KernelTask(
            name="splitKreduce_kernel<f16, bias_epilogue>",
            flops=bias_flops,
            bytes_read=bias_bytes + FP16_BYTES * out_features,
            bytes_written=bias_bytes,
        ))
    return kernels


def _lower_matmul(op: Op) -> list[KernelTask]:
    m, n, k = op.dims
    return [KernelTask(
        name=gemm_kernel_name(m, n, k, batched=True),
        flops=op.flops,
        bytes_read=op.bytes_read,
        bytes_written=op.bytes_written,
    )]


def _lower_softmax(op: Op) -> list[KernelTask]:
    (cols,) = op.dims
    return [KernelTask(softmax_kernel_name(cols), op.flops, op.bytes_read,
                       op.bytes_written)]


def _lower_layernorm(op: Op) -> list[KernelTask]:
    return [KernelTask("vectorized_layer_norm_kernel<f16>", op.flops,
                       op.bytes_read, op.bytes_written)]


def _lower_rmsnorm(op: Op) -> list[KernelTask]:
    return [KernelTask("rms_norm_kernel<f16>", op.flops, op.bytes_read,
                       op.bytes_written)]


def _lower_elementwise(op: Op) -> list[KernelTask]:
    fanout = op.kernel_fanout
    if fanout == 1:
        functor = _ELEMENTWISE_FUNCTORS[op.kind]
        return [KernelTask(elementwise_kernel_name(functor), op.flops,
                           op.bytes_read, op.bytes_written)]
    # Composite activation: one kernel per stage, each touching the tensor.
    if op.kind is OpKind.GELU:
        stages = _GELU_TANH_STAGES
    else:
        base = _ELEMENTWISE_FUNCTORS[op.kind]
        stages = tuple(f"{base}_{i}" for i in range(fanout))
    if len(stages) < fanout:
        stages = tuple(stages[i % len(stages)] + f"_{i}" for i in range(fanout))
    stages = stages[:fanout]
    return [
        KernelTask(elementwise_kernel_name(stage), op.flops / fanout,
                   op.bytes_read / fanout, op.bytes_written / fanout)
        for stage in stages
    ]


def _lower_rope(op: Op) -> list[KernelTask]:
    fanout = op.kernel_fanout
    stages = _ROPE_STAGES[:fanout]
    if len(stages) < fanout:
        stages = tuple(f"rope_stage_{i}" for i in range(fanout))
    return [
        KernelTask(elementwise_kernel_name(stage), op.flops / fanout,
                   op.bytes_read / fanout, op.bytes_written / fanout)
        for stage in stages
    ]


#: Embedding tables at or above this row count use the large-index kernel.
LARGE_INDEX_THRESHOLD = 10_000


def _lower_embedding(op: Op) -> list[KernelTask]:
    num_embeddings = op.dims[1] if len(op.dims) > 1 else LARGE_INDEX_THRESHOLD
    variant = ("indexSelectLargeIndex<f16>"
               if num_embeddings >= LARGE_INDEX_THRESHOLD
               else "indexSelectSmallIndex<f16>")
    return [KernelTask(variant, op.flops, op.bytes_read, op.bytes_written)]


def _lower_copy(op: Op) -> list[KernelTask]:
    return [KernelTask(elementwise_kernel_name("copy"), op.flops,
                       op.bytes_read, op.bytes_written)]


def _lower_split(op: Op) -> list[KernelTask]:
    return [KernelTask("slice_copy_kernel<f16>", op.flops, op.bytes_read,
                       op.bytes_written)]


def _lower_fill(op: Op) -> list[KernelTask]:
    return [KernelTask("fill_kernel<f16>", op.flops, op.bytes_read,
                       op.bytes_written)]


def _lower_kv_append(op: Op) -> list[KernelTask]:
    return [KernelTask("indexCopySmallIndex<f16>", op.flops, op.bytes_read,
                       op.bytes_written)]


def _lower_topk(op: Op) -> list[KernelTask]:
    # Radix select emits a histogram pass and a gather pass.
    return [
        KernelTask("radixFindKthValues<f16>", op.flops * 0.6,
                   op.bytes_read, FP16_BYTES * op.dims[1]),
        KernelTask("gatherTopK<f16>", op.flops * 0.4, op.bytes_read * 0.2,
                   op.bytes_written),
    ]


def _lower_index_select(op: Op) -> list[KernelTask]:
    return [KernelTask("indexSelectLargeIndex<f16>", op.flops, op.bytes_read,
                       op.bytes_written)]


def _lower_scatter_add(op: Op) -> list[KernelTask]:
    return [KernelTask("indexAddLargeIndex<f16>", op.flops, op.bytes_read,
                       op.bytes_written)]


def _lower_flash(op: Op) -> list[KernelTask]:
    head_dim = op.dims[0]
    return [KernelTask(flash_kernel_name(head_dim), op.flops, op.bytes_read,
                       op.bytes_written)]


def _lower_all_reduce(op: Op) -> list[KernelTask]:
    world = op.dims[0]
    return [KernelTask(allreduce_kernel_name(world), op.flops, op.bytes_read,
                       op.bytes_written, comm_bytes=op.bytes_written)]


_HANDLERS = {
    OpKind.LINEAR: _lower_linear,
    OpKind.MATMUL: _lower_matmul,
    OpKind.SOFTMAX: _lower_softmax,
    OpKind.LAYERNORM: _lower_layernorm,
    OpKind.RMSNORM: _lower_rmsnorm,
    OpKind.GELU: _lower_elementwise,
    OpKind.SILU: _lower_elementwise,
    OpKind.TANH: _lower_elementwise,
    OpKind.ADD: _lower_elementwise,
    OpKind.MUL: _lower_elementwise,
    OpKind.SCALE: _lower_elementwise,
    OpKind.MASKED_FILL: _lower_elementwise,
    OpKind.CAST: _lower_elementwise,
    OpKind.EMBEDDING: _lower_embedding,
    OpKind.RESHAPE_COPY: _lower_copy,
    OpKind.SPLIT: _lower_split,
    OpKind.FILL: _lower_fill,
    OpKind.ROPE: _lower_rope,
    OpKind.KV_APPEND: _lower_kv_append,
    OpKind.TOPK: _lower_topk,
    OpKind.INDEX_SELECT: _lower_index_select,
    OpKind.SCATTER_ADD: _lower_scatter_add,
    OpKind.SDPA_FLASH: _lower_flash,
    OpKind.ALL_REDUCE: _lower_all_reduce,
}
