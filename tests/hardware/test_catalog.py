"""Platform catalog invariants and paper-derived constants."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import (
    ALL_PLATFORMS,
    AMD_A100,
    Coupling,
    GH200,
    INTEL_H100,
    MI300A,
    PAPER_PLATFORMS,
    get_platform,
)


def test_paper_platforms_are_the_three_evaluated():
    names = {p.name for p in PAPER_PLATFORMS}
    assert names == {"AMD+A100", "Intel+H100", "GH200"}


def test_coupling_assignment():
    assert AMD_A100.coupling is Coupling.LOOSELY_COUPLED
    assert INTEL_H100.coupling is Coupling.LOOSELY_COUPLED
    assert GH200.coupling is Coupling.CLOSELY_COUPLED
    assert MI300A.coupling is Coupling.TIGHTLY_COUPLED


def test_table5_launch_overheads_are_reproduced_exactly():
    assert AMD_A100.launch_latency_ns == pytest.approx(2260.5)
    assert INTEL_H100.launch_latency_ns == pytest.approx(2374.6)
    assert GH200.launch_latency_ns == pytest.approx(2771.6)


def test_table5_null_kernel_durations():
    assert AMD_A100.gpu.min_kernel_ns == pytest.approx(1440.0)
    assert INTEL_H100.gpu.min_kernel_ns == pytest.approx(1235.2)
    assert GH200.gpu.min_kernel_ns == pytest.approx(1171.2)


def test_gh200_has_highest_launch_overhead_but_fastest_kernels():
    overheads = {p.name: p.launch_latency_ns for p in PAPER_PLATFORMS}
    durations = {p.name: p.gpu.min_kernel_ns for p in PAPER_PLATFORMS}
    assert max(overheads, key=overheads.get) == "GH200"
    assert min(durations, key=durations.get) == "GH200"


def test_grace_is_slowest_dispatcher():
    scores = {p.name: p.cpu.dispatch_score for p in PAPER_PLATFORMS}
    assert min(scores, key=scores.get) == "GH200"
    assert max(scores, key=scores.get) == "Intel+H100"


def test_gh200_memory_bandwidth_advantage():
    # The paper attributes GH200's delayed GPU-bound transition to its
    # higher-bandwidth HBM3.
    assert GH200.gpu.hbm_bandwidth_gbs > 1.8 * INTEL_H100.gpu.hbm_bandwidth_gbs


def test_get_platform_case_insensitive():
    assert get_platform("gh200") is GH200
    assert get_platform("Intel+H100") is INTEL_H100


def test_get_platform_unknown_raises_with_known_names():
    with pytest.raises(ConfigurationError, match="GH200"):
        get_platform("tpu-v5")


def test_all_platform_names_unique():
    names = [p.name for p in ALL_PLATFORMS]
    assert len(names) == len(set(names))
