"""Execution engine: lowering, cost model, and discrete-event simulation."""

from repro.engine.compiler import CompileReport, compile_time, unique_gemm_classes
from repro.engine.executor import DEFAULT_CONFIG, EngineConfig, RunResult, run
from repro.engine.fusion_apply import FusionPlan, apply_fusion_plan, launches_saved
from repro.engine.gpu_stream import GpuStream
from repro.engine.lowering import (
    KernelTask,
    LoweredOp,
    kernel_count,
    lower_graph,
    lower_op,
)
from repro.engine.modes import ExecutionMode

__all__ = [
    "CompileReport",
    "DEFAULT_CONFIG",
    "EngineConfig",
    "ExecutionMode",
    "FusionPlan",
    "GpuStream",
    "KernelTask",
    "LoweredOp",
    "RunResult",
    "apply_fusion_plan",
    "compile_time",
    "kernel_count",
    "launches_saved",
    "lower_graph",
    "lower_op",
    "run",
    "unique_gemm_classes",
]
