"""Command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_nullkernel_command(capsys):
    code, out = run_cli(capsys, "nullkernel")
    assert code == 0
    assert "2771.6" in out and "GH200" in out


def test_profile_command(capsys):
    code, out = run_cli(capsys, "profile", "--model", "gpt2",
                        "--platform", "Intel+H100", "--batch-size", "1")
    assert code == 0
    assert "TKLQT" in out
    assert "classification" in out


def test_profile_with_mode(capsys):
    code, out = run_cli(capsys, "profile", "--model", "gpt2",
                        "--mode", "flash_attention")
    assert code == 0
    assert "gpt2" in out


def test_sweep_command(capsys):
    code, out = run_cli(capsys, "sweep", "--model", "bert-base-uncased",
                        "--platform", "GH200",
                        "--batches", "1,2,4,8,16,32,64")
    assert code == 0
    assert "star" in out


def test_fusion_command(capsys):
    code, out = run_cli(capsys, "fusion", "--model", "xlm-roberta-base")
    assert code == 0
    assert "speedup" in out


def test_whatif_command(capsys):
    code, out = run_cli(capsys, "whatif", "--model", "bert-base-uncased",
                        "--platform", "GH200", "--reference", "Intel+H100")
    assert code == 0
    assert "CPU speedup" in out


def test_memory_command_fits(capsys):
    code, out = run_cli(capsys, "memory", "--model", "gpt2",
                        "--platform", "Intel+H100", "--batch-size", "8")
    assert code == 0
    assert "fits        : yes" in out


def test_memory_command_overflow(capsys):
    code, out = run_cli(capsys, "memory", "--model", "llama-2-7b",
                        "--platform", "Intel+H100",
                        "--batch-size", "512", "--seq-len", "2048")
    assert code == 1
    assert "NO" in out


def test_export_json(capsys, tmp_path):
    out = tmp_path / "sweep.json"
    code, text = run_cli(capsys, "export", "--model", "gpt2",
                         "--platform", "Intel+H100", "--batches", "1,2",
                         "--out", str(out))
    assert code == 0
    assert "2 sweep points" in text
    assert out.exists()


def test_export_csv(capsys, tmp_path):
    out = tmp_path / "sweep.csv"
    code, _ = run_cli(capsys, "export", "--model", "gpt2",
                      "--platform", "GH200", "--batches", "1,4",
                      "--out", str(out))
    assert code == 0
    assert out.read_text().startswith("model,platform")


def test_timeline_command(capsys):
    code, out = run_cli(capsys, "timeline", "--model", "gpt2",
                        "--batch-size", "1", "--seq-len", "128")
    assert code == 0
    assert "cpu ops" in out and "gpu" in out and "#" in out


def test_unknown_model_exits_cleanly(capsys):
    code = main(["profile", "--model", "not-a-model"])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error: unknown model")
    assert "Traceback" not in err


def test_invalid_tp_degree_exits_cleanly(capsys):
    code = main(["run", "--model", "gpt2", "--tp", "5"])
    err = capsys.readouterr().err
    assert code == 2
    assert "does not divide gpt2's 12 attention heads" in err
    assert "valid degrees: 1, 2, 3, 4, 6, 12" in err


def test_missing_subcommand_exits():
    with pytest.raises(SystemExit):
        main([])


def test_serve_command_summary(capsys):
    code, out = run_cli(capsys, "serve", "--rate", "20", "--duration", "0.2",
                        "--prompt-len", "64", "--output-tokens", "3")
    assert code == 0
    assert "TTFT" in out and "requests completed" in out


def test_serve_command_timeline(capsys):
    code, out = run_cli(capsys, "serve", "--rate", "20", "--duration", "0.2",
                        "--prompt-len", "64", "--output-tokens", "3",
                        "--timeline", "--width", "60")
    assert code == 0
    assert "serving timeline" in out and "legend" in out


def test_serve_static_scenario(capsys):
    code, out = run_cli(capsys, "serve", "--scenario", "static",
                        "--rate", "20", "--duration", "0.2",
                        "--prompt-len", "64", "--output-tokens", "3",
                        "--max-active", "4")
    assert code == 0
    assert "static serving" in out


def test_serve_emit_trace_and_skip_analyze(capsys, tmp_path):
    out_path = tmp_path / "trace.json"
    code, out = run_cli(capsys, "serve", "--rate", "15", "--duration", "0.2",
                        "--prompt-len", "64", "--output-tokens", "2",
                        "--emit-trace", str(out_path))
    assert code == 0
    assert out_path.exists()
    assert "wrote" in out

    code, out = run_cli(capsys, "skip", "analyze", str(out_path))
    assert code == 0
    assert "TKLQT" in out and "classification" in out


def test_run_refuses_shapes_that_cannot_fit(capsys):
    code = main(["run", "--model", "llama-2-7b", "--platform", "AMD+A100",
                 "--batch-size", "128", "--seq-len", "2048"])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error:")
    assert "repro memory" in err and "--ignore-memory" in err


def test_run_ignore_memory_escape_hatch(capsys):
    code, out = run_cli(capsys, "run", "--model", "llama-2-7b",
                        "--platform", "AMD+A100", "--batch-size", "128",
                        "--seq-len", "2048", "--ignore-memory")
    assert code == 0
    assert "TKLQT" in out


def test_sweep_refuses_batches_that_cannot_fit(capsys):
    code = main(["sweep", "--model", "llama-2-7b", "--platform", "AMD+A100",
                 "--seq-len", "2048", "--batches", "1,128"])
    err = capsys.readouterr().err
    assert code == 2
    assert "--ignore-memory" in err


def test_serve_with_kv_offload_reports_the_pool(capsys):
    code, out = run_cli(capsys, "serve", "--model", "gpt2",
                        "--platform", "GH200", "--rate", "40",
                        "--duration", "0.3", "--prompt-len", "512",
                        "--output-tokens", "128", "--max-active", "8",
                        "--kv-policy", "offload", "--kv-pool-gib", "0.04")
    assert code == 0
    assert "kv pool r0" in out
    assert "swaps=0+0" not in out  # the pool is tight enough to swap


def test_serve_kv_pool_without_policy_exits_cleanly(capsys):
    code = main(["serve", "--rate", "20", "--duration", "0.2",
                 "--kv-pool-gib", "0.1"])
    err = capsys.readouterr().err
    assert code == 2
    assert "--kv-policy recompute" in err


def test_kvpressure_command(capsys):
    code, out = run_cli(capsys, "kvpressure", "--model", "gpt2",
                        "--platforms", "GH200", "--pools", "0.04",
                        "--policies", "offload", "--prompt-len", "512",
                        "--output-tokens", "128", "--rate", "40",
                        "--duration", "0.2", "--max-active", "8",
                        "--mode", "eager")
    assert code == 0
    assert "tokens/s vs KV pool size" in out
    assert "swaps=" in out


def test_skip_analyze_with_fusion(capsys, tmp_path):
    out_path = tmp_path / "trace.json"
    run_cli(capsys, "serve", "--rate", "15", "--duration", "0.15",
            "--prompt-len", "64", "--output-tokens", "2",
            "--emit-trace", str(out_path))
    code, out = run_cli(capsys, "skip", "analyze", str(out_path), "--fusion")
    assert code == 0
    assert "speedup" in out


def test_serve_record_sample_rejects_zero(capsys):
    code = main(["serve", "--rate", "20", "--duration", "0.2",
                 "--record-sample", "0"])
    err = capsys.readouterr().err
    assert code == 2
    assert "--record-sample must be at least 1" in err
    assert "Traceback" not in err


def test_serve_chunk_tokens_rejects_negative(capsys):
    code = main(["serve", "--rate", "20", "--duration", "0.2",
                 "--chunk-tokens", "-5"])
    err = capsys.readouterr().err
    assert code == 2
    assert "--chunk-tokens must be non-negative" in err
    assert "Traceback" not in err


def test_serve_chunk_tokens_rejected_for_static(capsys):
    code = main(["serve", "--scenario", "static", "--rate", "20",
                 "--duration", "0.2", "--chunk-tokens", "128"])
    err = capsys.readouterr().err
    assert code == 2
    assert "static batching prefills whole batches" in err


def test_serve_chunk_tokens_zero_is_the_parity_switch(capsys):
    """0 is valid (chunking off) and must serve identically to the default."""
    argv = ["serve", "--rate", "20", "--duration", "0.2",
            "--prompt-len", "64", "--output-tokens", "3"]
    code, base = run_cli(capsys, *argv)
    assert code == 0
    code, chunked_off = run_cli(capsys, *argv, "--chunk-tokens", "0")
    assert code == 0
    assert chunked_off == base


def test_serve_chunked_prefill_summary(capsys):
    code, out = run_cli(capsys, "serve", "--rate", "30", "--duration", "0.2",
                        "--prompt-len", "700", "--output-tokens", "4",
                        "--max-active", "4", "--chunk-tokens", "256")
    assert code == 0
    assert "TTFT" in out


def test_serve_pp_validation(capsys):
    code = main(["serve", "--rate", "20", "--duration", "0.2", "--pp", "0"])
    assert code == 2
    assert "--pp" in capsys.readouterr().err

    code = main(["serve", "--rate", "20", "--duration", "0.2",
                 "--pp-microbatches", "4"])
    err = capsys.readouterr().err
    assert code == 2
    assert "--pp-microbatches" in err  # microbatches without stages


def test_serve_with_pp_emits_checkable_trace(capsys, tmp_path):
    out_path = tmp_path / "pp-trace.json"
    code, _ = run_cli(capsys, "serve", "--rate", "20", "--duration", "0.2",
                      "--prompt-len", "700", "--output-tokens", "3",
                      "--max-active", "4", "--chunk-tokens", "256",
                      "--pp", "2", "--pp-microbatches", "2",
                      "--emit-trace", str(out_path))
    assert code == 0
    code, out = run_cli(capsys, "check", "trace", str(out_path))
    assert code == 0
    code, out = run_cli(capsys, "check", "schedule", "--trace", str(out_path))
    assert code == 0


def test_run_with_pp(capsys):
    code, out = run_cli(capsys, "run", "--model", "gpt2", "--pp", "2",
                        "--pp-microbatches", "2", "--batch-size", "2")
    assert code == 0
    assert "TKLQT" in out


def test_check_schedule_with_pp(capsys):
    code, out = run_cli(capsys, "check", "schedule", "--models", "gpt2",
                        "--pp", "2", "--pp-microbatches", "2", "--json")
    assert code == 0
    assert "pp=2x2" in out  # the PP stage schedules were actually checked


def test_serve_cluster_command(capsys):
    code, out = run_cli(capsys, "serve", "--arrival", "bursty",
                        "--rate", "400", "--duration", "0.05",
                        "--prompt-len", "64", "--output-tokens", "4",
                        "--router", "least-loaded", "--replicas", "4",
                        "--prefix-share", "0.5", "--prefix-len", "64")
    assert code == 0
    assert "router" in out and "least-loaded" in out and "routed" in out
    assert "prefix hits=" in out
    assert "per-replica scale-out" in out


def test_serve_cluster_emit_trace_is_checkable(capsys, tmp_path):
    out_path = tmp_path / "cluster-trace.json"
    code, _ = run_cli(capsys, "serve", "--arrival", "bursty",
                      "--rate", "400", "--duration", "0.05",
                      "--prompt-len", "64", "--output-tokens", "4",
                      "--router", "round-robin", "--replicas", "2",
                      "--emit-trace", str(out_path))
    assert code == 0
    code, out = run_cli(capsys, "check", "trace", str(out_path))
    assert code == 0  # R001/R002 replay over the exported routing log


def test_serve_rejects_nonpositive_rate(capsys):
    code = main(["serve", "--rate", "0", "--duration", "0.1"])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error:")
    assert "--rate must be positive" in err


def test_serve_rejects_out_of_range_prefix_share(capsys):
    code = main(["serve", "--rate", "20", "--duration", "0.1",
                 "--prefix-share", "1.5"])
    err = capsys.readouterr().err
    assert code == 2
    assert "--prefix-share must be in [0, 1]" in err


def test_serve_autoscale_needs_cluster_router(capsys):
    code = main(["serve", "--rate", "20", "--duration", "0.1",
                 "--autoscale-max", "4"])
    err = capsys.readouterr().err
    assert code == 2
    assert "--autoscale-max needs a cluster router" in err


def test_serve_cluster_scenario_must_be_continuous(capsys):
    code = main(["serve", "--rate", "20", "--duration", "0.1",
                 "--router", "least-loaded", "--scenario", "static"])
    err = capsys.readouterr().err
    assert code == 2
    assert "--router shared" in err


def test_serve_default_flags_keep_pre_cluster_output(capsys):
    # --arrival fixed --prefix-share 0 is the identity lift: byte-identical
    # output to the same serve before the traffic flags existed.
    base = ("serve", "--rate", "20", "--duration", "0.2",
            "--prompt-len", "64", "--output-tokens", "3")
    code_a, out_a = run_cli(capsys, *base)
    code_b, out_b = run_cli(capsys, *base, "--arrival", "fixed",
                            "--prefix-share", "0")
    assert code_a == code_b == 0
    assert out_a == out_b
