"""Pipeline parallelism: stage partitioning + microbatched stage processes.

GPipe-style pipeline parallelism along the layer axis, composing with the
tensor-parallel sharding pass (:mod:`repro.engine.tp`): the (TP-sharded)
lowered op stream is split into ``stages`` contiguous segments balanced by
kernel work, each stage owns its own CPU dispatch thread and ``tp.degree``
devices on the simulation core, and the global batch is split into
``microbatches`` slices that flow through the stages as a pipeline
(SNIPPETS.md's ``PipelineParallelLLMEngine`` shape: staged queues between
ranks, each rank busy with a different microbatch).

Inter-stage handoff is a *staged queue of depth one*: a two-party rendezvous
per (boundary, iteration, microbatch) where the producer arrives when its
microbatch's kernels drain plus the activation transfer over the
interconnect (``LinkResource`` pricing), and the consumer arrives when its
dispatch thread is free. Both resume at the max — a synchronous handoff that
still pipelines compute, because the producer immediately starts its next
microbatch while the consumer works.

``PP_DISABLED`` (``stages == 1``) never reaches any of this: the executor
takes its untouched single-core path, which is the ``pp=1`` bit-parity
guarantee mirroring ``tp=1`` and ``chunk_tokens=0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.engine.lowering import KernelTask, LoweredOp
from repro.engine.modes import ExecutionMode
from repro.engine.processes import _op_plans
from repro.engine.tp import TP_DISABLED, TPConfig
from repro.errors import ConfigurationError
from repro.hardware.interconnect import InterconnectSpec, NVLINK4_P2P
from repro.hardware.platform import Platform
from repro.sim.causality import CausalityLog
from repro.sim.core import Process, SimCore
from repro.trace.events import DEVICE_SYNCHRONIZE


@dataclass(frozen=True)
class PPConfig:
    """Pipeline-parallel run configuration.

    Attributes:
        stages: Number of pipeline stages the layer stack splits into
            (1 = off).
        microbatches: Microbatches the global batch splits into; each
            carries ``1/microbatches`` of every kernel's work through the
            pipeline.
        link: Interconnect the inter-stage activation transfers ride.
    """

    stages: int = 1
    microbatches: int = 1
    link: InterconnectSpec = NVLINK4_P2P

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ConfigurationError("pp stages must be >= 1")
        if self.microbatches < 1:
            raise ConfigurationError("pp microbatches must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.stages > 1


PP_DISABLED = PPConfig()


@dataclass(frozen=True)
class ParallelConfig:
    """The tp × pp parallelism plan for one engine run.

    Bundles the two orthogonal axes: tensor parallelism shards every
    kernel *within* a stage across ``tp.degree`` devices; pipeline
    parallelism splits the layer stack *across* ``pp.stages`` stages.
    Total device count is the product.
    """

    tp: TPConfig = TP_DISABLED
    pp: PPConfig = PP_DISABLED

    @property
    def world(self) -> int:
        return self.tp.degree * self.pp.stages

    @property
    def enabled(self) -> bool:
        return self.tp.enabled or self.pp.enabled


def validate_pp(pp: PPConfig, op_count: int, model_name: str = "model") -> None:
    """Reject stage counts the partitioner cannot realize."""
    if not pp.enabled:
        return
    if pp.stages > op_count:
        raise ConfigurationError(
            f"pp stages {pp.stages} exceeds {model_name}'s {op_count} "
            f"lowered ops; a stage would be empty")


def _op_weight(lowered_op: LoweredOp) -> float:
    """Work weight for balancing: roofline terms plus a dispatch epsilon.

    The epsilon keeps zero-kernel ops (views, metadata) from collapsing to
    weightless — they still cost dispatch, and counting them stabilizes the
    split for kernel-free prefixes.
    """
    return sum(k.flops + k.bytes_moved for k in lowered_op.kernels) + 1.0


def partition_lowered(lowered: list[LoweredOp],
                      stages: int) -> list[list[LoweredOp]]:
    """Split a lowered op stream into contiguous work-balanced stages.

    Greedy prefix-sum split: stage ``s`` ends at the first op where the
    cumulative weight reaches ``total * (s+1) / stages``, clamped so every
    stage (including the trailing ones) gets at least one op. Returns
    ``stages`` non-empty lists that concatenate to the input.
    """
    if stages < 1:
        raise ConfigurationError("stages must be >= 1")
    if stages > len(lowered):
        raise ConfigurationError(
            f"cannot split {len(lowered)} ops into {stages} stages")
    if stages == 1:
        return [list(lowered)]
    weights = [_op_weight(lo) for lo in lowered]
    total = sum(weights)
    out: list[list[LoweredOp]] = []
    start = 0
    cumulative = 0.0
    for stage in range(stages):
        remaining_stages = stages - stage - 1
        if remaining_stages == 0:
            end = len(lowered)
        else:
            target = total * (stage + 1) / stages
            end = start + 1
            cumulative += weights[start]
            # Leave at least one op per remaining stage.
            limit = len(lowered) - remaining_stages
            while end < limit and cumulative < target:
                cumulative += weights[end]
                end += 1
        out.append(list(lowered[start:end]))
        start = end
    return out


def stage_boundary_bytes(stage: list[LoweredOp]) -> float:
    """Activation bytes handed to the next stage at a stage boundary.

    The last kernel-bearing op's written output is what crosses the wire
    (frozen activations of the boundary layer).
    """
    for lowered_op in reversed(stage):
        if lowered_op.kernels:
            return lowered_op.op.bytes_written
    return 0.0


# ---------------------------------------------------------------------------
# Per-stage partition cache
# ---------------------------------------------------------------------------

@dataclass
class PPStageCache:
    """FIFO-bounded cache of stage partitions, keyed per lowering + plan.

    Extends the lowered-graph cache's keying (:mod:`repro.engine.cache`)
    with the parallelism axes that shape the partition: the TP degree
    (sharding changes kernel weights and inserts collectives) and the stage
    count. Values are shared, not copied — stages hold the same frozen
    ``LoweredOp`` objects the lowering cache vended.
    """

    max_entries: int = 256
    enabled: bool = True
    hits: int = 0
    misses: int = 0
    _stages: dict = field(default_factory=dict, repr=False)

    def partition(self, key, lowered: list[LoweredOp],
                  stages: int) -> list[list[LoweredOp]]:
        if not self.enabled:
            return partition_lowered(lowered, stages)
        cached = self._stages.get(key)
        if cached is None:
            self.misses += 1
            cached = partition_lowered(lowered, stages)
            if len(self._stages) >= self.max_entries:
                self._stages.pop(next(iter(self._stages)))
            self._stages[key] = cached
        else:
            self.hits += 1
        return cached

    def clear(self) -> None:
        self._stages.clear()
        self.hits = self.misses = 0


PP_STAGE_CACHE = PPStageCache()


# ---------------------------------------------------------------------------
# Simulation topology + stage processes
# ---------------------------------------------------------------------------

def build_core_pp(tp: TPConfig, pp: PPConfig,
                  causality: CausalityLog | None = None) -> SimCore:
    """Construct the tp × pp simulation topology.

    One dispatch thread per stage (each stage drives its own devices
    single-thread style), ``tp.degree`` devices per stage in stage-major
    order, and the TP link for within-stage collectives.
    """
    from repro.sim.resources import LinkResource

    core = SimCore(causality=causality)
    for stage in range(pp.stages):
        core.add_cpu_thread(name=f"dispatch-stage{stage}"
                            if pp.stages > 1 else "dispatch")
    for _ in range(tp.degree * pp.stages):
        core.add_device()
    core.set_link(LinkResource(spec=tp.link))
    return core


def _microbatch_kernel(kernel: KernelTask, microbatches: int) -> KernelTask:
    """One microbatch's share of a kernel: all work terms divide."""
    if microbatches == 1:
        return kernel
    return replace(
        kernel,
        flops=kernel.flops / microbatches,
        bytes_read=kernel.bytes_read / microbatches,
        bytes_written=kernel.bytes_written / microbatches,
        comm_bytes=kernel.comm_bytes / microbatches,
        members=tuple(_microbatch_kernel(m, microbatches)
                      for m in kernel.members),
    )


def microbatch_lowered(stage: list[LoweredOp],
                       microbatches: int) -> list[LoweredOp]:
    """The per-microbatch op stream for one stage."""
    if microbatches == 1:
        return stage
    return [LoweredOp(lo.op, tuple(_microbatch_kernel(k, microbatches)
                                   for k in lo.kernels))
            for lo in stage]


def pp_stage_processes(
    core: SimCore,
    builder,
    stage_lowerings: list[list[LoweredOp]],
    platform: Platform,
    mode: ExecutionMode,
    config,
    pp: PPConfig,
) -> list[Process]:
    """One launch-mode dispatch process per pipeline stage.

    Stage ``s`` owns ``core.cpu_threads[s]`` and the device slice
    ``[s*tpd, (s+1)*tpd)``; microbatches flow through the inter-stage
    rendezvous described in the module docstring. The first stage opens
    iteration marks, the last stage closes them, so recorded inference
    latency is the true pipeline latency including fill and drain.
    """
    stages = len(stage_lowerings)
    boundary = [stage_boundary_bytes(stage) for stage in stage_lowerings]
    return [
        _pp_stage_process(core, builder, stage_lowerings, platform, mode,
                          config, pp, boundary, stage_index)
        for stage_index in range(stages)
    ]


def _pp_stage_process(
    core: SimCore,
    builder,
    stage_lowerings: list[list[LoweredOp]],
    platform: Platform,
    mode: ExecutionMode,
    config,
    pp: PPConfig,
    boundary: list[float],
    stage_index: int,
) -> Process:
    stages = len(stage_lowerings)
    tp_world = len(core.devices) // stages
    devices = core.devices[stage_index * tp_world:
                           (stage_index + 1) * tp_world]
    streams = [device.compute_stream for device in devices]
    stream0 = streams[0]
    thread = core.cpu_threads[stage_index]
    tid = thread.tid
    first = stage_index == 0
    last = stage_index == stages - 1
    launch_cpu = platform.launch_call_cpu_ns
    launch_latency = platform.launch_latency_ns
    gap = config.stream_kernel_gap_ns
    queue_depth = config.launch_queue_depth
    child_frac = config.child_dispatch_fraction
    send_ns = (0.0 if last
               else pp.link.transfer_ns(boundary[stage_index]
                                        / pp.microbatches))
    plans = _op_plans(
        microbatch_lowered(stage_lowerings[stage_index], pp.microbatches),
        core, platform, mode, config, tp_world)
    cpu = 0.0
    launched = 0
    total = config.warmup_iterations + config.iterations
    for iteration in range(total):
        measured = iteration >= config.warmup_iterations
        if measured and first:
            builder.begin_iteration(cpu)
        for microbatch in range(pp.microbatches):
            if not first:
                # Staged queue (recv): wait for upstream activations.
                rdv = core.rendezvous(
                    ("pp.act", stage_index - 1, stage_index, iteration,
                     microbatch), 2)
                cpu = yield ("join", rdv, cpu)
            for aten_name, dispatch, epilogue, pre, child_name, kernels \
                    in plans:
                parent = builder.begin_operator(aten_name, cpu, tid=tid)
                child = None
                if child_name is not None:
                    cpu += pre * (1.0 - child_frac)
                    child = builder.begin_operator(child_name, cpu, tid=tid)
                    cpu += pre * child_frac
                else:
                    cpu += pre
                thread.occupy(dispatch)
                for kernel, duration, is_collective in kernels:
                    backlog_index = launched - queue_depth
                    if backlog_index >= 0:
                        cpu = max(cpu, stream0.nth_start(backlog_index))
                    if is_collective:
                        # Within-stage TP all-reduce: one thread drives all
                        # of this stage's shards (single-thread dispatch).
                        calls = []
                        for _ in streams:
                            calls.append(cpu)
                            cpu += launch_cpu
                            thread.occupy(launch_cpu)
                        start_at = max(
                            stream.earliest_start(
                                calls[di] + launch_latency, gap)
                            for di, stream in enumerate(streams))
                        for di, stream in enumerate(streams):
                            start, _end = stream.submit(start_at, duration,
                                                        gap_ns=gap)
                            builder.launch_kernel(
                                calls[di], launch_cpu, kernel.name, start,
                                duration, stream=stream.stream_id,
                                device=stream.device, tid=tid,
                                flops=kernel.flops,
                                bytes_moved=kernel.bytes_moved)
                        core.link.record(duration, start_at)
                    else:
                        for stream in streams:
                            call_ts = cpu
                            arrival = call_ts + launch_latency
                            start, _end = stream.submit(arrival, duration,
                                                        gap_ns=gap)
                            builder.launch_kernel(
                                call_ts, launch_cpu, kernel.name, start,
                                duration, stream=stream.stream_id,
                                device=stream.device, tid=tid,
                                flops=kernel.flops,
                                bytes_moved=kernel.bytes_moved)
                            cpu += launch_cpu
                            thread.occupy(launch_cpu)
                    launched += 1
                if child is not None:
                    builder.end_operator(child, cpu)
                cpu += epilogue
                builder.end_operator(parent, cpu)
            if not last:
                # Staged queue (send): activations are ready when this
                # microbatch's kernels drain plus the link transfer; the
                # downstream stage resumes at max(ready, its own clock).
                ready = max(stream.free_at for stream in streams) + send_ns
                rdv = core.rendezvous(
                    ("pp.act", stage_index, stage_index + 1, iteration,
                     microbatch), 2)
                cpu = yield ("join", rdv, max(cpu, ready))
        # Per-stage synchronize; the last stage closes the iteration mark
        # *before* the barrier so marks never interleave across iterations.
        wait = max(0.0, max(stream.free_at for stream in streams) - cpu)
        builder.runtime_call(DEVICE_SYNCHRONIZE, cpu,
                             config.sync_call_ns + wait, tid=tid)
        cpu += config.sync_call_ns + wait
        if measured and last:
            builder.end_iteration(cpu)
        barrier = core.rendezvous(("pp.iteration-end", iteration), stages)
        cpu = yield ("join", barrier, cpu)
        cpu += config.inter_iteration_gap_ns


__all__ = [
    "PP_DISABLED",
    "PP_STAGE_CACHE",
    "PPConfig",
    "PPStageCache",
    "ParallelConfig",
    "build_core_pp",
    "microbatch_lowered",
    "partition_lowered",
    "pp_stage_processes",
    "stage_boundary_bytes",
    "validate_pp",
]
