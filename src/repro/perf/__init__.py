"""repro.perf — simulator performance measurement.

The one package in the library allowed to read the wall clock (everything
under ``repro.sim``/``repro.engine``/``repro.kvcache`` is barred from it by
``repro check code`` rule C001): it measures how fast the *simulator*
runs, never anything inside the simulation.

:mod:`repro.perf.harness` drives three canonical scenarios and writes
``BENCH_simperf.json``; see ``docs/performance.md`` for how to read it.
"""

__all__ = [
    "BEFORE_BASELINES",
    "SCENARIO_NAMES",
    "ScenarioResult",
    "run_harness",
]


def __getattr__(name: str):
    # Lazy re-export: importing the submodule eagerly makes
    # ``python -m repro.perf.harness`` warn about double-initialization.
    if name in __all__:
        from repro.perf import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
