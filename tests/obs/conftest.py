"""Shared fixtures: one small recorded continuous-batching run."""

from __future__ import annotations

import pytest

from repro.hardware import INTEL_H100
from repro.obs import RunRecorder
from repro.serving import (
    ContinuousBatchPolicy,
    LatencyModel,
    poisson_requests,
    simulate_continuous_batching,
)
from repro.workloads import GPT2


@pytest.fixture(scope="module")
def recorded_run():
    """(recorder, latency, report, requests) for a short continuous run."""
    latency = LatencyModel(INTEL_H100)
    requests = poisson_requests(rate_per_s=25, duration_s=0.3, prompt_len=64,
                                output_tokens=4, seed=3)
    recorder = RunRecorder()
    report = simulate_continuous_batching(
        requests, GPT2, latency, ContinuousBatchPolicy(max_active=4),
        recorder=recorder)
    return recorder, latency, report, requests
