"""Latency-throughput Pareto frontiers from batch sweeps and serving runs.

Section III-B frames the operator's problem as balancing user-visible
latency against hardware utilization. For a prefill sweep, each batch size
is a (TTFT, tokens-per-second) point; the Pareto-efficient subset is the
menu an operator actually chooses from, and comparing frontiers across
platforms shows where each coupling paradigm is the right buy.

The serving-side frontier trades the *two* user-visible latencies against
each other: chunked prefill (``chunk_tokens`` budgets) delays first tokens
(a long prompt now prefills over several steps) but bounds how long any
in-flight decode stalls behind it, so under mixed long-prompt traffic each
budget is a (p99 TTFT, p99 TBT) operating point and the sweep traces the
stall-free-scheduling trade directly — tail TBT collapses at a bounded
TTFT cost, more sharply on coupled parts whose faster dispatch keeps the
extra chunk steps cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.analysis.sweep import SweepResult
from repro.errors import AnalysisError


@dataclass(frozen=True)
class OperatingPoint:
    """One (batch, latency, throughput) choice on a platform."""

    platform: str
    batch_size: int
    ttft_ns: float
    tokens_per_second: float

    def dominates(self, other: "OperatingPoint") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        no_worse = (self.ttft_ns <= other.ttft_ns
                    and self.tokens_per_second >= other.tokens_per_second)
        better = (self.ttft_ns < other.ttft_ns
                  or self.tokens_per_second > other.tokens_per_second)
        return no_worse and better


def operating_points(sweep: SweepResult, platform: str,
                     seq_len: int) -> list[OperatingPoint]:
    """All swept operating points for one platform."""
    if seq_len <= 0:
        raise AnalysisError("seq_len must be positive")
    points = []
    for batch in sweep.batch_sizes:
        ttft = sweep.point(platform, batch).ttft_ns
        points.append(OperatingPoint(
            platform=platform,
            batch_size=batch,
            ttft_ns=ttft,
            tokens_per_second=batch * seq_len / (ttft / 1e9),
        ))
    return points


def pareto_frontier(points: list[OperatingPoint]) -> list[OperatingPoint]:
    """The non-dominated subset, sorted by latency ascending."""
    if not points:
        raise AnalysisError("no operating points given")
    frontier = [p for p in points
                if not any(q.dominates(p) for q in points if q is not p)]
    return sorted(frontier, key=lambda p: p.ttft_ns)


def cross_platform_frontier(sweep: SweepResult, seq_len: int,
                            platforms: list[str] | None = None
                            ) -> list[OperatingPoint]:
    """The joint frontier across platforms — which system to buy for which
    latency budget."""
    names = platforms if platforms is not None else sweep.platforms()
    combined: list[OperatingPoint] = []
    for name in names:
        combined.extend(operating_points(sweep, name, seq_len))
    return pareto_frontier(combined)


# ---------------------------------------------------------------------------
# Serving TTFT/TBT frontier under chunked prefill
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ServingOperatingPoint:
    """One chunk-budget choice on a platform, measured on a serving run.

    Latencies are per-token-gap percentiles from the run recorder: TBT is
    the gap between consecutive tokens of one request (``H_TBT``), so its
    p99 is exactly the decode stall a long prompt inflicts on its
    neighbors — the quantity chunked prefill bounds.
    """

    platform: str
    chunk_tokens: int
    p50_ttft_ns: float
    p99_ttft_ns: float
    p50_tbt_ns: float
    p99_tbt_ns: float
    throughput_tokens_per_s: float

    def dominates(self, other: "ServingOperatingPoint") -> bool:
        """Pareto dominance on the (p99 TTFT, p99 TBT) tail plane."""
        no_worse = (self.p99_ttft_ns <= other.p99_ttft_ns
                    and self.p99_tbt_ns <= other.p99_tbt_ns)
        better = (self.p99_ttft_ns < other.p99_ttft_ns
                  or self.p99_tbt_ns < other.p99_tbt_ns)
        return no_worse and better


def mixed_prompt_requests(seed: int = 0,
                          rate_per_s: float = 50.0,
                          long_rate_per_s: float = 8.0,
                          duration_s: float = 0.4,
                          prompt_len: int = 128,
                          long_prompt_len: int = 3072,
                          output_tokens: int = 48,
                          long_output_tokens: int = 8) -> list:
    """The mixed long-prompt arrival stream the serving frontier is run on.

    A high-rate interactive stream (short prompts, long generations) shares
    the engine with a low-rate analytic stream (very long prompts, short
    generations) — the traffic mix where whole-prompt prefill stalls decode
    tails hardest. Streams are merged by arrival and re-numbered so request
    ids stay unique.
    """
    from repro.serving.requests import poisson_requests

    short = poisson_requests(rate_per_s=rate_per_s, duration_s=duration_s,
                             prompt_len=prompt_len,
                             output_tokens=output_tokens, seed=seed)
    long = poisson_requests(rate_per_s=long_rate_per_s,
                            duration_s=duration_s,
                            prompt_len=long_prompt_len,
                            output_tokens=long_output_tokens, seed=seed + 1)
    merged = sorted([*short, *long], key=lambda r: r.arrival_ns)
    return [replace(request, request_id=index)
            for index, request in enumerate(merged)]


def serving_operating_point(model, latency, requests,
                            chunk_tokens: int,
                            max_active: int = 8) -> ServingOperatingPoint:
    """Measure one chunk budget as a serving operating point."""
    from repro.obs.recorder import H_TBT, H_TTFT, RunRecorder
    from repro.serving.continuous import ContinuousBatchPolicy
    from repro.serving.runtime import simulate_serving

    recorder = RunRecorder()
    result = simulate_serving(
        list(requests), model, latency,
        policy=ContinuousBatchPolicy(max_active=max_active,
                                     chunk_tokens=chunk_tokens),
        recorder=recorder)
    ttft = recorder.histogram(H_TTFT)
    tbt = recorder.histogram(H_TBT)
    return ServingOperatingPoint(
        platform=latency.platform.name,
        chunk_tokens=chunk_tokens,
        p50_ttft_ns=ttft.percentile(50),
        p99_ttft_ns=ttft.percentile(99),
        p50_tbt_ns=tbt.percentile(50),
        p99_tbt_ns=tbt.percentile(99),
        throughput_tokens_per_s=result.throughput_tokens_per_s,
    )


def chunk_budget_sweep(model, latency,
                       budgets: Sequence[int] = (0, 256, 512),
                       requests=None,
                       max_active: int = 8,
                       seed: int = 0) -> list[ServingOperatingPoint]:
    """Sweep chunk budgets over one arrival stream on one platform.

    Budget 0 (whole-prompt prefill) is the baseline the other points trade
    against. Every budget serves the *same* request stream, so differences
    are scheduling, not workload noise.
    """
    if not budgets:
        raise AnalysisError("no chunk budgets given")
    if requests is None:
        requests = mixed_prompt_requests(seed=seed)
    return [serving_operating_point(model, latency, requests, budget,
                                    max_active=max_active)
            for budget in budgets]


def serving_pareto_frontier(
        points: list[ServingOperatingPoint]) -> list[ServingOperatingPoint]:
    """The non-dominated chunk budgets, sorted by tail TTFT ascending."""
    if not points:
        raise AnalysisError("no serving operating points given")
    frontier = [p for p in points
                if not any(q.dominates(p) for q in points if q is not p)]
    return sorted(frontier, key=lambda p: p.p99_ttft_ns)


def chunk_sweep_report(points: list[ServingOperatingPoint],
                       title: str = "chunked-prefill frontier") -> str:
    """Render a chunk-budget sweep as an aligned table."""
    from repro.units import format_ns
    from repro.viz import render_table

    if not points:
        raise AnalysisError("no serving operating points given")
    frontier = set(id(p) for p in serving_pareto_frontier(points))
    rows = [[p.platform,
             str(p.chunk_tokens) if p.chunk_tokens else "off",
             format_ns(p.p99_ttft_ns), format_ns(p.p50_tbt_ns),
             format_ns(p.p99_tbt_ns),
             f"{p.throughput_tokens_per_s:.0f}",
             "*" if id(p) in frontier else ""]
            for p in points]
    return render_table(
        ["platform", "chunk", "p99 TTFT", "p50 TBT", "p99 TBT",
         "tokens/s", "pareto"],
        rows, title=title)
