"""Shared seeded serving scenarios used across test suites and benchmarks.

Two canonical arrival streams recur everywhere the serving stack is
exercised:

* the **overload** stream — ~100 requests in 200 ms, far past what one
  replica with 8 active sequences drains at line rate, so scale-out tests
  have head-of-line pressure to relieve;
* the **KV-pressure** stream — settings that put GPT-2 under measurable
  paged-pool pressure in ~0.1 s of wall time (capacity 72 blocks at
  ``POOL_GIB``; two admitted sequences need 2*33=66 blocks at admission but
  2*40=80 over their lifetimes, so decode growth must evict or swap).

Keeping the numbers here — instead of re-typed per suite — means a change
to one scenario shifts every consumer together, and parity suites comparing
two code paths are guaranteed to replay the *same* stream.
"""

from repro.engine.modes import ExecutionMode
from repro.kvcache import KvCacheConfig
from repro.serving.continuous import ContinuousBatchPolicy
from repro.serving.latency import LatencyModel
from repro.serving.requests import poisson_requests
from repro.serving.runtime import simulate_serving
from repro.workloads import GPT2

#: The overload stream's parameters (see module docstring).
OVERLOAD = dict(rate_per_s=500, duration_s=0.2, prompt_len=512,
                output_tokens=64, seed=3)

#: The KV-pressure stream's parameters (see module docstring).
PRESSURE = dict(rate_per_s=40.0, duration_s=0.3, prompt_len=512,
                output_tokens=128, seed=7)
#: Paged-pool size that makes the PRESSURE stream actually evict/swap.
POOL_GIB = 0.04
#: Continuous-batching concurrency bound used with both streams.
MAX_ACTIVE = 8


def overloaded_stream():
    """The canonical overload arrival stream (deterministic: seed 3)."""
    return poisson_requests(**OVERLOAD)


def pressure_stream():
    """The canonical KV-pressure arrival stream (deterministic: seed 7)."""
    return poisson_requests(**PRESSURE)


def pressured_run(platform, policy,
                  mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD,
                  recorder=None):
    """Serve the PRESSURE stream on ``platform`` under KV policy ``policy``.

    Returns ``(requests, run)`` so callers can assert every request was
    served. Single replica, continuous batching at ``MAX_ACTIVE``.
    """
    requests = pressure_stream()
    latency = LatencyModel(platform=platform, mode=mode)
    return requests, simulate_serving(
        requests, GPT2, latency,
        policy=ContinuousBatchPolicy(max_active=MAX_ACTIVE),
        recorder=recorder,
        kv=KvCacheConfig(policy=policy, pool_gib=POOL_GIB))
