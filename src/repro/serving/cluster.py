"""Cluster tier: a router process above N serving replicas.

The flat :class:`~repro.serving.runtime.ServingRuntime` scales out by
letting replicas race for claims on one shared queue. At cluster scale
that is the wrong model — a real deployment has a *router* making explicit
placement decisions — so this module puts one on the sim core:

* :class:`RoutedQueue` — a per-replica admission queue the router pushes
  into. Policy processes (continuous batching, with or without KV) run on
  it unchanged; its arrival hint folds in the router's next feed time so
  an idle replica sleeps until work can actually reach it.
* :class:`ClusterRuntime` — owns the core, a dedicated router CPU thread,
  and the replica pool. The router process wakes at each arrival, charges
  one CPU dispatch decision on its thread, and places the request per the
  configured :class:`RouterPolicy` (round-robin, least-loaded,
  session-affinity, or prefill/decode-disaggregated pools).
* **Autoscaling** — when the routed-but-unfinished backlog exceeds
  ``backlog_per_replica`` per live replica, the router spins up a new
  one. Spin-up is modeled as CPU dispatch work on the platform model
  (``spinup_dispatch_ops`` launch calls), and the new replica's policy
  process only starts once that delay elapses (:func:`_delayed`).

Determinism: the router routes an arrival at time ``t`` and idle replicas
wake at ``t + route_cost_ns`` — strictly after the routing event — so the
two never contend at the same timestamp and outcomes survive adversarial
tie-break perturbation (``repro check hb --certify`` runs the canonical
cluster scenario under LIFO ties to hold this).

Every routing decision is logged (recorder hook ``on_routed``, exported
as ``cluster`` trace metadata) so rules R001/R002 can replay conservation
and session affinity from the artifact alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.obs.recorder import RunRecorder
from repro.serving.latency import LatencyModel
from repro.serving.requests import Request, RequestOutcome, queue_delay_ns
from repro.serving.runtime import (
    AdmissionEntry,
    AdmissionQueue,
    EngineSession,
    KvReplicaStats,
    ReplicaStats,
    ServingRunResult,
)
from repro.sim.causality import CausalityLog
from repro.sim.core import Process, SimCore
from repro.sim.queue import EventQueue
from repro.workloads.config import ModelConfig

if TYPE_CHECKING:
    from repro.host.model import HostModel
    from repro.kvcache.manager import KvCacheConfig


class RouterPolicy(enum.Enum):
    """How the cluster router places each arriving request."""

    ROUND_ROBIN = "round-robin"      # rotate, ignoring load
    LEAST_LOADED = "least-loaded"    # fewest outstanding tokens wins
    SESSION = "session"              # sticky session -> replica affinity
    DISAGGREGATED = "disaggregated"  # prefill-heavy vs decode-heavy pools


@dataclass(frozen=True)
class AutoscaleConfig:
    """SLO-driven scale-out knobs for the cluster router.

    Attributes:
        max_replicas: Hard ceiling on replica count.
        backlog_per_replica: Routed-but-unfinished requests per live
            replica that trigger a spin-up.
        spinup_dispatch_ops: CPU dispatch calls one spin-up costs on the
            platform model (weight load plus engine warm-up, expressed in
            the currency the paper measures: launch work).
    """

    max_replicas: int = 8
    backlog_per_replica: int = 8
    spinup_dispatch_ops: int = 2000

    def __post_init__(self) -> None:
        if self.max_replicas <= 0:
            raise ConfigurationError("max_replicas must be positive")
        if self.backlog_per_replica <= 0:
            raise ConfigurationError("backlog_per_replica must be positive")
        if self.spinup_dispatch_ops <= 0:
            raise ConfigurationError("spinup_dispatch_ops must be positive")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling decision."""

    ts_ns: float
    replicas: int     # replica count after the spin-up
    spinup_ns: float  # modeled dispatch work the spin-up cost


@dataclass(frozen=True)
class RouterStats:
    """What the router did over one cluster run."""

    policy: str
    replicas: int                 # final replica count
    routed: int
    routed_per_replica: tuple[int, ...]
    router_busy_ns: float
    route_cost_ns: float
    scale_events: tuple[ScaleEvent, ...] = ()
    sessions: int = 0             # distinct sticky session tags seen


@dataclass
class ClusterRunResult(ServingRunResult):
    """A :class:`ServingRunResult` plus the router's own accounting."""

    router: RouterStats | None = None


class RoutedQueue(AdmissionQueue):
    """A per-replica admission queue fed by the cluster router.

    Starts empty (the router pushes entries as it places requests) and
    folds the router's next feed time into the arrival hint, so a policy
    process idling on an empty queue sleeps until the next instant work
    could actually reach this replica — never spinning at the router's
    own timestamp.
    """

    def __init__(self, cluster: ClusterRuntime) -> None:
        self.entries: list[AdmissionEntry] = []
        self._scan_start = 0
        self._cluster = cluster

    def push(self, request: Request) -> None:
        """Append a routed request (the router calls this in arrival order)."""
        if self.entries and request.arrival_ns < self.entries[-1].arrival_ns:
            raise SimulationError("router pushed requests out of arrival order")
        self.entries.append(AdmissionEntry(
            request=request, injected=True, index=len(self.entries)))

    def next_unclaimed_arrival(self, after: float | None = None,
                               tag: object = None) -> float | None:
        own = super().next_unclaimed_arrival(after, tag)
        pending = self._cluster.next_feed_ns()
        if pending is not None and after is not None and pending <= after:
            # The feed frontier is behind this replica's clock; anything it
            # covers is either already pushed here or went elsewhere.
            pending = None
        if own is None:
            return pending
        if pending is None:
            return own
        return min(own, pending)


class ReplicaHandle:
    """One replica's view of the cluster, duck-typing ``ServingRuntime``.

    The continuous-batching policy processes only touch ``queue``,
    ``latency``, ``model``, ``recorder``, and ``complete`` on their
    runtime, so a handle exposing those over the cluster lets them run on
    a routed queue unchanged.
    """

    def __init__(self, cluster: ClusterRuntime, session: EngineSession) -> None:
        self._cluster = cluster
        self.session = session
        self.queue = RoutedQueue(cluster)

    @property
    def replica(self) -> int:
        return self.session.replica

    @property
    def model(self) -> ModelConfig:
        return self._cluster.model

    @property
    def latency(self) -> LatencyModel:
        return self._cluster.latency

    @property
    def recorder(self) -> RunRecorder | None:
        return self._cluster.recorder

    def complete(self, request: Request, ttft_ns: float, completion_ns: float,
                 batch_size: int, service_start_ns: float,
                 session: EngineSession) -> RequestOutcome:
        return self._cluster.complete(
            request, ttft_ns=ttft_ns, completion_ns=completion_ns,
            batch_size=batch_size, service_start_ns=service_start_ns,
            session=session)


def _delayed(inner: Process, start_ns: float) -> Process:
    """Hold a policy process's first wake-up until ``start_ns``.

    Policy generators open with ``yield ("at", 0.0)``; spawning one
    mid-run would let that timer pop immediately and hand the process a
    clock of zero — serving before the replica exists. This trampoline
    rewrites the first timer to the spin-up completion time and forwards
    everything else verbatim.
    """
    request = next(inner)
    if isinstance(request, tuple) and len(request) == 2 and request[0] == "at":
        request = ("at", max(float(request[1]), start_ns))
    while True:
        value = yield request
        try:
            request = inner.send(value)
        except StopIteration:
            return


class ClusterRuntime:
    """Owns the sim core, the router, and the replica pool of one run."""

    def __init__(
        self,
        requests: Sequence[Request],
        model: ModelConfig,
        latency: LatencyModel,
        process: Callable[..., Process],
        policy: object,
        router: RouterPolicy = RouterPolicy.LEAST_LOADED,
        replicas: int = 4,
        recorder: RunRecorder | None = None,
        kv: KvCacheConfig | None = None,
        autoscale: AutoscaleConfig | None = None,
        disagg_prompt_ratio: float = 4.0,
        queue: EventQueue | None = None,
        causality: CausalityLog | None = None,
        host: HostModel | None = None,
    ) -> None:
        if not requests:
            raise ConfigurationError("no requests to serve")
        if replicas <= 0:
            raise ConfigurationError("replicas must be positive")
        if router is RouterPolicy.DISAGGREGATED and replicas < 2:
            raise ConfigurationError(
                "disaggregated routing needs at least two replicas "
                "(one prefill pool, one decode pool)")
        if disagg_prompt_ratio <= 0:
            raise ConfigurationError("disagg_prompt_ratio must be positive")
        self.model = model
        self.latency = latency
        self.recorder = recorder
        self.router_policy = router
        self.autoscale = autoscale
        self.disagg_prompt_ratio = disagg_prompt_ratio
        self._process = process
        self._serving_policy = policy
        self.core = SimCore(queue=queue, causality=causality)
        # Routing decisions are CPU dispatch work on the platform model;
        # a strictly positive cost is also what keeps router events and
        # replica wake-ups off the same timestamp — so a platform whose
        # launch-call cost is not positive is a broken configuration,
        # not something to clamp over silently.
        route_cost_ns = latency.platform.launch_call_cpu_ns
        if route_cost_ns <= 0:
            raise ConfigurationError(
                f"platform {latency.platform.name} reports a non-positive "
                f"launch_call_cpu_ns ({route_cost_ns}); the router cannot "
                f"model a free dispatch decision")
        self.route_cost_ns = route_cost_ns
        # host=None is the infinite-CPU fast path; a HostModel makes the
        # router and every replica contend for the host's finite cores.
        self.host = host
        if host is not None:
            host.attach(self.core, recorder=recorder)
        self.router_thread = self.core.add_cpu_thread(name="router")
        self.devices_per_replica = (
            (latency.tp.degree if latency.tp else 1)
            * (latency.pp.stages if latency.pp else 1))
        self.kv_config = kv if kv is not None and kv.enabled else None
        self.requests = sorted(requests, key=lambda r: r.arrival_ns)
        self._ids = [r.request_id for r in self.requests]
        if len(set(self._ids)) != len(self._ids):
            raise ConfigurationError("duplicate request ids in stream")
        self.handles: list[ReplicaHandle] = []
        for _ in range(replicas):
            self._make_replica()
        # Disaggregated pools split the *initial* replicas; autoscaled
        # ones join the decode pool (decode capacity is what backlogs).
        self._prefill_count = max(1, replicas // 2)
        self.outcomes: list[RequestOutcome] = []
        # Router bookkeeping.
        self._load: list[float] = [0.0] * replicas  # outstanding token mass
        self._outstanding = 0                       # routed, not completed
        self._session_map: dict[str, int] = {}
        self._rr_next = 0
        self._next_feed: float | None = (
            self.requests[0].arrival_ns + self.route_cost_ns)
        self._routed_ids: set[int] = set()
        self.routed_per_replica: list[int] = [0] * replicas
        self.scale_events: list[ScaleEvent] = []
        self.router_busy_ns = 0.0
        if recorder is not None:
            recorder.on_cluster(router.value, replicas, self._ids)

    # ------------------------------------------------------------------
    # Replica pool
    # ------------------------------------------------------------------
    @property
    def replicas(self) -> int:
        return len(self.handles)

    @property
    def sessions(self) -> list[EngineSession]:
        return [handle.session for handle in self.handles]

    def _make_replica(self) -> ReplicaHandle:
        replica = len(self.handles)
        thread = self.core.add_cpu_thread(name=f"serve{replica}")
        devices = [self.core.add_device(replica=replica)
                   for _ in range(self.devices_per_replica)]
        manager = None
        if self.kv_config is not None:
            from repro.kvcache.manager import KvManager

            manager = KvManager.for_gpu(
                self.model, self.latency.platform, self.kv_config,
                recorder=self.recorder, replica=replica)
            self.core.add_kv_resource(manager.resource)
            if self.recorder is not None:
                self.recorder.on_kv_pool(replica, manager.capacity_blocks,
                                         self.kv_config.policy.value,
                                         self.kv_config.block_tokens)
        session = EngineSession(replica=replica, thread=thread,
                                devices=devices, recorder=self.recorder,
                                kv=manager, host=self.host,
                                numa_domain=(self.host.domain_for(replica)
                                             if self.host is not None
                                             else None))
        handle = ReplicaHandle(self, session)
        self.handles.append(handle)
        return handle

    def complete(self, request: Request, ttft_ns: float, completion_ns: float,
                 batch_size: int, service_start_ns: float,
                 session: EngineSession) -> RequestOutcome:
        """Record one finished request against the replica that served it."""
        outcome = RequestOutcome(
            request=request,
            ttft_ns=ttft_ns,
            completion_ns=completion_ns,
            batch_size=batch_size,
            queue_ns=queue_delay_ns(request, service_start_ns),
            replica=session.replica,
        )
        self.outcomes.append(outcome)
        session.requests += 1
        session.output_tokens += request.output_tokens
        self._load[session.replica] -= self._mass(request)
        self._outstanding -= 1
        return outcome

    # ------------------------------------------------------------------
    # Router
    # ------------------------------------------------------------------
    def next_feed_ns(self) -> float | None:
        """Earliest time a not-yet-routed request can reach any replica.

        ``None`` once the router has placed everything. Strictly later
        than the routing event itself (by ``route_cost_ns``), so an idle
        replica waking on this hint always finds the decision already
        made — under any event-queue tie-break order.
        """
        return self._next_feed

    @staticmethod
    def _mass(request: Request) -> float:
        return float(request.prompt_len + request.output_tokens)

    def _least_loaded(self, candidates: Sequence[int]) -> int:
        best = candidates[0]
        for replica in candidates[1:]:
            if self._load[replica] < self._load[best]:
                best = replica
        return best

    def _pick(self, request: Request) -> int:
        policy = self.router_policy
        if policy is RouterPolicy.ROUND_ROBIN:
            replica = self._rr_next % self.replicas
            self._rr_next += 1
            return replica
        if policy is RouterPolicy.LEAST_LOADED:
            return self._least_loaded(range(self.replicas))
        if policy is RouterPolicy.SESSION:
            session = getattr(request, "session", None)
            if session is not None and session in self._session_map:
                return self._session_map[session]
            replica = self._least_loaded(range(self.replicas))
            if session is not None:
                self._session_map[session] = replica
            return replica
        # DISAGGREGATED: prefill-heavy requests go to the prefill pool.
        prefill_heavy = (request.prompt_len
                         >= self.disagg_prompt_ratio * request.output_tokens)
        pool = (range(self._prefill_count) if prefill_heavy
                else range(self._prefill_count, self.replicas))
        return self._least_loaded(pool)

    def _maybe_scale(self, ts_ns: float) -> None:
        scale = self.autoscale
        if scale is None or self.replicas >= scale.max_replicas:
            return
        if self._outstanding < scale.backlog_per_replica * self.replicas:
            return
        spinup_ns = (scale.spinup_dispatch_ops
                     * self.latency.platform.launch_call_cpu_ns)
        self.router_thread.occupy(spinup_ns)
        self.router_busy_ns += spinup_ns
        if self.host is not None:
            # Spin-up dispatch burns real cores: the booking delays
            # replica grants, though the router itself never stalls (its
            # event timing must stay ahead of the feed hint it publishes).
            self.host.dispatch("router", ts_ns, spinup_ns,
                               domain=self.host.router_domain)
        handle = self._make_replica()
        self._load.append(0.0)
        self.routed_per_replica.append(0)
        self.scale_events.append(ScaleEvent(
            ts_ns=ts_ns, replicas=self.replicas, spinup_ns=spinup_ns))
        # Routing to the new replica is allowed immediately (its queue
        # exists now); it starts *serving* once the spin-up work is done.
        self.core.spawn(
            _delayed(self._policy_process(handle), ts_ns + spinup_ns),
            at_ns=ts_ns + spinup_ns)

    def _router_process(self) -> Process:
        clock = 0.0
        for request in self.requests:
            self._next_feed = request.arrival_ns + self.route_cost_ns
            if request.arrival_ns > clock:
                clock = yield ("at", request.arrival_ns)
            self._maybe_scale(clock)
            replica = self._pick(request)
            self.router_thread.occupy(self.route_cost_ns)
            self.router_busy_ns += self.route_cost_ns
            if self.host is not None:
                self.host.dispatch("router", clock, self.route_cost_ns,
                                   domain=self.host.router_domain)
            if request.request_id in self._routed_ids:
                raise SimulationError(
                    f"request {request.request_id} routed twice")
            self._routed_ids.add(request.request_id)
            self.handles[replica].queue.push(request)
            self._load[replica] += self._mass(request)
            self._outstanding += 1
            self.routed_per_replica[replica] += 1
            if self.recorder is not None:
                self.recorder.on_routed(
                    request.request_id, replica, clock,
                    session=getattr(request, "session", None),
                    tenant=getattr(request, "tenant", None))
        self._next_feed = None

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def _policy_process(self, handle: ReplicaHandle) -> Process:
        return self._process(handle, handle.session, self._serving_policy)

    def run(self) -> list[RequestOutcome]:
        """Drive the router plus one policy process per replica to the end."""
        self.core.spawn(self._router_process())
        # Replicas first wake when the first routed request can reach one —
        # never at the first arrival itself. A stream whose first request
        # lands exactly at a replica's start time would otherwise race the
        # router at one timestamp, and the tie-break order (not causality)
        # would decide whether the claim pays the routing latency.
        start_ns = self.requests[0].arrival_ns + self.route_cost_ns
        for handle in self.handles:
            self.core.spawn(_delayed(self._policy_process(handle), start_ns))
        self.core.run()
        if self._routed_ids != set(self._ids):
            missing = sorted(set(self._ids) - self._routed_ids)
            raise SimulationError(
                f"router dropped requests on the floor: {missing[:5]}")
        for handle in self.handles:
            if not handle.queue.all_claimed():
                unserved = [e.request.request_id
                            for e in handle.queue.entries if not e.claimed]
                raise SimulationError(
                    f"replica {handle.replica} left requests unserved: "
                    f"{unserved[:5]}")
        if len(self.outcomes) != len(self.requests):
            raise SimulationError(
                f"served {len(self.outcomes)} outcomes for "
                f"{len(self.requests)} requests")
        served = [o.request.request_id for o in self.outcomes]
        if len(set(served)) != len(served):
            raise SimulationError("a request completed more than once")
        for session in self.sessions:
            if session.kv is None:
                continue
            if session.kv.prefix_caching:
                # Warm (idle) shared-prefix groups are cache, not leaks.
                session.kv.flush_prefixes(self.core.now)
            if session.kv.pool.allocated != 0:
                raise SimulationError(
                    f"replica {session.replica} leaked "
                    f"{session.kv.pool.allocated} KV blocks at run end")
            if session.kv.host_blocks != 0:
                raise SimulationError(
                    f"replica {session.replica} left {session.kv.host_blocks}"
                    f" KV blocks stranded in host memory at run end")
        if self.recorder is not None:
            # Re-register with the final pool size so the exported
            # metadata reflects autoscaled replicas.
            self.recorder.on_cluster(self.router_policy.value, self.replicas,
                                     self._ids)
            if self.host is not None:
                # Likewise for the host block: the end-of-run core
                # occupancy totals are what rule N004 conserves.
                self.recorder.on_host(self.host.describe())
        return self.outcomes

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def replica_stats(self) -> list[ReplicaStats]:
        return [ReplicaStats(
            replica=s.replica,
            requests=s.requests,
            output_tokens=s.output_tokens,
            steps=s.steps,
            busy_ns=s.busy_ns,
            span_ns=s.span_ns,
            cpu_busy_ns=s.thread.busy_ns,
        ) for s in self.sessions]

    def kv_stats(self) -> list[KvReplicaStats]:
        stats = []
        for session in self.sessions:
            manager = session.kv
            if manager is None:
                continue
            stats.append(KvReplicaStats(
                replica=session.replica,
                capacity_blocks=manager.capacity_blocks,
                block_tokens=manager.block_tokens,
                preemptions=manager.preemptions,
                swap_out_events=manager.swap_out_events,
                swap_in_events=manager.swap_in_events,
                swapped_blocks=manager.swapped_blocks,
                swap_ns=manager.swap_ns_total,
                prefix_hits=manager.prefix_hits,
                prefix_misses=manager.prefix_misses,
                cow_forks=manager.cow_forks,
                prefix_evictions=manager.prefix_evictions,
            ))
        return stats

    def router_stats(self) -> RouterStats:
        return RouterStats(
            policy=self.router_policy.value,
            replicas=self.replicas,
            routed=len(self._routed_ids),
            routed_per_replica=tuple(self.routed_per_replica),
            router_busy_ns=self.router_busy_ns,
            route_cost_ns=self.route_cost_ns,
            scale_events=tuple(self.scale_events),
            sessions=len(self._session_map),
        )


def simulate_cluster(
    requests: Sequence[Request],
    model: ModelConfig,
    latency: LatencyModel,
    policy: object | None = None,
    router: RouterPolicy | str = RouterPolicy.LEAST_LOADED,
    replicas: int = 4,
    recorder: RunRecorder | None = None,
    kv: KvCacheConfig | None = None,
    autoscale: AutoscaleConfig | None = None,
    disagg_prompt_ratio: float = 4.0,
    queue: EventQueue | None = None,
    causality: CausalityLog | None = None,
    host: HostModel | None = None,
) -> ClusterRunResult:
    """Serve a request stream through the router + replica-pool stack.

    Args:
        requests: The arrival stream — typically
            :func:`repro.traffic.generate_traffic` output, but plain
            :class:`Request` lists work too (they just carry no tags for
            the session or prefix machinery to use).
        policy: Per-replica serving policy; continuous batching only (the
            iteration-level scheduler is what a routed replica runs).
        router: Placement policy, as a :class:`RouterPolicy` or its value.
        replicas: Initial replica count (autoscaling may add more).
        kv: KV-cache settings per replica; ``prefix_caching=True`` enables
            copy-on-write shared prefixes.
        autoscale: Optional scale-out config; ``None`` fixes the pool.
        queue / causality: Sim-core overrides for determinism
            certification and happens-before logging, exactly as in
            :func:`~repro.serving.runtime.simulate_serving`.
        host: Optional finite-host CPU model
            (:class:`repro.host.HostModel`): the router and every
            replica then book their dispatch work on one shared core
            pool. ``None`` keeps host CPU infinite, bit-identically to
            prior behavior.
    """
    from repro.serving.batcher import ServingReport
    from repro.serving.continuous import (
        ContinuousBatchPolicy,
        continuous_batching_process,
    )

    if isinstance(router, str):
        try:
            router = RouterPolicy(router)
        except ValueError as exc:
            raise ConfigurationError(
                f"unknown router policy: {router!r}") from exc
    if policy is None:
        policy = ContinuousBatchPolicy()
    if not isinstance(policy, ContinuousBatchPolicy):
        raise ConfigurationError(
            f"cluster replicas run continuous batching; "
            f"got {type(policy).__name__}")
    if kv is not None and kv.enabled:
        from repro.kvcache.serving import kv_continuous_batching_process

        process: Callable[..., Process] = kv_continuous_batching_process
    else:
        process = continuous_batching_process
    runtime = ClusterRuntime(
        requests, model, latency, process=process, policy=policy,
        router=router, replicas=replicas, recorder=recorder, kv=kv,
        autoscale=autoscale, disagg_prompt_ratio=disagg_prompt_ratio,
        queue=queue, causality=causality, host=host)
    runtime.run()
    return ClusterRunResult(
        report=ServingReport(outcomes=list(runtime.outcomes)),
        outcomes=list(runtime.outcomes),
        replicas=runtime.replica_stats(),
        sessions=runtime.sessions,
        devices_per_replica=runtime.devices_per_replica,
        kv=runtime.kv_stats(),
        router=runtime.router_stats(),
        host=runtime.host.stats() if runtime.host is not None else None,
    )
