"""Documentation stays consistent with the code it describes."""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text()


def test_design_lists_existing_benchmarks():
    text = _read("DESIGN.md")
    for match in re.findall(r"`(benchmarks/bench_\w+\.py)`", text):
        assert (ROOT / match).exists(), match


def test_every_benchmark_is_listed_in_design():
    text = _read("DESIGN.md")
    for path in (ROOT / "benchmarks").glob("bench_*.py"):
        assert f"benchmarks/{path.name}" in text, (
            f"{path.name} missing from DESIGN.md's experiment index")


def test_readme_examples_exist():
    text = _read("README.md")
    for match in re.findall(r"python (examples/\w+\.py)", text):
        assert (ROOT / match).exists(), match


def test_experiments_references_existing_benches():
    text = _read("EXPERIMENTS.md")
    for match in re.findall(r"`(benchmarks/bench_\w+\.py)`", text):
        assert (ROOT / match).exists(), match


def test_design_module_map_matches_source_tree():
    text = _read("DESIGN.md")
    for match in re.findall(r"^\s{4}(\w+\.py)\s", text, flags=re.M):
        hits = list((ROOT / "src" / "repro").rglob(match))
        assert hits, f"DESIGN.md lists {match} but no such module exists"


def test_paper_check_is_documented():
    # The task requires confirming the paper text matched; DESIGN.md records
    # that check.
    assert "matches the stated title" in _read("DESIGN.md")


def test_calibration_doc_mentions_all_knobs():
    text = _read("docs/calibration.md")
    for token in ("dispatch score", "sustain", "ramp_flops", "Table V"):
        assert token in text


def test_observability_doc_matches_api():
    text = _read("docs/observability.md")
    import repro.obs as obs
    for name in ("RunRecorder", "recording_to_trace", "EngineShape",
                 "StepEvent", "RequestSpan"):
        assert name in text
        assert hasattr(obs, name), name
    assert "repro serve" in text and "skip analyze" in text


def test_readme_mentions_emit_trace_quickstart():
    text = _read("README.md")
    assert "--emit-trace" in text
    assert "docs/observability.md" in text
    assert (ROOT / "docs/observability.md").exists()


def test_static_analysis_doc_covers_every_rule():
    """Every registered check rule is documented, and vice versa.

    K-rules are tabled in docs/kvcache.md, R-rules in docs/cluster.md,
    and N-rules in docs/host.md, next to the subsystems they verify;
    everything else lives in docs/static-analysis.md.
    """
    from repro.check import RULES

    text = (_read("docs/static-analysis.md") + _read("docs/kvcache.md")
            + _read("docs/cluster.md") + _read("docs/host.md"))
    documented = set(re.findall(r"^\| ([GSTCKHRN]\d{3}) \|", text,
                                re.MULTILINE))
    assert documented == set(RULES)


def test_static_analysis_doc_is_linked():
    assert "static-analysis.md" in _read("README.md")
    assert "static-analysis.md" in _read("docs/architecture.md")
    assert (ROOT / "docs/static-analysis.md").exists()


def test_serving_doc_matches_api():
    text = _read("docs/serving.md")
    import repro.serving as serving
    for name in ("ServingRuntime", "AdmissionQueue", "EngineSession",
                 "simulate_serving", "queue_delay_ns",
                 "measured_retrieval_ns"):
        assert name in text
        assert hasattr(serving, name), name
    import repro.serving.legacy as legacy
    for name in ("legacy_static_batching", "legacy_continuous_batching",
                 "legacy_priority_scheduling"):
        assert hasattr(legacy, name), name
    assert "--replicas" in text
    assert "check schedule --trace" in text


def test_serving_doc_is_linked():
    assert "serving.md" in _read("README.md")
    assert "serving.md" in _read("docs/architecture.md")
    assert "serving.md" in _read("docs/observability.md")
    assert (ROOT / "docs/serving.md").exists()


def test_serving_doc_test_references_exist():
    text = _read("docs/serving.md")
    for match in re.findall(r"`(tests/[\w/]+\.py)`", text):
        assert (ROOT / match).exists(), match


def test_kvcache_doc_matches_api():
    text = _read("docs/kvcache.md")
    import repro.kvcache as kvcache
    for name in ("KvCacheConfig", "KvPolicy", "BlockPool", "KvCacheResource",
                 "KvCacheEvent", "RUNTIME_RESERVE_BYTES"):
        assert name in text
    for name in ("KvCacheConfig", "KvPolicy", "BlockPool", "KvCacheResource",
                 "KvCacheEvent"):
        assert hasattr(kvcache, name), name
    for token in ("--kv-policy", "--kv-pool-gib", "repro kvpressure",
                  "block_tokens", "capacity_blocks"):
        assert token in text, token


def test_kvcache_doc_rule_table_matches_registry():
    """The K-rule table in docs/kvcache.md covers exactly the K rules."""
    from repro.check import RULES

    text = _read("docs/kvcache.md")
    documented = set(re.findall(r"^\| (K\d{3}) \|", text, re.MULTILINE))
    registered = {rule for rule in RULES if rule.startswith("K")}
    assert documented == registered


def test_kvcache_doc_is_linked():
    assert "kvcache.md" in _read("docs/architecture.md")
    assert "kvcache.md" in _read("docs/calibration.md")
    assert "kvcache.md" in _read("README.md")
    assert (ROOT / "docs/kvcache.md").exists()


def test_cluster_doc_matches_api():
    text = _read("docs/cluster.md")
    import repro.serving as serving
    import repro.traffic as traffic
    for name in ("ClusterRuntime", "RouterPolicy", "RouterStats",
                 "AutoscaleConfig", "simulate_cluster", "ClusterRunResult"):
        assert name in text
        assert hasattr(serving, name), name
    for name in ("ArrivalSpec", "TrafficConfig", "PrefixSpec",
                 "generate_traffic", "tag_requests", "arrival_times_ns"):
        assert name in text
        assert hasattr(traffic, name), name
    for token in ("--arrival", "--router", "--prefix-share", "--replicas",
                  "--autoscale-max", "--sessions", "acquire_prefix",
                  "release_prefix", "prefill_cached"):
        assert token in text, token


def test_cluster_doc_rule_table_matches_registry():
    """The R-rule table in docs/cluster.md covers exactly the R rules."""
    from repro.check import RULES

    text = _read("docs/cluster.md")
    documented = set(re.findall(r"^\| (R\d{3}) \|", text, re.MULTILINE))
    registered = {rule for rule in RULES if rule.startswith("R")}
    assert documented == registered


def test_cluster_doc_is_linked():
    assert "cluster.md" in _read("README.md")
    assert "cluster.md" in _read("docs/architecture.md")
    assert "cluster.md" in _read("docs/serving.md")
    assert "cluster.md" in _read("docs/static-analysis.md")
    assert (ROOT / "docs/cluster.md").exists()


def test_cluster_doc_flags_exist():
    """The CLI flags the cluster doc advertises are real."""
    import repro.cli as cli

    parser = cli.build_parser()
    args = parser.parse_args([
        "serve", "--arrival", "bursty", "--rate", "400",
        "--router", "least-loaded", "--replicas", "4",
        "--prefix-share", "0.5", "--prefix-len", "256",
        "--prefix-pool", "4", "--autoscale-max", "8", "--sessions", "16"])
    assert args.arrival == "bursty"
    assert args.router == "least-loaded"
    assert args.prefix_share == 0.5
    assert args.autoscale_max == 8


def test_calibration_doc_covers_kv_capacities():
    text = _read("docs/calibration.md")
    for token in ("memory_gib", "bandwidth_gbs", "transfer_ns"):
        assert token in text, token


def test_observability_doc_covers_multi_replica_export():
    text = _read("docs/observability.md")
    assert "devices_per_replica" in text
    assert "--replicas" in text
    from repro.obs import recording_to_trace
    import inspect
    assert "devices_per_replica" in inspect.signature(
        recording_to_trace).parameters


def test_performance_doc_names_every_harness_scenario():
    """docs/performance.md documents each scenario by its canonical name."""
    from repro.perf import SCENARIO_NAMES

    text = _read("docs/performance.md")
    for name in SCENARIO_NAMES:
        assert f"`{name}`" in text, (
            f"harness scenario {name!r} missing from docs/performance.md")
    # And no stale scenario entries: every `snake_case` bullet naming a
    # scenario must still exist in the harness.
    documented = re.findall(r"^\* `(\w+)` —", text, re.MULTILINE)
    assert set(documented) == set(SCENARIO_NAMES)


def test_performance_doc_is_linked():
    assert "performance.md" in _read("docs/architecture.md")
    assert "performance.md" in _read("README.md")
    assert (ROOT / "docs/performance.md").exists()


def test_serving_doc_covers_chunked_prefill_and_pp():
    """The planner/PP sections name real API and real CLI flags."""
    import repro.serving as serving
    import repro.cli as cli

    text = _read("docs/serving.md")
    for name in ("StepPlanner", "PlannerConfig", "PromptChunk", "StepPlan"):
        assert name in text, name
        assert hasattr(serving, name), name
    for token in ("--chunk-tokens", "--pp", "max_num_batched_tokens",
                  "S007", "S008", "chunk_budget_sweep"):
        assert token in text, token
    parser = cli.build_parser()
    args = parser.parse_args(["serve", "--chunk-tokens", "256",
                              "--pp", "2", "--pp-microbatches", "2"])
    assert args.chunk_tokens == 256
    assert args.pp == 2 and args.pp_microbatches == 2


def test_host_doc_matches_api():
    text = _read("docs/host.md")
    import repro.host as host
    import repro.hardware as hardware
    for name in ("HostSpec", "HOST_SPECS", "host_for"):
        assert name in text
        assert hasattr(hardware, name), name
    for name in ("CpuPool", "CoreGrant", "HostModel", "HostConfig",
                 "HostStats"):
        assert name in text
        assert hasattr(host, name), name
    import repro.analysis as analysis
    for name in ("run_replicas_per_host", "scaled_host_spec"):
        assert name in text
        assert hasattr(analysis, name), name
    for token in ("--host-cores", "--numa", "--pin", "repro hostsweep",
                  "remote_penalty", "cpu_utilization", "host-contention"):
        assert token in text, token


def test_host_doc_rule_table_matches_registry():
    """The N-rule table in docs/host.md covers exactly the N rules."""
    from repro.check import RULES

    text = _read("docs/host.md")
    documented = set(re.findall(r"^\| (N\d{3}) \|", text, re.MULTILINE))
    registered = {rule for rule in RULES if rule.startswith("N")}
    assert documented == registered


def test_host_doc_is_linked():
    assert "host.md" in _read("README.md")
    assert "host.md" in _read("docs/architecture.md")
    assert "host.md" in _read("docs/serving.md")
    assert "host.md" in _read("docs/static-analysis.md")
    assert "host.md" in _read("docs/performance.md")
    assert (ROOT / "docs/host.md").exists()


def test_host_doc_flags_exist():
    """The CLI flags the host doc advertises are real."""
    import repro.cli as cli

    parser = cli.build_parser()
    args = parser.parse_args([
        "serve", "--replicas", "4", "--host-cores", "8",
        "--numa", "1", "--pin"])
    assert args.host_cores == 8
    assert args.numa == 1 and args.pin
    sweep = parser.parse_args(["hostsweep", "--scale", "8",
                               "--knee-fraction", "0.4"])
    assert sweep.scale == 8
    assert sweep.knee_fraction == 0.4


def test_host_doc_test_references_exist():
    text = _read("docs/host.md")
    for match in re.findall(r"`(tests/[\w/]+\.py)`", text):
        assert (ROOT / match).exists(), match


def test_performance_doc_flags_exist():
    """The CLI flags the performance doc advertises are real."""
    import repro.cli as cli

    text = _read("docs/performance.md")
    assert "--jobs" in text and "--record-sample" in text
    parser = cli.build_parser()
    assert parser.parse_args(["sweep", "--jobs", "4"]).jobs == 4
    assert parser.parse_args(
        ["serve", "--record-sample", "8"]).record_sample == 8
