"""Property-based tests for trace construction, metrics, and the roofline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.gpu import GpuSpec
from repro.skip import compute_metrics
from repro.trace import TraceBuilder
from repro.trace import chrome


@st.composite
def launch_schedules(draw):
    """A monotone schedule of (call_ts, t_l, duration) launches."""
    count = draw(st.integers(1, 20))
    schedule = []
    cpu = 0.0
    gpu_free = 0.0
    for _ in range(count):
        cpu += draw(st.floats(1.0, 1000.0))
        latency = draw(st.floats(0.5, 500.0))
        duration = draw(st.floats(0.5, 2000.0))
        start = max(cpu + latency, gpu_free)
        gpu_free = start + duration
        schedule.append((cpu, start, duration))
        cpu += 1.0
    return schedule


def build_trace(schedule):
    builder = TraceBuilder()
    builder.begin_iteration(0.0)
    op = builder.begin_operator("aten::op", 0.0)
    for call_ts, start, duration in schedule:
        builder.launch_kernel(call_ts, 0.5, "k", start, duration)
    last_cpu = schedule[-1][0] + 2.0
    builder.end_operator(op, last_cpu)
    end = max(last_cpu, max(s + d for _, s, d in schedule)) + 1.0
    builder.end_iteration(end)
    return builder.finish()


@given(schedule=launch_schedules())
@settings(max_examples=100, deadline=None)
def test_metric_invariants_hold_for_any_schedule(schedule):
    metrics = compute_metrics(build_trace(schedule))
    total_duration = sum(d for _, _, d in schedule)
    assert metrics.tklqt_ns >= 0
    assert metrics.akd_ns == pytest.approx(total_duration / len(schedule))
    assert metrics.gpu_busy_ns == pytest.approx(total_duration)
    assert metrics.inference_latency_ns >= metrics.gpu_busy_ns or (
        metrics.gpu_idle_ns <= 0
    )
    # Eq. 5 identity.
    assert metrics.gpu_idle_ns == pytest.approx(
        metrics.inference_latency_ns - metrics.gpu_busy_ns)
    assert metrics.queuing_ns >= -1e-9


@given(schedule=launch_schedules())
@settings(max_examples=50, deadline=None)
def test_chrome_round_trip_preserves_metrics(schedule):
    trace = build_trace(schedule)
    reloaded = chrome.loads(chrome.dumps(trace))
    original = compute_metrics(trace)
    recovered = compute_metrics(reloaded)
    assert recovered.tklqt_ns == pytest.approx(original.tklqt_ns, rel=1e-9)
    assert recovered.inference_latency_ns == pytest.approx(
        original.inference_latency_ns, rel=1e-9)


@given(flops=st.floats(0, 1e15), nbytes=st.floats(0, 1e12),
       more_flops=st.floats(1.0, 1e12))
@settings(max_examples=200, deadline=None)
def test_roofline_monotonicity(flops, nbytes, more_flops):
    gpu = GpuSpec(name="g", fp16_tflops=100.0, sustain=0.9,
                  hbm_bandwidth_gbs=1000.0, bandwidth_sustain=0.9,
                  min_kernel_ns=1000.0)
    base = gpu.kernel_duration_ns(flops, nbytes)
    assert base >= 1000.0  # never below the floor
    assert gpu.kernel_duration_ns(flops + more_flops, nbytes) >= base
    assert gpu.kernel_duration_ns(flops, nbytes + 1e6) >= base
