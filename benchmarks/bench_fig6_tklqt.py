"""Fig. 6 — TKLQT vs batch size for the encoder models, with the
CPU-bound -> GPU-bound transition stars.

Paper: stars at BS~8 for both LC systems and BS~32 for GH200 (a 4x wider
CPU-bound region on the closely-coupled system).
"""

from _harness import BATCH_LADDER, BENCH_ENGINE, report, run_once
from repro.analysis import run_batch_sweep
from repro.hardware import AMD_A100, GH200, INTEL_H100
from repro.skip import transition_report
from repro.viz import sparkline
from repro.workloads import BERT_BASE, XLM_ROBERTA_BASE

PAPER_STARS = {"Intel+H100": 8, "AMD+A100": 8, "GH200": 32}


def _sweep(model):
    return run_batch_sweep(model, (INTEL_H100, AMD_A100, GH200), BATCH_LADDER,
                           seq_len=512, engine_config=BENCH_ENGINE)


def _check(model, sweep):
    lines = [f"Fig. 6 ({model.name}): TKLQT vs batch size"]
    for platform, paper_star in PAPER_STARS.items():
        transition = sweep.transition(platform)
        lines.append(transition_report(
            f"{model.name} on {platform} (paper star: BS={paper_star})",
            transition))
        lines.append("  shape: " + sparkline(transition.tklqt_ns))
    report("\n".join(lines))
    for platform, paper_star in PAPER_STARS.items():
        assert sweep.transition(platform).batch_size == paper_star, platform


def test_fig6_bert_tklqt(benchmark):
    sweep = run_once(benchmark, _sweep, BERT_BASE)
    _check(BERT_BASE, sweep)


def test_fig6_xlmr_tklqt(benchmark):
    sweep = run_once(benchmark, _sweep, XLM_ROBERTA_BASE)
    _check(XLM_ROBERTA_BASE, sweep)
