"""KV-aware serving: bit-identity, pressure policies, the coupling lock."""

import pytest

from repro.check import check_kv_events, check_kv_metadata
from repro.engine.modes import ExecutionMode
from repro.errors import ConfigurationError
from repro.hardware import get_platform
from repro.kvcache import KvCacheConfig, KvPolicy
from repro.obs import RunRecorder
from repro.obs.events import StepKind
from repro.obs.export import recording_to_trace
from repro.serving.continuous import ContinuousBatchPolicy
from repro.serving.latency import LatencyModel
from repro.serving.runtime import simulate_serving
from repro.workloads import GPT2
from tests.scenarios import MAX_ACTIVE, pressure_stream, pressured_run

A100 = get_platform("AMD+A100")
GH200 = get_platform("GH200")


def test_policy_none_is_bit_identical_to_no_kv_config():
    requests = pressure_stream()
    latency = LatencyModel(platform=GH200, mode=ExecutionMode.EAGER)
    policy = ContinuousBatchPolicy(max_active=MAX_ACTIVE)
    plain = simulate_serving(requests, GPT2, latency, policy=policy)
    gated = simulate_serving(requests, GPT2, latency, policy=policy,
                             kv=KvCacheConfig(policy=KvPolicy.NONE))
    assert gated.outcomes == plain.outcomes
    assert gated.throughput_tokens_per_s == plain.throughput_tokens_per_s
    assert gated.kv == [] and plain.kv == []
    assert all(session.kv is None for session in gated.sessions)


def test_recompute_preempts_and_still_completes_everything():
    requests, run = pressured_run(GH200, KvPolicy.RECOMPUTE)
    assert len(run.outcomes) == len(requests)
    stats = run.kv[0]
    assert stats.preemptions > 0
    assert stats.swap_out_events == 0
    manager = run.sessions[0].kv
    assert check_kv_events(manager.events, manager.capacity_blocks) == []


def test_offload_swaps_and_still_completes_everything():
    requests, run = pressured_run(GH200, KvPolicy.OFFLOAD)
    assert len(run.outcomes) == len(requests)
    stats = run.kv[0]
    assert stats.preemptions == 0
    assert stats.swap_out_events > 0
    assert stats.swap_in_events > 0
    assert stats.swap_ns > 0
    manager = run.sessions[0].kv
    assert check_kv_events(manager.events, manager.capacity_blocks) == []


def test_request_that_can_never_fit_is_a_configuration_error():
    # 0.011 GiB is 20 blocks; one 512+128-token sequence needs 40.
    requests = pressure_stream()
    latency = LatencyModel(platform=GH200, mode=ExecutionMode.EAGER)
    with pytest.raises(ConfigurationError, match="cannot fit"):
        simulate_serving(requests, GPT2, latency,
                         policy=ContinuousBatchPolicy(max_active=MAX_ACTIVE),
                         kv=KvCacheConfig(policy=KvPolicy.OFFLOAD,
                                          pool_gib=0.011))


def test_offload_on_gh200_outruns_a100_at_identical_settings():
    """The PR's acceptance lock: coupling decides the swap bill.

    Same model, stream, pool, and policy; the only degree of freedom is the
    CPU-GPU link. A100 pays PCIe Gen4 prices per swapped block, GH200 pays
    NVLink-C2C prices, so under pressure GH200 must deliver strictly more
    tokens/s.
    """
    _, a100 = pressured_run(A100, KvPolicy.OFFLOAD)
    _, gh200 = pressured_run(GH200, KvPolicy.OFFLOAD)
    assert a100.kv[0].swap_out_events > 0
    assert gh200.kv[0].swap_out_events > 0
    assert a100.kv[0].swap_ns > gh200.kv[0].swap_ns
    assert gh200.throughput_tokens_per_s > a100.throughput_tokens_per_s


def test_recorder_and_trace_carry_the_kv_audit_trail():
    recorder = RunRecorder()
    requests, run = pressured_run(GH200, KvPolicy.OFFLOAD,
                                  mode=ExecutionMode.EAGER, recorder=recorder)
    assert 0 in recorder.kv_pools
    assert recorder.kv_pools[0]["policy"] == "offload"
    kinds = {step.kind for step in recorder.steps}
    assert StepKind.SWAP_OUT in kinds and StepKind.SWAP_IN in kinds
    assert recorder.counters.as_dict()["kv_swap_out"] > 0

    latency = LatencyModel(platform=GH200, mode=ExecutionMode.EAGER)
    trace = recording_to_trace(recorder, latency, GPT2)
    assert "kv" in trace.metadata
    assert trace.metadata["kv"]["pools"]["0"]["capacity_blocks"] == \
        run.kv[0].capacity_blocks
    assert check_kv_metadata(trace.metadata["kv"]) == []
