"""Cluster tier: router policies, conservation, autoscaling, determinism."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.hardware import get_platform
from repro.serving.batcher import StaticBatchPolicy
from repro.serving.cluster import (
    AutoscaleConfig,
    ClusterRuntime,
    RouterPolicy,
    ScaleEvent,
    _delayed,
    simulate_cluster,
)
from repro.serving.continuous import ContinuousBatchPolicy
from repro.serving.latency import LatencyModel
from repro.serving.requests import ServingRequest, poisson_requests
from repro.workloads import GPT2

from tests.scenarios import cluster_run, cluster_stream, tiebreak_pair

GH200 = get_platform("GH200")


def _simple_stream(n=24, gap_ns=1.5e6, prompt=128, output=16):
    return [ServingRequest(request_id=i, arrival_ns=i * gap_ns,
                           prompt_len=prompt, output_tokens=output)
            for i in range(n)]


def _rows(result):
    return [(o.request.request_id, o.ttft_ns, o.completion_ns,
             o.batch_size, o.queue_ns, o.replica) for o in result.outcomes]


# ----------------------------------------------------------------------
# Conservation across every policy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("router", list(RouterPolicy))
def test_every_request_served_exactly_once(router):
    requests = cluster_stream()
    latency = LatencyModel(platform=GH200)
    result = simulate_cluster(requests, GPT2, latency, router=router,
                              replicas=4)
    assert sorted(o.request.request_id for o in result.outcomes) == sorted(
        r.request_id for r in requests)
    assert result.router is not None
    assert result.router.routed == len(requests)
    assert sum(result.router.routed_per_replica) == len(requests)
    assert result.router.policy == router.value


def test_round_robin_splits_evenly():
    result = simulate_cluster(_simple_stream(), GPT2,
                              LatencyModel(platform=GH200),
                              router="round-robin", replicas=4)
    assert result.router.routed_per_replica == (6, 6, 6, 6)


def test_routing_costs_cpu_time():
    # The first arrival hits an idle cluster, so its entire queue delay is
    # the router's decision cost — launch-call work on the platform model.
    result = simulate_cluster(_simple_stream(), GPT2,
                              LatencyModel(platform=GH200),
                              router="round-robin", replicas=4)
    first = min(result.outcomes, key=lambda o: o.request.arrival_ns)
    assert first.queue_ns == pytest.approx(result.router.route_cost_ns)
    assert result.router.route_cost_ns == pytest.approx(
        GH200.launch_call_cpu_ns)
    assert result.router.router_busy_ns == pytest.approx(
        result.router.routed * result.router.route_cost_ns)


# ----------------------------------------------------------------------
# Policy-specific placement
# ----------------------------------------------------------------------
def test_session_affinity_holds_per_session():
    requests = cluster_stream()
    assert any(r.session for r in requests)
    result = simulate_cluster(requests, GPT2, LatencyModel(platform=GH200),
                              router=RouterPolicy.SESSION, replicas=4)
    placed = {}
    for outcome in result.outcomes:
        session = outcome.request.session
        if session is None:
            continue
        placed.setdefault(session, set()).add(outcome.replica)
    assert placed
    for session, replicas in placed.items():
        assert len(replicas) == 1, (session, replicas)
    assert result.router.sessions == len(placed)


def test_disaggregated_separates_prefill_heavy_requests():
    heavy = [ServingRequest(request_id=i, arrival_ns=i * 2e6,
                            prompt_len=512, output_tokens=8)
             for i in range(8)]
    light = [ServingRequest(request_id=100 + i, arrival_ns=1e5 + i * 2e6,
                            prompt_len=32, output_tokens=64)
             for i in range(8)]
    result = simulate_cluster(heavy + light, GPT2,
                              LatencyModel(platform=GH200),
                              router="disaggregated", replicas=4)
    prefill_pool = {0, 1}   # first replicas // 2
    for outcome in result.outcomes:
        if outcome.request.request_id < 100:
            assert outcome.replica in prefill_pool
        else:
            assert outcome.replica not in prefill_pool


def test_disaggregated_needs_two_replicas():
    with pytest.raises(ConfigurationError, match="at least two replicas"):
        simulate_cluster(_simple_stream(), GPT2,
                         LatencyModel(platform=GH200),
                         router="disaggregated", replicas=1)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_unknown_router_policy_rejected():
    with pytest.raises(ConfigurationError, match="unknown router policy"):
        simulate_cluster(_simple_stream(), GPT2,
                         LatencyModel(platform=GH200), router="best-effort")


def test_cluster_requires_continuous_batching():
    with pytest.raises(ConfigurationError, match="continuous batching"):
        simulate_cluster(_simple_stream(), GPT2,
                         LatencyModel(platform=GH200),
                         policy=StaticBatchPolicy(max_batch_size=4))


def test_non_positive_launch_cost_rejected_not_clamped():
    # The router prices each decision at launch_call_cpu_ns; a platform
    # reporting a free dispatch is a broken configuration, not something
    # to clamp to 1ns silently.
    class _FreeDispatchPlatform:
        name = "free-dispatch"
        launch_call_cpu_ns = 0.0

    class _FreeDispatchLatency:
        platform = _FreeDispatchPlatform()

    with pytest.raises(ConfigurationError, match="launch_call_cpu_ns"):
        ClusterRuntime(_simple_stream(4), GPT2, _FreeDispatchLatency(),
                       process=None, policy=ContinuousBatchPolicy(),
                       replicas=2)


def test_empty_stream_rejected():
    with pytest.raises(ConfigurationError, match="no requests"):
        simulate_cluster([], GPT2, LatencyModel(platform=GH200))


def test_duplicate_request_ids_rejected():
    request = ServingRequest(request_id=1, arrival_ns=0.0, prompt_len=8,
                             output_tokens=2)
    with pytest.raises(ConfigurationError, match="duplicate"):
        simulate_cluster([request, request], GPT2,
                         LatencyModel(platform=GH200))


def test_routed_queue_rejects_out_of_order_pushes():
    runtime = ClusterRuntime(
        _simple_stream(4), GPT2, LatencyModel(platform=GH200),
        process=lambda *a: iter(()), policy=ContinuousBatchPolicy(),
        replicas=2)
    queue = runtime.handles[0].queue
    queue.push(ServingRequest(request_id=90, arrival_ns=5e6, prompt_len=8,
                              output_tokens=2))
    with pytest.raises(SimulationError, match="arrival order"):
        queue.push(ServingRequest(request_id=91, arrival_ns=1e6,
                                  prompt_len=8, output_tokens=2))


# ----------------------------------------------------------------------
# The delayed-start trampoline
# ----------------------------------------------------------------------
def test_delayed_clamps_only_the_first_timer():
    def inner():
        got = yield ("at", 0.0)
        got = yield ("at", got + 5.0)
        yield ("at", 2.0)     # later low timers pass through verbatim

    gen = _delayed(inner(), start_ns=100.0)
    assert next(gen) == ("at", 100.0)
    assert gen.send(100.0) == ("at", 105.0)
    assert gen.send(105.0) == ("at", 2.0)
    with pytest.raises(StopIteration):
        gen.send(105.0)


def test_delayed_does_not_hold_back_a_late_start():
    def inner():
        yield ("at", 500.0)

    gen = _delayed(inner(), start_ns=100.0)
    assert next(gen) == ("at", 500.0)


# ----------------------------------------------------------------------
# Autoscaling
# ----------------------------------------------------------------------
def test_autoscale_grows_the_pool_under_backlog():
    requests = [ServingRequest(request_id=i, arrival_ns=i * 1e4,
                               prompt_len=256, output_tokens=64)
                for i in range(40)]
    result = simulate_cluster(
        requests, GPT2, LatencyModel(platform=GH200),
        router="least-loaded", replicas=2,
        autoscale=AutoscaleConfig(max_replicas=6, backlog_per_replica=4,
                                  spinup_dispatch_ops=100))
    stats = result.router
    assert stats.scale_events
    assert 2 < stats.replicas <= 6
    assert len(stats.routed_per_replica) == stats.replicas
    # Scale events record the growing pool and the modeled spin-up cost.
    counts = [event.replicas for event in stats.scale_events]
    assert counts == sorted(counts)
    for event in stats.scale_events:
        assert event.spinup_ns == pytest.approx(
            100 * GH200.launch_call_cpu_ns)
    # Conservation still holds with replicas appearing mid-run.
    assert len(result.outcomes) == len(requests)
    # Autoscaled replicas actually served work.
    assert any(o.replica >= 2 for o in result.outcomes)


def test_autoscale_respects_the_ceiling():
    requests = [ServingRequest(request_id=i, arrival_ns=i * 1e3,
                               prompt_len=256, output_tokens=64)
                for i in range(60)]
    result = simulate_cluster(
        requests, GPT2, LatencyModel(platform=GH200),
        replicas=2,
        autoscale=AutoscaleConfig(max_replicas=3, backlog_per_replica=2,
                                  spinup_dispatch_ops=50))
    assert result.router.replicas == 3
    assert len(result.outcomes) == len(requests)


@pytest.mark.parametrize("kwargs", [
    dict(max_replicas=0), dict(backlog_per_replica=0),
    dict(spinup_dispatch_ops=0),
])
def test_autoscale_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        AutoscaleConfig(**kwargs)


# ----------------------------------------------------------------------
# Determinism and the canonical scenario
# ----------------------------------------------------------------------
def test_cluster_outcomes_survive_tiebreak_perturbation():
    baseline, perturbed = tiebreak_pair(
        lambda queue: _rows(cluster_run(GH200, queue=queue)[1]))
    assert baseline == perturbed


def test_canonical_cluster_run_uses_prefix_caching():
    requests, result = cluster_run(GH200)
    assert len(result.outcomes) == len(requests)
    hits = sum(s.prefix_hits for s in result.kv)
    misses = sum(s.prefix_misses for s in result.kv)
    assert misses > 0      # cold groups were populated
    assert hits > 0        # and later arrivals actually shared them
    assert result.router.routed == len(requests)


def test_single_replica_cluster_matches_flat_runtime_modulo_routing():
    # One replica, no tags: the cluster serves the identical stream; the
    # only divergence budget is the router's explicit decision latency,
    # visible as the first arrival's queue delay.
    from repro.serving.runtime import simulate_serving

    requests = poisson_requests(rate_per_s=150.0, duration_s=0.3,
                                prompt_len=256, output_tokens=32, seed=4)
    latency = LatencyModel(platform=GH200)
    policy = ContinuousBatchPolicy(max_active=8)
    flat = simulate_serving(requests, GPT2, latency, policy=policy)
    routed = simulate_cluster(requests, GPT2, latency, policy=policy,
                              router="round-robin", replicas=1)
    assert [o.request.request_id for o in routed.outcomes] == [
        o.request.request_id for o in flat.outcomes]
    first = min(routed.outcomes, key=lambda o: o.request.arrival_ns)
    assert first.queue_ns == pytest.approx(routed.router.route_cost_ns)
    # Routing adds bounded latency, never loses work.
    assert sum(o.request.output_tokens for o in routed.outcomes) == sum(
        o.request.output_tokens for o in flat.outcomes)


def test_scale_event_is_frozen_record():
    event = ScaleEvent(ts_ns=1.0, replicas=3, spinup_ns=2.0)
    with pytest.raises(AttributeError):
        event.replicas = 4
