"""Hypothesis properties for the finite-host CPU subsystem.

Randomized dispatch plans against :class:`repro.host.CpuPool` check the
scheduler's core invariants (conservation, exclusivity, monotone per-core
replay, remote pricing); :class:`repro.host.HostModel` metadata round-trips
through the N-rules; and a contended cluster run stays outcome-identical
under the adversarial tie-break queue.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import check_host_metadata
from repro.hardware import get_platform, host_for
from repro.host import HostConfig, HostModel, pool_from_domains
from repro.serving.cluster import RouterPolicy, simulate_cluster
from repro.serving.latency import LatencyModel
from repro.serving.requests import poisson_requests
from repro.sim.queue import PerturbedEventQueue
from repro.workloads import GPT2

AMD = get_platform("AMD+A100")
LATENCY = LatencyModel(platform=AMD)


@st.composite
def dispatch_plans(draw):
    """A pool shape plus a random sequence of dispatch requests."""
    n_domains = draw(st.integers(min_value=1, max_value=3))
    shape = [(d, draw(st.integers(min_value=1, max_value=3)))
             for d in range(n_domains)]
    penalty = draw(st.floats(min_value=1.0, max_value=2.0))
    calls = draw(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=n_domains - 1),  # domain
            st.floats(min_value=0.0, max_value=1e6),            # ts_ns
            st.floats(min_value=0.0, max_value=1e4),            # cpu_ns
            st.booleans(),                                      # pinned
        ),
        min_size=1, max_size=40))
    return shape, penalty, calls


def _replay(plan):
    shape, penalty, calls = plan
    pool = pool_from_domains(shape, remote_penalty=penalty)
    grants = []
    for domain, ts, cpu, pinned in calls:
        grants.append((pool.dispatch(f"replica{domain}", ts, cpu,
                                     domain=domain, pinned=pinned),
                       ts, cpu, pinned))
    return pool, grants


@given(plan=dispatch_plans())
@settings(max_examples=60, deadline=None)
def test_core_time_is_conserved(plan):
    pool, grants = _replay(plan)
    booked = sum(g.cpu_ns for g, *_ in grants)
    assert pool.busy_ns == sum(c.busy_ns for c in pool.cores)
    assert abs(pool.busy_ns - booked) <= 1e-6 * max(booked, 1.0)
    for core in pool.cores:
        spans = sum(g.end_ns - g.start_ns for g, *_ in grants
                    if g.core == core.index)
        assert abs(core.busy_ns - spans) <= 1e-6 * max(spans, 1.0)
        assert core.grants == sum(1 for g, *_ in grants
                                  if g.core == core.index)


@given(plan=dispatch_plans())
@settings(max_examples=60, deadline=None)
def test_no_core_runs_two_grants_at_once(plan):
    _, grants = _replay(plan)
    by_core = {}
    for grant, *_ in grants:
        by_core.setdefault(grant.core, []).append(grant)
    for booked in by_core.values():
        # Issue order is already start order (N003): the free_at
        # watermark only advances.
        for prev, cur in zip(booked, booked[1:]):
            assert cur.start_ns >= prev.end_ns


@given(plan=dispatch_plans())
@settings(max_examples=60, deadline=None)
def test_grants_never_start_early_and_price_remote_spill(plan):
    shape, penalty, _ = plan
    _, grants = _replay(plan)
    for grant, ts, cpu, pinned in grants:
        assert grant.start_ns >= ts
        assert grant.end_ns == grant.start_ns + grant.cpu_ns
        if grant.remote:
            assert not pinned
            assert abs(grant.cpu_ns - cpu * penalty) <= 1e-9 * max(cpu, 1.0)
        else:
            assert grant.cpu_ns == cpu
    # A pinned booking may stall but never leaves its domain.
    domain_of = {}
    for domain, count in shape:
        for _ in range(count):
            domain_of[len(domain_of)] = domain
    for grant, _, _, pinned in grants:
        if pinned:
            assert domain_of[grant.core] == grant.domain


@st.composite
def host_plans(draw):
    """Dispatch traffic shaped like a serving run on a cataloged host."""
    replicas = draw(st.integers(min_value=1, max_value=4))
    pin = draw(st.booleans())
    cores = draw(st.integers(min_value=2, max_value=6))
    owners = st.one_of(
        st.integers(min_value=0, max_value=replicas - 1).map(
            lambda r: f"replica{r}"),
        st.just("router"))
    calls = draw(st.lists(
        st.tuples(owners,
                  st.floats(min_value=0.0, max_value=1e6),
                  st.floats(min_value=0.0, max_value=1e4)),
        min_size=1, max_size=30))
    return replicas, pin, cores, calls


@given(plan=host_plans())
@settings(max_examples=40, deadline=None)
def test_host_metadata_replays_clean_through_the_n_rules(plan):
    replicas, pin, cores, calls = plan
    host = HostModel(host_for(AMD), replicas,
                     config=HostConfig(cores=cores, pin=pin))
    recorded = []
    for owner, ts, cpu in calls:
        domain = (host.router_domain if owner == "router"
                  else host.domain_for(int(owner.removeprefix("replica"))))
        grant = host.dispatch(owner, ts, cpu, domain=domain)
        recorded.append({"owner": grant.owner, "core": grant.core,
                         "domain": grant.domain, "start_ns": grant.start_ns,
                         "end_ns": grant.end_ns, "cpu_ns": grant.cpu_ns,
                         "remote": grant.remote, "requested_ns": ts})
    meta = {**host.describe(), "grants": recorded}
    assert check_host_metadata(meta) == []
    assert host.grants == len(calls)
    assert host.stall_ns >= 0.0
    if pin:
        assert host.remote_grants == 0


@given(plan=host_plans())
@settings(max_examples=25, deadline=None)
def test_injected_over_occupancy_is_flagged(plan):
    replicas, pin, cores, calls = plan
    host = HostModel(host_for(AMD), replicas,
                     config=HostConfig(cores=cores, pin=pin))
    recorded = []
    for owner, ts, cpu in calls:
        domain = (host.router_domain if owner == "router"
                  else host.domain_for(int(owner.removeprefix("replica"))))
        grant = host.dispatch(owner, ts, cpu + 1.0, domain=domain)
        recorded.append({"owner": grant.owner, "core": grant.core,
                         "domain": grant.domain, "start_ns": grant.start_ns,
                         "end_ns": grant.end_ns, "cpu_ns": grant.cpu_ns,
                         "remote": grant.remote, "requested_ns": ts})
    # Double-book the first grant: same core, overlapping window.
    clone = dict(recorded[0])
    clone["owner"] = "replica0"
    clone["start_ns"] += (clone["end_ns"] - clone["start_ns"]) / 2
    meta = {**host.describe(), "grants": [*recorded, clone]}
    rules = {f.rule_id for f in check_host_metadata(meta)}
    assert "N001" in rules
    assert "N004" in rules  # the cloned time is not in the busy totals


@given(seed=st.integers(min_value=0, max_value=2**16),
       replicas=st.integers(min_value=2, max_value=4))
@settings(max_examples=6, deadline=None)
def test_contended_cluster_is_tiebreak_deterministic(seed, replicas):
    requests = poisson_requests(rate_per_s=250.0, duration_s=0.03,
                                prompt_len=96, output_tokens=8, seed=seed)

    def run(queue=None):
        host = HostModel.for_platform(AMD, replicas=replicas,
                                      config=HostConfig(cores=replicas))
        result = simulate_cluster(
            requests, GPT2, LATENCY, router=RouterPolicy.ROUND_ROBIN,
            replicas=replicas, host=host, queue=queue)
        return [(o.request.request_id, o.ttft_ns, o.completion_ns,
                 o.batch_size, o.replica) for o in result.outcomes]

    assert run() == run(queue=PerturbedEventQueue())
