"""Beyond LLMs: DLRM and GCN through SKIP (the paper's future work).

Section VI plans to extend the characterization to recommendation models
and GNNs. This example profiles both on the three platforms and shows how
they bracket the Transformer results: DLRM is launch-tax-bound at almost
any batch size (dozens of tiny embedding gathers), while GCN's sparse
aggregation saturates HBM bandwidth from a single input graph.

Usage:
    python examples/beyond_llm.py
"""

from repro import PAPER_PLATFORMS, SkipProfiler
from repro.engine import EngineConfig
from repro.skip import attribution_table, attribute_costs
from repro.units import ns_to_ms
from repro.viz import render_table
from repro.workloads.gnn import GCN_MEDIUM, build_gcn_graph
from repro.workloads.recsys import DLRM_SMALL, build_dlrm_graph

FAST = EngineConfig(iterations=1)


def main() -> None:
    rows = []
    for platform in PAPER_PLATFORMS:
        profiler = SkipProfiler(platform, FAST)
        for name, graph in (("dlrm@512", build_dlrm_graph(DLRM_SMALL, 512)),
                            ("gcn x1", build_gcn_graph(GCN_MEDIUM))):
            result = profiler.profile_graph(graph)
            metrics = result.metrics
            rows.append([
                name, platform.name,
                f"{ns_to_ms(metrics.inference_latency_ns):.2f}",
                f"{100 * metrics.gpu_busy_ns / metrics.inference_latency_ns:.0f}%",
                result.boundedness.value,
            ])
    print(render_table(
        ["workload", "platform", "latency (ms)", "GPU busy", "bound"],
        rows, title="Future-work workloads through SKIP"))

    print("\nWhere DLRM's time goes (Intel+H100, BS=512):")
    profiler = SkipProfiler(PAPER_PLATFORMS[1], FAST)
    result = profiler.profile_graph(build_dlrm_graph(DLRM_SMALL, 512))
    print(attribution_table(attribute_costs(result.depgraph), k=6))

    print("\nTakeaway: DLRM generalizes the paper's CPU-bound story — its")
    print("embedding gathers are almost pure launch tax, so closely-coupled")
    print("systems need fusion (or a faster CPU) even at batch 512, while")
    print("GCN rewards GH200's bandwidth immediately.")


if __name__ == "__main__":
    main()
