"""Extension — the Grace bottleneck, quantified.

The paper's key takeaway for Section V-D: "Addressing these bottlenecks
requires enhancing CPU performance ... in CC/TC designs". This bench
answers *how much* CPU enhancement: the dispatch speedup GH200 needs to
match Intel+H100 at latency-critical batch sizes, per model.
"""

from _harness import BENCH_ENGINE, report, run_once
from repro.analysis import required_cpu_speedup
from repro.hardware import GH200, INTEL_H100
from repro.units import ns_to_ms
from repro.viz import render_table
from repro.workloads import BERT_BASE, GPT2, LLAMA_3_2_1B


def _requirements():
    out = {}
    for model in (BERT_BASE, GPT2, LLAMA_3_2_1B):
        out[model.name] = required_cpu_speedup(
            model, GH200, INTEL_H100, batch_size=1,
            engine_config=BENCH_ENGINE)
    return out


def test_ext_required_grace_speedup(benchmark):
    requirements = run_once(benchmark, _requirements)
    rows = []
    for name, req in requirements.items():
        rows.append([
            name,
            f"{ns_to_ms(req.baseline_latency_ns):.2f}",
            f"{ns_to_ms(req.reference_latency_ns):.2f}",
            f"{req.required_speedup:.2f}x",
        ])
    report(render_table(
        ["model", "GH200 BS=1 (ms)", "Intel+H100 BS=1 (ms)",
         "required Grace CPU speedup"],
        rows, title="Extension: CPU speedup for GH200 to match Intel+H100"))

    for name, req in requirements.items():
        # The Grace gap is the dispatch-score ratio (~2.7x) for CPU-bound
        # models; partially GPU-overlapped models need a bit less.
        assert 1.5 < req.required_speedup < 3.5, name
