"""Command-line interface.

Subcommands mirror the paper's workflow:

* ``profile``   — SKIP metrics + classification for one run
* ``run``       — one engine run with optional tensor parallelism
  (``--tp N``); prints per-device SKIP metrics
* ``sweep``     — batch-size sweep with transition stars (Fig. 6 / 10 / 11)
* ``tpsweep``   — tensor-parallel degree sweep with per-device metrics
* ``fusion``    — proximity-score fusion recommendations (Figs. 7-8)
* ``nullkernel``— the Table V micro-benchmark
* ``whatif``    — required CPU speedup to match a reference platform
* ``memory``    — HBM footprint check for a workload shape
* ``serve``     — serving simulation with recording / Chrome-trace export;
  ``--kv-policy recompute|offload`` gates admission and decode growth on a
  paged KV pool (``--kv-pool-gib`` sizes it)
* ``kvpressure``— tokens/s + SLO attainment vs KV pool size and policy
  across platforms (the GH200-offload-advantage sweep)
* ``skip``      — SKIP analysis of a Chrome trace file (self-hosting:
  ``repro serve ... --emit-trace out.json && repro skip analyze out.json``)
* ``check``     — static analysis of the artifacts the above produce:
  ``check graph`` / ``check schedule`` / ``check trace`` / ``check code``
  (see ``docs/static-analysis.md``)

Run ``python -m repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import run_batch_sweep, run_tp_sweep, tp_sweep_report
from repro.analysis.whatif import required_cpu_speedup
from repro.engine import DispatchMode, EngineConfig, ExecutionMode, TPConfig
from repro.errors import ConfigurationError, ReproError
from repro.hardware import PAPER_PLATFORMS, get_platform, nullkernel_table
from repro.skip import SkipProfiler, fusion_report, profile_report, transition_report
from repro.units import format_bytes, format_ns
from repro.viz import render_table
from repro.workloads import get_model
from repro.workloads.memory import memory_report

_FAST = EngineConfig(iterations=1)


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="gpt2", help="model name (catalog)")
    parser.add_argument("--platform", default="Intel+H100",
                        help="platform name (catalog)")
    parser.add_argument("--batch-size", type=int, default=1)
    parser.add_argument("--seq-len", type=int, default=512)


def _add_tp_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tp", type=int, default=1,
                        help="tensor-parallel degree (GPU count)")
    parser.add_argument("--dispatch", default="single",
                        choices=[m.value for m in DispatchMode],
                        help="CPU dispatch topology for TP runs")


def _cmd_profile(args: argparse.Namespace) -> int:
    profiler = SkipProfiler(get_platform(args.platform))
    result = profiler.profile(get_model(args.model),
                              batch_size=args.batch_size,
                              seq_len=args.seq_len,
                              mode=ExecutionMode(args.mode))
    print(profile_report(result))
    return 0


def _tp_config(args: argparse.Namespace) -> TPConfig | None:
    if getattr(args, "tp", 1) == 1:
        return None
    return TPConfig(degree=args.tp,
                    dispatch=DispatchMode(getattr(args, "dispatch", "single")))


def _pp_config(args: argparse.Namespace):
    from repro.engine import PPConfig

    stages = getattr(args, "pp", 1)
    if stages < 1:
        raise ConfigurationError("--pp must be at least 1 (1 disables "
                                 "pipeline parallelism)")
    microbatches = getattr(args, "pp_microbatches", 1)
    if microbatches < 1:
        raise ConfigurationError("--pp-microbatches must be at least 1")
    if stages == 1:
        if microbatches > 1:
            raise ConfigurationError(
                "--pp-microbatches needs pipeline stages; pass --pp N")
        return None
    return PPConfig(stages=stages, microbatches=microbatches)


def _add_pp_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pp", type=int, default=1,
                        help="pipeline-parallel stage count (1 disables; "
                             ">1 splits the layer stack across stages)")
    parser.add_argument("--pp-microbatches", type=int, default=1,
                        help="microbatches flowing through the pipeline "
                             "per step (GPipe-style)")


def _require_memory_fits(model, platform, batch_size: int, seq_len: int,
                         ignore: bool) -> None:
    """Fail fast (exit 2) when a shape cannot fit the platform's HBM.

    Simulating a run that would OOM on real hardware produces numbers
    nobody can reproduce; ``--ignore-memory`` keeps the escape hatch for
    deliberate what-if shapes.
    """
    if ignore:
        return
    report = memory_report(model, platform.gpu, batch_size, seq_len)
    if not report.fits:
        raise ConfigurationError(
            f"{model.name} @ BS={batch_size} seq={seq_len} needs "
            f"{format_bytes(report.total_bytes)} but {platform.gpu.name} "
            f"has {format_bytes(report.capacity_bytes)} "
            f"({100 * report.utilization:.0f}% of HBM); see 'repro memory' "
            f"for the breakdown or pass --ignore-memory to simulate anyway")


def _causality_log(args: argparse.Namespace):
    """The CausalityLog to record into, or None when ``--causality`` unset."""
    if not getattr(args, "causality", None):
        return None
    from repro.sim.causality import CausalityLog

    return CausalityLog()


def _dump_causality(log, args: argparse.Namespace) -> None:
    if log is None:
        return
    from repro.obs import dump_causality

    dump_causality(log, args.causality)
    print(f"wrote {len(log.events)} causality events to {args.causality} "
          f"(verify with 'repro check hb --log {args.causality}')")


def _cmd_run(args: argparse.Namespace) -> int:
    platform = get_platform(args.platform)
    model = get_model(args.model)
    _require_memory_fits(model, platform, args.batch_size, args.seq_len,
                         args.ignore_memory)
    causality = _causality_log(args)
    profiler = SkipProfiler(platform)
    result = profiler.profile(model,
                              batch_size=args.batch_size,
                              seq_len=args.seq_len,
                              mode=ExecutionMode(args.mode),
                              tp=_tp_config(args),
                              pp=_pp_config(args),
                              causality=causality)
    print(profile_report(result))
    _dump_causality(causality, args)
    return 0


def _cmd_tpsweep(args: argparse.Namespace) -> int:
    degrees = tuple(int(d) for d in args.degrees.split(","))
    sweep = run_tp_sweep(
        get_model(args.model),
        get_platform(args.platform),
        batch_size=args.batch_size,
        degrees=degrees,
        seq_len=args.seq_len,
        dispatch=DispatchMode(args.dispatch),
        engine_config=_FAST,
    )
    print(tp_sweep_report(sweep))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    model = get_model(args.model)
    platforms = ([get_platform(args.platform)] if args.platform != "all"
                 else list(PAPER_PLATFORMS))
    batches = tuple(int(b) for b in args.batches.split(","))
    for platform in platforms:
        _require_memory_fits(model, platform, max(batches), args.seq_len,
                             args.ignore_memory)
    sweep = run_batch_sweep(model, platforms, batches, seq_len=args.seq_len,
                            engine_config=_FAST, tp=_tp_config(args),
                            jobs=args.jobs)
    for platform in platforms:
        print(transition_report(f"{model.name} on {platform.name}",
                                sweep.transition(platform.name)))
        print()
    return 0


def _cmd_fusion(args: argparse.Namespace) -> int:
    profiler = SkipProfiler(get_platform(args.platform), _FAST)
    result = profiler.profile(get_model(args.model),
                              batch_size=args.batch_size,
                              seq_len=args.seq_len)
    print(fusion_report(result.recommend_fusions(threshold=args.threshold)))
    return 0


def _cmd_nullkernel(_args: argparse.Namespace) -> int:
    rows = [[r.platform, f"{r.launch_overhead_ns:.1f}", f"{r.duration_ns:.1f}"]
            for r in nullkernel_table(PAPER_PLATFORMS)]
    print(render_table(["platform", "launch overhead (ns)", "duration (ns)"],
                       rows, title="nullKernel micro-benchmark (Table V)"))
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    requirement = required_cpu_speedup(
        get_model(args.model),
        get_platform(args.platform),
        get_platform(args.reference),
        batch_size=args.batch_size,
        seq_len=args.seq_len,
        engine_config=_FAST,
    )
    print(f"{requirement.platform} needs a {requirement.required_speedup:.2f}x "
          f"CPU speedup to match {requirement.reference} at "
          f"BS={requirement.batch_size}")
    print(f"  baseline : {format_ns(requirement.baseline_latency_ns)}")
    print(f"  target   : {format_ns(requirement.reference_latency_ns)}")
    print(f"  achieved : {format_ns(requirement.achieved_latency_ns)}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis import run_batch_sweep, sweep_to_csv, sweep_to_json

    model = get_model(args.model)
    platforms = ([get_platform(args.platform)] if args.platform != "all"
                 else list(PAPER_PLATFORMS))
    batches = tuple(int(b) for b in args.batches.split(","))
    sweep = run_batch_sweep(model, platforms, batches, seq_len=args.seq_len,
                            engine_config=_FAST)
    if args.out.endswith(".csv"):
        sweep_to_csv(sweep, args.out)
    else:
        sweep_to_json(sweep, args.out)
    print(f"wrote {len(sweep.points)} sweep points to {args.out}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.viz import TimelineOptions, render_timeline

    profiler = SkipProfiler(get_platform(args.platform), _FAST)
    result = profiler.profile(get_model(args.model),
                              batch_size=args.batch_size,
                              seq_len=args.seq_len,
                              tp=_tp_config(args))
    begin, end = result.trace.span
    window_end = begin + (end - begin) * args.window_fraction
    print(render_timeline(result.trace, TimelineOptions(
        width=args.width, begin_ns=begin, end_ns=window_end)))
    return 0


def _kv_config(args: argparse.Namespace):
    """Build the serve command's KV-cache settings (None = pre-kvcache path)."""
    from repro.kvcache import KvCacheConfig, KvPolicy

    policy = KvPolicy(args.kv_policy)
    if policy is KvPolicy.NONE:
        if args.kv_pool_gib is not None:
            raise ConfigurationError(
                "--kv-pool-gib needs a pressure policy; pass "
                "--kv-policy recompute or --kv-policy offload")
        return None
    return KvCacheConfig(policy=policy, pool_gib=args.kv_pool_gib)


def _serve_requests(args: argparse.Namespace) -> list:
    """Build the serve command's arrival stream from the traffic knobs.

    ``--arrival fixed`` (the default) replays the historical Poisson
    stream through :func:`repro.traffic.tag_requests` — with no prefix
    share and no sessions that returns the stream unchanged, keeping the
    pre-cluster output bit-identical. Any other family generates through
    :func:`repro.traffic.generate_traffic`.
    """
    from repro.serving import poisson_requests
    from repro.traffic import (
        ArrivalFamily,
        ArrivalSpec,
        PrefixSpec,
        TrafficConfig,
        generate_traffic,
        tag_requests,
    )

    if args.rate <= 0:
        raise ConfigurationError(
            f"--rate must be positive (got {args.rate:g})")
    if not 0.0 <= args.prefix_share <= 1.0:
        raise ConfigurationError(
            f"--prefix-share must be in [0, 1] (got {args.prefix_share:g})")
    prefix = (PrefixSpec(share=args.prefix_share, prefix_len=args.prefix_len,
                         pool=args.prefix_pool)
              if args.prefix_share > 0 else None)
    if args.arrival == "fixed":
        requests = poisson_requests(
            rate_per_s=args.rate, duration_s=args.duration,
            prompt_len=args.prompt_len, output_tokens=args.output_tokens,
            seed=args.seed)
        return tag_requests(requests, prefix=prefix, sessions=args.sessions,
                            seed=args.seed)
    config = TrafficConfig(
        arrivals=ArrivalSpec(family=ArrivalFamily(args.arrival),
                             rate_per_s=args.rate, duration_s=args.duration,
                             seed=args.seed),
        prompt_len=args.prompt_len, output_tokens=args.output_tokens,
        prefix=prefix if prefix is not None else PrefixSpec(),
        sessions=args.sessions)
    return generate_traffic(config)


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.analysis import serving_slo_attainment
    from repro.obs import RunRecorder, recording_to_trace
    from repro.serving import (
        ClassifiedRequest,
        ContinuousBatchPolicy,
        LatencyModel,
        PriorityPolicy,
        RequestClass,
        StaticBatchPolicy,
        simulate_cluster,
        simulate_serving,
    )
    from repro.trace import chrome
    from repro.viz import TimelineOptions, render_serving_timeline

    if args.record_sample < 1:
        raise ConfigurationError(
            f"--record-sample must be at least 1 (got {args.record_sample}); "
            f"K=1 records everything, K>1 samples 1-in-K requests")
    if args.chunk_tokens < 0:
        raise ConfigurationError(
            f"--chunk-tokens must be non-negative (got {args.chunk_tokens}); "
            f"0 disables chunked prefill and reproduces whole-prompt serving")
    clustered = args.router != "shared"
    if clustered and args.scenario != "continuous":
        raise ConfigurationError(
            f"--router {args.router} runs the cluster stack, whose replicas "
            f"run continuous batching; --scenario {args.scenario} is only "
            f"available with --router shared")
    if args.autoscale_max and not clustered:
        raise ConfigurationError(
            "--autoscale-max needs a cluster router; pass e.g. "
            "--router least-loaded")
    if args.host_cores < 0:
        raise ConfigurationError(
            f"--host-cores must be non-negative (got {args.host_cores}); "
            f"0 models an unlimited host")
    host = None
    if args.host_cores or args.numa is not None or args.pin:
        from repro.host import HostConfig, HostModel

        if not args.host_cores:
            raise ConfigurationError(
                "--numa/--pin shape a finite host; pass --host-cores N "
                "to enable one")
        if args.scenario != "continuous":
            raise ConfigurationError(
                f"--host-cores models dispatch-CPU contention for the "
                f"continuous scenario; --scenario {args.scenario} does "
                f"not book per-step CPU shares")
        host = HostModel.for_platform(
            args.platform, replicas=max(args.replicas, 1),
            config=HostConfig(cores=args.host_cores, numa=args.numa,
                              pin=args.pin))
    model = get_model(args.model)
    kv = _kv_config(args)
    if args.prefix_share > 0 and 0.0 <= args.prefix_share <= 1.0:
        from repro.kvcache import KvCacheConfig

        # COW prefix caching rides on the paged pool; with no pressure
        # policy configured it gets a dedicated unbounded-pool config.
        kv = (dataclasses.replace(kv, prefix_caching=True)
              if kv is not None else KvCacheConfig(prefix_caching=True))
    latency = LatencyModel(get_platform(args.platform), engine_config=_FAST,
                           tp=_tp_config(args), pp=_pp_config(args))
    requests = _serve_requests(args)
    if args.scenario == "continuous":
        policy = ContinuousBatchPolicy(max_active=args.max_active,
                                       chunk_tokens=args.chunk_tokens)
        workload: list = list(requests)
    elif args.scenario == "static":
        if args.chunk_tokens:
            raise ConfigurationError(
                "--chunk-tokens applies to the continuous and priority "
                "scenarios; static batching prefills whole batches")
        policy = StaticBatchPolicy(max_batch_size=args.max_active)
        workload = list(requests)
    else:  # priority: every 4th request is interactive, the rest are bulk
        policy = PriorityPolicy(bulk_batch=args.max_active,
                                chunk_tokens=args.chunk_tokens)
        workload = [
            ClassifiedRequest(request=request,
                              request_class=(RequestClass.INTERACTIVE
                                             if index % 4 == 0
                                             else RequestClass.BULK))
            for index, request in enumerate(requests)
        ]
    recorder = RunRecorder(sample_every=args.record_sample)
    causality = _causality_log(args)
    if clustered:
        from repro.serving import AutoscaleConfig

        autoscale = (AutoscaleConfig(max_replicas=args.autoscale_max)
                     if args.autoscale_max else None)
        result = simulate_cluster(
            workload, model, latency, policy=policy, router=args.router,
            replicas=args.replicas, recorder=recorder, kv=kv,
            autoscale=autoscale, causality=causality, host=host)
    else:
        result = simulate_serving(workload, model, latency, policy=policy,
                                  replicas=args.replicas, recorder=recorder,
                                  kv=kv, causality=causality, host=host)
    report = result.report
    title = (f"{args.scenario} serving: {model.name} on {args.platform} "
             f"({len(requests)} requests, {args.replicas} replica(s))")
    print(recorder.summary().render(title))
    print(f"throughput         : "
          f"{report.throughput_tokens_per_s():.0f} tokens/s")
    print(serving_slo_attainment(report).render())
    router = getattr(result, "router", None)
    if router is not None:
        scaled = (f"  scaled to {router.replicas}"
                  if router.scale_events else "")
        print(f"router             : {router.policy}  "
              f"routed {router.routed} -> "
              f"{'/'.join(str(n) for n in router.routed_per_replica)}"
              f"  busy {format_ns(router.router_busy_ns)}{scaled}")
    host_stats = getattr(result, "host", None)
    if host_stats is not None:
        print(f"host cpu           : {host_stats.cores} cores / "
              f"{host_stats.domains} domain(s)  "
              f"grants={host_stats.grants} "
              f"(remote {host_stats.remote_grants})  "
              f"stall {format_ns(host_stats.stall_ns)}  "
              f"busy {format_ns(host_stats.busy_ns)}")
    for stats in result.kv:
        prefix = ""
        if stats.prefix_hits or stats.prefix_misses:
            prefix = (f"  prefix hits={stats.prefix_hits}"
                      f"/misses={stats.prefix_misses}"
                      f" forks={stats.cow_forks}")
        print(f"kv pool r{stats.replica}         : "
              f"{stats.capacity_blocks} blocks x {stats.block_tokens} tokens"
              f"  preempts={stats.preemptions}"
              f"  swaps={stats.swap_out_events}+{stats.swap_in_events}"
              f" ({format_ns(stats.swap_ns)}){prefix}")
    if args.replicas > 1:
        rows = [[f"r{stats.replica}", str(stats.requests),
                 str(stats.output_tokens), str(stats.steps),
                 f"{stats.throughput_tokens_per_s:.0f}",
                 f"{100 * stats.utilization:.1f}%",
                 f"{100 * stats.cpu_utilization:.1f}%"]
                for stats in result.replicas]
        print()
        print(render_table(
            ["replica", "requests", "tokens", "steps", "tokens/s", "util",
             "cpu"],
            rows, title="per-replica scale-out"))
    if args.timeline:
        print()
        print(render_serving_timeline(recorder,
                                      TimelineOptions(width=args.width)))
    if args.emit_trace:
        trace = recording_to_trace(
            recorder, latency, model,
            devices_per_replica=result.devices_per_replica)
        chrome.dump(trace, args.emit_trace)
        print(f"wrote {len(trace.kernels)} kernels / "
              f"{len(trace.iterations)} steps to {args.emit_trace}")
    _dump_causality(causality, args)
    return 0


def _cmd_kvpressure(args: argparse.Namespace) -> int:
    from repro.analysis import kv_pressure_report, run_kv_pressure_sweep
    from repro.kvcache import KvPolicy

    platforms = [get_platform(name) for name in args.platforms.split(",")]
    pools = tuple(float(p) for p in args.pools.split(","))
    policies = tuple(KvPolicy(p) for p in args.policies.split(","))
    result = run_kv_pressure_sweep(
        get_model(args.model), platforms,
        pool_gib=pools, policies=policies,
        prompt_len=args.prompt_len, output_tokens=args.output_tokens,
        rate_per_s=args.rate, duration_s=args.duration, seed=args.seed,
        max_active=args.max_active, mode=ExecutionMode(args.mode),
        slo_ms=args.slo_ms)
    print(kv_pressure_report(result))
    return 0


def _cmd_hostsweep(args: argparse.Namespace) -> int:
    from repro.analysis import replicas_per_host_report, run_replicas_per_host

    platforms = [get_platform(name) for name in args.platforms.split(",")]
    counts = tuple(int(c) for c in args.counts.split(","))
    result = run_replicas_per_host(
        get_model(args.model), platforms, counts=counts, scale=args.scale,
        knee_fraction=args.knee_fraction, prompt_len=args.prompt_len,
        output_tokens=args.output_tokens, requests_count=args.requests,
        seed=args.seed, max_active=args.max_active)
    print(replicas_per_host_report(result))
    return 0


def _cmd_skip_analyze(args: argparse.Namespace) -> int:
    from repro.skip import analyze_trace, classify_metrics, compute_metrics
    from repro.skip.report import metrics_report, top_kernels_report
    from repro.trace import chrome

    trace = chrome.load(args.trace)
    metrics = compute_metrics(trace)
    source = trace.metadata.get("source", "chrome trace")
    print(metrics_report(metrics, f"SKIP metrics for {args.trace} ({source})"))
    print(f"classification             : {classify_metrics(metrics).value}")
    print()
    print(top_kernels_report(metrics, args.top))
    if args.fusion:
        print()
        print(fusion_report(analyze_trace(trace)))
    return 0


def _resolve_check_models(spec: str) -> list:
    from repro.workloads import ALL_MODELS, PAPER_MODELS

    if spec == "paper":
        return list(PAPER_MODELS)
    if spec == "all":
        return list(ALL_MODELS)
    return [get_model(name) for name in spec.split(",")]


def _emit_report(report, as_json: bool) -> int:
    print(report.to_json() if as_json else report.render())
    return 0 if report.ok else 1


def _cmd_check_graph(args: argparse.Namespace) -> int:
    from repro.check import check_workload_graphs

    degrees = tuple(int(d) for d in args.degrees.split(","))
    report = check_workload_graphs(_resolve_check_models(args.models),
                                   degrees, batch_size=args.batch_size,
                                   seq_len=args.seq_len)
    return _emit_report(report, args.json)


def _cmd_check_schedule(args: argparse.Namespace) -> int:
    from repro.check import check_trace_schedules, check_workload_schedules

    if args.trace:
        return _emit_report(check_trace_schedules(args.trace), args.json)
    degrees = tuple(int(d) for d in args.degrees.split(","))
    _pp_config(args)  # validate the stage/microbatch pair up front
    report = check_workload_schedules(_resolve_check_models(args.models),
                                      degrees, batch_size=args.batch_size,
                                      seq_len=args.seq_len,
                                      dispatch=DispatchMode(args.dispatch),
                                      pp_stages=args.pp,
                                      pp_microbatches=args.pp_microbatches)
    return _emit_report(report, args.json)


def _cmd_check_trace(args: argparse.Namespace) -> int:
    from repro.check import check_trace_files

    return _emit_report(check_trace_files(args.traces), args.json)


def _cmd_check_hb(args: argparse.Namespace) -> int:
    from repro.check import check_causality_logs, check_hb_scenarios

    if args.log:
        if args.certify:
            raise ConfigurationError(
                "--certify re-executes a scenario under a perturbed "
                "tie-break, which an exported log cannot do; pass "
                "--scenario instead of --log")
        return _emit_report(check_causality_logs(args.log), args.json)
    report = check_hb_scenarios(args.scenario or (), certify=args.certify)
    return _emit_report(report, args.json)


def _cmd_check_code(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check import check_source

    root = args.root or str(Path(__file__).parent)
    return _emit_report(check_source(root), args.json)


def _cmd_validate(_args: argparse.Namespace) -> int:
    from repro.reproduction import run_scorecard

    scorecard = run_scorecard(progress=lambda msg: print(f"... {msg}"))
    print()
    print(scorecard.render())
    return 0 if not scorecard.failures() else 1


def _cmd_memory(args: argparse.Namespace) -> int:
    platform = get_platform(args.platform)
    report = memory_report(get_model(args.model), platform.gpu,
                           args.batch_size, args.seq_len)
    print(f"{report.model} @ BS={args.batch_size} seq={args.seq_len} "
          f"on {report.gpu}")
    print(f"  weights     : {format_bytes(report.weights_bytes)}")
    print(f"  activations : {format_bytes(report.activation_bytes)}")
    print(f"  kv cache    : {format_bytes(report.kv_cache_bytes)}")
    print(f"  reserve     : {format_bytes(report.reserve_bytes)}")
    print(f"  total       : {format_bytes(report.total_bytes)} "
          f"of {format_bytes(report.capacity_bytes)} "
          f"({100 * report.utilization:.1f}%)")
    print(f"  fits        : {'yes' if report.fits else 'NO'}")
    return 0 if report.fits else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SKIP profiler & CPU-GPU coupling characterization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    profile = sub.add_parser("profile", help="profile one run with SKIP")
    _add_workload_args(profile)
    profile.add_argument("--mode", default="eager",
                         choices=[m.value for m in ExecutionMode
                                  if m is not ExecutionMode.PROXIMITY_FUSED])
    profile.set_defaults(func=_cmd_profile)

    run_p = sub.add_parser(
        "run", help="one engine run, optionally tensor-parallel")
    _add_workload_args(run_p)
    _add_tp_args(run_p)
    run_p.add_argument("--mode", default="eager",
                       choices=[m.value for m in ExecutionMode
                                if m is not ExecutionMode.PROXIMITY_FUSED])
    _add_pp_args(run_p)
    run_p.add_argument("--ignore-memory", action="store_true",
                       help="simulate even when the shape exceeds HBM")
    run_p.add_argument("--causality", metavar="PATH",
                       help="record the run's causality log (scheduling, "
                            "rendezvous, occupancy) to a JSON sidecar for "
                            "'repro check hb --log'")
    run_p.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="batch sweep with transition stars")
    sweep.add_argument("--model", default="bert-base-uncased")
    sweep.add_argument("--platform", default="all",
                       help="platform name or 'all'")
    sweep.add_argument("--seq-len", type=int, default=512)
    sweep.add_argument("--batches", default="1,2,4,8,16,32,64,128")
    _add_tp_args(sweep)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep grid (results "
                            "merge in deterministic serial order)")
    sweep.add_argument("--ignore-memory", action="store_true",
                       help="sweep even when the largest batch exceeds HBM")
    sweep.set_defaults(func=_cmd_sweep)

    tpsweep = sub.add_parser(
        "tpsweep", help="tensor-parallel degree sweep (per-device metrics)")
    _add_workload_args(tpsweep)
    tpsweep.add_argument("--degrees", default="1,2,4",
                         help="comma-separated TP degrees (each must divide "
                              "the model's attention head count)")
    tpsweep.add_argument("--dispatch", default="single",
                         choices=[m.value for m in DispatchMode])
    tpsweep.set_defaults(func=_cmd_tpsweep)

    fusion = sub.add_parser("fusion", help="fusion recommendations")
    _add_workload_args(fusion)
    fusion.add_argument("--threshold", type=float, default=1.0,
                        help="minimum proximity score")
    fusion.set_defaults(func=_cmd_fusion)

    nullk = sub.add_parser("nullkernel", help="Table V micro-benchmark")
    nullk.set_defaults(func=_cmd_nullkernel)

    whatif = sub.add_parser("whatif", help="required CPU speedup analysis")
    _add_workload_args(whatif)
    whatif.add_argument("--reference", default="Intel+H100")
    whatif.set_defaults(func=_cmd_whatif)

    memory = sub.add_parser("memory", help="HBM footprint check")
    _add_workload_args(memory)
    memory.set_defaults(func=_cmd_memory)

    serve = sub.add_parser(
        "serve", help="serving simulation with observability recording")
    serve.add_argument("--model", default="gpt2")
    serve.add_argument("--platform", default="Intel+H100")
    serve.add_argument("--scenario", default="continuous",
                       choices=["continuous", "static", "priority"])
    serve.add_argument("--replicas", type=int, default=1,
                       help="engine replicas serving one admission queue")
    _add_tp_args(serve)
    _add_pp_args(serve)
    serve.add_argument("--arrival", default="fixed",
                       choices=["fixed", "poisson", "bursty", "diurnal"],
                       help="arrival process: fixed replays the historical "
                            "seeded Poisson list bit-identically; the "
                            "others generate through repro.traffic")
    serve.add_argument("--rate", type=float, default=20.0,
                       help="mean arrival rate (req/s)")
    serve.add_argument("--duration", type=float, default=1.0,
                       help="arrival stream duration (s)")
    serve.add_argument("--prefix-share", type=float, default=0.0,
                       help="fraction of requests tagged with a shared "
                            "prefix (enables copy-on-write prefix caching "
                            "when positive)")
    serve.add_argument("--prefix-len", type=int, default=256,
                       help="tokens in each shared prefix")
    serve.add_argument("--prefix-pool", type=int, default=4,
                       help="distinct shared prefixes tagged requests draw "
                            "from")
    serve.add_argument("--sessions", type=int, default=0,
                       help="distinct session tags to spread over the "
                            "stream (0 = untagged)")
    serve.add_argument("--router", default="shared",
                       choices=["shared", "round-robin", "least-loaded",
                                "session", "disaggregated"],
                       help="shared = replicas race on one queue (the flat "
                            "runtime); anything else routes through the "
                            "cluster tier with that placement policy")
    serve.add_argument("--autoscale-max", type=int, default=0,
                       help="let the cluster router spin up replicas to "
                            "this ceiling under backlog (0 = fixed pool; "
                            "needs a cluster --router)")
    serve.add_argument("--prompt-len", type=int, default=128)
    serve.add_argument("--output-tokens", type=int, default=16)
    serve.add_argument("--max-active", type=int, default=8,
                       help="max active sequences (continuous), batch size "
                            "(static), or bulk batch (priority)")
    serve.add_argument("--chunk-tokens", type=int, default=0,
                       help="per-step token budget for chunked prefill "
                            "(sarathi-style stall-free scheduling); 0 "
                            "disables chunking and reproduces whole-prompt "
                            "serving bit-identically")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--record-sample", type=int, default=1, metavar="K",
                       help="record full per-request detail for 1-in-K "
                            "requests; aggregate counters stay exact for all "
                            "(K=1 records everything)")
    serve.add_argument("--timeline", action="store_true",
                       help="render the recorded run as an ASCII timeline")
    serve.add_argument("--width", type=int, default=100)
    serve.add_argument("--emit-trace", metavar="PATH",
                       help="export the recorded run as Chrome-trace JSON "
                            "(analyzable with 'repro skip analyze')")
    serve.add_argument("--kv-policy", default="none",
                       choices=["none", "recompute", "offload"],
                       help="paged KV-pool pressure policy (continuous "
                            "scenario only; 'none' reproduces the "
                            "pre-kvcache serving path exactly)")
    serve.add_argument("--kv-pool-gib", type=float, default=None,
                       help="KV pool size per replica in GiB (default: all "
                            "HBM left after weights and runtime reserve)")
    serve.add_argument("--host-cores", type=int, default=0,
                       help="finite host CPU: total dispatch cores shared "
                            "by every replica and the router (0 = "
                            "unlimited, the historical model; per-domain "
                            "budget on per-GPU-domain hosts like GH200)")
    serve.add_argument("--numa", type=int, default=None, metavar="DOMAIN",
                       help="force every replica's dispatch affinity to "
                            "this NUMA domain (default: each replica's "
                            "GPU-attached domain; needs --host-cores)")
    serve.add_argument("--pin", action="store_true",
                       help="forbid remote-domain spill: dispatch work "
                            "waits for a local core instead of borrowing "
                            "a penalized remote one (needs --host-cores)")
    serve.add_argument("--causality", metavar="PATH",
                       help="record the serving run's causality log "
                            "(scheduling, KV grants, occupancy) to a JSON "
                            "sidecar for 'repro check hb --log'")
    serve.set_defaults(func=_cmd_serve)

    hostsweep = sub.add_parser(
        "hostsweep",
        help="tokens/s + launch-tax knee vs replicas packed on one host")
    hostsweep.add_argument("--model", default="gpt2")
    hostsweep.add_argument("--platforms",
                           default="AMD+A100,Intel+H100,GH200",
                           help="comma-separated platform names to compare")
    hostsweep.add_argument("--counts", default="1,2,3,4,6,8",
                           help="comma-separated replica counts (increasing)")
    hostsweep.add_argument("--scale", type=int, default=16,
                           help="divide each cataloged host's cores by this "
                                "(topology preserved) so the knee lands in "
                                "a small sweep")
    hostsweep.add_argument("--knee-fraction", type=float, default=0.5,
                           help="a replica still pays off while it adds at "
                                "least this fraction of single-replica "
                                "tokens/s")
    hostsweep.add_argument("--prompt-len", type=int, default=64)
    hostsweep.add_argument("--output-tokens", type=int, default=16)
    hostsweep.add_argument("--requests", type=int, default=40,
                           help="burst size served by every cell")
    hostsweep.add_argument("--seed", type=int, default=11)
    hostsweep.add_argument("--max-active", type=int, default=4)
    hostsweep.set_defaults(func=_cmd_hostsweep)

    kvpressure = sub.add_parser(
        "kvpressure",
        help="tokens/s + SLO attainment vs KV pool size and policy")
    kvpressure.add_argument("--model", default="llama-3.2-1b")
    kvpressure.add_argument("--platforms", default="AMD+A100,GH200",
                            help="comma-separated platform names to compare")
    kvpressure.add_argument("--pools", default="0.2,0.15,0.1",
                            help="comma-separated pool sizes (GiB/replica)")
    kvpressure.add_argument("--policies", default="recompute,offload",
                            help="comma-separated pressure policies")
    kvpressure.add_argument("--prompt-len", type=int, default=1024)
    kvpressure.add_argument("--output-tokens", type=int, default=128)
    kvpressure.add_argument("--rate", type=float, default=40.0,
                            help="Poisson arrival rate (req/s)")
    kvpressure.add_argument("--duration", type=float, default=1.0,
                            help="arrival stream duration (s)")
    kvpressure.add_argument("--seed", type=int, default=7)
    kvpressure.add_argument("--max-active", type=int, default=16)
    kvpressure.add_argument("--slo-ms", type=float, default=200.0)
    kvpressure.add_argument(
        "--mode", default="compile_reduce_overhead",
        choices=[m.value for m in ExecutionMode
                 if m is not ExecutionMode.PROXIMITY_FUSED],
        help="execution mode (compiled decode exposes memory pressure; "
             "eager decode is launch-bound and hides it)")
    kvpressure.set_defaults(func=_cmd_kvpressure)

    skip = sub.add_parser("skip", help="SKIP analysis of a Chrome trace file")
    skip_sub = skip.add_subparsers(dest="skip_command", required=True)
    analyze = skip_sub.add_parser(
        "analyze", help="metrics + classification for a trace JSON")
    analyze.add_argument("trace", help="Chrome-trace JSON path")
    analyze.add_argument("--top", type=int, default=5,
                         help="top-k kernel table size")
    analyze.add_argument("--fusion", action="store_true",
                         help="also mine fusion candidates (Fig. 7/8 table)")
    analyze.set_defaults(func=_cmd_skip_analyze)

    check = sub.add_parser(
        "check", help="static analysis of graphs, schedules, traces, code")
    check_sub = check.add_subparsers(dest="check_command", required=True)

    def _add_check_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--json", action="store_true",
                       help="emit findings as machine-readable JSON")

    def _add_check_catalog(p: argparse.ArgumentParser) -> None:
        p.add_argument("--models", default="paper",
                       help="'paper', 'all', or comma-separated model names")
        p.add_argument("--degrees", default="1,2,4,8",
                       help="TP degrees to verify (non-dividing skipped)")
        p.add_argument("--batch-size", type=int, default=1)
        p.add_argument("--seq-len", type=int, default=128)
        _add_check_common(p)

    check_graph = check_sub.add_parser(
        "graph", help="verify lowered graphs + TP sharding conservation")
    _add_check_catalog(check_graph)
    check_graph.set_defaults(func=_cmd_check_graph)

    check_sched = check_sub.add_parser(
        "schedule", help="detect rendezvous deadlocks in TP schedules")
    _add_check_catalog(check_sched)
    check_sched.add_argument("--dispatch", default="per-device",
                             choices=[m.value for m in DispatchMode])
    _add_pp_args(check_sched)
    check_sched.add_argument("--trace", metavar="PATH", action="append",
                             help="hazard-check the schedules reconstructed "
                                  "from an exported Chrome trace instead of "
                                  "the catalog (repeatable)")
    check_sched.set_defaults(func=_cmd_check_schedule)

    check_trace = check_sub.add_parser(
        "trace", help="lint Chrome-trace files + recomputed SKIP identities")
    check_trace.add_argument("traces", nargs="+",
                             help="Chrome-trace JSON path(s)")
    _add_check_common(check_trace)
    check_trace.set_defaults(func=_cmd_check_trace)

    check_hb = check_sub.add_parser(
        "hb", help="happens-before race detection + determinism "
                   "certification over causality logs")
    check_hb.add_argument("--scenario", action="append", metavar="NAME",
                          help="canonical scenario to simulate and check "
                               "(repeatable; default: all — mixed-stream, "
                               "pp-kv-offload, cluster, host-contention)")
    check_hb.add_argument("--log", action="append", metavar="PATH",
                          help="check an exported causality sidecar (from "
                               "'repro serve/run --causality') instead of "
                               "re-simulating (repeatable)")
    check_hb.add_argument("--certify", action="store_true",
                          help="also re-execute each scenario under an "
                               "adversarially perturbed (causally-"
                               "equivalent) tie-break order and report any "
                               "outcome divergence as H008")
    _add_check_common(check_hb)
    check_hb.set_defaults(func=_cmd_check_hb)

    check_code = check_sub.add_parser(
        "code", help="repo-specific AST lint over the package source")
    check_code.add_argument("--root", default=None,
                            help="package tree to lint (default: the "
                                 "installed repro package)")
    _add_check_common(check_code)
    check_code.set_defaults(func=_cmd_check_code)

    validate = sub.add_parser(
        "validate", help="recompute every paper anchor (scorecard)")
    validate.set_defaults(func=_cmd_validate)

    export = sub.add_parser("export", help="sweep to JSON/CSV for plotting")
    export.add_argument("--model", default="bert-base-uncased")
    export.add_argument("--platform", default="all")
    export.add_argument("--seq-len", type=int, default=512)
    export.add_argument("--batches", default="1,2,4,8,16,32,64,128")
    export.add_argument("--out", required=True,
                        help="output path (.json or .csv)")
    export.set_defaults(func=_cmd_export)

    timeline = sub.add_parser("timeline", help="ASCII trace timeline")
    _add_workload_args(timeline)
    _add_tp_args(timeline)
    timeline.add_argument("--width", type=int, default=100)
    timeline.add_argument("--window-fraction", type=float, default=0.34,
                          help="fraction of the trace to show (default: "
                               "roughly the first iteration)")
    timeline.set_defaults(func=_cmd_timeline)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Configuration mistakes (unknown model, invalid TP degree, bad trace
    file, ...) surface as one-line ``error: ...`` messages on stderr with
    exit code 2, not tracebacks; tracebacks are reserved for actual bugs.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
