"""The ``repro check`` CLI: exit codes and machine-readable output."""

import json

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_check_graph_clean(capsys):
    code, out = run_cli(capsys, "check", "graph",
                        "--models", "gpt2", "--degrees", "1,2,4")
    assert code == 0
    assert "clean" in out


def test_check_graph_json(capsys):
    code, out = run_cli(capsys, "check", "graph",
                        "--models", "gpt2", "--degrees", "2", "--json")
    assert code == 0
    payload = json.loads(out)
    assert payload["ok"] is True
    assert "gpt2 tp=2" in payload["checked"]
    assert payload["findings"] == []


def test_check_schedule_clean(capsys):
    code, out = run_cli(capsys, "check", "schedule",
                        "--models", "gpt2", "--degrees", "2,4")
    assert code == 0
    assert "clean" in out


def test_check_code_clean_on_repo(capsys):
    code, out = run_cli(capsys, "check", "code")
    assert code == 0
    assert "clean" in out


def test_check_code_fails_on_bad_tree(capsys, tmp_path):
    bad = tmp_path / "pkg" / "sim"
    bad.mkdir(parents=True)
    (bad / "core.py").write_text(
        "import time\n"
        "def step():\n"
        "    return time.time()\n")
    code, out = run_cli(capsys, "check", "code",
                        "--root", str(tmp_path / "pkg"), "--json")
    assert code == 1
    payload = json.loads(out)
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "C001"


def test_check_trace_clean_and_scrambled(capsys, tmp_path, tp2_trace):
    from repro.trace import chrome

    clean = tmp_path / "clean.json"
    chrome.dump(tp2_trace, clean)
    code, out = run_cli(capsys, "check", "trace", str(clean))
    assert code == 0
    assert "clean" in out

    payload = json.loads(clean.read_text())
    payload["traceEvents"] = list(reversed(payload["traceEvents"]))
    scrambled = tmp_path / "scrambled.json"
    scrambled.write_text(json.dumps(payload))
    code, out = run_cli(capsys, "check", "trace", str(scrambled), "--json")
    assert code == 1
    report = json.loads(out)
    assert any(f["rule"] == "T001" for f in report["findings"])


def test_check_bad_trace_path_exits_cleanly(capsys):
    code = main(["check", "trace", "/nonexistent/trace.json"])
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error:")
