"""Fig. 9 — idealized proximity-score fusion speedups (blue bars) vs the
measured torch.compile reduce-overhead speedup (orange bar), GPT-2 prefill
BS=1 on Intel+H100.

Paper: PS at L=256 reaches ~1.3x the torch.compile bar (TC ~2.1x). Our
simulated torch.compile removes effectively all framework dispatch, so its
bar lands higher (~3.5x) and the PS/TC ratio inverts — a documented
deviation (see EXPERIMENTS.md): Eq. 8 is a launch-count ratio while the TC
bar is an end-to-end latency ratio.
"""

from _harness import BENCH_ENGINE, report, run_once
from repro.engine import ExecutionMode, run
from repro.hardware import INTEL_H100
from repro.skip import analyze_trace, compute_metrics
from repro.viz import render_table
from repro.workloads import GPT2

LENGTHS = (2, 4, 8, 16, 32, 64, 128, 256)


def _collect():
    eager = run(GPT2, INTEL_H100, batch_size=1, seq_len=512,
                config=BENCH_ENGINE)
    eager_il = compute_metrics(eager.trace).inference_latency_ns
    ps_speedups = {a.length: a.ideal_speedup
                   for a in analyze_trace(eager.trace, lengths=LENGTHS)}
    compiled = run(GPT2, INTEL_H100, batch_size=1, seq_len=512,
                   mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD,
                   config=BENCH_ENGINE)
    tc_speedup = eager_il / compute_metrics(compiled.trace).inference_latency_ns
    return ps_speedups, tc_speedup


def test_fig9_ps_vs_torch_compile(benchmark):
    ps_speedups, tc_speedup = run_once(benchmark, _collect)
    rows = [[f"PS L={length}", f"{ps_speedups[length]:.2f}x"]
            for length in LENGTHS]
    rows.append(["torch.compile (reduce-overhead)", f"{tc_speedup:.2f}x"])
    rows.append(["paper: PS L=256 / TC", "2.7x / ~2.1x"])
    report(render_table(["bar", "speedup over eager"], rows,
                        title="Fig. 9: GPT-2 prefill BS=1 on Intel+H100"))

    # Shape checks that do hold: PS grows with L; both optimizations give
    # large speedups over eager for this CPU-bound model; the best PS bar is
    # the L=256 one, in the same band as torch.compile.
    assert ps_speedups[256] == max(ps_speedups.values())
    assert ps_speedups[256] > 2.0
    assert tc_speedup > 2.0
    assert 0.5 < ps_speedups[256] / tc_speedup < 1.5
