"""Deterministic event queue.

A min-heap of ``(time, seq)`` entries. ``seq`` is a monotonically increasing
insertion counter, so two events scheduled for the same instant pop in the
order they were pushed — simulation results never depend on heap internals,
which is what makes multi-process runs (and their traces) reproducible.

Two implementations share the contract:

* :class:`EventQueue` — the production queue. ``__slots__`` keeps the
  object lean and :class:`~repro.sim.core.SimCore` is allowed to drain
  ``_heap`` directly in its hot loop (saving a method call and tuple
  re-pack per event).
* :class:`ReferenceEventQueue` — the original, defensively validating
  implementation, kept as the parity oracle: the fast-path test suite runs
  identical simulations on both queues and asserts bit-identical results.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.errors import SimulationError


class EventQueue:
    """Time-ordered event queue with FIFO tie-breaking."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time_ns: float, item: Any) -> None:
        """Schedule ``item`` at ``time_ns``."""
        if time_ns < 0:
            raise SimulationError("event time must be non-negative")
        heapq.heappush(self._heap, (time_ns, self._seq, item))
        self._seq += 1

    def push_many(self, entries: list[tuple[float, Any]]) -> None:
        """Schedule a batch of ``(time_ns, item)`` entries.

        Amortizes the per-push attribute traffic; FIFO tie-breaking across
        the batch follows list order, exactly as repeated :meth:`push` calls
        would.
        """
        seq = self._seq
        heap = self._heap
        for time_ns, item in entries:
            if time_ns < 0:
                raise SimulationError("event time must be non-negative")
            heapq.heappush(heap, (time_ns, seq, item))
            seq += 1
        self._seq = seq

    def pop_entry(self) -> tuple[float, int, Any]:
        """Remove and return the earliest ``(time, tie, item)`` entry.

        ``tie`` is the monotone insertion sequence number that broke any
        same-time tie — the metadata the causality log records so the
        happens-before pass (rule H002) can prove pop order never fell
        through to comparing heap items.
        """
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, item)`` entry."""
        time_ns, _, item = self.pop_entry()
        return time_ns, item

    def peek_time(self) -> float:
        """Earliest scheduled time without popping."""
        if not self._heap:
            raise SimulationError("peek into an empty event queue")
        return self._heap[0][0]


class ReferenceEventQueue(EventQueue):
    """The pre-optimization event queue, kept as a parity oracle.

    Behaviorally identical to :class:`EventQueue` by construction (it *is*
    the same heap discipline), but carries a per-instance ``__dict__`` and
    pays full method-call overhead on every operation — the shape the fast
    path is measured against. ``popped`` counts drained events so tests can
    assert both queues processed identical event streams.
    """

    # No __slots__ on purpose: subclassing re-grows a __dict__, restoring
    # the original allocation profile.
    def __init__(self) -> None:
        super().__init__()
        self.popped = 0

    def pop_entry(self) -> tuple[float, int, Any]:
        entry = super().pop_entry()
        self.popped += 1
        return entry


class PerturbedEventQueue(EventQueue):
    """Adversarial tie-break queue for determinism certification.

    Orders same-time events LIFO instead of FIFO by negating the insertion
    sequence number. Time order is untouched, so a perturbed run is
    *causally equivalent* to the baseline — any behavioral dependency the
    two runs disagree on was a dependency on the tie-break itself, which is
    exactly what ``repro check hb --certify`` hunts (rule H008).

    Being a subclass (not ``EventQueue`` itself) automatically steers
    :class:`~repro.sim.core.SimCore` off its direct-heap fast path onto the
    generic loop.
    """

    def push(self, time_ns: float, item: Any) -> None:
        if time_ns < 0:
            raise SimulationError("event time must be non-negative")
        heapq.heappush(self._heap, (time_ns, -self._seq, item))
        self._seq += 1

    def push_many(self, entries: list[tuple[float, Any]]) -> None:
        for time_ns, item in entries:
            self.push(time_ns, item)
