"""Chrome-trace export / import round trips."""

import json

import pytest

from repro.engine import run
from repro.errors import TraceError
from repro.hardware import INTEL_H100
from repro.trace import chrome
from repro.workloads import BERT_BASE


@pytest.fixture(scope="module")
def run_trace():
    from repro.engine import EngineConfig
    return run(BERT_BASE, INTEL_H100, batch_size=1,
               config=EngineConfig(iterations=2)).trace


def test_round_trip_preserves_event_counts(run_trace):
    text = chrome.dumps(run_trace)
    loaded = chrome.loads(text)
    assert len(loaded.operators) == len(run_trace.operators)
    assert len(loaded.runtime_calls) == len(run_trace.runtime_calls)
    assert len(loaded.kernels) == len(run_trace.kernels)
    assert len(loaded.iterations) == len(run_trace.iterations)


def test_round_trip_preserves_correlations(run_trace):
    loaded = chrome.loads(chrome.dumps(run_trace))
    original = {k.correlation_id for k in run_trace.kernels}
    recovered = {k.correlation_id for k in loaded.kernels}
    assert original == recovered


def test_round_trip_timestamps_close(run_trace):
    loaded = chrome.loads(chrome.dumps(run_trace))
    first_orig = min(k.ts for k in run_trace.kernels)
    first_loaded = min(k.ts for k in loaded.kernels)
    assert first_loaded == pytest.approx(first_orig, abs=1.0)


def test_dump_and_load_file(tmp_path, run_trace):
    path = tmp_path / "trace.json"
    chrome.dump(run_trace, path)
    loaded = chrome.load(path)
    assert len(loaded.kernels) == len(run_trace.kernels)


def test_metadata_round_trip(run_trace):
    loaded = chrome.loads(chrome.dumps(run_trace))
    assert loaded.metadata["platform"] == "Intel+H100"


def test_loads_accepts_bare_event_list():
    events = [{
        "name": "aten::add", "cat": "cpu_op", "ph": "X",
        "ts": 1.0, "dur": 2.0, "pid": 0, "tid": 1, "args": {},
    }]
    trace = chrome.loads(json.dumps(events))
    assert len(trace.operators) == 1


def test_loads_rejects_invalid_json():
    with pytest.raises(TraceError):
        chrome.loads("{not json")


def test_loads_rejects_wrong_top_level():
    with pytest.raises(TraceError):
        chrome.loads('"a string"')


def test_loads_gpu_memcpy_as_gpu_work():
    """PyTorch Profiler emits gpu_memcpy/gpu_memset events; they occupy the
    stream and import as kernel events."""
    events = [
        {"ph": "X", "cat": "gpu_memcpy", "name": "Memcpy HtoD", "ts": 1.0,
         "dur": 2.0, "tid": 7, "args": {"correlation": 5}},
        {"ph": "X", "cat": "gpu_memset", "name": "Memset", "ts": 4.0,
         "dur": 1.0, "tid": 7, "args": {"correlation": 6}},
    ]
    trace = chrome.loads(json.dumps(events))
    assert len(trace.kernels) == 2
    assert {k.name for k in trace.kernels} == {"Memcpy HtoD", "Memset"}


def test_loads_ignores_unknown_categories():
    events = [{"name": "x", "cat": "python_function", "ph": "X",
               "ts": 0, "dur": 1, "tid": 0}]
    trace = chrome.loads(json.dumps(events))
    assert not trace.operators and not trace.kernels


def test_analysis_on_imported_trace(run_trace):
    """SKIP analyses must work identically on an imported Chrome trace."""
    from repro.skip import SkipProfiler, compute_metrics
    loaded = chrome.loads(chrome.dumps(run_trace))
    original = compute_metrics(run_trace)
    imported = compute_metrics(loaded)
    assert imported.tklqt_ns == pytest.approx(original.tklqt_ns, rel=1e-6)
    assert imported.kernel_launches == original.kernel_launches
    result = SkipProfiler.analyze(loaded)
    assert result.boundedness == SkipProfiler.analyze(run_trace).boundedness


# ----------------------------------------------------------------------
# Deterministic export ordering
# ----------------------------------------------------------------------
def test_export_is_byte_deterministic(run_trace):
    assert chrome.dumps(run_trace) == chrome.dumps(run_trace)


def test_export_events_are_canonically_ordered(run_trace):
    events = chrome.to_chrome_events(run_trace)
    keys = []
    for event in events:
        args = event["args"]
        correlation = args.get("correlation", args.get("Sequence number"))
        keys.append((args["ts_ns"], correlation))
    assert [k[0] for k in keys] == sorted(k[0] for k in keys)
    # ties broken by correlation / sequence number (iteration marks carry
    # neither and sort by their index instead)
    for earlier, later in zip(keys, keys[1:]):
        if (earlier[0] == later[0] and earlier[1] is not None
                and later[1] is not None):
            assert earlier[1] <= later[1]


# ----------------------------------------------------------------------
# Tensor-parallel round trips
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tp_trace():
    from repro.engine import EngineConfig, TPConfig
    return run(BERT_BASE, INTEL_H100, batch_size=2, seq_len=64,
               config=EngineConfig(iterations=2),
               tp=TPConfig(degree=2)).trace


def test_tp_round_trip_preserves_devices(tp_trace):
    loaded = chrome.loads(chrome.dumps(tp_trace))
    assert ({k.device for k in loaded.kernels}
            == {k.device for k in tp_trace.kernels} == {0, 1})
    for device in (0, 1):
        original = [k for k in tp_trace.kernels if k.device == device]
        recovered = [k for k in loaded.kernels if k.device == device]
        assert len(recovered) == len(original)


def test_tp_round_trip_preserves_per_device_metrics(tp_trace):
    """Satellite requirement: re-run SKIP on an imported TP trace and get
    the same per-device story back, device by device."""
    from repro.skip import compute_metrics

    original = compute_metrics(tp_trace)
    imported = compute_metrics(chrome.loads(chrome.dumps(tp_trace)))
    assert imported.tklqt_ns == pytest.approx(original.tklqt_ns, rel=1e-9)
    assert imported.kernel_launches == original.kernel_launches
    assert len(imported.devices) == len(original.devices) == 2
    for before, after in zip(original.devices, imported.devices):
        assert after.device == before.device
        assert after.tklqt_ns == pytest.approx(before.tklqt_ns, rel=1e-9)
        assert after.gpu_busy_ns == pytest.approx(before.gpu_busy_ns,
                                                  rel=1e-9)
        assert after.kernel_launches == before.kernel_launches


def test_tp_round_trip_survives_file_io(tmp_path, tp_trace):
    path = tmp_path / "tp.json"
    chrome.dump(tp_trace, path)
    loaded = chrome.load(path)
    assert len(loaded.kernels) == len(tp_trace.kernels)
    assert loaded.metadata["tp_degree"] == 2
