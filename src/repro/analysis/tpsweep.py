"""Tensor-parallel degree sweeps.

Sharding a layer across ``tp_degree`` GPUs shrinks every kernel by the
degree but adds ring all-reduces and multiplies the CPU launch work: with a
single dispatch thread every kernel is launched once *per device*. A TP
sweep profiles one (model, batch) shape across degrees and exposes the
aggregate and per-device SKIP metrics, so the CPU-bound/GPU-bound story of
Fig. 6 can be read along the parallelism axis too: small batches get *worse*
with TP (more launches, same serial dispatch), large batches get better
(kernels shrink faster than all-reduce time grows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine.executor import DEFAULT_CONFIG, EngineConfig
from repro.engine.lowering import allreduce_kernel_name
from repro.engine.modes import ExecutionMode
from repro.engine.tp import DispatchMode, TPConfig
from repro.errors import AnalysisError
from repro.hardware.platform import Platform
from repro.skip.metrics import DeviceMetrics, SkipMetrics
from repro.skip.profiler import SkipProfiler
from repro.workloads.config import ModelConfig
from repro.workloads.graph import Phase

#: Power-of-two ladder up to a typical single-node GPU count.
DEFAULT_TP_DEGREES: tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class TPSweepPoint:
    """One TP degree's profile of a fixed (model, batch) shape."""

    degree: int
    metrics: SkipMetrics

    @property
    def latency_ns(self) -> float:
        """Per-iteration inference latency at this degree."""
        return self.metrics.inference_latency_ns

    @property
    def devices(self) -> list[DeviceMetrics]:
        return self.metrics.devices

    @property
    def allreduce_ns(self) -> float:
        """Mean per-iteration time spent in all-reduce kernels (all devices)."""
        total = 0.0
        for agg in self.metrics.top_kernels:
            if agg.name == allreduce_kernel_name(self.degree):
                total += agg.total_duration_ns
        return total / len(self.metrics.iterations)


@dataclass
class TPSweepResult:
    """All degrees of one TP sweep."""

    model: str
    platform: str
    batch_size: int
    degrees: tuple[int, ...]
    points: list[TPSweepPoint] = field(default_factory=list)

    def point(self, degree: int) -> TPSweepPoint:
        for candidate in self.points:
            if candidate.degree == degree:
                return candidate
        raise AnalysisError(f"no sweep point for TP={degree}")

    def series(self, extract: Callable[[SkipMetrics], float]) -> list[float]:
        """A metric series over the swept degrees."""
        return [extract(self.point(d).metrics) for d in self.degrees]

    def latency_series(self) -> list[float]:
        return self.series(lambda m: m.inference_latency_ns)

    def tklqt_series(self) -> list[float]:
        return self.series(lambda m: m.tklqt_ns)

    def speedup(self, degree: int) -> float:
        """Latency speedup of ``degree`` over TP=1 (needs 1 in the sweep)."""
        baseline = self.point(1).latency_ns
        return baseline / self.point(degree).latency_ns

    def best_degree(self) -> int:
        """The degree with the lowest inference latency."""
        return min(self.points, key=lambda p: p.latency_ns).degree


def run_tp_sweep(
    model: ModelConfig,
    platform: Platform,
    batch_size: int = 1,
    degrees: Sequence[int] = DEFAULT_TP_DEGREES,
    seq_len: int = 512,
    mode: ExecutionMode = ExecutionMode.EAGER,
    phase: Phase = Phase.PREFILL,
    dispatch: DispatchMode = DispatchMode.SINGLE_THREAD,
    engine_config: EngineConfig = DEFAULT_CONFIG,
) -> TPSweepResult:
    """Profile one shape across tensor-parallel degrees on ``platform``."""
    if not degrees:
        raise AnalysisError("at least one TP degree is required")
    profiler = SkipProfiler(platform, engine_config)
    result = TPSweepResult(model=model.name, platform=platform.name,
                           batch_size=batch_size, degrees=tuple(degrees))
    for degree in degrees:
        tp = TPConfig(degree=degree, dispatch=dispatch)
        metrics = profiler.profile_metrics(model, batch_size=batch_size,
                                           seq_len=seq_len, mode=mode,
                                           phase=phase, tp=tp)
        result.points.append(TPSweepPoint(degree=degree, metrics=metrics))
    return result


def tp_sweep_report(result: TPSweepResult) -> str:
    """Render a TP sweep as a text table with per-device breakdowns."""
    from repro.units import format_ns

    header = (f"{result.model} on {result.platform} "
              f"(BS={result.batch_size}): latency vs TP degree")
    lines = [header, "-" * len(header)]
    baseline = result.point(result.degrees[0]).latency_ns
    for point in result.points:
        lines.append(
            f"TP={point.degree:<2} IL={format_ns(point.latency_ns):>12}  "
            f"TKLQT={format_ns(point.metrics.tklqt_ns):>12}  "
            f"allreduce={format_ns(point.allreduce_ns):>10}  "
            f"speedup={baseline / point.latency_ns:>5.2f}x"
        )
        for dev in point.devices:
            lines.append(
                f"    gpu{dev.device}: busy={format_ns(dev.gpu_busy_ns):>12}  "
                f"idle={format_ns(dev.gpu_idle_ns):>12}  "
                f"launches={dev.kernel_launches:.0f}"
            )
    best = result.best_degree()
    lines.append(f"best degree: TP={best}")
    return "\n".join(lines)
