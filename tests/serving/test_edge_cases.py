"""Serving-loop edge cases: degenerate streams, tight policies, recording.

No request may ever be dropped and recorded timestamps must be monotone, no
matter how awkward the arrival stream is.
"""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import INTEL_H100
from repro.obs import RunRecorder
from repro.serving import (
    ContinuousBatchPolicy,
    LatencyModel,
    Request,
    StaticBatchPolicy,
    simulate_continuous_batching,
    simulate_static_batching,
)
from repro.workloads import GPT2


@pytest.fixture(scope="module")
def latency():
    return LatencyModel(INTEL_H100)


def _assert_all_served(report, requests):
    assert {o.request.request_id for o in report.outcomes} == {
        r.request_id for r in requests}
    for outcome in report.outcomes:
        assert outcome.ttft_ns > 0
        assert outcome.completion_ns >= outcome.ttft_ns


def _assert_spans_monotone(recorder):
    for span in recorder.spans.values():
        assert span.arrival_ns <= span.admitted_ns
        assert span.admitted_ns <= span.first_token_ns
        assert span.first_token_ns <= span.completed_ns
    starts = [s.ts_ns for s in recorder.steps]
    assert starts == sorted(starts)


def test_empty_request_list_rejected(latency):
    with pytest.raises(ConfigurationError):
        simulate_continuous_batching([], GPT2, latency)
    with pytest.raises(ConfigurationError):
        simulate_static_batching([], GPT2, latency)


def test_max_active_one_serializes_requests(latency):
    requests = [Request(i, i * 1e6, prompt_len=64, output_tokens=3)
                for i in range(4)]
    recorder = RunRecorder()
    report = simulate_continuous_batching(
        requests, GPT2, latency, ContinuousBatchPolicy(max_active=1),
        recorder=recorder)
    _assert_all_served(report, requests)
    _assert_spans_monotone(recorder)
    for step in recorder.steps:
        assert step.batch_size == 1
    # One at a time: completions are strictly ordered by request id.
    completions = sorted(recorder.completed_spans(),
                         key=lambda s: s.request_id)
    for earlier, later in zip(completions, completions[1:]):
        assert earlier.completed_ns <= later.completed_ns


def test_request_longer_than_context_bucket(latency):
    """One request whose context outgrows the bucket is still served."""
    policy = ContinuousBatchPolicy(max_active=2, context_bucket=128)
    requests = [Request(0, 0.0, prompt_len=700, output_tokens=5)]
    recorder = RunRecorder()
    report = simulate_continuous_batching(requests, GPT2, latency, policy,
                                          recorder=recorder)
    _assert_all_served(report, requests)
    _assert_spans_monotone(recorder)
    decode_steps = [s for s in recorder.steps if s.kind.value == "decode"]
    # Prefill emits the first token, so 5 output tokens take 4 decode steps.
    assert len(decode_steps) == 4
    # Context buckets round *up*, so the priced context covers the prompt.
    for step in decode_steps:
        assert step.shape.context_len >= 700


def test_simultaneous_arrivals_all_admitted(latency):
    requests = [Request(i, 5e6, prompt_len=64, output_tokens=2)
                for i in range(6)]
    recorder = RunRecorder()
    report = simulate_continuous_batching(
        requests, GPT2, latency, ContinuousBatchPolicy(max_active=8),
        recorder=recorder)
    _assert_all_served(report, requests)
    _assert_spans_monotone(recorder)
    admitted = {s.admitted_ns for s in recorder.spans.values()}
    assert len(admitted) == 1  # one prefill batch takes all of them


def test_simultaneous_arrivals_static(latency):
    requests = [Request(i, 0.0, prompt_len=64, output_tokens=2)
                for i in range(5)]
    recorder = RunRecorder()
    report = simulate_static_batching(
        requests, GPT2, latency, StaticBatchPolicy(max_batch_size=3),
        recorder=recorder)
    _assert_all_served(report, requests)
    _assert_spans_monotone(recorder)
    assert sorted(o.batch_size for o in report.outcomes) == [2, 2, 3, 3, 3]
