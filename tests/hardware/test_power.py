"""Power and energy accounting."""

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.hardware import (
    GH200,
    INTEL_H100,
    PowerModel,
    energy_of,
    get_power_model,
)
from repro.skip import SkipProfiler
from repro.units import SEC
from repro.workloads import BERT_BASE


def test_power_models_exist_for_all_platforms():
    for name in ("AMD+A100", "Intel+H100", "GH200", "MI300A"):
        model = get_power_model(name)
        assert model.gpu_busy_w > 0


def test_unknown_platform_rejected():
    with pytest.raises(ConfigurationError):
        get_power_model("TPU")


def test_power_model_validation():
    with pytest.raises(ConfigurationError):
        PowerModel("x", gpu_busy_w=100, gpu_idle_w=200, cpu_busy_w=1,
                   cpu_idle_w=0)
    with pytest.raises(ConfigurationError):
        PowerModel("x", gpu_busy_w=-1, gpu_idle_w=0, cpu_busy_w=1,
                   cpu_idle_w=0)


@pytest.fixture(scope="module")
def bert_energy():
    metrics = SkipProfiler(INTEL_H100).profile(BERT_BASE, batch_size=8).metrics
    return metrics, energy_of(metrics, get_power_model("Intel+H100"))


def test_energy_components_positive(bert_energy):
    _, report = bert_energy
    assert report.gpu_energy_j > 0
    assert report.cpu_energy_j > 0
    assert report.total_j == report.gpu_energy_j + report.cpu_energy_j


def test_average_power_bounded_by_busy_draw(bert_energy):
    _, report = bert_energy
    power_model = get_power_model("Intel+H100")
    ceiling = power_model.gpu_busy_w + power_model.cpu_busy_w
    floor = min(power_model.gpu_idle_w, power_model.cpu_idle_w)
    assert floor < report.average_power_w < ceiling


def test_energy_identity(bert_energy):
    metrics, report = bert_energy
    power_model = get_power_model("Intel+H100")
    il_s = metrics.inference_latency_ns / SEC
    busy_s = metrics.gpu_busy_ns / SEC
    expected_gpu = (power_model.gpu_busy_w * busy_s
                    + power_model.gpu_idle_w * (il_s - busy_s))
    assert report.gpu_energy_j == pytest.approx(expected_gpu)


def test_energy_per_token(bert_energy):
    _, report = bert_energy
    per_token = report.energy_per_token_j(8 * 512)
    assert per_token == pytest.approx(report.total_j / 4096)
    with pytest.raises(AnalysisError):
        report.energy_per_token_j(0)


def test_gpu_bound_gh200_beats_lc_on_energy_per_token():
    """At large batch the GH200 finishes ~2x sooner; even at a 2x power
    class its energy/token is competitive."""
    intel = SkipProfiler(INTEL_H100).profile(BERT_BASE, batch_size=128)
    gh200 = SkipProfiler(GH200).profile(BERT_BASE, batch_size=128)
    tokens = 128 * 512
    intel_energy = energy_of(intel.metrics, get_power_model("Intel+H100"))
    gh_energy = energy_of(gh200.metrics, get_power_model("GH200"))
    assert gh_energy.energy_per_token_j(tokens) < 1.5 * (
        intel_energy.energy_per_token_j(tokens))
