"""Framework-tax baseline classifier (Fernandez et al. [14]).

The paper contrasts its TKLQT-based classification against this prior
approach, which observes *end-to-end latency scaling with batch size*: a flat
latency curve implies the framework tax dominates (framework-bound); a
linearly scaling curve implies GPU compute dominates (compute-bound). The
flat-curve method cannot say which overhead dominates or by how much —
exactly the limitation TKLQT addresses (Section III-B).

Implementing the baseline lets the benchmarks compare the two classifiers on
identical sweeps (the paper's claim is that both find similar transition
points, but TKLQT attributes them to the launch path directly).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError


class LatencyBound(enum.Enum):
    FRAMEWORK_BOUND = "framework-bound"
    COMPUTE_BOUND = "compute-bound"


#: Latency growth per batch-size doubling below which the curve counts as
#: flat. Ideal compute-bound scaling doubles latency per doubling (2.0);
#: a framework-bound curve stays near 1.0.
DEFAULT_FLATNESS_THRESHOLD = 1.4


@dataclass(frozen=True)
class FrameworkTaxResult:
    """Latency-curve classification over a batch sweep."""

    batch_sizes: tuple[int, ...]
    latencies_ns: tuple[float, ...]
    growth_ratios: tuple[float, ...]   # latency[i+1]/latency[i], len n-1
    transition_batch_size: int | None  # first batch in the compute-bound region

    def bound_at(self, batch_size: int) -> LatencyBound:
        """Classification of one swept batch size."""
        if batch_size not in self.batch_sizes:
            raise AnalysisError(f"batch size {batch_size} was not swept")
        if (self.transition_batch_size is None
                or batch_size < self.transition_batch_size):
            return LatencyBound.FRAMEWORK_BOUND
        return LatencyBound.COMPUTE_BOUND


def classify_latency_curve(
    batch_sizes: Sequence[int],
    latencies_ns: Sequence[float],
    flatness_threshold: float = DEFAULT_FLATNESS_THRESHOLD,
) -> FrameworkTaxResult:
    """Classify a latency-vs-batch curve the way [14] does.

    Args:
        batch_sizes: Ascending, each roughly double the previous (the method
            reasons about growth per doubling).
        latencies_ns: End-to-end latency per batch size.
        flatness_threshold: Growth per step below which the curve is flat.
    """
    if len(batch_sizes) != len(latencies_ns):
        raise AnalysisError("batch_sizes and latencies must align")
    if len(batch_sizes) < 2:
        raise AnalysisError("need at least two batch sizes")
    if list(batch_sizes) != sorted(set(batch_sizes)):
        raise AnalysisError("batch_sizes must be strictly ascending")
    if any(lat <= 0 for lat in latencies_ns):
        raise AnalysisError("latencies must be positive")
    if flatness_threshold <= 1.0:
        raise AnalysisError("flatness_threshold must exceed 1.0")

    growth = tuple(latencies_ns[i + 1] / latencies_ns[i]
                   for i in range(len(latencies_ns) - 1))
    transition = None
    for i, ratio in enumerate(growth):
        if ratio >= flatness_threshold:
            transition = batch_sizes[i + 1]
            break
    return FrameworkTaxResult(
        batch_sizes=tuple(batch_sizes),
        latencies_ns=tuple(latencies_ns),
        growth_ratios=growth,
        transition_batch_size=transition,
    )
