"""Memory-footprint estimation: does a workload fit the GPU?

Batch sweeps only make sense inside HBM capacity: weights (FP16), peak
activations (including eager attention's materialized score matrices — the
dominant term at large batch x sequence), and the KV cache for decode. The
estimator mirrors the operator shapes the graph builder emits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.gpu import GpuSpec
from repro.units import gib_to_bytes
from repro.workloads.config import Arch, ModelConfig
from repro.workloads.ops import FP16_BYTES

#: CUDA context, allocator reserves, workspace (rough). An ``int`` so the
#: KV pool's block arithmetic stays in whole bytes end to end.
RUNTIME_RESERVE_BYTES = gib_to_bytes(1.5)


def weights_bytes(config: ModelConfig) -> float:
    """FP16 parameter storage."""
    return FP16_BYTES * config.param_count()


def kv_cache_bytes(config: ModelConfig, batch_size: int,
                   context_len: int) -> float:
    """K and V caches across all layers."""
    _check_positive(batch_size=batch_size, context_len=context_len)
    if config.arch is Arch.ENCODER_ONLY:
        return 0.0
    per_token = 2 * config.layers * config.kv_dim * FP16_BYTES
    return float(batch_size * context_len * per_token)


def activation_bytes(config: ModelConfig, batch_size: int, seq_len: int,
                     eager_attention: bool = True) -> float:
    """Peak live activations for one forward pass.

    Eager attention materializes a (batch, heads, seq, seq) score matrix per
    layer (a few tensors live simultaneously: scores, probabilities, and a
    workspace copy); FlashAttention avoids it entirely.
    """
    _check_positive(batch_size=batch_size, seq_len=seq_len)
    tokens = batch_size * seq_len
    # Hidden-state working set: residual + block output + MLP intermediate.
    hidden_live = tokens * (2 * config.hidden + config.intermediate)
    score_live = 0.0
    if eager_attention:
        score_live = 3.0 * batch_size * config.heads * seq_len * seq_len
    logits = 0.0
    if config.arch is Arch.DECODER_ONLY:
        logits = float(tokens * config.vocab)
    return FP16_BYTES * (hidden_live + score_live + logits)


@dataclass(frozen=True)
class MemoryReport:
    """Footprint breakdown for one workload shape."""

    model: str
    gpu: str
    weights_bytes: float
    activation_bytes: float
    kv_cache_bytes: float
    reserve_bytes: float
    capacity_bytes: float

    @property
    def total_bytes(self) -> float:
        return (self.weights_bytes + self.activation_bytes
                + self.kv_cache_bytes + self.reserve_bytes)

    @property
    def fits(self) -> bool:
        return self.total_bytes <= self.capacity_bytes

    @property
    def utilization(self) -> float:
        return self.total_bytes / self.capacity_bytes


def memory_report(config: ModelConfig, gpu: GpuSpec, batch_size: int,
                  seq_len: int, context_len: int | None = None,
                  eager_attention: bool = True) -> MemoryReport:
    """Estimate the footprint of a (model, shape) pair on one GPU."""
    context = context_len if context_len is not None else seq_len
    return MemoryReport(
        model=config.name,
        gpu=gpu.name,
        weights_bytes=weights_bytes(config),
        activation_bytes=activation_bytes(config, batch_size, seq_len,
                                          eager_attention),
        kv_cache_bytes=kv_cache_bytes(config, batch_size, context),
        reserve_bytes=RUNTIME_RESERVE_BYTES,
        capacity_bytes=gib_to_bytes(gpu.memory_gib),
    )


def max_batch_size(config: ModelConfig, gpu: GpuSpec, seq_len: int,
                   limit: int = 4096, eager_attention: bool = True) -> int:
    """Largest power-of-two batch that fits in HBM (0 if none fits)."""
    _check_positive(seq_len=seq_len, limit=limit)
    best = 0
    batch = 1
    while batch <= limit:
        if memory_report(config, gpu, batch, seq_len,
                         eager_attention=eager_attention).fits:
            best = batch
        else:
            break
        batch *= 2
    return best


def _check_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")
