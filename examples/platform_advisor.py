"""Platform advisor: which coupled system serves a workload best, per batch?

Reproduces the paper's Section V-D analysis for any cataloged model: sweeps
batch sizes on all three platforms, locates the TKLQT transition stars, the
cross-platform crossover points, and each platform's balanced-utilization
region, then prints a per-batch recommendation.

Usage:
    python examples/platform_advisor.py [model-name]   # default: gpt2
"""

import sys

from repro import PAPER_PLATFORMS, get_model, run_batch_sweep
from repro.analysis import find_balanced_region, find_crossover
from repro.engine import EngineConfig
from repro.units import ns_to_ms
from repro.viz import render_table

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


def main() -> None:
    model = get_model(sys.argv[1] if len(sys.argv) > 1 else "gpt2")
    print(f"Sweeping {model.summary()} on "
          f"{', '.join(p.name for p in PAPER_PLATFORMS)} ...")
    sweep = run_batch_sweep(model, PAPER_PLATFORMS, BATCHES,
                            engine_config=EngineConfig(iterations=1))

    rows = []
    for batch in BATCHES:
        ttfts = {p.name: sweep.point(p.name, batch).ttft_ns
                 for p in PAPER_PLATFORMS}
        winner = min(ttfts, key=ttfts.get)
        rows.append([batch,
                     *[f"{ns_to_ms(ttfts[p.name]):.2f}" for p in PAPER_PLATFORMS],
                     winner])
    print(render_table(
        ["BS", *[f"{p.name} (ms)" for p in PAPER_PLATFORMS], "best"],
        rows, title=f"\nTTFT by batch size — {model.name}"))

    print("\nTKLQT transition stars (CPU-bound -> GPU-bound):")
    for platform in PAPER_PLATFORMS:
        star = sweep.transition(platform.name).batch_size
        print(f"  {platform.name:12s} BS={star}")

    cp = find_crossover(sweep, "GH200", "Intel+H100")
    if cp.found:
        print(f"\nGH200 overtakes Intel+H100 at BS={cp.batch_size} "
              f"(speedup at BS=128: "
              f"{cp.speedup_at(sweep.batch_sizes, 128):.2f}x)")
    else:
        print("\nGH200 never overtakes Intel+H100 in this sweep.")

    print("\nBalanced-utilization regions (both PUs busy):")
    for platform in PAPER_PLATFORMS:
        region = find_balanced_region(sweep, platform.name)
        if region.found:
            print(f"  {platform.name:12s} BS={region.low}..{region.high}")
        else:
            print(f"  {platform.name:12s} (none within swept range)")


if __name__ == "__main__":
    main()
