"""Execution engine entry point, built on the discrete-event core.

Simulates eager (and compiled) LLM inference on a coupled platform. The
engine constructs a :class:`repro.sim.SimCore` topology — CPU dispatch
thread(s), ``tp.degree`` GPU devices with in-order streams, and a GPU-GPU
interconnect link — and runs the execution mode as one or more processes on
it (:mod:`repro.engine.processes`). It emits a PyTorch-Profiler-style trace
that SKIP consumes — the same contract the paper has between PyTorch
Profiler and SKIP.

Timing rules (all per the platform model):

* operator dispatch occupies the CPU for the op's reference cost scaled by
  the CPU's dispatch score (compiled modes pay a small guard cost instead);
* each ``cudaLaunchKernel`` occupies the CPU for the platform's runtime-call
  time, and the kernel reaches the GPU a launch latency later;
* a kernel starts at ``max(arrival, stream free)`` — the gap from launch-call
  begin to kernel begin is the paper's ``t_l`` (Eq. 1);
* the CUDA runtime's bounded launch queue blocks the CPU when it runs too
  far ahead of the GPU;
* every iteration ends with a ``cudaDeviceSynchronize``.

Tensor parallelism (``tp.degree > 1``) shards attention/MLP kernels across
devices and inserts ring all-reduce collectives priced by the interconnect
model (:mod:`repro.engine.tp`). At ``tp.degree == 1`` the engine reproduces
the legacy single-device executor (:mod:`repro.engine.legacy`) bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.cache import LOWERING_CACHE
from repro.engine.compiler import CompileReport, apply_inductor_fusion, compile_time
from repro.engine.fusion_apply import FusionPlan, fused_kernel_name
from repro.engine.lowering import KernelTask, LoweredOp, lower_graph
from repro.engine.modes import ExecutionMode
from repro.engine.pp import (
    PP_DISABLED,
    PP_STAGE_CACHE,
    PPConfig,
    build_core_pp,
    partition_lowered,
    pp_stage_processes,
    validate_pp,
)
from repro.engine.processes import (
    graph_replay_process,
    per_device_launch_processes,
    single_thread_launch_process,
)
from repro.engine.tp import (
    DispatchMode,
    TP_DISABLED,
    TPConfig,
    shard_lowered,
    validate_tp,
)
from repro.errors import ConfigurationError
from repro.hardware.platform import Platform
from repro.obs.events import StepKind
from repro.obs.recorder import RunRecorder
from repro.sim.causality import CausalityLog
from repro.sim.core import SimCore
from repro.sim.resources import LinkResource
from repro.trace.builder import TraceBuilder
from repro.trace.tape import TapeBuilder, TraceTape
from repro.trace.trace import Trace
from repro.workloads.builder import AttentionImpl, build_graph
from repro.workloads.config import ModelConfig
from repro.workloads.graph import OperatorGraph, Phase


@dataclass(frozen=True)
class EngineConfig:
    """Tunable engine constants (all nanoseconds unless noted)."""

    iterations: int = 3
    #: Iterations simulated before measurement starts. Warm-up runs execute
    #: fully (they advance the clock) but get no iteration marks, so SKIP
    #: metrics exclude them — mirroring profiler practice on real hardware.
    warmup_iterations: int = 0
    launch_queue_depth: int = 1024
    inter_iteration_gap_ns: float = 2_000.0
    #: Share of an op's dispatch cost paid after its launches (return path).
    dispatch_epilogue_fraction: float = 0.1
    #: Share of the pre-launch dispatch spent inside the child ATen op.
    child_dispatch_fraction: float = 0.3
    #: Per-op CPU guard cost in compiled (non-graph) execution.
    compiled_guard_ns: float = 1_500.0
    #: CPU cost to invoke a CUDA-graph replay (reference CPU).
    graph_replay_dispatch_ns: float = 12_000.0
    #: GPU front-end gap between consecutive graph-replayed kernels (graphs
    #: pre-encode dependencies, so back-to-back kernels chain with no gap).
    graph_replay_kernel_gap_ns: float = 0.0
    #: Scale on the per-kernel scheduling floor inside a CUDA graph (graphs
    #: pre-encode launch descriptors, cutting most of the front-end cost).
    graph_kernel_floor_scale: float = 0.35
    #: Stream front-end gap between back-to-back individually launched
    #: kernels (avoided entirely by CUDA-graph replay).
    stream_kernel_gap_ns: float = 700.0
    #: CPU cost of a cudaDeviceSynchronize call itself (excluding the wait).
    sync_call_ns: float = 1_500.0

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if self.warmup_iterations < 0:
            raise ConfigurationError("warmup_iterations must be non-negative")
        if self.launch_queue_depth <= 0:
            raise ConfigurationError("launch_queue_depth must be positive")
        if not (0 <= self.dispatch_epilogue_fraction < 1):
            raise ConfigurationError("dispatch_epilogue_fraction must be in [0, 1)")
        if not (0 <= self.child_dispatch_fraction < 1):
            raise ConfigurationError("child_dispatch_fraction must be in [0, 1)")


DEFAULT_CONFIG = EngineConfig()


@dataclass
class RunResult:
    """Everything one engine run produced.

    Exactly one of ``trace``/``tape`` is set, depending on the ``tape``
    argument to :func:`run`.
    """

    trace: Trace | None
    graph: OperatorGraph
    lowered: list[LoweredOp]
    platform: Platform
    mode: ExecutionMode
    compile_report: CompileReport
    config: EngineConfig = field(default_factory=EngineConfig)
    tp: TPConfig = TP_DISABLED
    pp: PPConfig = PP_DISABLED
    core: SimCore | None = None
    tape: TraceTape | None = None

    @property
    def kernels_per_iteration(self) -> int:
        """Kernel launches one iteration performs, per device."""
        return sum(len(lo.kernels) for lo in self.lowered)

    def flat_kernels(self) -> list[KernelTask]:
        """The per-iteration, per-device kernel stream, in launch order."""
        return [k for lo in self.lowered for k in lo.kernels]


def build_core(tp: TPConfig,
               causality: CausalityLog | None = None) -> SimCore:
    """Construct the simulation topology for a TP configuration."""
    core = SimCore(causality=causality)
    threads = (tp.degree if tp.enabled
               and tp.dispatch is DispatchMode.THREAD_PER_DEVICE else 1)
    for index in range(threads):
        core.add_cpu_thread(
            name="dispatch" if threads == 1 else f"dispatch-{index}")
    for _ in range(tp.degree):
        core.add_device()
    core.set_link(LinkResource(spec=tp.link))
    return core


def run(
    model: ModelConfig | OperatorGraph,
    platform: Platform,
    batch_size: int = 1,
    seq_len: int = 512,
    mode: ExecutionMode = ExecutionMode.EAGER,
    phase: Phase = Phase.PREFILL,
    context_len: int | None = None,
    config: EngineConfig = DEFAULT_CONFIG,
    fusion_plan: FusionPlan | None = None,
    recorder: RunRecorder | None = None,
    tp: TPConfig | None = None,
    pp: PPConfig | None = None,
    tape: bool = False,
    causality: CausalityLog | None = None,
) -> RunResult:
    """Simulate inference and return the trace plus run context.

    Args:
        model: A model config (a graph is built) or a prebuilt operator graph.
        platform: Platform to simulate.
        batch_size / seq_len / phase / context_len: Workload shape (ignored
            when a prebuilt graph is passed).
        mode: Execution mode; FLASH/compile modes transform the lowering.
        config: Engine constants.
        fusion_plan: Required for ``PROXIMITY_FUSED`` mode — the chains to
            fuse (from SKIP's recommender).
        recorder: Optional observability hook; samples per-launch queue
            occupancy and launch delay during execution and records one
            ``ENGINE`` step per measured iteration.
        tp: Tensor-parallel configuration (``None`` = single device).
        pp: Pipeline-parallel configuration (``None`` = single stage). At
            ``stages == 1`` the run takes the untouched single-core path
            and is bit-identical to a run without the argument.
        tape: Record a :class:`~repro.trace.tape.TraceTape` instead of a
            full trace (metrics-only fast path; ``result.trace`` is None).
        causality: Optional happens-before log the run's core records into
            (``repro check hb`` consumes it); None = no logging, fast path.
    """
    if tp is None:
        tp = TP_DISABLED
    if pp is None:
        pp = PP_DISABLED
    if pp.enabled:
        # Pipeline stages are launch-mode dispatch processes; CUDA-graph
        # replay captures the whole-model chain and cannot split, and
        # per-device TP threads would need stages x degree dispatch
        # processes the stage process already subsumes.
        if mode.uses_cuda_graph:
            raise ConfigurationError(
                f"pipeline parallelism requires launch-mode execution, "
                f"not {mode.value} (CUDA-graph replay captures the whole "
                f"model as one chain)")
        if tp.enabled and tp.dispatch is DispatchMode.THREAD_PER_DEVICE:
            raise ConfigurationError(
                "pipeline parallelism drives each stage's shards from the "
                "stage's own dispatch thread; use single-thread TP dispatch")
    # The lowering cache applies only to shapes it can key: a model config
    # (prebuilt graphs carry no shape key) without a caller-owned fusion
    # plan. Cached graphs/lowerings are shared read-only; see engine.cache.
    cacheable = (not isinstance(model, OperatorGraph)
                 and fusion_plan is None and LOWERING_CACHE.enabled)
    if isinstance(model, OperatorGraph):
        graph = model
    else:
        validate_tp(tp, model.heads, model.name)
        attention = (AttentionImpl.FLASH if mode.uses_flash_attention
                     else AttentionImpl.EAGER)
        if cacheable:
            graph = LOWERING_CACHE.graph(model, batch_size, seq_len,
                                         phase, attention, context_len)
        else:
            graph = build_graph(model, batch_size, seq_len, phase=phase,
                                attention=attention, context_len=context_len)

    if cacheable:
        key_shape = (model, batch_size, seq_len, phase, attention,
                     context_len)
        lowered = LOWERING_CACHE.lowering(key_shape, graph, mode)
    else:
        lowered = lower_graph(graph)
        lowered = apply_inductor_fusion(lowered, mode)

    if mode is ExecutionMode.PROXIMITY_FUSED:
        if fusion_plan is None:
            raise ConfigurationError("PROXIMITY_FUSED mode requires a fusion_plan")
        lowered = _apply_plan_to_lowered(lowered, fusion_plan)
    elif fusion_plan is not None:
        raise ConfigurationError(f"fusion_plan is only valid in PROXIMITY_FUSED mode, not {mode}")

    lowered = shard_lowered(lowered, tp)

    kernel_count = sum(len(lo.kernels) for lo in lowered)
    report = compile_time(graph, mode, kernel_count)

    metadata = {
        "platform": platform.name,
        "model": graph.model_name,
        "mode": mode.value,
        "phase": graph.phase.value,
        "batch_size": graph.batch_size,
        "seq_len": graph.seq_len,
    }
    if tp.enabled:
        metadata["tp_degree"] = tp.degree
        metadata["tp_dispatch"] = tp.dispatch.value
        metadata["tp_link"] = tp.link.name
    if pp.enabled:
        metadata["pp_stages"] = pp.stages
        metadata["pp_microbatches"] = pp.microbatches
        metadata["pp_link"] = pp.link.name
    builder: TraceBuilder | TapeBuilder
    builder = TapeBuilder(metadata) if tape else TraceBuilder(metadata=metadata)

    if pp.enabled:
        validate_pp(pp, len(lowered), graph.model_name)
        if cacheable:
            stage_lowerings = PP_STAGE_CACHE.partition(
                (*key_shape, mode, tp.degree, pp.stages), lowered, pp.stages)
        else:
            stage_lowerings = partition_lowered(lowered, pp.stages)
        core = build_core_pp(tp, pp, causality=causality)
        core.spawn_all(pp_stage_processes(core, builder, stage_lowerings,
                                          platform, mode, config, pp))
        core.run()
        finished = builder.finish()
        result = RunResult(
            trace=None if tape else finished,
            graph=graph,
            lowered=lowered,
            platform=platform,
            mode=mode,
            compile_report=report,
            config=config,
            tp=tp,
            pp=pp,
            core=core,
            tape=finished if tape else None,
        )
        if recorder is not None:
            for mark in finished.iterations:
                recorder.record_step(StepKind.ENGINE, mark.ts,
                                     mark.ts_end - mark.ts, graph.batch_size)
        return result

    core = build_core(tp, causality=causality)
    if mode.uses_cuda_graph:
        core.spawn(graph_replay_process(core, builder, lowered, platform,
                                        config))
    elif tp.enabled and tp.dispatch is DispatchMode.THREAD_PER_DEVICE:
        core.spawn_all(per_device_launch_processes(
            core, builder, lowered, platform, mode, config,
            recorder=recorder))
    else:
        core.spawn(single_thread_launch_process(
            core, builder, lowered, platform, mode, config,
            recorder=recorder))
    core.run()

    finished = builder.finish()
    result = RunResult(
        trace=None if tape else finished,
        graph=graph,
        lowered=lowered,
        platform=platform,
        mode=mode,
        compile_report=report,
        config=config,
        tp=tp,
        pp=pp,
        core=core,
        tape=finished if tape else None,
    )
    if recorder is not None:
        for mark in finished.iterations:
            recorder.record_step(StepKind.ENGINE, mark.ts,
                                 mark.ts_end - mark.ts, graph.batch_size)
    return result


# ---------------------------------------------------------------------------
# Proximity-fusion plan application at op granularity
# ---------------------------------------------------------------------------

def _apply_plan_to_lowered(lowered: list[LoweredOp],
                           plan: FusionPlan) -> list[LoweredOp]:
    """Rewrite the lowering so recommended chains launch once.

    Matching runs over the flat kernel stream (chains cross operator
    boundaries); a fused kernel is attributed to the operator contributing
    its first member, and later members' operators keep their dispatch but
    lose the launches — exactly the paper's "fusion saves launches only"
    accounting. Collective kernels never fuse: an all-reduce synchronizes
    devices and cannot merge into a single-device kernel.
    """
    flat: list[tuple[int, KernelTask]] = []
    for op_index, lowered_op in enumerate(lowered):
        for kernel in lowered_op.kernels:
            flat.append((op_index, kernel))

    by_length = sorted(plan.chains, key=len, reverse=True)
    names = [k.name for _, k in flat]
    new_kernels: dict[int, list[KernelTask]] = {i: [] for i in range(len(lowered))}
    fused_id = 0
    i = 0
    while i < len(flat):
        matched = None
        for chain in by_length:
            length = len(chain)
            if (i + length <= len(names)
                    and tuple(names[i:i + length]) == chain
                    and not any(k.is_collective for _, k in flat[i:i + length])):
                matched = chain
                break
        if matched is None:
            owner, kernel = flat[i]
            new_kernels[owner].append(kernel)
            i += 1
            continue
        members = flat[i:i + len(matched)]
        owner = members[0][0]
        new_kernels[owner].append(KernelTask(
            name=fused_kernel_name(len(matched), fused_id),
            flops=sum(k.flops for _, k in members),
            bytes_read=sum(k.bytes_read for _, k in members),
            bytes_written=sum(k.bytes_written for _, k in members),
            members=tuple(k for _, k in members),
        ))
        fused_id += 1
        i += len(matched)

    return [LoweredOp(lo.op, tuple(new_kernels[idx]))
            for idx, lo in enumerate(lowered)]
