"""End-to-end flows across the whole stack."""

import pytest

from repro import (
    ExecutionMode,
    GH200,
    GPT2,
    INTEL_H100,
    LLAMA_3_2_1B,
    SkipProfiler,
)
from repro.engine import EngineConfig
from repro.skip import analyze_trace, best_speedup
from repro.trace import chrome


def test_profile_export_reimport_recommend(tmp_path, gpt2_profile):
    """Full SKIP workflow over a Chrome-trace file, as with a real trace."""
    path = tmp_path / "gpt2.json"
    chrome.dump(gpt2_profile.trace, path)
    reloaded = chrome.load(path)
    result = SkipProfiler.analyze(reloaded)
    assert result.metrics.kernel_launches == 413
    best = best_speedup(analyze_trace(result.trace))
    assert best.ideal_speedup > 2.0


def test_recommend_then_simulate_fused_speedup(intel_profiler):
    """The paper's future-work loop: recommend chains, actually fuse them,
    and compare the simulated speedup to the idealized one.

    The idealized number (launch-count ratio) must upper-bound the simulated
    latency gain in the CPU-bound region, because dispatch cost remains.
    """
    baseline = intel_profiler.profile(GPT2, batch_size=1, seq_len=512)
    analyses = baseline.recommend_fusions(lengths=[256])
    plan = analyses[0].plan()
    assert plan is not None
    fused = intel_profiler.profile(GPT2, batch_size=1, seq_len=512,
                                   mode=ExecutionMode.PROXIMITY_FUSED,
                                   fusion_plan=plan)
    simulated = (baseline.metrics.inference_latency_ns
                 / fused.metrics.inference_latency_ns)
    idealized = analyses[0].instance_speedup
    assert 1.0 < simulated < idealized


def test_fusion_gains_vanish_in_gpu_bound_region(intel_profiler):
    """Paper Section V-C: launch-count fusion helps CPU-bound runs, not
    GPU-bound ones. The simulated gain is far below Eq. 8's idealized ratio
    because operator dispatch survives fusion — only the launch tax goes."""
    from repro.skip import analyze_trace, combined_plan

    cpu_bound = intel_profiler.profile(GPT2, batch_size=1, seq_len=512)
    plan = combined_plan(analyze_trace(cpu_bound.trace))
    fused_small = intel_profiler.profile(
        GPT2, batch_size=1, seq_len=512,
        mode=ExecutionMode.PROXIMITY_FUSED, fusion_plan=plan)
    gain_small = (cpu_bound.metrics.inference_latency_ns
                  / fused_small.metrics.inference_latency_ns)

    gpu_bound = intel_profiler.profile(GPT2, batch_size=64, seq_len=512)
    plan_large = combined_plan(analyze_trace(gpu_bound.trace))
    fused_large = intel_profiler.profile(
        GPT2, batch_size=64, seq_len=512,
        mode=ExecutionMode.PROXIMITY_FUSED, fusion_plan=plan_large)
    gain_large = (gpu_bound.metrics.inference_latency_ns
                  / fused_large.metrics.inference_latency_ns)

    assert gain_small > 1.02
    assert gain_large < 1.02
    assert gain_small > gain_large


def test_flash_attention_beats_eager_at_long_seq(intel_profiler):
    eager = intel_profiler.profile(LLAMA_3_2_1B, batch_size=4, seq_len=1024)
    flash = intel_profiler.profile(LLAMA_3_2_1B, batch_size=4, seq_len=1024,
                                   mode=ExecutionMode.FLASH_ATTENTION)
    assert (flash.metrics.inference_latency_ns
            < eager.metrics.inference_latency_ns)


def test_cuda_graph_mode_dominates_eager_for_cpu_bound(intel_profiler):
    eager = intel_profiler.profile(GPT2, batch_size=1, seq_len=512)
    graphed = intel_profiler.profile(GPT2, batch_size=1, seq_len=512,
                                     mode=ExecutionMode.COMPILE_REDUCE_OVERHEAD)
    assert (graphed.metrics.inference_latency_ns
            < eager.metrics.inference_latency_ns / 1.5)


def test_same_model_same_platform_is_deterministic():
    a = SkipProfiler(GH200).profile(GPT2, batch_size=2, seq_len=256)
    b = SkipProfiler(GH200).profile(GPT2, batch_size=2, seq_len=256)
    assert a.metrics.inference_latency_ns == pytest.approx(
        b.metrics.inference_latency_ns)
    assert a.metrics.tklqt_ns == pytest.approx(b.metrics.tklqt_ns)


def test_decode_loop_composition(intel_profiler):
    """Prefill + decode phases compose into a full generation simulation."""
    from repro.serving import LatencyModel
    latency = LatencyModel(INTEL_H100)
    total = latency.generation_ns(LLAMA_3_2_1B, batch_size=1, prompt_len=256,
                                  output_tokens=32)
    prefill = latency.ttft_ns(LLAMA_3_2_1B, 1, 256)
    assert total > prefill
    # Each BS=1 decode step is CPU-bound and roughly one prefill's worth of
    # dispatch; bound the composition loosely.
    assert total < prefill + 32 * 2 * prefill


def test_iterations_scale_trace_linearly():
    one = SkipProfiler(INTEL_H100, EngineConfig(iterations=1)).profile(
        GPT2, batch_size=1, seq_len=128)
    three = SkipProfiler(INTEL_H100, EngineConfig(iterations=3)).profile(
        GPT2, batch_size=1, seq_len=128)
    assert len(three.trace.kernels) == 3 * len(one.trace.kernels)
    assert three.metrics.inference_latency_ns == pytest.approx(
        one.metrics.inference_latency_ns, rel=1e-6)
